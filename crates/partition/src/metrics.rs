//! Partition-quality metrics, including the paper's communication-volume
//! identity (Eq. 3).

use crate::Partitioning;
use bns_graph::CsrGraph;

/// Number of edges whose endpoints lie in different partitions.
pub fn edge_cut(g: &CsrGraph, part: &Partitioning) -> usize {
    g.edges()
        .filter(|&(u, v)| part.part_of(u) != part.part_of(v))
        .count()
}

/// The boundary node set `𝓑ᵢ` of each partition: nodes *outside*
/// partition `i` that have at least one neighbor inside it. These are the
/// nodes whose features partition `i` must receive every layer — the
/// quantity BNS-GCN samples.
///
/// Each returned list is sorted ascending.
pub fn boundary_sets(g: &CsrGraph, part: &Partitioning) -> Vec<Vec<usize>> {
    let k = part.num_parts();
    let mut out = vec![Vec::new(); k];
    // For each node u, mark the partitions (≠ its own) it neighbors.
    let mut stamp = vec![usize::MAX; k];
    for u in 0..g.num_nodes() {
        let pu = part.part_of(u);
        for &v in g.neighbors(u) {
            let pv = part.part_of(v as usize);
            if pv != pu && stamp[pv] != u {
                stamp[pv] = u;
                out[pv].push(u);
            }
        }
    }
    out
}

/// Per-partition boundary-set sizes `n_bd^(i)`.
pub fn boundary_counts(g: &CsrGraph, part: &Partitioning) -> Vec<usize> {
    boundary_sets(g, part).iter().map(Vec::len).collect()
}

/// `Vol(𝒢ᵢ) = Σ_{v∈𝒢ᵢ} D(v)` where `D(v)` is the number of partitions
/// other than `i` in which `v` has a neighbor (paper §3.1): the amount of
/// feature rows partition `i` *sends* per propagation.
pub fn send_volumes(g: &CsrGraph, part: &Partitioning) -> Vec<usize> {
    let k = part.num_parts();
    let mut out = vec![0usize; k];
    let mut stamp = vec![usize::MAX; k];
    for v in 0..g.num_nodes() {
        let pv = part.part_of(v);
        let mut d = 0usize;
        for &u in g.neighbors(v) {
            let pu = part.part_of(u as usize);
            if pu != pv && stamp[pu] != v {
                stamp[pu] = v;
                d += 1;
            }
        }
        out[pv] += d;
    }
    out
}

/// Total communication volume `Vol_total = Σᵢ Vol(𝒢ᵢ) = Σᵢ n_bd^(i)`
/// (paper Eq. 3). The equality of the two formulations is asserted in
/// debug builds.
pub fn comm_volume(g: &CsrGraph, part: &Partitioning) -> usize {
    let total: usize = send_volumes(g, part).iter().sum();
    debug_assert_eq!(
        total,
        boundary_counts(g, part).iter().sum::<usize>(),
        "Eq. 3 identity violated"
    );
    total
}

/// One row of the paper's Table 1: inner count, boundary count and their
/// ratio for every partition.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionReport {
    /// Inner-node count per partition.
    pub inner: Vec<usize>,
    /// Boundary-node count per partition.
    pub boundary: Vec<usize>,
    /// `boundary[i] / inner[i]` per partition.
    pub ratio: Vec<f64>,
    /// Total communication volume (Eq. 3).
    pub comm_volume: usize,
    /// Edge cut.
    pub edge_cut: usize,
    /// Inner-node imbalance (max/ideal).
    pub imbalance: f64,
}

impl PartitionReport {
    /// Computes the full quality report.
    pub fn of(g: &CsrGraph, part: &Partitioning) -> Self {
        let inner = part.sizes();
        let boundary = boundary_counts(g, part);
        let ratio = inner
            .iter()
            .zip(&boundary)
            .map(|(&i, &b)| if i == 0 { 0.0 } else { b as f64 / i as f64 })
            .collect();
        Self {
            comm_volume: boundary.iter().sum(),
            edge_cut: edge_cut(g, part),
            imbalance: part.imbalance(),
            inner,
            boundary,
            ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_graph::generators::{erdos_renyi_m, ring};
    use bns_tensor::SeededRng;

    fn ring_quarters() -> (CsrGraph, Partitioning) {
        let g = ring(8);
        let part = Partitioning::new(vec![0, 0, 1, 1, 2, 2, 3, 3], 4);
        (g, part)
    }

    #[test]
    fn ring_edge_cut() {
        let (g, part) = ring_quarters();
        assert_eq!(edge_cut(&g, &part), 4);
    }

    #[test]
    fn ring_boundary_sets() {
        let (g, part) = ring_quarters();
        let b = boundary_sets(&g, &part);
        // Partition 0 = {0,1}; outside neighbors of it: 7 (nbr of 0) and 2 (nbr of 1).
        assert_eq!(b[0], vec![2, 7]);
        assert_eq!(boundary_counts(&g, &part), vec![2, 2, 2, 2]);
    }

    #[test]
    fn eq3_identity_on_random_graph() {
        let mut rng = SeededRng::new(1);
        let g = erdos_renyi_m(200, 800, &mut rng);
        for k in [2usize, 3, 7] {
            let assignment: Vec<usize> = (0..200).map(|v| (v * 13 + 5) % k).collect();
            let part = Partitioning::new(assignment, k);
            let send: usize = send_volumes(&g, &part).iter().sum();
            let bd: usize = boundary_counts(&g, &part).iter().sum();
            assert_eq!(send, bd, "Eq. 3 identity, k={k}");
            assert_eq!(comm_volume(&g, &part), bd);
        }
    }

    #[test]
    fn single_partition_has_no_boundary() {
        let g = ring(10);
        let part = Partitioning::new(vec![0; 10], 1);
        assert_eq!(comm_volume(&g, &part), 0);
        assert_eq!(edge_cut(&g, &part), 0);
        assert_eq!(boundary_counts(&g, &part), vec![0]);
    }

    #[test]
    fn report_fields_consistent() {
        let (g, part) = ring_quarters();
        let r = PartitionReport::of(&g, &part);
        assert_eq!(r.inner, vec![2; 4]);
        assert_eq!(r.boundary, vec![2; 4]);
        assert_eq!(r.ratio, vec![1.0; 4]);
        assert_eq!(r.comm_volume, 8);
        assert_eq!(r.edge_cut, 4);
        assert!((r.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn comm_volume_counts_nodes_not_edges() {
        // Star: hub 0 in partition 0; leaves 1..=4 in partition 1.
        // Edge cut = 4 but comm volume = 1 (hub) + 4 (leaves) = 5?
        // Hub is a boundary node of partition 1 (1 node); each leaf is a
        // boundary node of partition 0 (4 nodes) => total 5.
        let g = CsrGraph::from_edges(5, (1..5).map(|v| (0, v)));
        let part = Partitioning::new(vec![0, 1, 1, 1, 1], 2);
        assert_eq!(edge_cut(&g, &part), 4);
        assert_eq!(comm_volume(&g, &part), 5);
        // Now a "multi-edge to one node" case: two hubs.
        // Nodes 0,1 in part 0 each connected to nodes 2,3 in part 1.
        // Edge cut 4, but only 4 boundary nodes (2 per side).
        let g2 = CsrGraph::from_edges(4, [(0, 2), (0, 3), (1, 2), (1, 3)]);
        let p2 = Partitioning::new(vec![0, 0, 1, 1], 2);
        assert_eq!(edge_cut(&g2, &p2), 4);
        assert_eq!(comm_volume(&g2, &p2), 4);
    }
}
