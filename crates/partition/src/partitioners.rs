//! The partitioner trait and the baseline partitioners.

use crate::Partitioning;
use bns_graph::CsrGraph;
use bns_tensor::SeededRng;

/// A k-way graph partitioner.
///
/// Implementations must return a [`Partitioning`] covering every node.
/// `seed` makes stochastic partitioners reproducible.
pub trait Partitioner {
    /// Partitions `g` into `k` parts.
    ///
    /// # Panics
    ///
    /// Implementations panic if `k == 0` or `k > g.num_nodes()`.
    fn partition(&self, g: &CsrGraph, k: usize, seed: u64) -> Partitioning;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

fn check_args(g: &CsrGraph, k: usize) {
    assert!(k > 0, "k must be positive");
    assert!(
        k <= g.num_nodes(),
        "cannot split {} nodes into {k} partitions",
        g.num_nodes()
    );
}

/// Balanced random assignment: shuffle nodes, deal them round-robin.
/// The paper's Tables 7–8 ablation ("Random+BNS").
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomPartitioner;

impl Partitioner for RandomPartitioner {
    fn partition(&self, g: &CsrGraph, k: usize, seed: u64) -> Partitioning {
        check_args(g, k);
        let n = g.num_nodes();
        let mut rng = SeededRng::new(seed);
        let perm = rng.permutation(n);
        let mut part_of = vec![0usize; n];
        for (i, &v) in perm.iter().enumerate() {
            part_of[v] = i % k;
        }
        Partitioning::new(part_of, k)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Deterministic `v mod k` assignment — the cheapest possible scheme,
/// oblivious to both structure and randomness.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn partition(&self, g: &CsrGraph, k: usize, _seed: u64) -> Partitioning {
        check_args(g, k);
        Partitioning::new((0..g.num_nodes()).map(|v| v % k).collect(), k)
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Region-growing partitioner: repeatedly BFS from a random unassigned
/// seed until the part reaches `ceil(n/k)` nodes. Produces contiguous,
/// balanced parts without multilevel refinement — a mid-quality baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsPartitioner;

impl Partitioner for BfsPartitioner {
    fn partition(&self, g: &CsrGraph, k: usize, seed: u64) -> Partitioning {
        check_args(g, k);
        let n = g.num_nodes();
        let mut rng = SeededRng::new(seed);
        let order = rng.permutation(n);
        let mut part_of = vec![usize::MAX; n];
        let mut part_count = vec![0usize; k];
        let mut current = 0usize;
        let mut count = 0usize;
        // Recomputing the cap as remaining/parts-left guarantees every
        // part receives at least one node.
        let mut cap = (n - count).div_ceil(k - current);
        let mut queue = std::collections::VecDeque::new();
        let mut cursor = 0usize;
        while count < n {
            // Find a fresh seed.
            while cursor < n && part_of[order[cursor]] != usize::MAX {
                cursor += 1;
            }
            if cursor >= n {
                break;
            }
            queue.push_back(order[cursor]);
            while let Some(u) = queue.pop_front() {
                if part_of[u] != usize::MAX {
                    continue;
                }
                part_of[u] = current;
                part_count[current] += 1;
                count += 1;
                if part_count[current] >= cap {
                    queue.clear();
                    break;
                }
                for &v in g.neighbors(u) {
                    if part_of[v as usize] == usize::MAX {
                        queue.push_back(v as usize);
                    }
                }
            }
            if part_count[current] >= cap && current + 1 < k {
                current += 1;
                cap = (n - count).div_ceil(k - current);
            }
        }
        Partitioning::new(part_of, k)
    }

    fn name(&self) -> &'static str {
        "bfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use bns_graph::generators::{grid, ring};

    fn assert_valid(g: &CsrGraph, p: &Partitioning, k: usize) {
        assert_eq!(p.num_parts(), k);
        assert_eq!(p.num_nodes(), g.num_nodes());
        let sizes = p.sizes();
        assert!(sizes.iter().all(|&s| s > 0), "empty partition: {sizes:?}");
    }

    #[test]
    fn random_is_balanced_and_deterministic() {
        let g = ring(100);
        let p1 = RandomPartitioner.partition(&g, 4, 7);
        let p2 = RandomPartitioner.partition(&g, 4, 7);
        assert_eq!(p1, p2);
        assert_valid(&g, &p1, 4);
        assert!((p1.imbalance() - 1.0).abs() < 1e-9);
        let p3 = RandomPartitioner.partition(&g, 4, 8);
        assert_ne!(p1, p3);
    }

    #[test]
    fn hash_covers_all_parts() {
        let g = ring(10);
        let p = HashPartitioner.partition(&g, 3, 0);
        assert_valid(&g, &p, 3);
        assert_eq!(p.part_of(7), 1);
    }

    #[test]
    fn bfs_beats_random_on_grid() {
        let g = grid(20, 20);
        let pr = RandomPartitioner.partition(&g, 4, 1);
        let pb = BfsPartitioner.partition(&g, 4, 1);
        assert_valid(&g, &pb, 4);
        assert!(pb.imbalance() <= 1.2, "imbalance {}", pb.imbalance());
        let cut_r = metrics::edge_cut(&g, &pr);
        let cut_b = metrics::edge_cut(&g, &pb);
        assert!(
            cut_b < cut_r / 2,
            "bfs cut {cut_b} not much better than random {cut_r}"
        );
    }

    #[test]
    fn bfs_handles_disconnected_graphs() {
        // Two disjoint rings as one graph.
        let mut edges = Vec::new();
        for i in 0..10usize {
            edges.push((i, (i + 1) % 10));
            edges.push((10 + i, 10 + (i + 1) % 10));
        }
        let g = CsrGraph::from_edges(20, edges);
        let p = BfsPartitioner.partition(&g, 4, 3);
        assert_valid(&g, &p, 4);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn too_many_parts_panics() {
        let g = ring(3);
        RandomPartitioner.partition(&g, 4, 0);
    }
}
