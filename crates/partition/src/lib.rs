//! Graph partitioners and partition-quality metrics for the BNS-GCN
//! reproduction.
//!
//! The paper partitions each graph with METIS configured to minimize
//! **communication volume** — equivalently, the total number of boundary
//! nodes (its Eq. 3) — while keeping inner-node counts balanced, and
//! ablates against random partitioning (its Tables 7–8). METIS itself is
//! not available as a pure-Rust dependency, so this crate implements:
//!
//! * [`MetisLikePartitioner`] — a multilevel scheme (heavy-edge-matching
//!   coarsening → greedy region-growing initial partition → FM-style
//!   boundary refinement) with a selectable [`Objective`]: edge cut or
//!   communication volume,
//! * [`RandomPartitioner`], [`HashPartitioner`], [`BfsPartitioner`] —
//!   baselines, and
//! * [`metrics`] — edge cut, communication volume, per-partition boundary
//!   sets and balance, including the paper's Eq. 3 identity
//!   `Σᵢ Vol(𝒢ᵢ) = Σᵢ |𝓑ᵢ|` (validated in tests).
//!
//! # Example
//!
//! ```
//! use bns_graph::generators::ring;
//! use bns_partition::{metrics, MetisLikePartitioner, Partitioner};
//!
//! let g = ring(64);
//! let part = MetisLikePartitioner::default().partition(&g, 4, 0);
//! assert_eq!(part.num_parts(), 4);
//! // A ring split into 4 contiguous arcs cuts at most a few edges.
//! assert!(metrics::edge_cut(&g, &part) <= 12);
//! ```

// No unsafe here, enforced at compile time (the audited unsafe lives in
// bns-tensor, bns-nn and the vendored loom shim; see UNSAFE_LEDGER.md).
#![forbid(unsafe_code)]
pub mod metrics;
mod multilevel;
mod partitioners;
mod partitioning;

pub use multilevel::{MetisLikePartitioner, Objective};
pub use partitioners::{BfsPartitioner, HashPartitioner, Partitioner, RandomPartitioner};
pub use partitioning::Partitioning;
