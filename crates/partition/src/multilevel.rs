//! Multilevel k-way partitioner in the style of METIS (Karypis & Kumar,
//! 1998): heavy-edge-matching coarsening, greedy region-growing initial
//! partitioning, and FM-style boundary refinement during uncoarsening.
//!
//! The paper configures METIS to minimize **communication volume** (=
//! total boundary nodes, its Eq. 3) rather than edge cut. This
//! implementation supports both objectives: coarse levels always refine
//! on (weighted) edge cut — the standard proxy — and, when
//! [`Objective::CommVolume`] is selected, the finest level refines on the
//! true boundary-node delta.

use crate::{Partitioner, Partitioning};
use bns_graph::CsrGraph;
use bns_tensor::SeededRng;

/// What the refinement phase minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Minimize the number of cut edges (classic METIS default).
    EdgeCut,
    /// Minimize total boundary nodes (the paper's configuration).
    #[default]
    CommVolume,
}

/// Multilevel METIS-like partitioner.
///
/// # Example
///
/// ```
/// use bns_graph::generators::grid;
/// use bns_partition::{metrics, MetisLikePartitioner, Partitioner, RandomPartitioner};
///
/// let g = grid(16, 16);
/// let ml = MetisLikePartitioner::default().partition(&g, 4, 0);
/// let rnd = RandomPartitioner.partition(&g, 4, 0);
/// assert!(metrics::comm_volume(&g, &ml) < metrics::comm_volume(&g, &rnd));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MetisLikePartitioner {
    /// Refinement objective.
    pub objective: Objective,
    /// Balance tolerance: max part weight ≤ `(1 + epsilon) · n / k`.
    pub epsilon: f64,
    /// Stop coarsening once the graph has at most
    /// `max(coarsen_floor, 8·k)` nodes.
    pub coarsen_floor: usize,
    /// Refinement passes per level.
    pub refine_passes: usize,
}

impl Default for MetisLikePartitioner {
    fn default() -> Self {
        Self {
            objective: Objective::CommVolume,
            epsilon: 0.05,
            coarsen_floor: 96,
            refine_passes: 4,
        }
    }
}

impl Partitioner for MetisLikePartitioner {
    fn partition(&self, g: &CsrGraph, k: usize, seed: u64) -> Partitioning {
        assert!(k > 0, "k must be positive");
        assert!(
            k <= g.num_nodes(),
            "cannot split {} nodes into {k} partitions",
            g.num_nodes()
        );
        if k == 1 {
            return Partitioning::new(vec![0; g.num_nodes()], 1);
        }
        let mut rng = SeededRng::new(seed);
        let base = WGraph::from_csr(g);

        // ---- Coarsening ----
        let floor = self.coarsen_floor.max(8 * k);
        let mut levels: Vec<WGraph> = vec![base];
        let mut maps: Vec<Vec<usize>> = Vec::new();
        loop {
            let top = levels.last().unwrap();
            if top.num_nodes() <= floor {
                break;
            }
            let (coarse, map) = top.coarsen(&mut rng);
            // Stalled coarsening (e.g. star graphs) — stop to avoid loops.
            if coarse.num_nodes() as f64 > 0.95 * top.num_nodes() as f64 {
                break;
            }
            levels.push(coarse);
            maps.push(map);
        }

        // ---- Initial partition on the coarsest graph ----
        let coarsest = levels.last().unwrap();
        let mut part = coarsest.region_grow(k, &mut rng);
        coarsest.refine_edge_cut(&mut part, k, self.refine_passes, self.epsilon, &mut rng);

        // ---- Uncoarsen + refine ----
        for level in (0..maps.len()).rev() {
            let fine = &levels[level];
            let map = &maps[level];
            let mut fine_part = vec![0usize; fine.num_nodes()];
            for (v, &c) in map.iter().enumerate() {
                fine_part[v] = part[c];
            }
            part = fine_part;
            let is_finest = level == 0;
            if is_finest && self.objective == Objective::CommVolume {
                fine.refine_edge_cut(&mut part, k, self.refine_passes, self.epsilon, &mut rng);
                refine_comm_volume(g, &mut part, k, self.refine_passes, self.epsilon, &mut rng);
            } else {
                fine.refine_edge_cut(&mut part, k, self.refine_passes, self.epsilon, &mut rng);
            }
        }
        // If no coarsening happened, `part` is already at the finest level
        // but comm-volume refinement may still be requested.
        if maps.is_empty() && self.objective == Objective::CommVolume {
            refine_comm_volume(g, &mut part, k, self.refine_passes, self.epsilon, &mut rng);
        }
        Partitioning::new(part, k)
    }

    fn name(&self) -> &'static str {
        match self.objective {
            Objective::EdgeCut => "metis-like(cut)",
            Objective::CommVolume => "metis-like(vol)",
        }
    }
}

/// Weighted graph used internally across coarsening levels.
#[derive(Debug, Clone)]
struct WGraph {
    indptr: Vec<usize>,
    indices: Vec<u32>,
    eweight: Vec<u64>,
    nweight: Vec<u64>,
}

impl WGraph {
    fn from_csr(g: &CsrGraph) -> Self {
        Self {
            indptr: g.indptr().to_vec(),
            indices: g.indices().to_vec(),
            eweight: vec![1; g.indices().len()],
            nweight: vec![1; g.num_nodes()],
        }
    }

    fn num_nodes(&self) -> usize {
        self.nweight.len()
    }

    fn neighbors(&self, v: usize) -> impl Iterator<Item = (usize, u64)> + '_ {
        let r = self.indptr[v]..self.indptr[v + 1];
        self.indices[r.clone()]
            .iter()
            .zip(&self.eweight[r])
            .map(|(&u, &w)| (u as usize, w))
    }

    fn total_weight(&self) -> u64 {
        self.nweight.iter().sum()
    }

    /// Heavy-edge matching followed by contraction. Returns the coarse
    /// graph and the fine→coarse node map.
    fn coarsen(&self, rng: &mut SeededRng) -> (WGraph, Vec<usize>) {
        let n = self.num_nodes();
        let order = rng.permutation(n);
        let mut mate = vec![usize::MAX; n];
        for &v in &order {
            if mate[v] != usize::MAX {
                continue;
            }
            let mut best = usize::MAX;
            let mut best_w = 0u64;
            for (u, w) in self.neighbors(v) {
                if mate[u] == usize::MAX && u != v && w > best_w {
                    best = u;
                    best_w = w;
                }
            }
            if best != usize::MAX {
                mate[v] = best;
                mate[best] = v;
            } else {
                mate[v] = v; // singleton
            }
        }
        // Assign coarse ids: the smaller endpoint of each pair owns the id.
        let mut map = vec![usize::MAX; n];
        let mut next = 0usize;
        for v in 0..n {
            if map[v] != usize::MAX {
                continue;
            }
            let m = mate[v];
            map[v] = next;
            if m != v {
                map[m] = next;
            }
            next += 1;
        }
        // Contract.
        let nc = next;
        let mut nweight = vec![0u64; nc];
        for v in 0..n {
            nweight[map[v]] += self.nweight[v];
        }
        // Deterministic aggregation: bucket edges per coarse source.
        let mut coarse_edges: Vec<Vec<(u32, u64)>> = vec![Vec::new(); nc];
        for v in 0..n {
            let cv = map[v];
            for (u, w) in self.neighbors(v) {
                let cu = map[u];
                if cu != cv {
                    coarse_edges[cv].push((cu as u32, w));
                }
            }
        }
        let mut indptr = Vec::with_capacity(nc + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut eweight = Vec::new();
        for row in &mut coarse_edges {
            row.sort_unstable_by_key(|&(u, _)| u);
            let mut i = 0;
            while i < row.len() {
                let u = row[i].0;
                let mut w = 0u64;
                while i < row.len() && row[i].0 == u {
                    w += row[i].1;
                    i += 1;
                }
                indices.push(u);
                eweight.push(w);
            }
            indptr.push(indices.len());
        }
        (
            WGraph {
                indptr,
                indices,
                eweight,
                nweight,
            },
            map,
        )
    }

    /// Balanced region growing by node weight.
    fn region_grow(&self, k: usize, rng: &mut SeededRng) -> Vec<usize> {
        let n = self.num_nodes();
        let order = rng.permutation(n);
        let mut part = vec![usize::MAX; n];
        let total = self.total_weight();
        let mut assigned_w = 0u64;
        let mut current = 0usize;
        let mut cap = (total - assigned_w).div_ceil((k - current) as u64);
        let mut cur_w = 0u64;
        let mut queue = std::collections::VecDeque::new();
        let mut cursor = 0usize;
        let mut assigned_n = 0usize;
        while assigned_n < n {
            while cursor < n && part[order[cursor]] != usize::MAX {
                cursor += 1;
            }
            if cursor >= n {
                break;
            }
            queue.push_back(order[cursor]);
            while let Some(v) = queue.pop_front() {
                if part[v] != usize::MAX {
                    continue;
                }
                part[v] = current;
                cur_w += self.nweight[v];
                assigned_w += self.nweight[v];
                assigned_n += 1;
                if cur_w >= cap {
                    queue.clear();
                    break;
                }
                for (u, _) in self.neighbors(v) {
                    if part[u] == usize::MAX {
                        queue.push_back(u);
                    }
                }
            }
            if cur_w >= cap && current + 1 < k {
                current += 1;
                cur_w = 0;
                cap = (total - assigned_w).div_ceil((k - current) as u64);
            }
        }
        part
    }

    /// Greedy FM-style boundary refinement on weighted edge cut.
    fn refine_edge_cut(
        &self,
        part: &mut [usize],
        k: usize,
        passes: usize,
        epsilon: f64,
        rng: &mut SeededRng,
    ) {
        let n = self.num_nodes();
        let total = self.total_weight() as f64;
        let max_allowed = ((1.0 + epsilon) * total / k as f64).ceil() as u64;
        let mut part_w = vec![0u64; k];
        for v in 0..n {
            part_w[part[v]] += self.nweight[v];
        }
        let mut w_to: Vec<u64> = vec![0; k];
        let mut touched: Vec<usize> = Vec::new();
        for _ in 0..passes {
            let mut boundary: Vec<usize> = (0..n)
                .filter(|&v| self.neighbors(v).any(|(u, _)| part[u] != part[v]))
                .collect();
            rng.shuffle(&mut boundary);
            let mut moves = 0usize;
            for &v in &boundary {
                let own = part[v];
                // Tally edge weight toward each adjacent partition.
                for &(u, w) in self.indices[self.indptr[v]..self.indptr[v + 1]]
                    .iter()
                    .zip(&self.eweight[self.indptr[v]..self.indptr[v + 1]])
                    .map(|(&u, &w)| (u as usize, w))
                    .collect::<Vec<_>>()
                    .iter()
                {
                    let p = part[u];
                    if w_to[p] == 0 {
                        touched.push(p);
                    }
                    w_to[p] += w;
                }
                let mut best = own;
                let mut best_gain = 0i64;
                for &p in &touched {
                    if p == own {
                        continue;
                    }
                    let gain = w_to[p] as i64 - w_to[own] as i64;
                    let fits = part_w[p] + self.nweight[v] <= max_allowed;
                    let keeps_src = part_w[own] > self.nweight[v];
                    if gain > best_gain && fits && keeps_src {
                        best = p;
                        best_gain = gain;
                    }
                }
                for &p in &touched {
                    w_to[p] = 0;
                }
                touched.clear();
                if best != own {
                    part_w[own] -= self.nweight[v];
                    part_w[best] += self.nweight[v];
                    part[v] = best;
                    moves += 1;
                }
            }
            if moves == 0 {
                break;
            }
        }
        self.rebalance(part, k, max_allowed, &mut part_w);
    }

    /// Forces every part under `max_allowed` by evicting boundary nodes
    /// from overweight parts toward their least-connected underweight
    /// neighbors, accepting negative-gain moves. Coarse levels can leave
    /// parts overweight because a single coarse node may be heavy; this
    /// cleans that up as granularity allows.
    fn rebalance(&self, part: &mut [usize], k: usize, max_allowed: u64, part_w: &mut [u64]) {
        let n = self.num_nodes();
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > n {
                break;
            }
            let Some(heavy) = (0..k).find(|&p| part_w[p] > max_allowed) else {
                break;
            };
            // Cheapest eviction: the boundary node of `heavy` with the
            // least edge weight into `heavy`-internal neighbors, moved to
            // its best external partition that fits.
            let mut best: Option<(usize, usize, i64)> = None; // (node, to, gain)
            for v in 0..n {
                if part[v] != heavy {
                    continue;
                }
                let mut w_own = 0u64;
                let mut w_best_ext = 0u64;
                let mut p_best = usize::MAX;
                let mut ext: Vec<(usize, u64)> = Vec::new();
                for (u, w) in self.neighbors(v) {
                    if part[u] == heavy {
                        w_own += w;
                    } else {
                        ext.push((part[u], w));
                    }
                }
                ext.sort_unstable_by_key(|&(p, _)| p);
                let mut i = 0;
                while i < ext.len() {
                    let p = ext[i].0;
                    let mut w = 0u64;
                    while i < ext.len() && ext[i].0 == p {
                        w += ext[i].1;
                        i += 1;
                    }
                    if w >= w_best_ext && part_w[p] + self.nweight[v] <= max_allowed {
                        w_best_ext = w;
                        p_best = p;
                    }
                }
                if p_best == usize::MAX {
                    // Allow moving isolated-from-outside nodes to the
                    // lightest fitting part.
                    if let Some(p) = (0..k)
                        .filter(|&p| p != heavy && part_w[p] + self.nweight[v] <= max_allowed)
                        .min_by_key(|&p| part_w[p])
                    {
                        p_best = p;
                    } else {
                        continue;
                    }
                }
                let gain = w_best_ext as i64 - w_own as i64;
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((v, p_best, gain));
                }
            }
            let Some((v, to, _)) = best else { break };
            part_w[heavy] -= self.nweight[v];
            part_w[to] += self.nweight[v];
            part[v] = to;
        }
    }
}

/// Boundary refinement on the *true* comm-volume objective (total
/// boundary nodes) over the unweighted fine graph. Hub moves whose
/// neighborhood scan would exceed `WORK_CAP` adjacency entries are
/// skipped — they are rarely profitable and quadratic to evaluate.
fn refine_comm_volume(
    g: &CsrGraph,
    part: &mut [usize],
    k: usize,
    passes: usize,
    epsilon: f64,
    rng: &mut SeededRng,
) {
    const WORK_CAP: usize = 4096;
    let n = g.num_nodes();
    let total = n as f64;
    let max_allowed = ((1.0 + epsilon) * total / k as f64).ceil() as u64;
    let mut part_w = vec![0u64; k];
    for v in 0..n {
        part_w[part[v]] += 1;
    }
    // d_contrib(u) = #distinct partitions among u's neighbors, excluding
    // part[u]; comm volume = Σ_u d_contrib(u).
    let mut stamp = vec![usize::MAX; k];
    let mut stamp_token = 0usize;
    let d_contrib = |part: &[usize], u: usize, stamp: &mut Vec<usize>, tok: &mut usize| {
        *tok += 1;
        let mut d = 0usize;
        for &w in g.neighbors(u) {
            let p = part[w as usize];
            if p != part[u] && stamp[p] != *tok {
                stamp[p] = *tok;
                d += 1;
            }
        }
        d
    };
    for _ in 0..passes {
        let mut boundary: Vec<usize> = (0..n)
            .filter(|&v| g.neighbors(v).iter().any(|&u| part[u as usize] != part[v]))
            .collect();
        rng.shuffle(&mut boundary);
        let mut moves = 0usize;
        for &v in &boundary {
            let own = part[v];
            let work: usize = g.degree(v)
                + g.neighbors(v)
                    .iter()
                    .map(|&u| g.degree(u as usize))
                    .sum::<usize>();
            if work > WORK_CAP {
                continue;
            }
            // Candidate target partitions = those among v's neighbors.
            let mut cands: Vec<usize> = g
                .neighbors(v)
                .iter()
                .map(|&u| part[u as usize])
                .filter(|&p| p != own)
                .collect();
            cands.sort_unstable();
            cands.dedup();
            // Current local contribution.
            let mut before = d_contrib(part, v, &mut stamp, &mut stamp_token);
            for &u in g.neighbors(v) {
                before += d_contrib(part, u as usize, &mut stamp, &mut stamp_token);
            }
            let mut best = own;
            let mut best_delta = 0i64;
            for &p in &cands {
                if part_w[p] + 1 > max_allowed || part_w[own] <= 1 {
                    continue;
                }
                part[v] = p;
                let mut after = d_contrib(part, v, &mut stamp, &mut stamp_token);
                for &u in g.neighbors(v) {
                    after += d_contrib(part, u as usize, &mut stamp, &mut stamp_token);
                }
                part[v] = own;
                let delta = after as i64 - before as i64;
                if delta < best_delta {
                    best_delta = delta;
                    best = p;
                }
            }
            if best != own {
                part[v] = best;
                part_w[own] -= 1;
                part_w[best] += 1;
                moves += 1;
            }
        }
        if moves == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{metrics, RandomPartitioner};
    use bns_graph::generators::{dc_sbm, grid, power_law_degrees, ring, DcSbmParams};

    fn assert_valid(g: &CsrGraph, p: &Partitioning, k: usize) {
        assert_eq!(p.num_parts(), k);
        assert_eq!(p.num_nodes(), g.num_nodes());
        assert!(
            p.sizes().iter().all(|&s| s > 0),
            "empty part: {:?}",
            p.sizes()
        );
    }

    #[test]
    fn ring_gets_contiguous_arcs() {
        let g = ring(256);
        let p = MetisLikePartitioner::default().partition(&g, 4, 1);
        assert_valid(&g, &p, 4);
        // Optimal cut on a ring is k; allow slack but far below random.
        let cut = metrics::edge_cut(&g, &p);
        assert!(cut <= 16, "ring cut {cut}");
        assert!(p.imbalance() <= 1.06, "imbalance {}", p.imbalance());
    }

    #[test]
    fn grid_cut_beats_random_by_far() {
        let g = grid(32, 32);
        let ml = MetisLikePartitioner::default().partition(&g, 8, 2);
        let rnd = RandomPartitioner.partition(&g, 8, 2);
        assert_valid(&g, &ml, 8);
        let cut_ml = metrics::edge_cut(&g, &ml);
        let cut_rnd = metrics::edge_cut(&g, &rnd);
        assert!(
            (cut_ml as f64) < 0.3 * cut_rnd as f64,
            "ml {cut_ml} vs random {cut_rnd}"
        );
    }

    #[test]
    fn comm_volume_objective_reduces_boundary_nodes_on_sbm() {
        let mut rng = SeededRng::new(3);
        let n = 3000;
        let block_of: Vec<usize> = (0..n).map(|v| v * 8 / n).collect();
        let deg = power_law_degrees(n, 3.0, 60.0, 2.3, &mut rng);
        let g = dc_sbm(
            &DcSbmParams {
                block_of,
                expected_degrees: deg,
                p_within: 0.85,
            },
            &mut rng,
        );
        let ml = MetisLikePartitioner::default().partition(&g, 8, 4);
        let rnd = RandomPartitioner.partition(&g, 8, 4);
        assert_valid(&g, &ml, 8);
        let vol_ml = metrics::comm_volume(&g, &ml);
        let vol_rnd = metrics::comm_volume(&g, &rnd);
        assert!(
            (vol_ml as f64) < 0.6 * vol_rnd as f64,
            "ml vol {vol_ml} vs random vol {vol_rnd}"
        );
        assert!(ml.imbalance() <= 1.08, "imbalance {}", ml.imbalance());
    }

    #[test]
    fn comm_volume_objective_at_least_matches_edge_cut_objective() {
        let mut rng = SeededRng::new(5);
        let n = 1500;
        let block_of: Vec<usize> = (0..n).map(|v| v * 4 / n).collect();
        let deg = power_law_degrees(n, 3.0, 80.0, 2.2, &mut rng);
        let g = dc_sbm(
            &DcSbmParams {
                block_of,
                expected_degrees: deg,
                p_within: 0.8,
            },
            &mut rng,
        );
        let vol_obj = MetisLikePartitioner {
            objective: Objective::CommVolume,
            ..Default::default()
        }
        .partition(&g, 4, 6);
        let cut_obj = MetisLikePartitioner {
            objective: Objective::EdgeCut,
            ..Default::default()
        }
        .partition(&g, 4, 6);
        let v1 = metrics::comm_volume(&g, &vol_obj);
        let v2 = metrics::comm_volume(&g, &cut_obj);
        assert!(
            v1 as f64 <= 1.05 * v2 as f64,
            "vol objective {v1} worse than cut objective {v2}"
        );
    }

    #[test]
    fn k_equals_one_is_trivial() {
        let g = ring(16);
        let p = MetisLikePartitioner::default().partition(&g, 1, 0);
        assert_eq!(p.sizes(), vec![16]);
        assert_eq!(metrics::comm_volume(&g, &p), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = grid(10, 10);
        let a = MetisLikePartitioner::default().partition(&g, 4, 9);
        let b = MetisLikePartitioner::default().partition(&g, 4, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn small_graphs_and_large_k() {
        let g = ring(12);
        let p = MetisLikePartitioner::default().partition(&g, 6, 0);
        assert_valid(&g, &p, 6);
    }
}
