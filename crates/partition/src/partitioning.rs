//! The partition-assignment type shared by all partitioners.

/// An assignment of every node to one of `k` partitions.
///
/// Invariant: every entry of `part_of` is `< k` (checked at
/// construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    part_of: Vec<usize>,
    k: usize,
}

impl Partitioning {
    /// Wraps an assignment vector.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or any assignment is `>= k`.
    pub fn new(part_of: Vec<usize>, k: usize) -> Self {
        assert!(k > 0, "Partitioning requires k > 0");
        for (v, &p) in part_of.iter().enumerate() {
            assert!(p < k, "node {v} assigned to partition {p} >= k = {k}");
        }
        Self { part_of, k }
    }

    /// Number of partitions.
    pub fn num_parts(&self) -> usize {
        self.k
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.part_of.len()
    }

    /// The partition of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn part_of(&self, v: usize) -> usize {
        self.part_of[v]
    }

    /// The full assignment vector.
    pub fn assignments(&self) -> &[usize] {
        &self.part_of
    }

    /// The nodes of each partition, in ascending node order.
    pub fn parts(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.k];
        for (v, &p) in self.part_of.iter().enumerate() {
            out[p].push(v);
        }
        out
    }

    /// Inner-node count per partition.
    pub fn sizes(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.k];
        for &p in &self.part_of {
            out[p] += 1;
        }
        out
    }

    /// `max_size / ideal_size`; 1.0 is perfectly balanced. Empty
    /// partitionings return 1.0.
    pub fn imbalance(&self) -> f64 {
        if self.part_of.is_empty() {
            return 1.0;
        }
        let sizes = self.sizes();
        let max = *sizes.iter().max().unwrap() as f64;
        let ideal = self.part_of.len() as f64 / self.k as f64;
        max / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_and_sizes() {
        let p = Partitioning::new(vec![0, 1, 0, 2, 1], 3);
        assert_eq!(p.num_parts(), 3);
        assert_eq!(p.sizes(), vec![2, 2, 1]);
        assert_eq!(p.parts(), vec![vec![0, 2], vec![1, 4], vec![3]]);
        assert_eq!(p.part_of(3), 2);
    }

    #[test]
    fn imbalance_of_even_split_is_one() {
        let p = Partitioning::new(vec![0, 0, 1, 1], 2);
        assert!((p.imbalance() - 1.0).abs() < 1e-12);
        let q = Partitioning::new(vec![0, 0, 0, 1], 2);
        assert!((q.imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = ">= k")]
    fn out_of_range_assignment_panics() {
        Partitioning::new(vec![0, 3], 2);
    }
}
