//! Partition-quality and robustness tests across graph families.

use bns_graph::generators::{
    barabasi_albert, dc_sbm, grid, power_law_degrees, ring, rmat, DcSbmParams,
};
use bns_graph::CsrGraph;
use bns_partition::{
    metrics, BfsPartitioner, HashPartitioner, MetisLikePartitioner, Objective, Partitioner,
    RandomPartitioner,
};
use bns_tensor::SeededRng;
use proptest::prelude::*;

fn all_partitioners() -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(RandomPartitioner),
        Box::new(HashPartitioner),
        Box::new(BfsPartitioner),
        Box::new(MetisLikePartitioner::default()),
        Box::new(MetisLikePartitioner {
            objective: Objective::EdgeCut,
            ..Default::default()
        }),
    ]
}

/// Every partitioner handles every graph family without panicking and
/// covers all nodes.
#[test]
fn partitioners_handle_diverse_families() {
    let mut rng = SeededRng::new(1);
    let graphs: Vec<(&str, CsrGraph)> = vec![
        ("ring", ring(120)),
        ("grid", grid(12, 10)),
        ("ba", barabasi_albert(300, 3, &mut rng)),
        ("rmat", rmat(8, 900, &mut rng)),
        ("empty-edges", CsrGraph::empty(50)),
    ];
    for (name, g) in &graphs {
        for p in all_partitioners() {
            for k in [1usize, 2, 5] {
                let part = p.partition(g, k, 3);
                assert_eq!(part.num_nodes(), g.num_nodes(), "{name}/{}", p.name());
                assert_eq!(part.sizes().iter().sum::<usize>(), g.num_nodes());
            }
        }
    }
}

/// On a hub-heavy BA graph the metis-like partitioner still balances.
#[test]
fn metis_balances_hub_graphs() {
    let mut rng = SeededRng::new(2);
    let g = barabasi_albert(1000, 4, &mut rng);
    let part = MetisLikePartitioner::default().partition(&g, 8, 1);
    assert!(part.imbalance() < 1.10, "imbalance {}", part.imbalance());
}

/// More partitions never decrease total comm volume on a fixed graph
/// (checked across the metis partitioner's own outputs).
#[test]
fn comm_volume_grows_with_k() {
    let mut rng = SeededRng::new(3);
    let deg = power_law_degrees(1200, 3.0, 60.0, 2.2, &mut rng);
    let block_of: Vec<usize> = (0..1200).map(|v| v % 6).collect();
    let g = dc_sbm(
        &DcSbmParams {
            block_of,
            expected_degrees: deg,
            p_within: 0.8,
        },
        &mut rng,
    );
    let mut last = 0usize;
    for k in [2usize, 4, 8] {
        let part = MetisLikePartitioner::default().partition(&g, k, 0);
        let vol = metrics::comm_volume(&g, &part);
        assert!(
            vol >= last,
            "volume decreased from {last} to {vol} at k={k}"
        );
        last = vol;
    }
}

/// The boundary sets computed by the metric layer are exactly the
/// recv-needs: every boundary node has ≥1 neighbor inside the
/// partition, every non-boundary external node has none.
#[test]
fn boundary_sets_are_exact() {
    let mut rng = SeededRng::new(4);
    let g = barabasi_albert(300, 3, &mut rng);
    let part = RandomPartitioner.partition(&g, 4, 5);
    let sets = metrics::boundary_sets(&g, &part);
    for (i, set) in sets.iter().enumerate() {
        let member: std::collections::HashSet<_> = set.iter().copied().collect();
        for u in 0..g.num_nodes() {
            let has_inner_neighbor = g
                .neighbors(u)
                .iter()
                .any(|&v| part.part_of(v as usize) == i);
            let external = part.part_of(u) != i;
            assert_eq!(
                member.contains(&u),
                external && has_inner_neighbor,
                "partition {i}, node {u}"
            );
        }
    }
}

proptest! {
    /// Partition report fields are internally consistent on arbitrary
    /// BA graphs.
    #[test]
    fn report_consistency(n in 20usize..120, k in 2usize..6, seed in 0u64..30) {
        let mut rng = SeededRng::new(seed);
        let g = barabasi_albert(n, 2, &mut rng);
        let part = MetisLikePartitioner::default().partition(&g, k.min(n), seed);
        let r = metrics::PartitionReport::of(&g, &part);
        prop_assert_eq!(r.inner.iter().sum::<usize>(), n);
        prop_assert_eq!(r.comm_volume, r.boundary.iter().sum::<usize>());
        prop_assert!(r.imbalance >= 1.0 - 1e-9);
        // Boundary of any partition can't exceed all external nodes.
        for (i, &b) in r.boundary.iter().enumerate() {
            prop_assert!(b <= n - r.inner[i]);
        }
    }
}
