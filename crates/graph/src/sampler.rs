//! Weighted discrete sampling (Walker alias method).

use bns_tensor::SeededRng;

/// Draws indices with probability proportional to fixed weights in `O(1)`
/// per draw (Walker's alias method). Used by the Chung–Lu style graph
/// generators where millions of weighted endpoint draws are needed.
///
/// # Example
///
/// ```
/// use bns_graph::WeightedSampler;
/// use bns_tensor::SeededRng;
///
/// let s = WeightedSampler::new(&[1.0, 0.0, 2.0]);
/// let mut rng = SeededRng::new(1);
/// let i = s.sample(&mut rng);
/// assert!(i == 0 || i == 2);
/// ```
#[derive(Debug, Clone)]
pub struct WeightedSampler {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl WeightedSampler {
    /// Builds the alias table.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "WeightedSampler on empty weights");
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "WeightedSampler requires positive finite total weight"
        );
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
        }
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: everything remaining takes probability 1.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the sampler has zero categories (never true: construction
    /// rejects empty weights).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut SeededRng) -> usize {
        let i = rng.usize_below(self.prob.len());
        if (rng.uniform() as f64) < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_match_weights() {
        let s = WeightedSampler::new(&[1.0, 2.0, 3.0, 0.0]);
        let mut rng = SeededRng::new(8);
        let mut counts = [0usize; 4];
        let trials = 60_000;
        for _ in 0..trials {
            counts[s.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[3], 0);
        let f0 = counts[0] as f64 / trials as f64;
        let f1 = counts[1] as f64 / trials as f64;
        let f2 = counts[2] as f64 / trials as f64;
        assert!((f0 - 1.0 / 6.0).abs() < 0.01, "f0={f0}");
        assert!((f1 - 2.0 / 6.0).abs() < 0.01, "f1={f1}");
        assert!((f2 - 3.0 / 6.0).abs() < 0.01, "f2={f2}");
    }

    #[test]
    fn single_category() {
        let s = WeightedSampler::new(&[5.0]);
        let mut rng = SeededRng::new(1);
        for _ in 0..10 {
            assert_eq!(s.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "positive finite total")]
    fn zero_total_panics() {
        WeightedSampler::new(&[0.0, 0.0]);
    }

    #[test]
    fn uniform_weights_are_uniform() {
        let s = WeightedSampler::new(&[1.0; 10]);
        let mut rng = SeededRng::new(3);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[s.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 50_000.0 - 0.1).abs() < 0.01);
        }
    }
}
