//! Classic graph algorithms used by tests, diagnostics and the
//! experiment harness.

use crate::CsrGraph;

/// BFS hop distances from `source`; unreachable nodes get `usize::MAX`.
///
/// # Panics
///
/// Panics if `source` is out of bounds.
pub fn bfs_distances(g: &CsrGraph, source: usize) -> Vec<usize> {
    assert!(source < g.num_nodes(), "source out of bounds");
    let mut dist = vec![usize::MAX; g.num_nodes()];
    dist[source] = 0;
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            let v = v as usize;
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The [k-core](https://en.wikipedia.org/wiki/Degeneracy_(graph_theory))
/// membership: `true` for nodes that survive iterated removal of nodes
/// with degree `< k`.
pub fn k_core(g: &CsrGraph, k: usize) -> Vec<bool> {
    let n = g.num_nodes();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut alive = vec![true; n];
    let mut queue: std::collections::VecDeque<usize> = (0..n).filter(|&v| deg[v] < k).collect();
    for &v in &queue {
        alive[v] = false;
    }
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            let v = v as usize;
            if alive[v] {
                deg[v] -= 1;
                if deg[v] < k {
                    alive[v] = false;
                    queue.push_back(v);
                }
            }
        }
    }
    alive
}

/// Graph diameter lower bound via a double BFS sweep (exact on trees,
/// a good estimate elsewhere). Returns `None` for disconnected or
/// empty graphs.
pub fn double_sweep_diameter(g: &CsrGraph) -> Option<usize> {
    if g.num_nodes() == 0 {
        return None;
    }
    let d0 = bfs_distances(g, 0);
    let (far, d_far) = d0
        .iter()
        .enumerate()
        .max_by_key(|&(_, &d)| if d == usize::MAX { 0 } else { d })?;
    if *d_far == usize::MAX || d0.contains(&usize::MAX) {
        return None;
    }
    let d1 = bfs_distances(g, far);
    d1.iter().copied().max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid, ring};
    use crate::CsrGraph;

    #[test]
    fn bfs_on_ring() {
        let g = ring(8);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 3, 2, 1]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = CsrGraph::from_edges(4, [(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn two_core_strips_pendants() {
        // Triangle with a pendant chain.
        let g = CsrGraph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let core = k_core(&g, 2);
        assert_eq!(core, vec![true, true, true, false, false]);
    }

    #[test]
    fn zero_core_keeps_everything() {
        let g = ring(5);
        assert!(k_core(&g, 0).iter().all(|&b| b));
        assert!(k_core(&g, 2).iter().all(|&b| b));
        assert!(k_core(&g, 3).iter().all(|&b| !b));
    }

    #[test]
    fn diameter_of_grid() {
        let g = grid(4, 3);
        // Manhattan diameter = (4-1) + (3-1) = 5.
        assert_eq!(double_sweep_diameter(&g), Some(5));
    }

    #[test]
    fn diameter_none_when_disconnected() {
        let g = CsrGraph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(double_sweep_diameter(&g), None);
    }
}
