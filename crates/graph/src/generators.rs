//! Synthetic graph generators.
//!
//! These produce the topology families the paper's datasets exhibit:
//! power-law degree distributions ([`chung_lu`], [`rmat`],
//! [`barabasi_albert`]) and community structure ([`dc_sbm`], the
//! degree-corrected stochastic block model that `bns-data` uses to plant
//! label-correlated communities). Simple regular families
//! ([`ring`], [`grid`], [`erdos_renyi_m`]) support tests.

use crate::{CsrGraph, GraphBuilder, WeightedSampler};
use bns_tensor::SeededRng;

/// A cycle on `n` nodes (`n >= 3`).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> CsrGraph {
    assert!(n >= 3, "ring requires n >= 3");
    CsrGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
}

/// A `w x h` 4-neighbor grid.
///
/// # Panics
///
/// Panics if `w == 0 || h == 0`.
pub fn grid(w: usize, h: usize) -> CsrGraph {
    assert!(w > 0 && h > 0, "grid requires positive dimensions");
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            if x + 1 < w {
                b.add_edge(v, v + 1);
            }
            if y + 1 < h {
                b.add_edge(v, v + w);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)`: `m` distinct uniform random edges.
///
/// Fewer than `m` edges may result only if `m` exceeds the number of
/// possible edges, which panics instead.
///
/// # Panics
///
/// Panics if `m > n * (n - 1) / 2`.
pub fn erdos_renyi_m(n: usize, m: usize, rng: &mut SeededRng) -> CsrGraph {
    assert!(
        m <= n.saturating_mul(n.saturating_sub(1)) / 2,
        "too many edges requested"
    );
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::new(n);
    while seen.len() < m {
        let u = rng.usize_below(n);
        let v = rng.usize_below(n);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m_per_node` existing nodes with probability proportional to degree.
/// Yields a power-law degree distribution.
///
/// # Panics
///
/// Panics if `n <= m_per_node` or `m_per_node == 0`.
pub fn barabasi_albert(n: usize, m_per_node: usize, rng: &mut SeededRng) -> CsrGraph {
    assert!(m_per_node > 0 && n > m_per_node, "invalid BA parameters");
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * n * m_per_node);
    // Seed clique on the first m_per_node + 1 nodes.
    for u in 0..=m_per_node {
        for v in (u + 1)..=m_per_node {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (m_per_node + 1)..n {
        // BTreeSet keeps iteration deterministic (HashSet order varies by
        // process, breaking seed reproducibility).
        let mut targets = std::collections::BTreeSet::new();
        while targets.len() < m_per_node {
            let t = endpoints[rng.usize_below(endpoints.len())];
            targets.insert(t);
        }
        for &t in &targets {
            b.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Recursive-matrix (R-MAT) generator, the classic skewed-degree model.
/// Produces `<= m` distinct edges on `2^scale` nodes (duplicates and
/// self-loops are dropped).
pub fn rmat(scale: u32, m: usize, rng: &mut SeededRng) -> CsrGraph {
    let n = 1usize << scale;
    // Standard Graph500 parameters.
    let (a, b_, c) = (0.57, 0.19, 0.19);
    let mut b = GraphBuilder::new(n);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r = rng.uniform() as f64;
            if r < a {
                // top-left quadrant: no bits set
            } else if r < a + b_ {
                v |= 1;
            } else if r < a + b_ + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        b.add_edge(u, v);
    }
    b.build()
}

/// Watts–Strogatz small-world graph: a ring lattice where each node
/// connects to its `k_half` nearest neighbors on each side, with every
/// edge rewired to a random endpoint with probability `beta`.
///
/// # Panics
///
/// Panics unless `n > 2 * k_half` and `0 <= beta <= 1`.
pub fn watts_strogatz(n: usize, k_half: usize, beta: f64, rng: &mut SeededRng) -> CsrGraph {
    assert!(k_half >= 1 && n > 2 * k_half, "invalid WS parameters");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for off in 1..=k_half {
            let u = (v + off) % n;
            if rng.bernoulli(beta) {
                // Rewire to a random non-self endpoint.
                let mut w = rng.usize_below(n);
                while w == v {
                    w = rng.usize_below(n);
                }
                b.add_edge(v, w);
            } else {
                b.add_edge(v, u);
            }
        }
    }
    b.build()
}

/// Chung–Lu random graph with the given expected degrees: each of `m =
/// sum(w)/2` edges picks both endpoints proportionally to `w`.
///
/// Duplicates/self-loops are dropped, so realized degrees are slightly
/// below the targets for heavy nodes — the standard behaviour of this
/// model.
pub fn chung_lu(expected_degrees: &[f64], rng: &mut SeededRng) -> CsrGraph {
    let n = expected_degrees.len();
    let total: f64 = expected_degrees.iter().sum();
    let m = (total / 2.0).round() as usize;
    let sampler = WeightedSampler::new(expected_degrees);
    let mut b = GraphBuilder::new(n);
    for _ in 0..m {
        let u = sampler.sample(rng);
        let v = sampler.sample(rng);
        b.add_edge(u, v);
    }
    b.build()
}

/// Parameters for [`dc_sbm`].
#[derive(Debug, Clone)]
pub struct DcSbmParams {
    /// Block assignment per node; block ids must be dense `0..num_blocks`.
    pub block_of: Vec<usize>,
    /// Expected degree per node (e.g. power-law draws).
    pub expected_degrees: Vec<f64>,
    /// Probability that an edge stays within its source node's block
    /// (`1.0` = fully assortative, `0.0` = fully random).
    pub p_within: f64,
}

/// Degree-corrected stochastic block model, Chung–Lu flavour.
///
/// For each of `sum(deg)/2` edges: the source is drawn globally by degree
/// weight; with probability `p_within` the target is drawn (by degree
/// weight) from the source's block, otherwise from the whole graph. This
/// yields power-law degrees *and* assortative community structure — the
/// two properties the paper's datasets combine.
///
/// # Panics
///
/// Panics if the two vectors differ in length, `p_within` is outside
/// `[0, 1]`, or a block has zero total weight.
pub fn dc_sbm(params: &DcSbmParams, rng: &mut SeededRng) -> CsrGraph {
    let DcSbmParams {
        block_of,
        expected_degrees,
        p_within,
    } = params;
    assert_eq!(
        block_of.len(),
        expected_degrees.len(),
        "dc_sbm: block/degree length mismatch"
    );
    assert!(
        (0.0..=1.0).contains(p_within),
        "dc_sbm: p_within must be in [0,1]"
    );
    let n = block_of.len();
    let num_blocks = block_of.iter().copied().max().map_or(0, |b| b + 1);
    // Per-block node lists and weight vectors for within-block draws.
    let mut block_nodes: Vec<Vec<usize>> = vec![Vec::new(); num_blocks];
    for (v, &bl) in block_of.iter().enumerate() {
        block_nodes[bl].push(v);
    }
    let block_samplers: Vec<WeightedSampler> = block_nodes
        .iter()
        .map(|nodes| {
            let w: Vec<f64> = nodes.iter().map(|&v| expected_degrees[v]).collect();
            WeightedSampler::new(&w)
        })
        .collect();
    let global = WeightedSampler::new(expected_degrees);
    let total: f64 = expected_degrees.iter().sum();
    let m = (total / 2.0).round() as usize;
    let mut b = GraphBuilder::new(n);
    for _ in 0..m {
        let u = global.sample(rng);
        let v = if rng.bernoulli(*p_within) {
            let bl = block_of[u];
            block_nodes[bl][block_samplers[bl].sample(rng)]
        } else {
            global.sample(rng)
        };
        b.add_edge(u, v);
    }
    b.build()
}

/// Draws `n` expected degrees from a truncated power law
/// `P(d) ∝ d^-gamma` on `[d_min, d_max]` via inverse-CDF sampling.
///
/// # Panics
///
/// Panics unless `1.0 < gamma` and `0 < d_min < d_max`.
pub fn power_law_degrees(
    n: usize,
    d_min: f64,
    d_max: f64,
    gamma: f64,
    rng: &mut SeededRng,
) -> Vec<f64> {
    assert!(gamma > 1.0, "power_law_degrees requires gamma > 1");
    assert!(0.0 < d_min && d_min < d_max, "invalid degree bounds");
    let a = 1.0 - gamma;
    let lo = d_min.powf(a);
    let hi = d_max.powf(a);
    (0..n)
        .map(|_| {
            let u = rng.uniform() as f64;
            (lo + u * (hi - lo)).powf(1.0 / a)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_degrees() {
        let g = ring(8);
        assert_eq!(g.num_edges(), 8);
        assert!((0..8).all(|v| g.degree(v) == 2));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // h*(w-1) + w*(h-1)
        assert!(g.validate().is_ok());
    }

    #[test]
    fn erdos_renyi_exact_edge_count() {
        let mut rng = SeededRng::new(1);
        let g = erdos_renyi_m(50, 100, &mut rng);
        assert_eq!(g.num_edges(), 100);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn ba_has_heavy_tail() {
        let mut rng = SeededRng::new(2);
        let g = barabasi_albert(2000, 3, &mut rng);
        assert!(g.validate().is_ok());
        let max_deg = (0..g.num_nodes()).map(|v| g.degree(v)).max().unwrap();
        let avg = g.average_degree();
        assert!(
            max_deg as f64 > 5.0 * avg,
            "expected hub: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn rmat_is_skewed() {
        let mut rng = SeededRng::new(3);
        let g = rmat(10, 8_000, &mut rng);
        assert!(g.validate().is_ok());
        let max_deg = (0..g.num_nodes()).map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg as f64 > 4.0 * g.average_degree());
    }

    #[test]
    fn chung_lu_tracks_expected_degrees() {
        let mut rng = SeededRng::new(4);
        let n = 3000;
        let w: Vec<f64> = (0..n).map(|i| if i < 30 { 60.0 } else { 6.0 }).collect();
        let g = chung_lu(&w, &mut rng);
        assert!(g.validate().is_ok());
        let heavy_avg: f64 = (0..30).map(|v| g.degree(v) as f64).sum::<f64>() / 30.0;
        let light_avg: f64 = (30..n).map(|v| g.degree(v) as f64).sum::<f64>() / (n - 30) as f64;
        assert!(
            heavy_avg > 4.0 * light_avg,
            "heavy {heavy_avg} vs light {light_avg}"
        );
    }

    #[test]
    fn dc_sbm_is_assortative() {
        let mut rng = SeededRng::new(5);
        let n = 4000;
        let blocks = 4;
        let block_of: Vec<usize> = (0..n).map(|v| v % blocks).collect();
        let deg = power_law_degrees(n, 4.0, 80.0, 2.2, &mut rng);
        let g = dc_sbm(
            &DcSbmParams {
                block_of: block_of.clone(),
                expected_degrees: deg,
                p_within: 0.9,
            },
            &mut rng,
        );
        assert!(g.validate().is_ok());
        let within = g
            .edges()
            .filter(|&(u, v)| block_of[u] == block_of[v])
            .count();
        let frac = within as f64 / g.num_edges() as f64;
        // Source drawn globally, target within-block w.p. 0.9 plus chance
        // hits: expect well above the 1/blocks = 0.25 random baseline.
        assert!(frac > 0.7, "within-block fraction {frac}");
    }

    #[test]
    fn dc_sbm_p_zero_is_unassortative() {
        let mut rng = SeededRng::new(6);
        let n = 4000;
        let block_of: Vec<usize> = (0..n).map(|v| v % 4).collect();
        let deg = vec![8.0; n];
        let g = dc_sbm(
            &DcSbmParams {
                block_of: block_of.clone(),
                expected_degrees: deg,
                p_within: 0.0,
            },
            &mut rng,
        );
        let within = g
            .edges()
            .filter(|&(u, v)| block_of[u] == block_of[v])
            .count();
        let frac = within as f64 / g.num_edges() as f64;
        assert!((frac - 0.25).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn power_law_bounds_and_skew() {
        let mut rng = SeededRng::new(7);
        let d = power_law_degrees(10_000, 2.0, 100.0, 2.5, &mut rng);
        assert!(d.iter().all(|&x| (2.0..=100.0).contains(&x)));
        let mean = d.iter().sum::<f64>() / d.len() as f64;
        let median = {
            let mut s = d.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[d.len() / 2]
        };
        assert!(mean > median, "power law should be right-skewed");
    }

    #[test]
    fn watts_strogatz_degree_and_rewiring() {
        let mut rng = SeededRng::new(8);
        // beta = 0: pure ring lattice, every degree exactly 2*k_half.
        let g0 = watts_strogatz(100, 2, 0.0, &mut rng);
        assert!((0..100).all(|v| g0.degree(v) == 4));
        assert!(g0.validate().is_ok());
        // beta = 1: heavily rewired, degrees vary.
        let g1 = watts_strogatz(100, 2, 1.0, &mut rng);
        assert!(g1.validate().is_ok());
        let distinct: std::collections::HashSet<usize> = (0..100).map(|v| g1.degree(v)).collect();
        assert!(distinct.len() > 1, "rewiring should break regularity");
    }

    #[test]
    fn watts_strogatz_shrinks_diameter() {
        let mut rng = SeededRng::new(9);
        let lattice = watts_strogatz(200, 2, 0.0, &mut rng);
        let small_world = watts_strogatz(200, 2, 0.3, &mut rng);
        let d0 = crate::algo::double_sweep_diameter(&lattice).unwrap();
        if let Some(d1) = crate::algo::double_sweep_diameter(&small_world) {
            assert!(d1 < d0, "small world {d1} vs lattice {d0}");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let g1 = barabasi_albert(500, 2, &mut SeededRng::new(11));
        let g2 = barabasi_albert(500, 2, &mut SeededRng::new(11));
        assert_eq!(g1, g2);
    }
}
