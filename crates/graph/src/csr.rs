//! The core compressed-sparse-row graph type and its builder.

use std::fmt;

/// An undirected simple graph in compressed-sparse-row form.
///
/// Node ids are `usize` in the public API; internally neighbor lists store
/// `u32`, which comfortably covers the graph sizes in this workspace while
/// halving memory traffic. Adjacency lists are sorted, enabling
/// binary-search edge queries and deterministic iteration.
///
/// Construct via [`GraphBuilder`] or [`CsrGraph::from_edges`].
#[derive(Clone, PartialEq, Eq)]
pub struct CsrGraph {
    indptr: Vec<usize>,
    indices: Vec<u32>,
}

impl fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrGraph {{ nodes: {}, edges: {} }}",
            self.num_nodes(),
            self.num_edges()
        )
    }
}

impl CsrGraph {
    /// Builds a graph with `n` nodes from an iterator of undirected edges.
    /// Self-loops and duplicate edges are dropped.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// A graph with `n` nodes and no edges.
    pub fn empty(n: usize) -> Self {
        Self {
            indptr: vec![0; n + 1],
            indices: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.indices.len() / 2
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn degree(&self, v: usize) -> usize {
        self.indptr[v + 1] - self.indptr[v]
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.indices[self.indptr[v]..self.indptr[v + 1]]
    }

    /// Whether the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Average degree (`2m / n`); zero for the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.indices.len() as f64 / self.num_nodes() as f64
        }
    }

    /// Iterates every undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.num_nodes()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .map(|&v| v as usize)
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The raw CSR index pointer array (length `n + 1`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The raw CSR adjacency array (length `2m`).
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The node-induced subgraph on `nodes`.
    ///
    /// Returns a [`Subgraph`] holding the new graph plus the
    /// local-to-global mapping. `nodes` may be in any order; local ids
    /// follow the given order. Duplicate entries panic.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` contains duplicates or out-of-bounds ids.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> Subgraph {
        let n_total = self.num_nodes();
        // usize::MAX marks "not in the subgraph".
        let mut global_to_local = vec![usize::MAX; n_total];
        for (local, &g) in nodes.iter().enumerate() {
            assert!(g < n_total, "induced_subgraph: node {g} out of bounds");
            assert!(
                global_to_local[g] == usize::MAX,
                "induced_subgraph: duplicate node {g}"
            );
            global_to_local[g] = local;
        }
        let mut indptr = Vec::with_capacity(nodes.len() + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::new();
        for &g in nodes {
            let start = indices.len();
            for &nb in self.neighbors(g) {
                let l = global_to_local[nb as usize];
                if l != usize::MAX {
                    indices.push(l as u32);
                }
            }
            indices[start..].sort_unstable();
            indptr.push(indices.len());
        }
        Subgraph {
            graph: CsrGraph { indptr, indices },
            local_to_global: nodes.to_vec(),
        }
    }

    /// Connected components; returns `(component_id_per_node,
    /// num_components)`.
    pub fn connected_components(&self) -> (Vec<usize>, usize) {
        let n = self.num_nodes();
        let mut comp = vec![usize::MAX; n];
        let mut next = 0usize;
        let mut queue = std::collections::VecDeque::new();
        for s in 0..n {
            if comp[s] != usize::MAX {
                continue;
            }
            comp[s] = next;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                for &v in self.neighbors(u) {
                    let v = v as usize;
                    if comp[v] == usize::MAX {
                        comp[v] = next;
                        queue.push_back(v);
                    }
                }
            }
            next += 1;
        }
        (comp, next)
    }

    /// Checks internal invariants (sorted unique neighbor lists, symmetric
    /// adjacency, no self-loops). Intended for tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_nodes();
        if self.indptr[0] != 0 || *self.indptr.last().unwrap() != self.indices.len() {
            return Err("indptr endpoints invalid".into());
        }
        for v in 0..n {
            let nbrs = self.neighbors(v);
            for w in nbrs.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("neighbors of {v} not sorted-unique"));
                }
            }
            for &u in nbrs {
                let u = u as usize;
                if u >= n {
                    return Err(format!("edge endpoint {u} out of bounds"));
                }
                if u == v {
                    return Err(format!("self-loop at {v}"));
                }
                if !self.has_edge(u, v) {
                    return Err(format!("asymmetric edge ({v}, {u})"));
                }
            }
        }
        Ok(())
    }
}

/// The result of [`CsrGraph::induced_subgraph`]: the induced graph plus the
/// mapping from its local node ids back to the parent graph's ids.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The induced graph; node `i` corresponds to
    /// `local_to_global[i]` in the parent.
    pub graph: CsrGraph,
    /// Local-to-global node id mapping.
    pub local_to_global: Vec<usize>,
}

/// Incremental builder for [`CsrGraph`].
///
/// Accepts edges in any order, ignores self-loops, and deduplicates.
///
/// # Example
///
/// ```
/// use bns_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 0); // duplicate, ignored
/// b.add_edge(2, 2); // self-loop, ignored
/// let g = b.build();
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "graph too large for u32 node ids");
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are silently dropped;
    /// duplicates are removed at build time.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of bounds.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of bounds (n={})",
            self.n
        );
        if u == v {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a as u32, b as u32));
    }

    /// Number of edges added so far (before dedup).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the CSR structure.
    pub fn build(mut self) -> CsrGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut degree = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut indptr = Vec::with_capacity(self.n + 1);
        indptr.push(0usize);
        for d in &degree {
            indptr.push(indptr.last().unwrap() + d);
        }
        let mut cursor = indptr.clone();
        let mut indices = vec![0u32; self.edges.len() * 2];
        for &(u, v) in &self.edges {
            indices[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            indices[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each row was filled in ascending "other endpoint" order only for
        // the u side; the v side appends sources ascending too because
        // edges are sorted by (u, v). Rows may interleave the two though,
        // so sort each row to guarantee the sorted invariant.
        let g = CsrGraph { indptr, indices };
        let mut g = g;
        for v in 0..self.n {
            let (s, e) = (g.indptr[v], g.indptr[v + 1]);
            g.indices[s..e].sort_unstable();
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> CsrGraph {
        CsrGraph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn builder_dedups_and_drops_self_loops() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 0);
        b.add_edge(2, 3);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = CsrGraph::from_edges(5, [(3, 1), (3, 0), (3, 4), (2, 3)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4]);
        assert_eq!(g.degree(3), 4);
        assert!(g.has_edge(0, 3) && g.has_edge(3, 0));
        assert!(!g.has_edge(0, 1));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn edges_iterator_yields_each_once() {
        let g = path_graph(6);
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        // Triangle 0-1-2 plus pendant 3.
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        let sub = g.induced_subgraph(&[2, 0, 1]);
        assert_eq!(sub.graph.num_nodes(), 3);
        assert_eq!(sub.graph.num_edges(), 3); // the triangle survives
        assert_eq!(sub.local_to_global, vec![2, 0, 1]);
        // local 0 = global 2; its neighbors are global {0,1} = local {1,2}
        assert_eq!(sub.graph.neighbors(0), &[1, 2]);
        assert!(sub.graph.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn induced_subgraph_rejects_duplicates() {
        path_graph(3).induced_subgraph(&[0, 0]);
    }

    #[test]
    fn connected_components_counts() {
        let g = CsrGraph::from_edges(6, [(0, 1), (1, 2), (4, 5)]);
        let (comp, k) = g.connected_components();
        assert_eq!(k, 3); // {0,1,2}, {3}, {4,5}
        assert_eq!(comp[0], comp[2]);
        assert_ne!(comp[0], comp[3]);
        assert_eq!(comp[4], comp[5]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert!(g.validate().is_ok());
        let g0 = CsrGraph::empty(0);
        assert_eq!(g0.average_degree(), 0.0);
    }

    #[test]
    fn average_degree_of_path() {
        let g = path_graph(5);
        assert!((g.average_degree() - 8.0 / 5.0).abs() < 1e-12);
    }
}
