//! Descriptive statistics over graphs (used in experiment reports).

use crate::CsrGraph;

/// Summary of a degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// 99th-percentile degree.
    pub p99: usize,
}

impl DegreeStats {
    /// Computes degree statistics for `g`.
    ///
    /// # Panics
    ///
    /// Panics if the graph has zero nodes.
    pub fn of(g: &CsrGraph) -> Self {
        let n = g.num_nodes();
        assert!(n > 0, "DegreeStats on empty graph");
        let mut degs: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
        degs.sort_unstable();
        Self {
            min: degs[0],
            max: degs[n - 1],
            mean: degs.iter().sum::<usize>() as f64 / n as f64,
            median: degs[n / 2],
            p99: degs[((n as f64 * 0.99) as usize).min(n - 1)],
        }
    }
}

/// A one-line structural summary of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Degree distribution summary.
    pub degrees: DegreeStats,
    /// Number of connected components.
    pub components: usize,
}

impl GraphStats {
    /// Computes the summary for `g`.
    ///
    /// # Panics
    ///
    /// Panics if the graph has zero nodes.
    pub fn of(g: &CsrGraph) -> Self {
        let (_, components) = g.connected_components();
        Self {
            nodes: g.num_nodes(),
            edges: g.num_edges(),
            degrees: DegreeStats::of(g),
            components,
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nodes={} edges={} deg(min/med/mean/p99/max)={}/{}/{:.1}/{}/{} components={}",
            self.nodes,
            self.edges,
            self.degrees.min,
            self.degrees.median,
            self.degrees.mean,
            self.degrees.p99,
            self.degrees.max,
            self.components
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::ring;

    #[test]
    fn ring_stats() {
        let s = GraphStats::of(&ring(10));
        assert_eq!(s.nodes, 10);
        assert_eq!(s.edges, 10);
        assert_eq!(s.degrees.min, 2);
        assert_eq!(s.degrees.max, 2);
        assert_eq!(s.components, 1);
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn star_stats() {
        let g = CsrGraph::from_edges(5, (1..5).map(|v| (0, v)));
        let d = DegreeStats::of(&g);
        assert_eq!(d.min, 1);
        assert_eq!(d.max, 4);
        assert!((d.mean - 8.0 / 5.0).abs() < 1e-12);
    }
}
