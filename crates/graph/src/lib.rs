//! Compressed-sparse-row graphs, synthetic graph generators and graph
//! statistics for the BNS-GCN reproduction.
//!
//! The paper's experiments run on four large real-world graphs (Reddit,
//! ogbn-products, Yelp, ogbn-papers100M). Those datasets are not available
//! here, so `bns-data` synthesizes stand-ins with the same *structural*
//! properties (power-law degrees, community structure) using the generators
//! in this crate, and every downstream component (partitioner, trainer)
//! consumes the [`CsrGraph`] type defined here.
//!
//! # Example
//!
//! ```
//! use bns_graph::{CsrGraph, GraphBuilder};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 3);
//! let g: CsrGraph = b.build();
//! assert_eq!(g.num_nodes(), 4);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.neighbors(1), &[0, 2]);
//! ```

// No unsafe here, enforced at compile time (the audited unsafe lives in
// bns-tensor, bns-nn and the vendored loom shim; see UNSAFE_LEDGER.md).
#![forbid(unsafe_code)]
pub mod algo;
mod csr;
pub mod generators;
mod sampler;
mod stats;

pub use csr::{CsrGraph, GraphBuilder, Subgraph};
pub use sampler::WeightedSampler;
pub use stats::{DegreeStats, GraphStats};
