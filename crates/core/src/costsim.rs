//! Analytic epoch-time models for the full-graph training baselines the
//! paper compares against in Figure 4: ROC (partition parallelism with
//! CPU–GPU swapping) and CAGNET (intra-layer model parallelism with
//! feature broadcasts).
//!
//! Neither system is available here (both are CUDA/MPI codebases), so —
//! per the substitution rule — we model the *bytes each scheme must
//! move*, which is what Figure 4's ordering is about, and convert bytes
//! to seconds with the same [`CostModel`] used for BNS-GCN's own
//! simulated timings:
//!
//! * **Vanilla / BNS-GCN**: per layer, each rank sends its selected
//!   boundary rows (counted exactly by the engine).
//! * **ROC-sim**: vanilla partition parallelism *plus* per-layer
//!   host↔device swaps of the partition's activations over a slower
//!   swap link (ROC stores partitions in host memory).
//! * **CAGNET-sim (c = 2)**: 1.5D algorithm; per layer each rank
//!   broadcasts its feature block to `k/c − 1` peers and reduces
//!   partial products, moving `Θ(n·d/√?)`-scale data that does **not**
//!   shrink with graph locality — the reason it loses to BNS-GCN.

use bns_comm::{CostModel, WirePrecision};

/// Workload description for the analytic models.
#[derive(Debug, Clone, Copy)]
pub struct LayerWorkload {
    /// Total nodes in the graph.
    pub n: usize,
    /// Number of partitions/ranks.
    pub k: usize,
    /// Feature width of this layer's input.
    pub d: usize,
    /// Max boundary-set size over partitions (bottleneck rank).
    pub max_boundary: usize,
    /// Total edges (for compute estimation).
    pub edges: usize,
}

/// Per-epoch simulated seconds for vanilla partition parallelism (the
/// BNS engine measures its own traffic; this closed form exists for
/// cross-checks): forward + backward move each boundary row twice, at
/// `precision` bytes per row (the engine's wire codec applies to both
/// directions, so the model does too).
pub fn vanilla_epoch_time(
    layers: &[LayerWorkload],
    cost: &CostModel,
    precision: WirePrecision,
) -> f64 {
    layers
        .iter()
        .map(|l| {
            let bytes = 2 * l.max_boundary as u64 * precision.row_bytes(l.d) as u64; // fwd + bwd
            let comp = compute_flops(l);
            cost.comm_time(bytes, 2 * (l.k as u64 - 1).max(1)) + cost.compute_time(comp)
        })
        .sum()
}

/// ROC-style epoch time: vanilla communication plus per-layer
/// activation swaps (`n/k · d` floats down and up) over the swap link.
/// Swaps page full-precision activations between host and device — the
/// wire codec never touches them — so only the vanilla base varies with
/// `precision`.
pub fn roc_epoch_time(
    layers: &[LayerWorkload],
    cost: &CostModel,
    swap: &CostModel,
    precision: WirePrecision,
) -> f64 {
    let base = vanilla_epoch_time(layers, cost, precision);
    let swap_time: f64 = layers
        .iter()
        .map(|l| {
            let bytes = 2 * (l.n / l.k.max(1)) * l.d * WirePrecision::Exact.row_bytes(1);
            // Forward and backward each page activations in and out.
            2.0 * swap.comm_time(bytes as u64, 2)
        })
        .sum();
    base + swap_time
}

/// CAGNET-style (1.5D, replication factor `c`) epoch time: per layer,
/// each rank broadcasts its `n/k × d` feature block to the `k/c − 1`
/// other ranks in its replication group and participates in reductions
/// of the same scale; forward + backward double it.
pub fn cagnet_epoch_time(layers: &[LayerWorkload], c: usize, cost: &CostModel) -> f64 {
    layers
        .iter()
        .map(|l| {
            let k = l.k.max(1);
            let group = (k / c.max(1)).max(1);
            // CAGNET broadcasts dense f32 activation blocks; it has no
            // boundary-wire codec, so its traffic never shrinks with
            // the BNS wire precision.
            let block_bytes = (l.n / k) * l.d * WirePrecision::Exact.row_bytes(1);
            let bcast_bytes = block_bytes as u64 * (group as u64 - 1).max(1);
            let msgs = (group as u64 - 1).max(1) * 2;
            let comp = compute_flops(l);
            2.0 * cost.comm_time(bcast_bytes, msgs) + cost.compute_time(comp)
        })
        .sum()
}

/// FLOPs of one GraphSAGE layer over the bottleneck partition.
fn compute_flops(l: &LayerWorkload) -> f64 {
    let n_part = (l.n / l.k.max(1)) as f64;
    let e_part = (l.edges / l.k.max(1)) as f64;
    // aggregate + two matmuls, forward and backward.
    3.0 * (2.0 * e_part * l.d as f64 + 4.0 * n_part * l.d as f64 * l.d as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(k: usize, max_boundary: usize) -> Vec<LayerWorkload> {
        vec![
            LayerWorkload {
                n: 100_000,
                k,
                d: 128,
                max_boundary,
                edges: 2_000_000,
            };
            3
        ]
    }

    #[test]
    fn roc_is_slower_than_vanilla() {
        let cost = CostModel::pcie3();
        let swap = CostModel::swap_link();
        let w = workload(8, 30_000);
        assert!(
            roc_epoch_time(&w, &cost, &swap, WirePrecision::Exact)
                > vanilla_epoch_time(&w, &cost, WirePrecision::Exact)
        );
    }

    #[test]
    fn cagnet_scales_with_n_not_boundary() {
        let cost = CostModel::pcie3();
        // Tiny boundary: vanilla gets much cheaper, CAGNET stays put.
        let small_bd = workload(8, 1_000);
        let big_bd = workload(8, 50_000);
        let v_small = vanilla_epoch_time(&small_bd, &cost, WirePrecision::Exact);
        let v_big = vanilla_epoch_time(&big_bd, &cost, WirePrecision::Exact);
        let c_small = cagnet_epoch_time(&small_bd, 2, &cost);
        let c_big = cagnet_epoch_time(&big_bd, 2, &cost);
        assert!(v_small < v_big);
        assert!((c_small - c_big).abs() < 1e-9, "CAGNET ignores boundary");
        assert!(c_small > v_small, "vanilla wins when boundaries are small");
    }

    #[test]
    fn sampling_shrinks_vanilla_time() {
        let cost = CostModel::pcie3();
        let full = workload(8, 40_000);
        let sampled = workload(8, 4_000); // p = 0.1
        assert!(
            vanilla_epoch_time(&sampled, &cost, WirePrecision::Exact)
                < vanilla_epoch_time(&full, &cost, WirePrecision::Exact)
        );
    }

    /// Quantizing the boundary wire shrinks vanilla/BNS epoch time
    /// monotonically with format width. (CAGNET has no precision
    /// parameter at all: its dense broadcasts bypass the codec.)
    #[test]
    fn wire_precision_shrinks_vanilla_time() {
        let cost = CostModel::pcie3();
        let w = workload(8, 40_000);
        let v_exact = vanilla_epoch_time(&w, &cost, WirePrecision::Exact);
        let v_f16 = vanilla_epoch_time(&w, &cost, WirePrecision::F16);
        let v_int8 = vanilla_epoch_time(&w, &cost, WirePrecision::Int8);
        assert!(v_f16 < v_exact);
        assert!(v_int8 < v_f16);
    }
}
