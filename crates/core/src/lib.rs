//! **BNS-GCN**: efficient full-graph training of graph convolutional
//! networks with partition-parallelism and random boundary-node sampling.
//!
//! A from-scratch Rust reproduction of Wan et al., MLSys 2022. The
//! original trains with one GPU per graph partition over PyTorch + DGL;
//! here each partition is a cooperative task (multiplexed onto a fixed
//! OS worker set by `bns-runtime`, so k can exceed the core count)
//! exchanging messages through `bns-comm`, which preserves Algorithm 1
//! of the paper exactly (it is specified per-partition) while making
//! every byte of traffic observable and every run deterministic.
//!
//! ## The method
//!
//! Partition-parallel GCN training must communicate the features of
//! **boundary nodes** — nodes owned by other partitions that local nodes
//! aggregate from — at *every layer, every epoch*. The paper shows the
//! number of boundary nodes (not boundary edges!) determines both
//! communication volume (its Eq. 3) and memory (its Eq. 4), and that
//! boundary sets can be several times larger than the partitions
//! themselves. BNS-GCN's fix: each epoch, every partition keeps a random
//! fraction `p` of its boundary set, drops the rest, and rescales
//! received features by `1/p` for unbiasedness.
//!
//! ## Crate layout
//!
//! * [`plan`] — [`plan::PartitionPlan`]: per-partition local graphs,
//!   inner/boundary node maps, send/receive lists (Algorithm 1's
//!   `V_i`, `B_i`, `S_{i,j}`).
//! * [`sampling`] — boundary-node sampling (BNS) plus the paper's
//!   ablation baselines: boundary-*edge* sampling (BES) and DropEdge.
//! * [`engine`] — the partition-parallel trainer (Algorithm 1): one
//!   cooperative task per partition on a fixed worker set (`BNS_WORKERS`),
//!   per-layer feature/gradient exchange, gradient all-reduce, full
//!   timing/traffic/memory instrumentation.
//! * [`fullgraph`] — single-rank reference trainer (used to verify the
//!   `p = 1` engine computes identical results).
//! * [`minibatch`] — the sampling-based baselines of the paper's
//!   Tables 4, 5, 11 and 12: neighbor sampling (GraphSAGE), FastGCN,
//!   LADIES, ClusterGCN, GraphSAINT, VR-GCN.
//! * [`variance`] — empirical feature-approximation variance (Table 2).
//! * [`model_io`] — versioned binary save/load for [`engine::TrainedModel`]
//!   (train once, serve repeatedly — see `crates/serve`).
//! * [`memory`] — the Eq. 4 memory model.
//! * [`costsim`] — analytic throughput models for the ROC- and
//!   CAGNET-style baselines of Fig. 4.
//!
//! # Example
//!
//! ```
//! use bns_data::SyntheticSpec;
//! use bns_gcn::engine::{train, ModelArch, TrainConfig};
//! use bns_gcn::sampling::BoundarySampling;
//! use bns_partition::{MetisLikePartitioner, Partitioner};
//! use std::sync::Arc;
//!
//! let ds = Arc::new(SyntheticSpec::reddit_sim().with_nodes(600).generate(0));
//! let part = MetisLikePartitioner::default().partition(&ds.graph, 2, 0);
//! let cfg = TrainConfig {
//!     hidden: vec![32],
//!     epochs: 5,
//!     sampling: BoundarySampling::Bns { p: 0.5 },
//!     ..TrainConfig::quick_test()
//! };
//! let run = train(&ds, &part, &cfg);
//! assert_eq!(run.epochs.len(), 5);
//! ```

// No unsafe here, enforced at compile time (the audited unsafe lives in
// bns-tensor, bns-nn and the vendored loom shim; see UNSAFE_LEDGER.md).
#![forbid(unsafe_code)]
pub mod costsim;
pub mod engine;
pub mod exchange;
pub mod fullgraph;
pub mod memory;
pub mod minibatch;
pub mod model_io;
pub mod plan;
pub mod sampling;
pub mod variance;
