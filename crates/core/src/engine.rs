//! The partition-parallel training engine — Algorithm 1 of the paper.
//!
//! One **cooperative task** per partition, multiplexed onto a fixed OS
//! worker set by `bns-runtime` (`BNS_WORKERS`, default the machine's
//! available parallelism) — so `k` can exceed the core count without
//! oversubscribing the machine. Every epoch each rank: (1) samples its
//! boundary set and broadcasts the selection (lines 4–7), (2) runs the
//! layer loop, exchanging boundary features before each layer's forward
//! and boundary-feature *gradients* after each layer's backward (lines
//! 8–13), (3) all-reduces weight gradients and steps Adam (lines 14–15).
//! Each blocking receive is a yield point: the task parks and the worker
//! picks up another runnable rank; message arrival re-schedules it. All
//! numeric work happens at fixed points in each rank's program order
//! with fixed fold orders, so results are bitwise identical at any
//! worker count (see DESIGN.md §12).
//!
//! Instrumentation: wall-clock per phase (sampling / compute /
//! communication / reduce — the paper's Fig. 5 and Tables 6, 12
//! breakdowns), byte-accurate per-class traffic, the Eq. 4 memory
//! model, and a FLOP estimate feeding the α–β cost model for
//! hardware-independent throughput comparisons.

use crate::exchange::{
    send_boundary_rows, swap_boundary_stale, BoundaryRecvOp, EpochExchange, ExchangeArena,
    GradRecvOp, SelectionOp,
};
use crate::memory::epoch_activation_bytes;
use crate::plan::{LocalPartition, PartitionPlan};
use crate::sampling::{build_epoch_topology, BoundarySampling, EpochTopology};
use bns_comm::{
    create_world, AllReduceOp, CostModel, RankComm, TrafficClass, TrafficStats, WirePrecision,
};
use bns_data::{Dataset, Labels};
use bns_nn::loss::{bce_with_logits, softmax_cross_entropy};
use bns_nn::metrics::{accuracy_counts, multilabel_counts, F1Counts};
use bns_nn::{
    flatten, unflatten_into, Activation, Adam, GatCache, GatLayer, GcnInnerPartial, GcnLayer,
    GcnSegCache, SageInnerPartial, SageLayer, SageSegCache,
};
use bns_partition::Partitioning;
use bns_telemetry::Timed;
use bns_tensor::{Matrix, SeededRng};
use std::sync::{Arc, Mutex};

/// Which model architecture the engine trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelArch {
    /// GraphSAGE with mean aggregator (all main experiments).
    Sage,
    /// Single-head GAT (the paper's Table 10 ablation).
    Gat,
    /// Plain GCN with symmetric normalization (the propagation the
    /// paper's Appendix A variance analysis is stated for).
    Gcn,
}

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Model architecture.
    pub arch: ModelArch,
    /// Hidden-layer widths (input/output dims come from the dataset),
    /// e.g. `vec![256; 3]` for the paper's 4-layer Reddit model.
    pub hidden: Vec<usize>,
    /// Input dropout rate per layer.
    pub dropout: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Number of epochs.
    pub epochs: usize,
    /// Boundary sampling strategy (the paper's `p`).
    pub sampling: BoundarySampling,
    /// Evaluate val/test every this many epochs (`0` = final epoch
    /// only).
    pub eval_every: usize,
    /// Seed for model init, sampling and dropout.
    pub seed: u64,
    /// Global gradient-norm clip applied after the all-reduce (`None`
    /// disables). Small sampled boundary sets with a large `1/p` rescale
    /// can produce occasional gradient spikes on the scaled-down
    /// datasets; clipping tames them without biasing the expectation
    /// direction.
    pub clip_norm: Option<f32>,
    /// PipeGCN-style pipelining (extension; the companion approach the
    /// paper's introduction cites): boundary features and boundary
    /// gradients are used with **one epoch of staleness**, which lets a
    /// real system overlap communication with computation instead of
    /// shrinking it. Requires a static sampling strategy
    /// ([`BoundarySampling::is_static`]); epoch 0 is synchronous.
    /// Compare simulated times with
    /// [`SimulatedEpoch::pipelined_total`].
    pub pipeline: bool,
    /// Scheduler workers the rank tasks are multiplexed onto (`None` =
    /// `BNS_WORKERS`, or the machine's available parallelism). Purely a
    /// scheduling knob: any value produces bitwise-identical results
    /// for a fixed seed.
    pub workers: Option<usize>,
    /// On-wire encoding of boundary features and gradients (`None` =
    /// `BNS_QUANT`, default exact f32). Quantized modes compress the
    /// dominant traffic — 2x for f16/bf16, ~3.5–3.9x for int8 at the
    /// experiments' feature widths — at the cost of rounding error;
    /// gradients use seeded stochastic rounding, so training stays
    /// bitwise reproducible at any thread/worker/lane count.
    /// Evaluation always exchanges exact (DESIGN.md §13).
    pub wire_precision: Option<WirePrecision>,
}

impl TrainConfig {
    /// A small fast configuration for tests and examples.
    pub fn quick_test() -> Self {
        Self {
            arch: ModelArch::Sage,
            hidden: vec![16],
            dropout: 0.0,
            lr: 0.01,
            epochs: 10,
            sampling: BoundarySampling::Bns { p: 1.0 },
            eval_every: 0,
            seed: 0,
            clip_norm: None,
            pipeline: false,
            workers: None,
            wire_precision: None,
        }
    }

    /// The paper's Reddit model (4 layers, 256 hidden, dropout 0.5,
    /// lr 0.01) with an epoch count scaled for CPU.
    pub fn reddit() -> Self {
        Self {
            arch: ModelArch::Sage,
            hidden: vec![256, 256, 256],
            dropout: 0.5,
            lr: 0.01,
            epochs: 100,
            sampling: BoundarySampling::Bns { p: 1.0 },
            eval_every: 10,
            seed: 0,
            clip_norm: None,
            pipeline: false,
            workers: None,
            wire_precision: None,
        }
    }

    /// The paper's ogbn-products model (3 layers, 128 hidden, dropout
    /// 0.3, lr 0.003), epochs scaled.
    pub fn products() -> Self {
        Self {
            arch: ModelArch::Sage,
            hidden: vec![128, 128],
            dropout: 0.3,
            lr: 0.003,
            epochs: 100,
            sampling: BoundarySampling::Bns { p: 1.0 },
            eval_every: 10,
            seed: 0,
            clip_norm: None,
            pipeline: false,
            workers: None,
            wire_precision: None,
        }
    }

    /// The paper's Yelp model (4 layers, 512 hidden, dropout 0.1,
    /// lr 0.001), width/epochs scaled.
    pub fn yelp() -> Self {
        Self {
            arch: ModelArch::Sage,
            hidden: vec![256, 256, 256],
            dropout: 0.1,
            lr: 0.001,
            epochs: 100,
            sampling: BoundarySampling::Bns { p: 1.0 },
            eval_every: 10,
            seed: 0,
            clip_norm: None,
            pipeline: false,
            workers: None,
            wire_precision: None,
        }
    }
}

/// Per-epoch statistics (phase times are the max over ranks — the
/// synchronous-training bottleneck, as in the paper's breakdowns).
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Global training loss (sum over train nodes / global train count).
    pub loss: f64,
    /// Boundary-sampling + topology-build time, seconds.
    pub sample_s: f64,
    /// Local forward+backward compute time, seconds.
    pub compute_s: f64,
    /// Boundary feature/gradient communication time, seconds.
    pub comm_s: f64,
    /// Gradient all-reduce time, seconds.
    pub reduce_s: f64,
    /// Traffic sent this epoch, per rank.
    pub traffic_per_rank: Vec<TrafficStats>,
    /// Estimated FLOPs executed this epoch, per rank.
    pub flops_per_rank: Vec<f64>,
    /// Total boundary nodes selected this epoch (all ranks).
    pub selected_boundary: usize,
    /// Validation score, when evaluated this epoch.
    pub val_score: Option<f64>,
    /// Test score, when evaluated this epoch.
    pub test_score: Option<f64>,
}

impl EpochStats {
    /// Measured wall-clock epoch time (sum of phases).
    pub fn total_s(&self) -> f64 {
        self.sample_s + self.compute_s + self.comm_s + self.reduce_s
    }

    /// Simulated epoch time under a cost model: bottleneck compute +
    /// boundary comm + reduce comm (the three components of the paper's
    /// Fig. 5 / Table 6).
    pub fn simulated(&self, cost: &CostModel) -> SimulatedEpoch {
        self.simulated_scaled(cost, 1.0)
    }

    /// Like [`EpochStats::simulated`] but with bytes and FLOPs scaled by
    /// `workload_scale` while message counts stay fixed. Experiments use
    /// this to project measurements from the scaled-down synthetic
    /// datasets into the paper's dataset-size regime (where transfers
    /// are bandwidth-bound, not latency-bound): per-epoch bytes and
    /// FLOPs are proportional to graph size, but the number of messages
    /// per epoch is not.
    pub fn simulated_scaled(&self, cost: &CostModel, workload_scale: f64) -> SimulatedEpoch {
        let s = workload_scale;
        let comp = self
            .flops_per_rank
            .iter()
            .fold(0.0f64, |a, &f| a.max(cost.compute_time(f * s)));
        let time_class = |class: TrafficClass| {
            self.traffic_per_rank
                .iter()
                .map(|t| cost.comm_time((t.bytes(class) as f64 * s) as u64, t.messages(class)))
                .fold(0.0f64, f64::max)
        };
        SimulatedEpoch {
            comp,
            comm: time_class(TrafficClass::Boundary),
            reduce: time_class(TrafficClass::AllReduce),
        }
    }
}

/// Simulated epoch-time breakdown under a [`CostModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedEpoch {
    /// Compute component, seconds.
    pub comp: f64,
    /// Boundary-communication component, seconds.
    pub comm: f64,
    /// Gradient-all-reduce component, seconds.
    pub reduce: f64,
}

impl SimulatedEpoch {
    /// Total simulated epoch time.
    pub fn total(&self) -> f64 {
        self.comp + self.comm + self.reduce
    }

    /// Simulated epoch time when boundary communication is fully
    /// overlapped with computation (the PipeGCN pipelining model): the
    /// slower of the two plus the (still synchronous) all-reduce.
    pub fn pipelined_total(&self) -> f64 {
        self.comp.max(self.comm) + self.reduce
    }
}

/// A trained model extracted from the engine (all ranks hold identical
/// replicas; this is rank 0's). Supports single-process full-graph
/// inference — the "train distributed, deploy anywhere" path.
#[derive(Debug, Clone)]
pub enum TrainedModel {
    /// GraphSAGE layers.
    Sage(bns_nn::SageModel),
    /// GAT layers.
    Gat(bns_nn::GatModel),
    /// Plain GCN layers.
    Gcn(Vec<GcnLayer>),
}

impl TrainedModel {
    /// Number of layers (the serving engine's neighborhood-expansion
    /// depth `L`).
    pub fn num_layers(&self) -> usize {
        match self {
            TrainedModel::Sage(m) => m.layers.len(),
            TrainedModel::Gat(m) => m.layers.len(),
            TrainedModel::Gcn(layers) => layers.len(),
        }
    }

    /// Output dimension of the last layer — the number of classes the
    /// model scores.
    ///
    /// # Panics
    ///
    /// Panics on a model with no layers.
    pub fn num_classes(&self) -> usize {
        match self {
            TrainedModel::Sage(m) => m.layers.last().expect("empty model").d_out(),
            TrainedModel::Gat(m) => m.layers.last().expect("empty model").w.cols(),
            TrainedModel::Gcn(layers) => layers.last().expect("empty model").w.cols(),
        }
    }

    /// Input feature dimension of the first layer.
    ///
    /// # Panics
    ///
    /// Panics on a model with no layers.
    pub fn feat_dim(&self) -> usize {
        match self {
            TrainedModel::Sage(m) => m.layers.first().expect("empty model").d_in(),
            TrainedModel::Gat(m) => m.layers.first().expect("empty model").w.rows(),
            TrainedModel::Gcn(layers) => layers.first().expect("empty model").w.rows(),
        }
    }

    /// Logits for a specific set of nodes (`nodes.len() x num_classes`,
    /// rows in the given order): the full-graph forward pass followed by
    /// a row gather. The serving engine's minibatch path must reproduce
    /// these rows bitwise (`crates/serve` tests hold it to that).
    pub fn predict_logits(&self, ds: &Dataset, nodes: &[usize]) -> Matrix {
        self.logits(ds).gather_rows(nodes)
    }

    /// Full-graph logits on a dataset (evaluation mode, no dropout).
    ///
    /// # Panics
    ///
    /// Panics if the dataset's feature dimension does not match the
    /// model's input layer.
    pub fn logits(&self, ds: &Dataset) -> Matrix {
        let mut rng = SeededRng::new(0);
        let n = ds.num_nodes();
        match self {
            TrainedModel::Sage(m) => {
                let scale = ds.mean_scale();
                m.forward_full(&ds.graph, &ds.features, &scale, false, &mut rng)
                    .0
            }
            TrainedModel::Gat(m) => {
                let mut h = ds.features.clone();
                for layer in &m.layers {
                    let (next, _) = layer.forward(&ds.graph, &h, n, false, &mut rng);
                    h = next;
                }
                h
            }
            TrainedModel::Gcn(layers) => {
                let scale = ds.gcn_scale();
                let mut h = ds.features.clone();
                for layer in layers {
                    let (next, _) = layer.forward(&ds.graph, &h, n, &scale, false, &mut rng);
                    h = next;
                }
                h
            }
        }
    }

    /// Scores `(val, test)` on a dataset: accuracy for single-label,
    /// micro-F1 for multi-label.
    pub fn evaluate(&self, ds: &Dataset) -> (f64, f64) {
        let out = self.logits(ds);
        match &ds.labels {
            Labels::Single(labels) => (
                bns_nn::metrics::accuracy(&out, labels, &ds.val),
                bns_nn::metrics::accuracy(&out, labels, &ds.test),
            ),
            Labels::Multi(y) => (
                bns_nn::metrics::micro_f1(&out, y, &ds.val),
                bns_nn::metrics::micro_f1(&out, y, &ds.test),
            ),
        }
    }
}

/// The result of a training run.
#[derive(Debug, Clone)]
pub struct TrainRun {
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// Final validation score (accuracy or micro-F1).
    pub final_val: f64,
    /// Final test score.
    pub final_test: f64,
    /// Peak analytic activation memory per rank, bytes.
    pub peak_mem_per_rank: Vec<u64>,
    /// Number of partitions.
    pub k: usize,
    /// Static boundary-set sizes per rank.
    pub boundary_per_rank: Vec<usize>,
    /// The trained model (rank 0's replica; all ranks are identical).
    pub model: TrainedModel,
}

impl TrainRun {
    /// Mean measured epoch time over all epochs, seconds.
    pub fn avg_epoch_s(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(EpochStats::total_s).sum::<f64>() / self.epochs.len() as f64
    }

    /// Mean simulated epoch time under a cost model.
    pub fn avg_sim_epoch(&self, cost: &CostModel) -> SimulatedEpoch {
        self.avg_sim_epoch_scaled(cost, 1.0)
    }

    /// Mean simulated epoch time with a workload scale (see
    /// [`EpochStats::simulated_scaled`]).
    pub fn avg_sim_epoch_scaled(&self, cost: &CostModel, workload_scale: f64) -> SimulatedEpoch {
        let mut acc = SimulatedEpoch {
            comp: 0.0,
            comm: 0.0,
            reduce: 0.0,
        };
        if self.epochs.is_empty() {
            return acc;
        }
        for e in &self.epochs {
            let s = e.simulated_scaled(cost, workload_scale);
            acc.comp += s.comp;
            acc.comm += s.comm;
            acc.reduce += s.reduce;
        }
        let n = self.epochs.len() as f64;
        acc.comp /= n;
        acc.comm /= n;
        acc.reduce /= n;
        acc
    }

    /// The `(val, test)` pair at the evaluated epoch with the best
    /// validation score — the model-selection rule the paper's accuracy
    /// tables use. Falls back to the final scores if nothing was
    /// evaluated mid-run.
    pub fn best_by_val(&self) -> (f64, f64) {
        self.epochs
            .iter()
            .filter_map(|e| e.val_score.zip(e.test_score))
            .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
            .unwrap_or((self.final_val, self.final_test))
    }

    /// Total boundary bytes sent over the whole run.
    pub fn total_boundary_bytes(&self) -> u64 {
        self.epochs
            .iter()
            .flat_map(|e| e.traffic_per_rank.iter())
            .map(|t| t.bytes(TrafficClass::Boundary))
            .sum()
    }

    /// Mean per-epoch boundary communication volume in megabytes.
    pub fn epoch_comm_mb(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.total_boundary_bytes() as f64 / self.epochs.len() as f64 / 1e6
    }
}

// ---------------------------------------------------------------------
// Layer dispatch
// ---------------------------------------------------------------------

/// A layer the distributed engine can drive (GraphSAGE or GAT).
#[derive(Debug, Clone)]
enum AnyLayer {
    Sage(SageLayer),
    Gat(GatLayer),
    Gcn(GcnLayer),
}

impl AnyLayer {
    /// Fused inference forward (eval path — no cache retained).
    fn forward_eval(
        &self,
        g: &bns_graph::CsrGraph,
        h: &Matrix,
        n_out: usize,
        scale: &[f32],
        gcn_scale: &[f32],
        rng: &mut SeededRng,
    ) -> Matrix {
        match self {
            AnyLayer::Sage(l) => l.forward(g, h, n_out, scale, false, rng).0,
            AnyLayer::Gat(l) => l.forward(g, h, n_out, false, rng).0,
            AnyLayer::Gcn(l) => l.forward(g, h, n_out, gcn_scale, false, rng).0,
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        match self {
            AnyLayer::Sage(l) => l.params_mut(),
            AnyLayer::Gat(l) => l.params_mut(),
            AnyLayer::Gcn(l) => vec![&mut l.w, &mut l.b],
        }
    }
}

/// Inner-edge partial state produced while boundary features are in
/// flight (training hot path). GAT has no segmented kernel — its
/// attention coefficients need destination *and* source rows — so it
/// carries no partial and runs fused once the boundary block lands.
enum TrainPartial {
    Sage(SageInnerPartial),
    Gcn(GcnInnerPartial),
    Gat,
}

/// Backward cache for the segmented training path (eval keeps using the
/// fused [`AnyCache`] path).
enum TrainCache {
    Sage(SageSegCache),
    Gcn(GcnSegCache),
    Gat(GatCache),
}

impl AnyLayer {
    /// Phase 1 of the overlapped forward: everything that needs only
    /// inner rows (dropout + inner-edge aggregation).
    fn forward_inner(
        &self,
        g: &bns_graph::CsrGraph,
        h_inner: &Matrix,
        gcn_scale: &[f32],
        rng: &mut SeededRng,
    ) -> TrainPartial {
        match self {
            AnyLayer::Sage(l) => TrainPartial::Sage(l.forward_inner(g, h_inner, true, rng)),
            AnyLayer::Gcn(l) => {
                TrainPartial::Gcn(l.forward_inner(g, h_inner, gcn_scale, true, rng))
            }
            AnyLayer::Gat(_) => TrainPartial::Gat,
        }
    }

    /// Phase 2: fold the received boundary block and finish the layer.
    #[allow(clippy::too_many_arguments)]
    fn forward_boundary(
        &self,
        g: &bns_graph::CsrGraph,
        partial: TrainPartial,
        h_inner: &Matrix,
        h_bd: &Matrix,
        row_scale: &[f32],
        gcn_scale: &[f32],
        rng: &mut SeededRng,
    ) -> (Matrix, TrainCache) {
        match (self, partial) {
            (AnyLayer::Sage(l), TrainPartial::Sage(p)) => {
                let (o, c) = l.forward_boundary(g, p, h_bd, row_scale, true, rng);
                (o, TrainCache::Sage(c))
            }
            (AnyLayer::Gcn(l), TrainPartial::Gcn(p)) => {
                let (o, c) = l.forward_boundary(g, p, h_bd, gcn_scale, true, rng);
                (o, TrainCache::Gcn(c))
            }
            (AnyLayer::Gat(l), TrainPartial::Gat) => {
                let h_full = h_inner.vstack(h_bd);
                let (o, c) = l.forward(g, &h_full, h_inner.rows(), true, rng);
                (o, TrainCache::Gat(c))
            }
            _ => unreachable!("partial/layer kind mismatch"),
        }
    }

    /// Segmented backward: returns `(dh_inner, dh_boundary, grads)`
    /// without materializing the stacked gradient matrix.
    fn backward_seg(
        &self,
        g: &bns_graph::CsrGraph,
        cache: &TrainCache,
        d: &Matrix,
        n_in: usize,
    ) -> (Matrix, Matrix, Vec<Matrix>) {
        match (self, cache) {
            (AnyLayer::Sage(l), TrainCache::Sage(c)) => {
                let (di, db, gr) = l.backward_seg(g, c, d);
                (di, db, vec![gr.w_self, gr.w_neigh, gr.b])
            }
            (AnyLayer::Gcn(l), TrainCache::Gcn(c)) => {
                let (di, db, gr) = l.backward_seg(g, c, d);
                (di, db, vec![gr.w, gr.b])
            }
            (AnyLayer::Gat(l), TrainCache::Gat(c)) => {
                let (dh_full, gr) = l.backward(c, d);
                let (di, db) = dh_full.split_rows(n_in);
                (di, db, vec![gr.w, gr.a_l, gr.a_r])
            }
            _ => unreachable!("cache/layer kind mismatch"),
        }
    }
}

fn build_layers(cfg: &TrainConfig, d_in: usize, d_out: usize) -> Vec<AnyLayer> {
    let mut dims = Vec::with_capacity(cfg.hidden.len() + 2);
    dims.push(d_in);
    dims.extend_from_slice(&cfg.hidden);
    dims.push(d_out);
    let mut rng = SeededRng::new(cfg.seed);
    let last = dims.len() - 2;
    (0..dims.len() - 1)
        .map(|l| match cfg.arch {
            ModelArch::Sage => {
                let act = if l == last {
                    Activation::Identity
                } else {
                    Activation::Relu
                };
                AnyLayer::Sage(SageLayer::new(
                    dims[l],
                    dims[l + 1],
                    act,
                    cfg.dropout,
                    &mut rng,
                ))
            }
            ModelArch::Gat => {
                let act = if l == last {
                    Activation::Identity
                } else {
                    Activation::Elu
                };
                AnyLayer::Gat(GatLayer::new(
                    dims[l],
                    dims[l + 1],
                    act,
                    cfg.dropout,
                    &mut rng,
                ))
            }
            ModelArch::Gcn => {
                let act = if l == last {
                    Activation::Identity
                } else {
                    Activation::Relu
                };
                AnyLayer::Gcn(GcnLayer::new(
                    dims[l],
                    dims[l + 1],
                    act,
                    cfg.dropout,
                    &mut rng,
                ))
            }
        })
        .collect()
}

/// Full dims vector (input, hidden..., classes).
fn dims_of(cfg: &TrainConfig, d_in: usize, d_out: usize) -> Vec<usize> {
    let mut dims = vec![d_in];
    dims.extend_from_slice(&cfg.hidden);
    dims.push(d_out);
    dims
}

// ---------------------------------------------------------------------
// The trainer
// ---------------------------------------------------------------------

struct RankEpoch {
    loss: f64,
    sample_s: f64,
    compute_s: f64,
    comm_s: f64,
    reduce_s: f64,
    traffic: TrafficStats,
    flops: f64,
    selected: usize,
    val: Option<(u64, u64, u64)>, // tp/correct, fp/total, fn (single uses 2)
    test: Option<(u64, u64, u64)>,
}

struct RankOutput {
    epochs: Vec<RankEpoch>,
    peak_mem: u64,
    boundary: usize,
    layers: Option<Vec<AnyLayer>>,
}

/// Trains a model partition-parallel per the configuration and returns
/// the full instrumented run.
///
/// # Panics
///
/// Panics if the partitioning does not match the dataset.
pub fn train(ds: &Arc<Dataset>, part: &Partitioning, cfg: &TrainConfig) -> TrainRun {
    let plan = Arc::new(PartitionPlan::build(ds, part));
    train_with_plan(&plan, cfg)
}

/// Like [`train`] but reuses an already-built [`PartitionPlan`]
/// (partition-plan construction is deterministic, so sharing it across
/// sampling-rate sweeps keeps experiments fast).
pub fn train_with_plan(plan: &Arc<PartitionPlan>, cfg: &TrainConfig) -> TrainRun {
    assert!(
        !cfg.pipeline || cfg.sampling.is_static(),
        "pipelined training requires a static sampling strategy (p = 0 or 1)"
    );
    let k = plan.k;
    let workers = cfg
        .workers
        .map(|w| w.max(1))
        .unwrap_or_else(|| bns_runtime::WorkerConfig::from_env().workers)
        .min(k);
    let budget = bns_tensor::ThreadConfig::from_env();
    let cfg = Arc::new(cfg.clone());
    let slots: Vec<Arc<Mutex<Option<RankOutput>>>> =
        (0..k).map(|_| Arc::new(Mutex::new(None))).collect();
    let tasks: Vec<Box<dyn bns_runtime::Task>> = create_world(k)
        .into_iter()
        .map(|comm| {
            let me = comm.rank();
            Box::new(RankTask::new(
                comm,
                Arc::clone(plan),
                Arc::clone(&cfg),
                Arc::clone(&slots[me]),
            )) as Box<dyn bns_runtime::Task>
        })
        .collect();
    bns_runtime::run_tasks(tasks, workers, |w| WorkerGuard::install(w, workers, budget));
    let outputs: Vec<RankOutput> = slots
        .iter()
        .map(|s| {
            s.lock()
                .unwrap()
                .take()
                .expect("rank task ran to completion")
        })
        .collect();
    assemble_run(plan, outputs)
}

/// Per-scheduler-worker kernel context: installs this worker's share of
/// the kernel thread budget (`BNS_THREADS` or available parallelism,
/// split over the *worker* count — not `k`, which may be far larger) as
/// its thread pool, and flushes the worker's pool + SIMD dispatch
/// counters when the worker drains out. Kernel dispatch is
/// calling-thread-local, so per-worker draining covers every kernel any
/// rank task ran on this worker.
struct WorkerGuard {
    pool: Option<Arc<bns_tensor::ThreadPool>>,
    guard: Option<bns_tensor::pool::PoolGuard>,
    share: usize,
}

impl WorkerGuard {
    fn install(worker: usize, workers: usize, budget: bns_tensor::ThreadConfig) -> Self {
        // A share of 1 means no pool — kernels stay on the serial path.
        let share = budget.for_ranks(workers, worker).threads;
        let pool = (share > 1).then(|| bns_tensor::ThreadPool::new(share));
        let guard = pool
            .as_ref()
            .map(|p| bns_tensor::pool::install(Arc::clone(p)));
        Self { pool, guard, share }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        self.guard.take();
        if let Some(p) = &self.pool {
            let stats = p.stats();
            bns_telemetry::counter_add("pool.parallel_dispatches", stats.parallel_dispatches);
            bns_telemetry::counter_add("pool.jobs", stats.jobs);
        }
        bns_telemetry::counter_add("pool.threads", self.share as u64);
        let simd_stats = bns_tensor::simd::take_thread_stats();
        bns_telemetry::counter_add("simd.dispatch.scalar", simd_stats.scalar);
        bns_telemetry::counter_add("simd.dispatch.sse2", simd_stats.sse2);
        bns_telemetry::counter_add("simd.dispatch.avx2", simd_stats.avx2);
        bns_telemetry::counter_add("simd.dispatch.neon", simd_stats.neon);
    }
}

fn assemble_run(plan: &PartitionPlan, outputs: Vec<RankOutput>) -> TrainRun {
    let k = plan.k;
    let n_epochs = outputs[0].epochs.len();
    let multi = matches!(plan.parts[0].labels, Labels::Multi(_));
    let mut epochs = Vec::with_capacity(n_epochs);
    let mut final_val = 0.0;
    let mut final_test = 0.0;
    for e in 0..n_epochs {
        let loss = outputs[0].epochs[e].loss;
        let max_of = |f: fn(&RankEpoch) -> f64| {
            outputs
                .iter()
                .map(|o| f(&o.epochs[e]))
                .fold(0.0f64, f64::max)
        };
        let traffic_per_rank: Vec<TrafficStats> = outputs
            .iter()
            .map(|o| o.epochs[e].traffic.clone())
            .collect();
        let flops_per_rank: Vec<f64> = outputs.iter().map(|o| o.epochs[e].flops).collect();
        let selected_boundary: usize = outputs.iter().map(|o| o.epochs[e].selected).sum();
        let score = |get: fn(&RankEpoch) -> Option<(u64, u64, u64)>| -> Option<f64> {
            let parts: Option<Vec<(u64, u64, u64)>> =
                outputs.iter().map(|o| get(&o.epochs[e])).collect();
            let parts = parts?;
            if multi {
                let mut c = F1Counts::default();
                for (tp, fp, fn_) in parts {
                    c.merge(F1Counts { tp, fp, fn_ });
                }
                Some(c.micro_f1())
            } else {
                let correct: u64 = parts.iter().map(|p| p.0).sum();
                let total: u64 = parts.iter().map(|p| p.1).sum();
                Some(if total == 0 {
                    0.0
                } else {
                    correct as f64 / total as f64
                })
            }
        };
        let val_score = score(|r| r.val);
        let test_score = score(|r| r.test);
        if let Some(v) = val_score {
            final_val = v;
        }
        if let Some(t) = test_score {
            final_test = t;
        }
        epochs.push(EpochStats {
            loss,
            sample_s: max_of(|r| r.sample_s),
            compute_s: max_of(|r| r.compute_s),
            comm_s: max_of(|r| r.comm_s),
            reduce_s: max_of(|r| r.reduce_s),
            traffic_per_rank,
            flops_per_rank,
            selected_boundary,
            val_score,
            test_score,
        });
    }
    let mut outputs = outputs;
    let layers = outputs[0].layers.take().expect("rank 0 returns its layers");
    let model = assemble_model(layers);
    TrainRun {
        epochs,
        final_val,
        final_test,
        peak_mem_per_rank: outputs.iter().map(|o| o.peak_mem).collect(),
        k,
        boundary_per_rank: outputs.iter().map(|o| o.boundary).collect(),
        model,
    }
}

fn assemble_model(layers: Vec<AnyLayer>) -> TrainedModel {
    let mut sages = Vec::new();
    let mut gats = Vec::new();
    let mut gcns = Vec::new();
    for l in layers {
        match l {
            AnyLayer::Sage(x) => sages.push(x),
            AnyLayer::Gat(x) => gats.push(x),
            AnyLayer::Gcn(x) => gcns.push(x),
        }
    }
    if !sages.is_empty() {
        TrainedModel::Sage(bns_nn::SageModel { layers: sages })
    } else if !gats.is_empty() {
        TrainedModel::Gat(bns_nn::GatModel { layers: gats })
    } else {
        TrainedModel::Gcn(gcns)
    }
}

fn estimate_flops(
    arch: ModelArch,
    edges: usize,
    n_in: usize,
    n_act: usize,
    d_in: usize,
    d_out: usize,
) -> f64 {
    let fwd = match arch {
        ModelArch::Sage => {
            2.0 * edges as f64 * d_in as f64 + 4.0 * n_in as f64 * d_in as f64 * d_out as f64
        }
        ModelArch::Gat => {
            2.0 * n_act as f64 * d_in as f64 * d_out as f64 + 8.0 * edges as f64 * d_out as f64
        }
        ModelArch::Gcn => {
            2.0 * edges as f64 * d_in as f64 + 2.0 * n_in as f64 * d_in as f64 * d_out as f64
        }
    };
    3.0 * fwd // forward + ~2x backward
}

// ---------------------------------------------------------------------
// The rank task
// ---------------------------------------------------------------------

/// Where a rank's epoch loop resumes on its next step (layer indices
/// ride in the variant). Every `*Wait`/`*Recv` state is a park point:
/// the task steps out of the scheduler there when a poll comes up
/// empty, and a peer's send re-schedules it.
#[derive(Debug, Clone, Copy)]
enum RankState {
    /// Build the model and the static full topology (runs on a worker,
    /// not the caller, so the k builds proceed in parallel).
    Init,
    /// Start an epoch: snapshot traffic, arm the sample timer, build or
    /// reuse the epoch topology and issue the selection exchange.
    EpochStart,
    /// Waiting for peer boundary selections.
    SelectionWait,
    /// Send boundary rows for layer `l`, run the inner-edge partial.
    ForwardSend(usize),
    /// Waiting for layer `l`'s boundary feature blocks.
    ForwardRecv(usize),
    /// Loss and the gradient seed.
    Loss,
    /// Segmented backward for layer `l`, issue the gradient sends.
    BackwardCompute(usize),
    /// Waiting for layer `l`'s boundary gradient blocks.
    BackwardRecv(usize),
    /// Flatten gradients and start the ring all-reduce.
    ReduceBegin,
    /// Waiting on all-reduce chunks; applies the step when done.
    ReduceWait,
    /// Decide whether to evaluate; issue the full-selection exchange if
    /// one is needed and not cached yet.
    EvalBegin,
    /// Waiting for peers' full boundary selections (first eval only).
    EvalSelectionWait,
    /// Send full boundary rows for eval layer `l`.
    EvalSend(usize),
    /// Waiting for eval layer `l`'s boundary blocks.
    EvalRecv(usize),
    /// Record the epoch's stats and advance the epoch counter.
    EpochEnd,
    /// Publish the rank's output.
    Finished,
}

/// What one `advance` call decided.
enum Flow {
    /// Keep advancing within this step.
    More,
    /// Park until a message wakes the task.
    Pending,
    /// The rank is done.
    Done,
}

/// The exchange the eval pass uses: the epoch's own when the training
/// strategy keeps every boundary node (a global property, so every
/// rank takes that branch together — reusing it skips an extra
/// Control-class round-trip), the cached full-boundary one otherwise.
/// A free function over the two slots so callers can keep disjoint
/// `&mut` borrows of the rest of the task.
fn eval_exchange<'a>(
    selects_all: bool,
    static_exchange: &'a Option<EpochExchange>,
    full_exchange: &'a Option<EpochExchange>,
) -> &'a EpochExchange {
    if selects_all {
        static_exchange.as_ref().expect("built in phase 1")
    } else {
        full_exchange.as_ref().expect("built at first eval")
    }
}

/// One partition's training loop as a resumable task: the old
/// thread-per-rank worker body unrolled into an explicit state machine
/// so a blocked receive parks the task instead of an OS thread. The
/// fields are what used to be stack locals; the scheduler never
/// overlaps steps of one task, so they carry across parks exactly like
/// locals across a blocking call. Every RNG draw, message send and
/// floating-point fold happens at the same point in this rank's
/// program order as in the blocking code — which is why results are
/// bitwise identical at any worker count (DESIGN.md §12).
struct RankTask {
    me: usize,
    comm: RankComm,
    plan: Arc<PartitionPlan>,
    cfg: Arc<TrainConfig>,
    lp: Arc<LocalPartition>,
    out: Arc<Mutex<Option<RankOutput>>>,

    // Model state (lives for the whole run).
    n_in: usize,
    dims: Vec<usize>,
    layers: Vec<AnyLayer>,
    num_layers: usize,
    opt: Adam,
    rng: SeededRng,
    edge_seed: u64,
    /// Resolved once per run (config wins over `BNS_QUANT`); applied to
    /// the training feature/gradient exchanges. Eval always runs Exact.
    precision: WirePrecision,
    /// Run-level stochastic-rounding stream seed for quantized gradient
    /// sends (mixed per (tag, destination) in `GradRecvOp::begin`).
    sr_seed: u64,

    // Topology / exchange caches.
    full_topo: Option<EpochTopology>,
    full_exchange: Option<EpochExchange>,
    static_topo: Option<EpochTopology>,
    static_exchange: Option<EpochExchange>,

    // Run-long accumulators.
    epochs_out: Vec<RankEpoch>,
    peak_mem: u64,
    stale_feats: Vec<Option<Matrix>>,
    stale_grads: Vec<Option<Vec<Vec<f32>>>>,
    arena: ExchangeArena,

    // Per-epoch state (the old loop's locals). The phase timers live
    // here so a phase that parks mid-way keeps accumulating wall time —
    // the same wall time the blocking receive used to spend inside
    // `recv`, so phase breakdowns stay comparable.
    epoch: usize,
    tag_base: u64,
    traffic_start: TrafficStats,
    epoch_span: Option<Timed>,
    sample_timer: Option<Timed>,
    exchange_timer: Option<Timed>,
    reduce_timer: Option<Timed>,
    eval_span: Option<Timed>,
    sample_s: f64,
    compute_s: f64,
    comm_s: f64,
    reduce_s: f64,
    flops: f64,
    n_sel: usize,
    h: Matrix,
    partial: Option<TrainPartial>,
    caches: Vec<TrainCache>,
    layer_grads: Vec<Vec<Matrix>>,
    d: Matrix,
    local_loss: f64,
    global_loss: f64,
    flat: Vec<f32>,
    grad_shapes: Vec<(usize, usize)>,
    epoch_traffic: TrafficStats,
    eval_h: Matrix,
    val: Option<(u64, u64, u64)>,
    test: Option<(u64, u64, u64)>,

    // In-flight comm operation slots (at most one active at a time).
    sel_op: Option<SelectionOp>,
    bd_op: Option<BoundaryRecvOp>,
    grad_op: Option<GradRecvOp>,
    ar_op: Option<AllReduceOp>,
    state: RankState,
}

impl RankTask {
    fn new(
        comm: RankComm,
        plan: Arc<PartitionPlan>,
        cfg: Arc<TrainConfig>,
        out: Arc<Mutex<Option<RankOutput>>>,
    ) -> Self {
        let me = comm.rank();
        let lp = Arc::clone(&plan.parts[me]);
        let n_in = lp.n_inner();
        let dims = dims_of(&cfg, plan.feat_dim, plan.num_classes);
        let num_layers = dims.len() - 1;
        let opt = Adam::new(cfg.lr);
        let rng = SeededRng::new(cfg.seed ^ 0x5eed_0000).fork(me as u64 + 1);
        let edge_seed = cfg.seed ^ 0xed6e_5eed;
        let precision = cfg.wire_precision.unwrap_or_else(WirePrecision::from_env);
        let sr_seed = cfg.seed ^ 0x570c_4a57_1c5e_ed00;
        let traffic = comm.stats().clone();
        let epochs = cfg.epochs;
        Self {
            me,
            comm,
            plan,
            cfg,
            lp,
            out,
            n_in,
            dims,
            layers: Vec::new(),
            num_layers,
            opt,
            rng,
            edge_seed,
            precision,
            sr_seed,
            full_topo: None,
            full_exchange: None,
            static_topo: None,
            static_exchange: None,
            epochs_out: Vec::with_capacity(epochs),
            peak_mem: 0,
            stale_feats: vec![None; num_layers],
            stale_grads: vec![None; num_layers],
            arena: ExchangeArena::new(),
            epoch: 0,
            tag_base: 0,
            traffic_start: traffic.clone(),
            epoch_span: None,
            sample_timer: None,
            exchange_timer: None,
            reduce_timer: None,
            eval_span: None,
            sample_s: 0.0,
            compute_s: 0.0,
            comm_s: 0.0,
            reduce_s: 0.0,
            flops: 0.0,
            n_sel: 0,
            h: Matrix::zeros(0, 0),
            partial: None,
            caches: Vec::new(),
            layer_grads: Vec::new(),
            d: Matrix::zeros(0, 0),
            local_loss: 0.0,
            global_loss: 0.0,
            flat: Vec::new(),
            grad_shapes: Vec::new(),
            epoch_traffic: traffic,
            eval_h: Matrix::zeros(0, 0),
            val: None,
            test: None,
            sel_op: None,
            bd_op: None,
            grad_op: None,
            ar_op: None,
            state: RankState::Init,
        }
    }

    /// Phase 1 epilogue (fresh-build and static-reuse paths both land
    /// here): stop the sample timer, record the sampler counters and
    /// reset the epoch accumulators.
    fn finish_sample(&mut self) {
        self.sample_s = self.sample_timer.take().expect("sample timer armed").stop();
        let topo = self.static_topo.as_ref().expect("epoch topology built");
        self.n_sel = topo.selected.len();
        bns_telemetry::counter_add("sampler.boundary_kept", self.n_sel as u64);
        bns_telemetry::counter_add("sampler.boundary_total", self.lp.n_boundary() as u64);
        self.compute_s = 0.0;
        self.comm_s = 0.0;
        self.flops = 0.0;
        self.caches.clear();
        self.h = self.lp.features.clone();
        self.state = RankState::ForwardSend(0);
    }

    /// Runs one state transition. `Pending` means a poll came up empty
    /// and the task should park; everything else either continues
    /// immediately or finishes the rank.
    fn advance(&mut self) -> Flow {
        match self.state {
            RankState::Init => {
                self.layers = build_layers(&self.cfg, self.plan.feat_dim, self.plan.num_classes);
                // Static full topology for evaluation (and for static
                // sampling). Built here rather than in `new` so the k
                // builds run on the worker set in parallel, and so the
                // RNG draw order matches the old per-thread code.
                self.full_topo = Some(build_epoch_topology(
                    &self.lp,
                    &BoundarySampling::Bns { p: 1.0 },
                    0,
                    self.edge_seed,
                    &mut self.rng,
                ));
                self.state = RankState::EpochStart;
                Flow::More
            }
            RankState::EpochStart => {
                if self.epoch == self.cfg.epochs {
                    self.state = RankState::Finished;
                    return Flow::More;
                }
                let epoch = self.epoch;
                self.tag_base = (epoch as u64) * 256;
                self.traffic_start = self.comm.stats().clone();
                self.epoch_span = Some(Timed::with_args(
                    "epoch",
                    &[("rank", self.me.into()), ("epoch", epoch.into())],
                ));

                // ---- Phase 1: boundary sampling + selection exchange ----
                self.sample_timer = Some(Timed::with_args("sample", &[("epoch", epoch.into())]));
                if self.cfg.sampling.is_static() && self.static_topo.is_some() {
                    self.finish_sample();
                    return Flow::More;
                }
                let t = build_epoch_topology(
                    &self.lp,
                    &self.cfg.sampling,
                    epoch,
                    self.edge_seed,
                    &mut self.rng,
                );
                self.sel_op = Some(SelectionOp::begin(
                    &mut self.comm,
                    &self.lp,
                    &t.selected,
                    self.tag_base,
                ));
                self.static_topo = Some(t);
                self.state = RankState::SelectionWait;
                Flow::More
            }
            RankState::SelectionWait => {
                let done = {
                    let op = self.sel_op.as_mut().expect("selection op in flight");
                    op.poll(&mut self.comm, &self.lp)
                };
                if !done {
                    return Flow::Pending;
                }
                let op = self.sel_op.take().expect("selection op in flight");
                self.static_exchange = Some(op.finish());
                self.finish_sample();
                Flow::More
            }
            RankState::ForwardSend(l) => {
                // Issue all boundary-feature sends (non-blocking), run
                // the inner-edge partial work while the blocks are in
                // flight, then drain arrivals in whatever order they
                // land. The fold happens into fixed per-owner row
                // ranges, so the result is bitwise identical to the
                // serial exchange.
                let epoch = self.epoch;
                let tag = self.tag_base + 1 + l as u64;
                let ex = self.static_exchange.as_ref().expect("selection exchanged");
                let topo = self.static_topo.as_ref().expect("epoch topology built");
                let tc =
                    Timed::with_args("exchange", &[("epoch", epoch.into()), ("layer", l.into())]);
                send_boundary_rows(
                    &mut self.comm,
                    ex,
                    &self.h,
                    tag,
                    &mut self.arena,
                    self.precision,
                );
                self.comm_s += tc.stop();
                let tk =
                    Timed::with_args("compute", &[("epoch", epoch.into()), ("layer", l.into())]);
                self.partial = Some(self.layers[l].forward_inner(
                    &topo.graph,
                    &self.h,
                    &topo.gcn_scale,
                    &mut self.rng,
                ));
                self.compute_s += tk.stop();
                self.exchange_timer = Some(Timed::with_args(
                    "exchange",
                    &[("epoch", epoch.into()), ("layer", l.into())],
                ));
                self.bd_op = Some(BoundaryRecvOp::begin(
                    ex,
                    self.n_sel,
                    self.h.cols(),
                    topo.feature_scale,
                    tag,
                    &mut self.arena,
                    self.precision,
                ));
                self.state = RankState::ForwardRecv(l);
                Flow::More
            }
            RankState::ForwardRecv(l) => {
                let done = {
                    let op = self.bd_op.as_mut().expect("boundary recv in flight");
                    let ex = self.static_exchange.as_ref().expect("selection exchanged");
                    op.poll(&mut self.comm, ex, &mut self.arena)
                };
                if !done {
                    return Flow::Pending;
                }
                self.bd_op = None;
                self.comm_s += self
                    .exchange_timer
                    .take()
                    .expect("exchange timer armed")
                    .stop();
                swap_boundary_stale(
                    &mut self.arena,
                    if self.cfg.pipeline {
                        Some(&mut self.stale_feats[l])
                    } else {
                        None
                    },
                );
                let epoch = self.epoch;
                let topo = self.static_topo.as_ref().expect("epoch topology built");
                let tk =
                    Timed::with_args("compute", &[("epoch", epoch.into()), ("layer", l.into())]);
                let partial = self.partial.take().expect("forward partial staged");
                let (h_next, cache) = self.layers[l].forward_boundary(
                    &topo.graph,
                    partial,
                    &self.h,
                    self.arena.boundary(),
                    &topo.row_scale,
                    &topo.gcn_scale,
                    &mut self.rng,
                );
                self.compute_s += tk.stop();
                self.flops += estimate_flops(
                    self.cfg.arch,
                    topo.graph.num_edges(),
                    self.n_in,
                    self.n_in + self.n_sel,
                    self.dims[l],
                    self.dims[l + 1],
                );
                self.caches.push(cache);
                self.h = h_next;
                self.state = if l + 1 < self.num_layers {
                    RankState::ForwardSend(l + 1)
                } else {
                    RankState::Loss
                };
                Flow::More
            }
            RankState::Loss => {
                let epoch = self.epoch;
                let tk = Timed::with_args("compute", &[("epoch", epoch.into())]);
                let (local_loss, mut dlogits) = match &self.lp.labels {
                    Labels::Single(labels) => {
                        let (loss, d, _) =
                            softmax_cross_entropy(&self.h, labels, &self.lp.train_local);
                        (loss, d)
                    }
                    Labels::Multi(y) => bce_with_logits(&self.h, y, &self.lp.train_local),
                };
                dlogits.scale(1.0 / self.plan.global_train.max(1) as f32);
                self.compute_s += tk.stop();
                self.local_loss = local_loss;
                self.d = dlogits;
                self.layer_grads.clear();
                self.state = RankState::BackwardCompute(self.num_layers - 1);
                Flow::More
            }
            RankState::BackwardCompute(l) => {
                let epoch = self.epoch;
                let topo = self.static_topo.as_ref().expect("epoch topology built");
                let tk =
                    Timed::with_args("compute", &[("epoch", epoch.into()), ("layer", l.into())]);
                let (d_inner, d_bd, grads) =
                    self.layers[l].backward_seg(&topo.graph, &self.caches[l], &self.d, self.n_in);
                self.compute_s += tk.stop();
                self.layer_grads.push(grads);
                self.d = d_inner;
                self.exchange_timer = Some(Timed::with_args(
                    "exchange",
                    &[("epoch", epoch.into()), ("layer", l.into())],
                ));
                let ex = self.static_exchange.as_ref().expect("selection exchanged");
                if ex.is_trivial() {
                    self.comm_s += self
                        .exchange_timer
                        .take()
                        .expect("exchange timer armed")
                        .stop();
                    self.state = if l == 0 {
                        RankState::ReduceBegin
                    } else {
                        RankState::BackwardCompute(l - 1)
                    };
                    return Flow::More;
                }
                self.grad_op = Some(GradRecvOp::begin(
                    &mut self.comm,
                    ex,
                    &d_bd,
                    topo.feature_scale,
                    self.tag_base + 64 + l as u64,
                    &mut self.arena,
                    self.precision,
                    self.sr_seed,
                ));
                self.state = RankState::BackwardRecv(l);
                Flow::More
            }
            RankState::BackwardRecv(l) => {
                let done = {
                    let op = self.grad_op.as_mut().expect("gradient recv in flight");
                    let ex = self.static_exchange.as_ref().expect("selection exchanged");
                    op.poll(&mut self.comm, ex, &mut self.arena)
                };
                if !done {
                    return Flow::Pending;
                }
                let op = self.grad_op.take().expect("gradient recv in flight");
                let ex = self.static_exchange.as_ref().expect("selection exchanged");
                op.finish(
                    ex,
                    &mut self.d,
                    &mut self.arena,
                    if self.cfg.pipeline {
                        Some(&mut self.stale_grads[l])
                    } else {
                        None
                    },
                );
                self.comm_s += self
                    .exchange_timer
                    .take()
                    .expect("exchange timer armed")
                    .stop();
                self.state = if l == 0 {
                    RankState::ReduceBegin
                } else {
                    RankState::BackwardCompute(l - 1)
                };
                Flow::More
            }
            RankState::ReduceBegin => {
                let epoch = self.epoch;
                self.layer_grads.reverse();
                self.reduce_timer = Some(Timed::with_args("reduce", &[("epoch", epoch.into())]));
                let grad_refs: Vec<&Matrix> = self.layer_grads.iter().flatten().collect();
                self.grad_shapes = grad_refs.iter().map(|m| (m.rows(), m.cols())).collect();
                let mut flat = flatten(&grad_refs);
                flat.push(self.local_loss as f32);
                self.flat = flat;
                self.ar_op = Some(AllReduceOp::begin(&mut self.comm, &mut self.flat));
                self.state = RankState::ReduceWait;
                Flow::More
            }
            RankState::ReduceWait => {
                let done = {
                    let op = self.ar_op.as_mut().expect("all-reduce in flight");
                    op.poll(&mut self.comm, &mut self.flat)
                };
                if !done {
                    return Flow::Pending;
                }
                self.ar_op = None;
                let global_train = self.plan.global_train.max(1) as f64;
                self.global_loss = *self.flat.last().expect("loss slot") as f64 / global_train;
                self.flat.pop();
                if self.me == 0 {
                    bns_telemetry::gauge_set("epoch.loss", self.global_loss);
                    bns_telemetry::series_push("epoch.loss", self.epoch as u64, self.global_loss);
                }
                if let Some(clip) = self.cfg.clip_norm {
                    let norm = self
                        .flat
                        .iter()
                        .map(|x| (*x as f64).powi(2))
                        .sum::<f64>()
                        .sqrt() as f32;
                    if norm > clip {
                        let s = clip / norm;
                        for x in &mut self.flat {
                            *x *= s;
                        }
                    }
                }
                let mut grad_mats: Vec<Matrix> = self
                    .grad_shapes
                    .iter()
                    .map(|&(r, c)| Matrix::zeros(r, c))
                    .collect();
                {
                    let mut muts: Vec<&mut Matrix> = grad_mats.iter_mut().collect();
                    unflatten_into(&self.flat, &mut muts);
                }
                {
                    let g_refs: Vec<&Matrix> = grad_mats.iter().collect();
                    let mut params: Vec<&mut Matrix> = self
                        .layers
                        .iter_mut()
                        .flat_map(|l| l.params_mut())
                        .collect();
                    self.opt.step(&mut params, &g_refs);
                }
                self.reduce_s = self.reduce_timer.take().expect("reduce timer armed").stop();

                // ---- Memory model ----
                let mem = epoch_activation_bytes(
                    self.n_in,
                    self.n_sel,
                    &self.dims,
                    self.cfg.dropout > 0.0,
                );
                self.peak_mem = self.peak_mem.max(mem);

                // Snapshot training traffic before the (full-boundary)
                // eval pass so timing/traffic stats reflect training
                // only.
                self.epoch_traffic = self.comm.stats().since(&self.traffic_start);
                self.state = RankState::EvalBegin;
                Flow::More
            }
            RankState::EvalBegin => {
                let epoch = self.epoch;
                let do_eval = epoch + 1 == self.cfg.epochs
                    || (self.cfg.eval_every > 0 && (epoch + 1).is_multiple_of(self.cfg.eval_every));
                if !do_eval {
                    self.val = None;
                    self.test = None;
                    self.state = RankState::EpochEnd;
                    return Flow::More;
                }
                self.eval_span = Some(Timed::with_args("eval", &[("epoch", epoch.into())]));
                if !self.cfg.sampling.selects_all() && self.full_exchange.is_none() {
                    let selected = &self
                        .full_topo
                        .as_ref()
                        .expect("full topology built")
                        .selected;
                    self.sel_op = Some(SelectionOp::begin(
                        &mut self.comm,
                        &self.lp,
                        selected,
                        self.tag_base + 128,
                    ));
                    self.state = RankState::EvalSelectionWait;
                    return Flow::More;
                }
                self.eval_h = self.lp.features.clone();
                self.state = RankState::EvalSend(0);
                Flow::More
            }
            RankState::EvalSelectionWait => {
                let done = {
                    let op = self.sel_op.as_mut().expect("selection op in flight");
                    op.poll(&mut self.comm, &self.lp)
                };
                if !done {
                    return Flow::Pending;
                }
                let op = self.sel_op.take().expect("selection op in flight");
                self.full_exchange = Some(op.finish());
                self.eval_h = self.lp.features.clone();
                self.state = RankState::EvalSend(0);
                Flow::More
            }
            RankState::EvalSend(l) => {
                // Arena-backed full-boundary exchange: bitwise equal to
                // the serial reference, but send staging and the
                // boundary block reuse the rank's arena, so repeated
                // eval/serving passes stop allocating here.
                let tag = self.tag_base + 129 + l as u64;
                let ex = eval_exchange(
                    self.cfg.sampling.selects_all(),
                    &self.static_exchange,
                    &self.full_exchange,
                );
                // Eval always exchanges exact: metrics compare the exact
                // forward regardless of the training wire precision.
                send_boundary_rows(
                    &mut self.comm,
                    ex,
                    &self.eval_h,
                    tag,
                    &mut self.arena,
                    WirePrecision::Exact,
                );
                let n_full = self
                    .full_topo
                    .as_ref()
                    .expect("full topology built")
                    .selected
                    .len();
                self.bd_op = Some(BoundaryRecvOp::begin(
                    ex,
                    n_full,
                    self.eval_h.cols(),
                    1.0,
                    tag,
                    &mut self.arena,
                    WirePrecision::Exact,
                ));
                self.state = RankState::EvalRecv(l);
                Flow::More
            }
            RankState::EvalRecv(l) => {
                let done = {
                    let op = self.bd_op.as_mut().expect("boundary recv in flight");
                    let ex = eval_exchange(
                        self.cfg.sampling.selects_all(),
                        &self.static_exchange,
                        &self.full_exchange,
                    );
                    op.poll(&mut self.comm, ex, &mut self.arena)
                };
                if !done {
                    return Flow::Pending;
                }
                self.bd_op = None;
                let full = self.full_topo.as_ref().expect("full topology built");
                let h_full = self.eval_h.vstack(self.arena.boundary());
                self.eval_h = self.layers[l].forward_eval(
                    &full.graph,
                    &h_full,
                    self.n_in,
                    &full.row_scale,
                    &full.gcn_scale,
                    &mut self.rng,
                );
                if l + 1 < self.num_layers {
                    self.state = RankState::EvalSend(l + 1);
                    return Flow::More;
                }
                let score_of = |h: &Matrix, rows: &[usize]| -> (u64, u64, u64) {
                    match &self.lp.labels {
                        Labels::Single(labels) => {
                            let (c, t) = accuracy_counts(h, labels, rows);
                            (c as u64, t as u64, 0)
                        }
                        Labels::Multi(y) => {
                            let c = multilabel_counts(h, y, rows);
                            (c.tp, c.fp, c.fn_)
                        }
                    }
                };
                let val = score_of(&self.eval_h, &self.lp.val_local);
                let test = score_of(&self.eval_h, &self.lp.test_local);
                self.val = Some(val);
                self.test = Some(test);
                if let Some(t) = self.eval_span.take() {
                    t.stop();
                }
                self.state = RankState::EpochEnd;
                Flow::More
            }
            RankState::EpochEnd => {
                self.epochs_out.push(RankEpoch {
                    loss: self.global_loss,
                    sample_s: self.sample_s,
                    compute_s: self.compute_s,
                    comm_s: self.comm_s,
                    reduce_s: self.reduce_s,
                    traffic: self.epoch_traffic.clone(),
                    flops: self.flops,
                    selected: self.n_sel,
                    val: self.val.take(),
                    test: self.test.take(),
                });
                if let Some(t) = self.epoch_span.take() {
                    t.stop();
                }
                self.epoch += 1;
                self.state = RankState::EpochStart;
                Flow::More
            }
            RankState::Finished => {
                self.arena.flush_counters();
                let output = RankOutput {
                    epochs: std::mem::take(&mut self.epochs_out),
                    peak_mem: self.peak_mem,
                    boundary: self.lp.n_boundary(),
                    layers: (self.me == 0).then(|| std::mem::take(&mut self.layers)),
                };
                *self.out.lock().unwrap() = Some(output);
                Flow::Done
            }
        }
    }
}

impl bns_runtime::Task for RankTask {
    fn bind(&mut self, waker: bns_runtime::Waker) {
        // Senders poke this rank's waker right after enqueuing into its
        // mailbox, so a park that raced a delivery becomes an immediate
        // re-run (NOTIFIED) instead of a lost wakeup.
        self.comm.set_waker(Arc::new(move || waker.wake()));
    }

    fn step(&mut self) -> bns_runtime::Step {
        // Spans recorded during this step attribute to this rank, not
        // to whichever OS worker the scheduler picked.
        bns_telemetry::set_thread_rank(self.me);
        loop {
            match self.advance() {
                Flow::More => {}
                Flow::Pending => return bns_runtime::Step::Park,
                Flow::Done => return bns_runtime::Step::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::SyntheticSpec;
    use bns_partition::{MetisLikePartitioner, Partitioner, RandomPartitioner};

    fn small_ds() -> Arc<Dataset> {
        Arc::new(SyntheticSpec::reddit_sim().with_nodes(600).generate(3))
    }

    #[test]
    fn avg_epoch_s_of_empty_run_is_zero() {
        let run = TrainRun {
            epochs: Vec::new(),
            final_val: 0.0,
            final_test: 0.0,
            peak_mem_per_rank: Vec::new(),
            k: 0,
            boundary_per_rank: Vec::new(),
            model: TrainedModel::Gcn(Vec::new()),
        };
        assert_eq!(run.avg_epoch_s(), 0.0);
        assert!(run.avg_epoch_s().is_finite());
    }

    #[test]
    fn trains_and_reports() {
        let ds = small_ds();
        let part = MetisLikePartitioner::default().partition(&ds.graph, 3, 0);
        let cfg = TrainConfig {
            epochs: 8,
            eval_every: 4,
            hidden: vec![24],
            ..TrainConfig::quick_test()
        };
        let run = train(&ds, &part, &cfg);
        assert_eq!(run.epochs.len(), 8);
        assert!(run.epochs[3].val_score.is_some());
        assert!(run.epochs[0].val_score.is_none());
        assert!(run.final_test > 0.0);
        // Loss decreases over training.
        assert!(
            run.epochs.last().unwrap().loss < run.epochs[0].loss,
            "loss {} -> {}",
            run.epochs[0].loss,
            run.epochs.last().unwrap().loss
        );
    }

    #[test]
    fn learns_the_task_with_p1() {
        let ds = small_ds();
        let part = RandomPartitioner.partition(&ds.graph, 2, 1);
        let cfg = TrainConfig {
            epochs: 60,
            hidden: vec![32],
            lr: 0.01,
            ..TrainConfig::quick_test()
        };
        let run = train(&ds, &part, &cfg);
        // 16-class task: well above chance.
        assert!(run.final_test > 0.5, "test acc {}", run.final_test);
    }

    #[test]
    fn sampling_reduces_traffic_proportionally() {
        let ds = small_ds();
        let part = RandomPartitioner.partition(&ds.graph, 3, 2);
        let mut boundary_bytes = Vec::new();
        for p in [1.0, 0.5, 0.1] {
            let cfg = TrainConfig {
                epochs: 4,
                sampling: BoundarySampling::Bns { p },
                ..TrainConfig::quick_test()
            };
            let run = train(&ds, &part, &cfg);
            // Use epoch 1..: epoch 0 includes no eval traffic either; all
            // comparable. Skip eval epochs (last) to compare training comm.
            let bytes: u64 = run.epochs[..3]
                .iter()
                .flat_map(|e| e.traffic_per_rank.iter())
                .map(|t| t.bytes(TrafficClass::Boundary))
                .sum();
            boundary_bytes.push(bytes as f64);
        }
        let r_half = boundary_bytes[1] / boundary_bytes[0];
        let r_tenth = boundary_bytes[2] / boundary_bytes[0];
        assert!((r_half - 0.5).abs() < 0.12, "p=0.5 ratio {r_half}");
        assert!((r_tenth - 0.1).abs() < 0.06, "p=0.1 ratio {r_tenth}");
    }

    #[test]
    fn p_zero_sends_no_boundary_traffic() {
        let ds = small_ds();
        let part = RandomPartitioner.partition(&ds.graph, 2, 3);
        let cfg = TrainConfig {
            epochs: 3,
            sampling: BoundarySampling::Bns { p: 0.0 },
            eval_every: 0,
            ..TrainConfig::quick_test()
        };
        let run = train(&ds, &part, &cfg);
        // All epochs except the final eval epoch move zero boundary bytes.
        let bytes: u64 = run.epochs[..2]
            .iter()
            .flat_map(|e| e.traffic_per_rank.iter())
            .map(|t| t.bytes(TrafficClass::Boundary))
            .sum();
        assert_eq!(bytes, 0);
    }

    #[test]
    fn extracted_model_matches_engine_eval() {
        let ds = small_ds();
        let part = RandomPartitioner.partition(&ds.graph, 3, 4);
        let cfg = TrainConfig {
            epochs: 15,
            hidden: vec![24],
            ..TrainConfig::quick_test()
        };
        let run = train(&ds, &part, &cfg);
        let (val, test) = run.model.evaluate(&ds);
        // The engine's final eval runs the same model over the same
        // full topology; scores must agree exactly up to f32 summation
        // order in the aggregation.
        assert!(
            (val - run.final_val).abs() < 0.01,
            "{val} vs {}",
            run.final_val
        );
        assert!(
            (test - run.final_test).abs() < 0.01,
            "{test} vs {}",
            run.final_test
        );
    }

    #[test]
    fn best_by_val_picks_peak_epoch() {
        let ds = small_ds();
        let part = RandomPartitioner.partition(&ds.graph, 2, 9);
        let cfg = TrainConfig {
            epochs: 30,
            eval_every: 5,
            hidden: vec![24],
            ..TrainConfig::quick_test()
        };
        let run = train(&ds, &part, &cfg);
        let (best_val, _) = run.best_by_val();
        assert!(best_val >= run.final_val - 1e-12);
    }

    #[test]
    fn single_partition_works() {
        let ds = small_ds();
        let part = RandomPartitioner.partition(&ds.graph, 1, 0);
        let cfg = TrainConfig {
            epochs: 5,
            ..TrainConfig::quick_test()
        };
        let run = train(&ds, &part, &cfg);
        assert_eq!(run.k, 1);
        assert_eq!(run.boundary_per_rank, vec![0]);
        assert!(run.final_test > 0.0);
    }

    #[test]
    fn eq3_traffic_identity_at_p1() {
        // At p = 1 the forward feature rows sent per layer equal the
        // total number of boundary nodes (paper Eq. 3).
        let ds = small_ds();
        let part = RandomPartitioner.partition(&ds.graph, 3, 4);
        let plan = PartitionPlan::build(&ds, &part);
        let total_bd = plan.total_boundary();
        let cfg = TrainConfig {
            epochs: 1,
            eval_every: 0,
            hidden: vec![8],
            dropout: 0.0,
            // Pinned: the byte identity below assumes 4 B/element even
            // under a BNS_QUANT CI leg (quantized byte counts have their
            // own test in tests/quant_determinism.rs).
            wire_precision: Some(WirePrecision::Exact),
            ..TrainConfig::quick_test()
        };
        let run = train(&ds, &part, &cfg);
        // Per-epoch training traffic (eval traffic is excluded from the
        // per-epoch stats):
        //   train fwd: L layers × Σ n_bd × d_l (layer input dims)
        //   train bwd: the same rows as gradients
        let d0 = ds.feat_dim();
        let d1 = 8usize;
        let per_pass_fwd = total_bd * d0 + total_bd * d1; // layer inputs
        let per_pass_bwd = per_pass_fwd;
        let expect_floats = per_pass_fwd + per_pass_bwd;
        let got: u64 = run.epochs[0]
            .traffic_per_rank
            .iter()
            .map(|t| t.bytes(TrafficClass::Boundary))
            .sum();
        assert_eq!(got, expect_floats as u64 * 4);
    }

    /// The paper's premise: vanilla partition parallelism (p = 1) is
    /// *exact* full-graph training. With dropout off and identical
    /// seeds, the distributed engine must reproduce the single-rank
    /// trainer's loss trajectory up to f32 reduction-order noise.
    #[test]
    fn p1_matches_fullgraph_training() {
        use crate::fullgraph::{train_full, FullGraphConfig};
        let ds = small_ds();
        let cfg = TrainConfig {
            epochs: 6,
            hidden: vec![16],
            dropout: 0.0,
            lr: 0.01,
            sampling: BoundarySampling::Bns { p: 1.0 },
            eval_every: 0,
            seed: 42,
            arch: ModelArch::Sage,
            clip_norm: None,
            pipeline: false,
            workers: None,
            // Pinned: this compares against the exact full-graph
            // trainer, which a quantized CI leg must not perturb.
            wire_precision: Some(WirePrecision::Exact),
        };
        let full = train_full(
            &ds,
            &FullGraphConfig {
                hidden: vec![16],
                dropout: 0.0,
                lr: 0.01,
                epochs: 6,
                seed: 42,
            },
        );
        for k in [2usize, 4] {
            let part = MetisLikePartitioner::default().partition(&ds.graph, k, 0);
            let run = train(&ds, &part, &cfg);
            for (e, (a, b)) in run
                .epochs
                .iter()
                .map(|s| s.loss)
                .zip(full.losses.iter())
                .enumerate()
            {
                assert!(
                    (a - b).abs() < 2e-3 * b.abs().max(1.0),
                    "k={k} epoch {e}: dist {a} vs full {b}"
                );
            }
        }
    }

    #[test]
    fn gcn_architecture_trains() {
        let ds = small_ds();
        let part = RandomPartitioner.partition(&ds.graph, 2, 6);
        let cfg = TrainConfig {
            arch: ModelArch::Gcn,
            epochs: 25,
            hidden: vec![24],
            lr: 0.01,
            sampling: BoundarySampling::Bns { p: 0.5 },
            ..TrainConfig::quick_test()
        };
        let run = train(&ds, &part, &cfg);
        assert!(run.epochs.last().unwrap().loss < run.epochs[0].loss);
        assert!(run.final_test > 0.4, "GCN test acc {}", run.final_test);
    }

    #[test]
    fn unscaled_bns_is_biased_but_trains() {
        let ds = small_ds();
        let part = RandomPartitioner.partition(&ds.graph, 3, 8);
        let cfg = TrainConfig {
            epochs: 25,
            hidden: vec![24],
            sampling: BoundarySampling::BnsUnscaled { p: 0.3 },
            ..TrainConfig::quick_test()
        };
        let run = train(&ds, &part, &cfg);
        assert!(run.final_test > 0.4, "unscaled acc {}", run.final_test);
        // Traffic matches the scaled variant's rate.
        let cfg2 = TrainConfig {
            sampling: BoundarySampling::Bns { p: 0.3 },
            ..cfg
        };
        let run2 = train(&ds, &part, &cfg2);
        let b1 = run.total_boundary_bytes() as f64;
        let b2 = run2.total_boundary_bytes() as f64;
        assert!((b1 / b2 - 1.0).abs() < 0.15, "traffic {b1} vs {b2}");
    }

    #[test]
    fn pipelined_training_converges() {
        let ds = small_ds();
        let part = MetisLikePartitioner::default().partition(&ds.graph, 3, 0);
        let sync_cfg = TrainConfig {
            epochs: 40,
            hidden: vec![24],
            ..TrainConfig::quick_test()
        };
        let pipe_cfg = TrainConfig {
            pipeline: true,
            ..sync_cfg.clone()
        };
        let sync = train(&ds, &part, &sync_cfg);
        let pipe = train(&ds, &part, &pipe_cfg);
        // Stale features/gradients cost some accuracy but must stay
        // close to synchronous training (the PipeGCN premise).
        assert!(
            pipe.final_test > sync.final_test - 0.06,
            "pipelined {} vs sync {}",
            pipe.final_test,
            sync.final_test
        );
        // First-epoch losses agree exactly (epoch 0 is synchronous).
        assert!((pipe.epochs[0].loss - sync.epochs[0].loss).abs() < 1e-9);
        // Later epochs diverge (staleness is real).
        assert!(
            (pipe.epochs[5].loss - sync.epochs[5].loss).abs() > 1e-9,
            "staleness had no effect"
        );
    }

    #[test]
    #[should_panic(expected = "static sampling")]
    fn pipeline_rejects_dynamic_sampling() {
        let ds = small_ds();
        let part = RandomPartitioner.partition(&ds.graph, 2, 0);
        let cfg = TrainConfig {
            pipeline: true,
            sampling: BoundarySampling::Bns { p: 0.5 },
            ..TrainConfig::quick_test()
        };
        let _ = train(&ds, &part, &cfg);
    }

    #[test]
    fn pipelined_simulated_time_overlaps_comm() {
        let ds = small_ds();
        let part = MetisLikePartitioner::default().partition(&ds.graph, 4, 0);
        let cfg = TrainConfig {
            epochs: 3,
            pipeline: true,
            ..TrainConfig::quick_test()
        };
        let run = train(&ds, &part, &cfg);
        let cost = bns_comm::CostModel::pcie3();
        let sim = run.avg_sim_epoch(&cost);
        assert!(sim.pipelined_total() <= sim.total() + 1e-12);
        assert!(sim.pipelined_total() >= sim.comp.max(sim.comm));
    }

    #[test]
    fn gat_architecture_trains() {
        let ds = small_ds();
        let part = RandomPartitioner.partition(&ds.graph, 2, 5);
        let cfg = TrainConfig {
            arch: ModelArch::Gat,
            epochs: 10,
            hidden: vec![16],
            lr: 0.01,
            sampling: BoundarySampling::Bns { p: 0.5 },
            ..TrainConfig::quick_test()
        };
        let run = train(&ds, &part, &cfg);
        assert!(run.epochs.last().unwrap().loss < run.epochs[0].loss);
        assert!(run.final_test > 0.2, "GAT test acc {}", run.final_test);
    }

    #[test]
    fn memory_model_shrinks_with_p() {
        let ds = small_ds();
        let part = RandomPartitioner.partition(&ds.graph, 3, 6);
        let mem_at = |p: f64| {
            let cfg = TrainConfig {
                epochs: 2,
                sampling: BoundarySampling::Bns { p },
                ..TrainConfig::quick_test()
            };
            let run = train(&ds, &part, &cfg);
            *run.peak_mem_per_rank.iter().max().unwrap()
        };
        let m1 = mem_at(1.0);
        let m01 = mem_at(0.1);
        assert!(m01 < m1, "mem p=0.1 {m01} vs p=1 {m1}");
    }

    #[test]
    fn multilabel_dataset_trains_with_f1() {
        let ds = Arc::new(SyntheticSpec::yelp_sim().with_nodes(500).generate(4));
        let part = RandomPartitioner.partition(&ds.graph, 2, 7);
        // Multi-label BCE needs more steps before logits cross zero and
        // micro-F1 lifts off (all-negative predictions score 0).
        let cfg = TrainConfig {
            epochs: 40,
            hidden: vec![24],
            lr: 0.03,
            sampling: BoundarySampling::Bns { p: 0.5 },
            ..TrainConfig::quick_test()
        };
        let run = train(&ds, &part, &cfg);
        assert!(run.final_test > 0.25, "micro-F1 {}", run.final_test);
    }
}
