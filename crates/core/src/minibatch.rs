//! Sampling-based mini-batch GCN training baselines.
//!
//! The paper compares BNS-GCN against seven sampling-based methods
//! (its Tables 4, 5, 11 and 12). This module implements the five
//! families from scratch on top of the same `SageLayer` stack BNS-GCN
//! trains, so the comparison isolates the *sampling strategy*:
//!
//! * [`MiniBatchMethod::NeighborSampling`] — GraphSAGE-style per-node
//!   fanout sampling,
//! * [`MiniBatchMethod::FastGcn`] / [`MiniBatchMethod::Ladies`] —
//!   layer-wise importance sampling (FastGCN samples the support from
//!   all of `V`; LADIES restricts it to the current neighbor set),
//! * [`MiniBatchMethod::ClusterGcn`] — subgraph batches from merged
//!   clusters,
//! * [`MiniBatchMethod::GraphSaintNode`] /
//!   [`MiniBatchMethod::GraphSaintEdge`] /
//!   [`MiniBatchMethod::GraphSaintWalk`] — GraphSAINT's three subgraph
//!   samplers,
//! * [`MiniBatchMethod::VrGcn`] — variance reduction via historical
//!   activations (simplified: full historical matrices are kept in
//!   memory, which is exactly the memory pressure that makes real
//!   VR-GCN go OOM in the paper's Table 4).
//!
//! Each trainer reports its per-epoch time *split into sampling and
//! training* so the paper's Table 12 overhead comparison can be
//! reproduced. Evaluation is always full-graph inference.

use crate::fullgraph::evaluate;
use bns_data::{Dataset, Labels};
use bns_graph::{GraphBuilder, WeightedSampler};
use bns_nn::loss::{bce_with_logits, softmax_cross_entropy};
use bns_nn::{Adam, SageModel};
use bns_partition::Partitioner;
use bns_telemetry::Timed;
use bns_tensor::{Matrix, SeededRng};
use std::time::Instant;

/// Which sampling-based method to train with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MiniBatchMethod {
    /// GraphSAGE neighbor sampling with the given per-layer fanout.
    NeighborSampling {
        /// Neighbors sampled per node per layer.
        fanout: usize,
    },
    /// FastGCN layer-wise sampling: `support` nodes per layer drawn from
    /// the whole graph with degree-proportional importance.
    FastGcn {
        /// Support-set size per layer.
        support: usize,
    },
    /// LADIES: like FastGCN but the support is drawn from the previous
    /// layer's neighbor set only.
    Ladies {
        /// Support-set size per layer.
        support: usize,
    },
    /// ClusterGCN: partition into `clusters` parts, train on
    /// `per_batch` randomly merged clusters per step.
    ClusterGcn {
        /// Total number of clusters.
        clusters: usize,
        /// Clusters merged per batch.
        per_batch: usize,
    },
    /// GraphSAINT with the node sampler (`nodes` degree-weighted draws).
    GraphSaintNode {
        /// Nodes drawn per subgraph.
        nodes: usize,
    },
    /// GraphSAINT with the edge sampler.
    GraphSaintEdge {
        /// Edges drawn per subgraph.
        edges: usize,
    },
    /// GraphSAINT with the random-walk sampler.
    GraphSaintWalk {
        /// Number of walk roots.
        roots: usize,
        /// Walk length.
        length: usize,
    },
    /// VR-GCN-style variance reduction with historical activations.
    VrGcn {
        /// Mini-batch size (train nodes per step).
        batch: usize,
    },
}

impl MiniBatchMethod {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            MiniBatchMethod::NeighborSampling { .. } => "NeighborSampling",
            MiniBatchMethod::FastGcn { .. } => "FastGCN",
            MiniBatchMethod::Ladies { .. } => "LADIES",
            MiniBatchMethod::ClusterGcn { .. } => "ClusterGCN",
            MiniBatchMethod::GraphSaintNode { .. } => "GraphSAINT-Node",
            MiniBatchMethod::GraphSaintEdge { .. } => "GraphSAINT-Edge",
            MiniBatchMethod::GraphSaintWalk { .. } => "GraphSAINT-RW",
            MiniBatchMethod::VrGcn { .. } => "VR-GCN",
        }
    }
}

/// Mini-batch training configuration.
#[derive(Debug, Clone)]
pub struct MiniBatchConfig {
    /// Hidden-layer widths.
    pub hidden: Vec<usize>,
    /// Input dropout per layer.
    pub dropout: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Epochs (each epoch covers ~all train nodes once).
    pub epochs: usize,
    /// Target nodes per mini-batch (layer-wise methods).
    pub batch_size: usize,
    /// Seed.
    pub seed: u64,
}

impl MiniBatchConfig {
    /// Small fast config for tests.
    pub fn quick_test() -> Self {
        Self {
            hidden: vec![16],
            dropout: 0.0,
            lr: 0.01,
            epochs: 5,
            batch_size: 64,
            seed: 0,
        }
    }
}

/// Result of a mini-batch training run.
#[derive(Debug, Clone)]
pub struct MiniBatchRun {
    /// Method name.
    pub method: &'static str,
    /// Final validation score.
    pub final_val: f64,
    /// Final test score.
    pub final_test: f64,
    /// Mean wall-clock epoch time, seconds.
    pub avg_epoch_s: f64,
    /// Fraction of training time spent producing samples (Table 12).
    pub sampling_frac: f64,
    /// Total training wall time, seconds.
    pub total_s: f64,
    /// Mean training loss per epoch.
    pub losses: Vec<f64>,
}

/// A per-layer computation block for layer-wise methods: the first
/// `n_targets` rows of the block's node list are the layer's outputs;
/// remaining rows are sampled support. `feat_scale[r]` rescales row `r`
/// of the input features (the importance-sampling `1/q` correction).
struct LayerBlock {
    nodes: Vec<usize>,
    n_targets: usize,
    graph: bns_graph::CsrGraph,
    row_scale: Vec<f32>,
    feat_scale: Vec<f32>,
}

/// Trains with the chosen method and returns the run report.
///
/// # Panics
///
/// Panics if the dataset has no training nodes.
pub fn train_minibatch(
    ds: &Dataset,
    method: MiniBatchMethod,
    cfg: &MiniBatchConfig,
) -> MiniBatchRun {
    assert!(!ds.train.is_empty(), "no training nodes");
    let mut dims = vec![ds.feat_dim()];
    dims.extend_from_slice(&cfg.hidden);
    dims.push(ds.num_classes);
    let mut init_rng = SeededRng::new(cfg.seed);
    let mut model = SageModel::new(&dims, cfg.dropout, &mut init_rng);
    let mut opt = Adam::new(cfg.lr);
    let mut rng = SeededRng::new(cfg.seed ^ 0xabcd).fork(7);

    // Method-specific precomputation counts toward sampling time.
    let t_pre = Timed::start("sample");
    let clusters: Option<Vec<Vec<usize>>> = match method {
        MiniBatchMethod::ClusterGcn { clusters, .. } => {
            let part = bns_partition::BfsPartitioner.partition(
                &ds.graph,
                clusters.min(ds.num_nodes()),
                cfg.seed,
            );
            Some(part.parts())
        }
        _ => None,
    };
    let degree_sampler: Option<WeightedSampler> = match method {
        MiniBatchMethod::GraphSaintNode { .. } | MiniBatchMethod::FastGcn { .. } => {
            let w: Vec<f64> = (0..ds.num_nodes())
                .map(|v| ds.graph.degree(v) as f64 + 1.0)
                .collect();
            Some(WeightedSampler::new(&w))
        }
        _ => None,
    };
    let mut history: Option<Vec<Matrix>> = match method {
        // Historical activations per hidden layer output.
        MiniBatchMethod::VrGcn { .. } => Some(
            (1..dims.len() - 1)
                .map(|l| Matrix::zeros(ds.num_nodes(), dims[l]))
                .collect(),
        ),
        _ => None,
    };
    let mut sample_s = t_pre.stop();
    let mut train_s = 0.0f64;

    let steps_per_epoch = match method {
        MiniBatchMethod::ClusterGcn {
            clusters,
            per_batch,
        } => clusters.div_ceil(per_batch).max(1),
        MiniBatchMethod::GraphSaintNode { .. }
        | MiniBatchMethod::GraphSaintEdge { .. }
        | MiniBatchMethod::GraphSaintWalk { .. } => {
            (ds.train.len() / cfg.batch_size.max(1)).clamp(1, 20)
        }
        _ => ds.train.len().div_ceil(cfg.batch_size.max(1)),
    };

    let mut losses = Vec::with_capacity(cfg.epochs);
    let t_total = Instant::now();
    for epoch in 0..cfg.epochs {
        let _epoch_span = bns_telemetry::span!("epoch", epoch = epoch);
        let mut order = ds.train.clone();
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0f64;
        let mut loss_count = 0usize;
        for step in 0..steps_per_epoch {
            let batch: Vec<usize> = match method {
                MiniBatchMethod::ClusterGcn { .. }
                | MiniBatchMethod::GraphSaintNode { .. }
                | MiniBatchMethod::GraphSaintEdge { .. }
                | MiniBatchMethod::GraphSaintWalk { .. } => Vec::new(),
                _ => {
                    let lo = step * cfg.batch_size;
                    if lo >= order.len() {
                        break;
                    }
                    order[lo..(lo + cfg.batch_size).min(order.len())].to_vec()
                }
            };
            let (loss, n_loss) = match method {
                MiniBatchMethod::NeighborSampling { fanout } => {
                    let num_layers = model.num_layers();
                    layerwise_step(
                        ds,
                        &mut model,
                        &mut opt,
                        &batch,
                        num_layers,
                        &mut rng,
                        &mut sample_s,
                        &mut train_s,
                        |targets, rng| sample_neighbor_block(ds, targets, fanout, rng),
                    )
                }
                MiniBatchMethod::FastGcn { support } => {
                    let num_layers = model.num_layers();
                    let sampler = degree_sampler.as_ref().unwrap();
                    layerwise_step(
                        ds,
                        &mut model,
                        &mut opt,
                        &batch,
                        num_layers,
                        &mut rng,
                        &mut sample_s,
                        &mut train_s,
                        |targets, rng| sample_importance_block(ds, targets, support, sampler, rng),
                    )
                }
                MiniBatchMethod::Ladies { support } => {
                    let num_layers = model.num_layers();
                    layerwise_step(
                        ds,
                        &mut model,
                        &mut opt,
                        &batch,
                        num_layers,
                        &mut rng,
                        &mut sample_s,
                        &mut train_s,
                        |targets, rng| sample_ladies_block(ds, targets, support, rng),
                    )
                }
                MiniBatchMethod::ClusterGcn { per_batch, .. } => {
                    let t0 = Timed::start("sample");
                    let cl = clusters.as_ref().unwrap();
                    let mut nodes = Vec::new();
                    for _ in 0..per_batch {
                        nodes.extend_from_slice(&cl[rng.usize_below(cl.len())]);
                    }
                    nodes.sort_unstable();
                    nodes.dedup();
                    sample_s += t0.stop();
                    subgraph_step(
                        ds,
                        &mut model,
                        &mut opt,
                        &nodes,
                        &mut rng,
                        &mut sample_s,
                        &mut train_s,
                    )
                }
                MiniBatchMethod::GraphSaintNode { nodes: m } => {
                    let t0 = Timed::start("sample");
                    let s = degree_sampler.as_ref().unwrap();
                    let mut nodes: Vec<usize> = (0..m).map(|_| s.sample(&mut rng)).collect();
                    nodes.sort_unstable();
                    nodes.dedup();
                    sample_s += t0.stop();
                    subgraph_step(
                        ds,
                        &mut model,
                        &mut opt,
                        &nodes,
                        &mut rng,
                        &mut sample_s,
                        &mut train_s,
                    )
                }
                MiniBatchMethod::GraphSaintEdge { edges: m } => {
                    let t0 = Timed::start("sample");
                    let mut nodes = Vec::with_capacity(2 * m);
                    let n = ds.num_nodes();
                    for _ in 0..m {
                        let v = rng.usize_below(n);
                        if ds.graph.degree(v) == 0 {
                            continue;
                        }
                        let nbrs = ds.graph.neighbors(v);
                        let u = nbrs[rng.usize_below(nbrs.len())] as usize;
                        nodes.push(v);
                        nodes.push(u);
                    }
                    nodes.sort_unstable();
                    nodes.dedup();
                    sample_s += t0.stop();
                    subgraph_step(
                        ds,
                        &mut model,
                        &mut opt,
                        &nodes,
                        &mut rng,
                        &mut sample_s,
                        &mut train_s,
                    )
                }
                MiniBatchMethod::GraphSaintWalk { roots, length } => {
                    let t0 = Timed::start("sample");
                    let mut nodes = Vec::with_capacity(roots * (length + 1));
                    for _ in 0..roots {
                        let mut v = ds.train[rng.usize_below(ds.train.len())];
                        nodes.push(v);
                        for _ in 0..length {
                            let nbrs = ds.graph.neighbors(v);
                            if nbrs.is_empty() {
                                break;
                            }
                            v = nbrs[rng.usize_below(nbrs.len())] as usize;
                            nodes.push(v);
                        }
                    }
                    nodes.sort_unstable();
                    nodes.dedup();
                    sample_s += t0.stop();
                    subgraph_step(
                        ds,
                        &mut model,
                        &mut opt,
                        &nodes,
                        &mut rng,
                        &mut sample_s,
                        &mut train_s,
                    )
                }
                MiniBatchMethod::VrGcn { .. } => vr_gcn_step(
                    ds,
                    &mut model,
                    &mut opt,
                    &batch,
                    history.as_mut().unwrap(),
                    &mut rng,
                    &mut sample_s,
                    &mut train_s,
                ),
            };
            epoch_loss += loss;
            loss_count += n_loss;
        }
        losses.push(epoch_loss / loss_count.max(1) as f64);
    }
    let total_s = t_total.elapsed().as_secs_f64();
    let (final_val, final_test) = evaluate(&model, ds);
    MiniBatchRun {
        method: method.name(),
        final_val,
        final_test,
        avg_epoch_s: total_s / cfg.epochs.max(1) as f64,
        sampling_frac: if sample_s + train_s > 0.0 {
            sample_s / (sample_s + train_s)
        } else {
            0.0
        },
        total_s,
        losses,
    }
}

// ---------------------------------------------------------------------
// Layer-wise methods (NeighborSampling / FastGCN / LADIES)
// ---------------------------------------------------------------------

/// One optimization step for layer-wise methods: build blocks top-down
/// with `make_block`, run forward bottom-up, backward top-down.
#[allow(clippy::too_many_arguments)]
fn layerwise_step(
    ds: &Dataset,
    model: &mut SageModel,
    opt: &mut Adam,
    batch: &[usize],
    num_layers: usize,
    rng: &mut SeededRng,
    sample_s: &mut f64,
    train_s: &mut f64,
    mut make_block: impl FnMut(&[usize], &mut SeededRng) -> LayerBlock,
) -> (f64, usize) {
    if batch.is_empty() {
        return (0.0, 0);
    }
    let t0 = Timed::start("sample");
    // Blocks from the top (output) layer down; after reversal blocks[l]
    // feeds model layer l.
    let mut blocks: Vec<LayerBlock> = Vec::with_capacity(num_layers);
    let mut targets: Vec<usize> = batch.to_vec();
    for _ in 0..num_layers {
        let block = make_block(&targets, rng);
        targets = block.nodes.clone();
        blocks.push(block);
    }
    blocks.reverse();
    *sample_s += t0.stop();

    let t1 = Timed::start("train");
    // Forward bottom-up.
    let mut h = ds.features.gather_rows(&blocks[0].nodes);
    let mut caches = Vec::with_capacity(num_layers);
    for (l, b) in blocks.iter().enumerate() {
        // Importance rescale of support rows.
        let mut h_scaled = h;
        for (r, &s) in b.feat_scale.iter().enumerate() {
            if s != 1.0 {
                for x in h_scaled.row_mut(r) {
                    *x *= s;
                }
            }
        }
        let (next, cache) =
            model.layers[l].forward(&b.graph, &h_scaled, b.n_targets, &b.row_scale, true, rng);
        caches.push(cache);
        h = next;
    }
    // Loss over the final targets (the original batch, which is the
    // prefix of the top block's node list).
    let top = &blocks[num_layers - 1];
    let top_rows: Vec<usize> = (0..top.n_targets).collect();
    let top_nodes = &top.nodes[..top.n_targets];
    let (loss, mut d) = local_loss(ds, &h, top_nodes, &top_rows);
    d.scale(1.0 / top.n_targets.max(1) as f32);
    // Backward top-down, accumulating gradients per layer.
    let mut grad_acc: Vec<Vec<Matrix>> = Vec::with_capacity(num_layers);
    for l in (0..num_layers).rev() {
        let b = &blocks[l];
        let (mut dh, grads) = model.layers[l].backward(&b.graph, &caches[l], &d);
        // Chain rule through the importance rescale.
        for (r, &s) in b.feat_scale.iter().enumerate() {
            if s != 1.0 {
                for x in dh.row_mut(r) {
                    *x *= s;
                }
            }
        }
        grad_acc.push(vec![grads.w_self, grads.w_neigh, grads.b]);
        // dh covers block l's full node list, which is exactly block
        // l-1's output (target) list.
        d = dh;
        if l > 0 {
            debug_assert_eq!(d.rows(), blocks[l - 1].n_targets);
        }
    }
    grad_acc.reverse();
    let flat: Vec<&Matrix> = grad_acc.iter().flatten().collect();
    let mut params = model.params_mut();
    opt.step(&mut params, &flat);
    *train_s += t1.stop();
    (loss, top.n_targets)
}

/// GraphSAGE block: each target samples `fanout` neighbors without
/// replacement; aggregation averages over the samples.
fn sample_neighbor_block(
    ds: &Dataset,
    targets: &[usize],
    fanout: usize,
    rng: &mut SeededRng,
) -> LayerBlock {
    let mut nodes: Vec<usize> = targets.to_vec();
    let mut index_of = std::collections::HashMap::new();
    for (i, &v) in nodes.iter().enumerate() {
        index_of.insert(v, i);
    }
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut sampled_count = vec![0usize; targets.len()];
    for (t, &v) in targets.iter().enumerate() {
        let nbrs = ds.graph.neighbors(v);
        if nbrs.is_empty() {
            continue;
        }
        let picks: Vec<usize> = if nbrs.len() <= fanout {
            nbrs.iter().map(|&u| u as usize).collect()
        } else {
            rng.sample_distinct(nbrs.len(), fanout)
                .into_iter()
                .map(|i| nbrs[i] as usize)
                .collect()
        };
        for u in picks {
            let next_id = nodes.len();
            let iu = *index_of.entry(u).or_insert_with(|| {
                nodes.push(u);
                next_id
            });
            if iu != t {
                edges.push((t, iu));
                sampled_count[t] += 1;
            }
        }
    }
    let mut b = GraphBuilder::new(nodes.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    let graph = b.build();
    let row_scale: Vec<f32> = (0..targets.len())
        .map(|t| 1.0 / sampled_count[t].max(1) as f32)
        .collect();
    LayerBlock {
        n_targets: targets.len(),
        feat_scale: vec![1.0; nodes.len()],
        nodes,
        graph,
        row_scale,
    }
}

/// FastGCN block: support drawn (with replacement) from the whole graph
/// with degree-proportional probability; support features rescaled by
/// `multiplicity / (support · q)` for unbiasedness.
fn sample_importance_block(
    ds: &Dataset,
    targets: &[usize],
    support: usize,
    sampler: &WeightedSampler,
    rng: &mut SeededRng,
) -> LayerBlock {
    let n = ds.num_nodes();
    let mut nodes: Vec<usize> = targets.to_vec();
    let mut index_of = std::collections::HashMap::new();
    for (i, &v) in nodes.iter().enumerate() {
        index_of.insert(v, i);
    }
    let total_w: f64 = (0..n).map(|v| ds.graph.degree(v) as f64 + 1.0).sum();
    let mut mult: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for _ in 0..support {
        *mult.entry(sampler.sample(rng)).or_insert(0) += 1;
    }
    let mut extra: Vec<usize> = mult
        .keys()
        .copied()
        .filter(|v| !index_of.contains_key(v))
        .collect();
    extra.sort_unstable();
    let mut feat_scale = vec![1.0f32; nodes.len()];
    for v in extra {
        index_of.insert(v, nodes.len());
        nodes.push(v);
        let m = mult[&v] as f64;
        let q = (ds.graph.degree(v) as f64 + 1.0) / total_w;
        feat_scale.push((m / (support as f64 * q)) as f32);
    }
    let mut b = GraphBuilder::new(nodes.len());
    for (t, &v) in targets.iter().enumerate() {
        for &u in ds.graph.neighbors(v) {
            if let Some(&iu) = index_of.get(&(u as usize)) {
                if iu != t {
                    b.add_edge(t, iu);
                }
            }
        }
    }
    let graph = b.build();
    let row_scale: Vec<f32> = targets
        .iter()
        .map(|&v| 1.0 / ds.graph.degree(v).max(1) as f32)
        .collect();
    LayerBlock {
        n_targets: targets.len(),
        nodes,
        graph,
        row_scale,
        feat_scale,
    }
}

/// LADIES block: support drawn (uniform, without replacement) from the
/// union of the targets' neighborhoods, rescaled by the inclusion
/// probability.
fn sample_ladies_block(
    ds: &Dataset,
    targets: &[usize],
    support: usize,
    rng: &mut SeededRng,
) -> LayerBlock {
    let mut nbr_set: Vec<usize> = targets
        .iter()
        .flat_map(|&v| ds.graph.neighbors(v).iter().map(|&u| u as usize))
        .collect();
    nbr_set.sort_unstable();
    nbr_set.dedup();
    let mut nodes: Vec<usize> = targets.to_vec();
    let mut index_of = std::collections::HashMap::new();
    for (i, &v) in nodes.iter().enumerate() {
        index_of.insert(v, i);
    }
    let candidates: Vec<usize> = nbr_set
        .into_iter()
        .filter(|v| !index_of.contains_key(v))
        .collect();
    let mut feat_scale = vec![1.0f32; nodes.len()];
    if !candidates.is_empty() {
        let take = support.min(candidates.len());
        let q = take as f64 / candidates.len() as f64;
        let mut picks = rng.sample_distinct(candidates.len(), take);
        picks.sort_unstable();
        for i in picks {
            let u = candidates[i];
            index_of.insert(u, nodes.len());
            nodes.push(u);
            feat_scale.push((1.0 / q) as f32);
        }
    }
    let mut b = GraphBuilder::new(nodes.len());
    for (t, &v) in targets.iter().enumerate() {
        for &u in ds.graph.neighbors(v) {
            if let Some(&iu) = index_of.get(&(u as usize)) {
                if iu != t {
                    b.add_edge(t, iu);
                }
            }
        }
    }
    let graph = b.build();
    let row_scale: Vec<f32> = targets
        .iter()
        .map(|&v| 1.0 / ds.graph.degree(v).max(1) as f32)
        .collect();
    LayerBlock {
        n_targets: targets.len(),
        nodes,
        graph,
        row_scale,
        feat_scale,
    }
}

// ---------------------------------------------------------------------
// Subgraph methods (ClusterGCN / GraphSAINT)
// ---------------------------------------------------------------------

/// One optimization step on a node-induced subgraph; trains on the
/// train nodes inside it.
fn subgraph_step(
    ds: &Dataset,
    model: &mut SageModel,
    opt: &mut Adam,
    nodes: &[usize],
    rng: &mut SeededRng,
    sample_s: &mut f64,
    train_s: &mut f64,
) -> (f64, usize) {
    let t0 = Timed::start("sample");
    let sub = ds.graph.induced_subgraph(nodes);
    let g = sub.graph;
    let feats = ds.features.gather_rows(nodes);
    let mut train_rows: Vec<usize> = Vec::new();
    {
        let mut is_train = vec![false; ds.num_nodes()];
        for &v in &ds.train {
            is_train[v] = true;
        }
        for (i, &v) in nodes.iter().enumerate() {
            if is_train[v] {
                train_rows.push(i);
            }
        }
    }
    *sample_s += t0.stop();
    if train_rows.is_empty() {
        return (0.0, 0);
    }
    let t1 = Timed::start("train");
    let scale: Vec<f32> = (0..g.num_nodes())
        .map(|v| 1.0 / g.degree(v).max(1) as f32)
        .collect();
    let (out, caches) = model.forward_full(&g, &feats, &scale, true, rng);
    let (loss, mut d) = local_loss(ds, &out, nodes, &train_rows);
    d.scale(1.0 / train_rows.len() as f32);
    let grads = model.backward_full(&g, &caches, &d);
    let owned: Vec<Matrix> = SageModel::grads_refs(&grads).into_iter().cloned().collect();
    let refs: Vec<&Matrix> = owned.iter().collect();
    let mut params = model.params_mut();
    opt.step(&mut params, &refs);
    *train_s += t1.stop();
    (loss, train_rows.len())
}

// ---------------------------------------------------------------------
// VR-GCN
// ---------------------------------------------------------------------

/// One VR-GCN step: exact recomputation for batch nodes, historical
/// activations for out-of-batch neighbors, histories refreshed for the
/// batch.
#[allow(clippy::too_many_arguments)]
fn vr_gcn_step(
    ds: &Dataset,
    model: &mut SageModel,
    opt: &mut Adam,
    batch: &[usize],
    history: &mut [Matrix],
    rng: &mut SeededRng,
    sample_s: &mut f64,
    train_s: &mut f64,
) -> (f64, usize) {
    if batch.is_empty() {
        return (0.0, 0);
    }
    let t0 = Timed::start("sample");
    // Receptive field: batch ∪ its 1-hop neighborhood (histories stand
    // in beyond that). Batch nodes form the prefix.
    let mut in_batch = vec![false; ds.num_nodes()];
    for &v in batch {
        in_batch[v] = true;
    }
    let mut extras: Vec<usize> = batch
        .iter()
        .flat_map(|&v| ds.graph.neighbors(v).iter().map(|&u| u as usize))
        .filter(|&u| !in_batch[u])
        .collect();
    extras.sort_unstable();
    extras.dedup();
    let mut ordered: Vec<usize> = batch.to_vec();
    ordered.extend(extras);
    let sub = ds.graph.induced_subgraph(&ordered);
    let g = sub.graph;
    *sample_s += t0.stop();

    let t1 = Timed::start("train");
    let n_t = batch.len();
    let num_layers = model.num_layers();
    let row_scale: Vec<f32> = batch
        .iter()
        .map(|&v| 1.0 / ds.graph.degree(v).max(1) as f32)
        .collect();
    let mut caches = Vec::with_capacity(num_layers);
    let mut h = ds.features.gather_rows(&ordered);
    #[allow(clippy::needless_range_loop)] // `l` also indexes `history[l]` on the non-final arm
    for l in 0..num_layers {
        let (next, cache) = model.layers[l].forward(&g, &h, n_t, &row_scale, true, rng);
        caches.push(cache);
        if l + 1 < num_layers {
            // Input to layer l+1: exact activations for the batch rows,
            // historical activations elsewhere; refresh the history.
            let hist = &mut history[l];
            let mut h_next = hist.gather_rows(&ordered);
            for (r, &v) in ordered.iter().enumerate().take(n_t) {
                h_next.row_mut(r).copy_from_slice(next.row(r));
                hist.row_mut(v).copy_from_slice(next.row(r));
            }
            h = h_next;
        } else {
            h = next;
        }
    }
    let train_rows: Vec<usize> = (0..n_t).collect();
    let (loss, mut d) = local_loss(ds, &h, &ordered[..n_t], &train_rows);
    d.scale(1.0 / n_t as f32);
    let mut grad_acc: Vec<Vec<Matrix>> = Vec::with_capacity(num_layers);
    for l in (0..num_layers).rev() {
        let (dh, grads) = model.layers[l].backward(&g, &caches[l], &d);
        grad_acc.push(vec![grads.w_self, grads.w_neigh, grads.b]);
        // Only batch rows backpropagate (history rows are constants).
        d = dh.slice_rows(0, n_t);
    }
    grad_acc.reverse();
    let flat: Vec<&Matrix> = grad_acc.iter().flatten().collect();
    let mut params = model.params_mut();
    opt.step(&mut params, &flat);
    *train_s += t1.stop();
    (loss, n_t)
}

fn local_loss(ds: &Dataset, out: &Matrix, nodes: &[usize], rows: &[usize]) -> (f64, Matrix) {
    match &ds.labels {
        Labels::Single(labels) => {
            let local: Vec<usize> = nodes.iter().map(|&v| labels[v]).collect();
            let (l, d, _) = softmax_cross_entropy(out, &local, rows);
            (l, d)
        }
        Labels::Multi(y) => {
            let local = y.gather_rows(nodes);
            bce_with_logits(out, &local, rows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::SyntheticSpec;

    fn ds() -> Dataset {
        SyntheticSpec::reddit_sim().with_nodes(500).generate(13)
    }

    fn run(method: MiniBatchMethod, epochs: usize) -> MiniBatchRun {
        let cfg = MiniBatchConfig {
            epochs,
            hidden: vec![24],
            lr: 0.01,
            ..MiniBatchConfig::quick_test()
        };
        train_minibatch(&ds(), method, &cfg)
    }

    #[test]
    fn neighbor_sampling_learns() {
        let r = run(MiniBatchMethod::NeighborSampling { fanout: 5 }, 15);
        assert!(r.final_test > 0.4, "{}: test {}", r.method, r.final_test);
        assert!(r.losses.last().unwrap() < &r.losses[0]);
        assert!(r.sampling_frac > 0.0 && r.sampling_frac < 1.0);
    }

    #[test]
    fn fastgcn_learns() {
        let r = run(MiniBatchMethod::FastGcn { support: 200 }, 15);
        assert!(r.final_test > 0.3, "{}: test {}", r.method, r.final_test);
    }

    #[test]
    fn ladies_learns() {
        let r = run(MiniBatchMethod::Ladies { support: 200 }, 15);
        assert!(r.final_test > 0.35, "{}: test {}", r.method, r.final_test);
    }

    #[test]
    fn cluster_gcn_learns() {
        let r = run(
            MiniBatchMethod::ClusterGcn {
                clusters: 8,
                per_batch: 2,
            },
            15,
        );
        assert!(r.final_test > 0.4, "{}: test {}", r.method, r.final_test);
    }

    #[test]
    fn graphsaint_variants_learn() {
        for m in [
            MiniBatchMethod::GraphSaintNode { nodes: 150 },
            MiniBatchMethod::GraphSaintEdge { edges: 150 },
            MiniBatchMethod::GraphSaintWalk {
                roots: 30,
                length: 4,
            },
        ] {
            let r = run(m, 15);
            assert!(r.final_test > 0.35, "{}: test {}", r.method, r.final_test);
        }
    }

    #[test]
    fn vr_gcn_learns() {
        let r = run(MiniBatchMethod::VrGcn { batch: 64 }, 15);
        assert!(r.final_test > 0.35, "{}: test {}", r.method, r.final_test);
    }

    #[test]
    fn sampling_overhead_is_reported() {
        let r = run(
            MiniBatchMethod::GraphSaintWalk {
                roots: 30,
                length: 4,
            },
            3,
        );
        // Strictly positive rather than a fixed fraction: wall-clock
        // ratios are unstable on loaded CI machines.
        assert!(r.sampling_frac > 0.0, "walk sampler should cost time");
        assert!(r.avg_epoch_s > 0.0);
    }
}
