//! The paper's memory model (its Eq. 4) and the activation-accounting
//! variant used for the Fig. 6 / Fig. 8 memory experiments.

/// The paper's Eq. 4 per-layer memory for a GraphSAGE mean-aggregator
/// layer: `Mem = (3·n_in + n_bd) · d` feature elements — the input rows
/// for all local nodes, the aggregated features and the outputs for the
/// inner nodes. Returned in bytes (`f32` elements).
pub fn eq4_layer_bytes(n_in: usize, n_bd: usize, d: usize) -> u64 {
    ((3 * n_in + n_bd) * d) as u64 * 4
}

/// Activation memory one rank holds while training one epoch with the
/// given layer dimensions (`dims[0]` = input features, last = classes):
/// for each layer, the cached input (`n_act x d_in`), the aggregate
/// (`n_in x d_in`), pre-activation and output (`n_in x d_out`), plus a
/// dropout mask when `dropout > 0`. This is what shrinks when boundary
/// sampling shrinks `n_act = n_in + n_selected`.
pub fn epoch_activation_bytes(
    n_in: usize,
    n_selected: usize,
    dims: &[usize],
    dropout: bool,
) -> u64 {
    assert!(dims.len() >= 2, "need at least input and output dims");
    let n_act = n_in + n_selected;
    let mut total = 0u64;
    for l in 0..dims.len() - 1 {
        let d_in = dims[l] as u64;
        let d_out = dims[l + 1] as u64;
        let mut layer = n_act as u64 * d_in // cached h_full
            + n_in as u64 * d_in            // aggregate z
            + 2 * n_in as u64 * d_out; // pre-activation + output
        if dropout {
            layer += n_act as u64 * d_in; // mask
        }
        total += layer * 4;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq4_matches_paper_formula() {
        // (3·100 + 50) · 8 · 4 bytes
        assert_eq!(eq4_layer_bytes(100, 50, 8), 350 * 8 * 4);
    }

    #[test]
    fn memory_shrinks_with_fewer_boundary_nodes() {
        let full = epoch_activation_bytes(1000, 5000, &[64, 32, 16], true);
        let sampled = epoch_activation_bytes(1000, 500, &[64, 32, 16], true);
        let isolated = epoch_activation_bytes(1000, 0, &[64, 32, 16], true);
        assert!(sampled < full);
        assert!(isolated < sampled);
        // Reduction is sub-linear in p: inner-node terms are fixed, as
        // the paper notes for Fig. 6.
        let ratio = sampled as f64 / full as f64;
        assert!(ratio > 0.1, "ratio {ratio}");
    }

    #[test]
    fn dropout_adds_mask_memory() {
        let with_mask = epoch_activation_bytes(10, 5, &[4, 2], true);
        let without = epoch_activation_bytes(10, 5, &[4, 2], false);
        assert!(with_mask > without);
    }
}
