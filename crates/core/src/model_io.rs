//! Serde-free binary serialization for [`TrainedModel`] — train once,
//! serve forever.
//!
//! The serving harness sweeps many cache/batch configurations over the
//! *same* trained weights; without a save/load path every sweep cell
//! would pay a full training run. The format is deliberately dumb: a
//! magic/version header, an architecture tag, then each layer's scalars
//! and matrices as little-endian fixed-width fields. No compression, no
//! pointers, no external crates — `to_bytes` and `from_bytes` round-trip
//! bitwise (weights are `f32`; bit patterns are preserved exactly, NaN
//! payloads included).
//!
//! The format is versioned: [`from_bytes`](TrainedModel::from_bytes)
//! rejects unknown versions/tags with a descriptive [`ModelIoError`]
//! instead of misinterpreting bytes.

use crate::engine::TrainedModel;
use bns_nn::{Activation, GatLayer, GatModel, GcnLayer, SageLayer, SageModel};
use bns_tensor::Matrix;
use std::fmt;

/// `b"BNSM"` — BNS-GCN model.
const MAGIC: [u8; 4] = *b"BNSM";
const VERSION: u32 = 1;

const ARCH_SAGE: u8 = 0;
const ARCH_GAT: u8 = 1;
const ARCH_GCN: u8 = 2;

const ACT_RELU: u8 = 0;
const ACT_IDENTITY: u8 = 1;
const ACT_LEAKY: u8 = 2;
const ACT_ELU: u8 = 3;

/// Decode failure: truncated buffer, bad magic, unknown version or tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelIoError(String);

impl fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model decode error: {}", self.0)
    }
}

impl std::error::Error for ModelIoError {}

fn err(msg: impl Into<String>) -> ModelIoError {
    ModelIoError(msg.into())
}

// ---------------------------------------------------------------- encode

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_matrix(buf: &mut Vec<u8>, m: &Matrix) {
    put_u32(buf, m.rows() as u32);
    put_u32(buf, m.cols() as u32);
    for &x in m.as_slice() {
        put_f32(buf, x);
    }
}

fn put_act(buf: &mut Vec<u8>, act: Activation) {
    match act {
        Activation::Relu => buf.push(ACT_RELU),
        Activation::Identity => buf.push(ACT_IDENTITY),
        Activation::LeakyRelu(slope) => {
            buf.push(ACT_LEAKY);
            put_f32(buf, slope);
        }
        Activation::Elu => buf.push(ACT_ELU),
    }
}

// ---------------------------------------------------------------- decode

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ModelIoError> {
        if self.pos + n > self.buf.len() {
            // Reader is model IO, reached only via a name-collision
            // edge (Option::take).
            // bns-allow(BNS-A005): error-path message formatting
            return Err(err(format!(
                "truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ModelIoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ModelIoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, ModelIoError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn matrix(&mut self) -> Result<Matrix, ModelIoError> {
        let rows = self.u32()? as usize;
        let cols = self.u32()? as usize;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| err("matrix shape overflow"))?;
        let raw = self.take(n * 4)?;
        let data = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(Matrix::from_vec(rows, cols, data))
    }

    fn act(&mut self) -> Result<Activation, ModelIoError> {
        match self.u8()? {
            ACT_RELU => Ok(Activation::Relu),
            ACT_IDENTITY => Ok(Activation::Identity),
            ACT_LEAKY => Ok(Activation::LeakyRelu(self.f32()?)),
            ACT_ELU => Ok(Activation::Elu),
            t => Err(err(format!("unknown activation tag {t}"))),
        }
    }
}

impl TrainedModel {
    /// Serializes the model to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        put_u32(&mut buf, VERSION);
        match self {
            TrainedModel::Sage(m) => {
                buf.push(ARCH_SAGE);
                put_u32(&mut buf, m.layers.len() as u32);
                for l in &m.layers {
                    put_act(&mut buf, l.act);
                    put_f32(&mut buf, l.dropout);
                    put_matrix(&mut buf, &l.w_self);
                    put_matrix(&mut buf, &l.w_neigh);
                    put_matrix(&mut buf, &l.b);
                }
            }
            TrainedModel::Gat(m) => {
                buf.push(ARCH_GAT);
                put_u32(&mut buf, m.layers.len() as u32);
                for l in &m.layers {
                    put_act(&mut buf, l.act);
                    put_f32(&mut buf, l.dropout);
                    put_f32(&mut buf, l.neg_slope);
                    put_matrix(&mut buf, &l.w);
                    put_matrix(&mut buf, &l.a_l);
                    put_matrix(&mut buf, &l.a_r);
                }
            }
            TrainedModel::Gcn(layers) => {
                buf.push(ARCH_GCN);
                put_u32(&mut buf, layers.len() as u32);
                for l in layers {
                    put_act(&mut buf, l.act);
                    put_f32(&mut buf, l.dropout);
                    put_matrix(&mut buf, &l.w);
                    put_matrix(&mut buf, &l.b);
                }
            }
        }
        buf
    }

    /// Decodes a model previously produced by
    /// [`to_bytes`](TrainedModel::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<TrainedModel, ModelIoError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(err("bad magic (not a BNSM model file)"));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(err(format!(
                "unsupported version {version} (supported: {VERSION})"
            )));
        }
        let arch = r.u8()?;
        let n_layers = r.u32()? as usize;
        let model = match arch {
            ARCH_SAGE => {
                let mut layers = Vec::with_capacity(n_layers);
                for _ in 0..n_layers {
                    let act = r.act()?;
                    let dropout = r.f32()?;
                    layers.push(SageLayer {
                        act,
                        dropout,
                        w_self: r.matrix()?,
                        w_neigh: r.matrix()?,
                        b: r.matrix()?,
                    });
                }
                TrainedModel::Sage(SageModel { layers })
            }
            ARCH_GAT => {
                let mut layers = Vec::with_capacity(n_layers);
                for _ in 0..n_layers {
                    let act = r.act()?;
                    let dropout = r.f32()?;
                    let neg_slope = r.f32()?;
                    layers.push(GatLayer {
                        act,
                        dropout,
                        neg_slope,
                        w: r.matrix()?,
                        a_l: r.matrix()?,
                        a_r: r.matrix()?,
                    });
                }
                TrainedModel::Gat(GatModel { layers })
            }
            ARCH_GCN => {
                let mut layers = Vec::with_capacity(n_layers);
                for _ in 0..n_layers {
                    let act = r.act()?;
                    let dropout = r.f32()?;
                    layers.push(GcnLayer {
                        act,
                        dropout,
                        w: r.matrix()?,
                        b: r.matrix()?,
                    });
                }
                TrainedModel::Gcn(layers)
            }
            t => return Err(err(format!("unknown architecture tag {t}"))),
        };
        if r.pos != bytes.len() {
            return Err(err(format!(
                "{} trailing bytes after model",
                bytes.len() - r.pos
            )));
        }
        Ok(model)
    }

    /// Writes the model to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a model from a file.
    pub fn load(path: &std::path::Path) -> std::io::Result<TrainedModel> {
        let bytes = std::fs::read(path)?;
        TrainedModel::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_tensor::SeededRng;

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|x| x.to_bits()).collect()
    }

    fn sample_models() -> Vec<TrainedModel> {
        let mut rng = SeededRng::new(99);
        vec![
            TrainedModel::Sage(SageModel::new(&[7, 5, 3], 0.3, &mut rng)),
            TrainedModel::Gat(GatModel::new(&[6, 4, 2], 0.1, &mut rng)),
            TrainedModel::Gcn(vec![
                GcnLayer::new(5, 4, Activation::Relu, 0.2, &mut rng),
                GcnLayer::new(4, 3, Activation::Identity, 0.0, &mut rng),
            ]),
        ]
    }

    #[test]
    fn round_trip_all_architectures() {
        for model in sample_models() {
            let bytes = model.to_bytes();
            let back = TrainedModel::from_bytes(&bytes).unwrap();
            assert_eq!(model.num_layers(), back.num_layers());
            assert_eq!(model.num_classes(), back.num_classes());
            assert_eq!(model.feat_dim(), back.feat_dim());
            // Bitwise weight equality, architecture by architecture.
            match (&model, &back) {
                (TrainedModel::Sage(a), TrainedModel::Sage(b)) => {
                    for (la, lb) in a.layers.iter().zip(&b.layers) {
                        assert_eq!(la.act, lb.act);
                        assert_eq!(la.dropout.to_bits(), lb.dropout.to_bits());
                        assert_eq!(bits(&la.w_self), bits(&lb.w_self));
                        assert_eq!(bits(&la.w_neigh), bits(&lb.w_neigh));
                        assert_eq!(bits(&la.b), bits(&lb.b));
                    }
                }
                (TrainedModel::Gat(a), TrainedModel::Gat(b)) => {
                    for (la, lb) in a.layers.iter().zip(&b.layers) {
                        assert_eq!(la.act, lb.act);
                        assert_eq!(la.neg_slope.to_bits(), lb.neg_slope.to_bits());
                        assert_eq!(bits(&la.w), bits(&lb.w));
                        assert_eq!(bits(&la.a_l), bits(&lb.a_l));
                        assert_eq!(bits(&la.a_r), bits(&lb.a_r));
                    }
                }
                (TrainedModel::Gcn(a), TrainedModel::Gcn(b)) => {
                    for (la, lb) in a.iter().zip(b) {
                        assert_eq!(la.act, lb.act);
                        assert_eq!(bits(&la.w), bits(&lb.w));
                        assert_eq!(bits(&la.b), bits(&lb.b));
                    }
                }
                _ => panic!("architecture changed in round trip"),
            }
        }
    }

    #[test]
    fn leaky_relu_slope_survives() {
        let mut rng = SeededRng::new(5);
        let model = TrainedModel::Gcn(vec![GcnLayer::new(
            3,
            2,
            Activation::LeakyRelu(0.07),
            0.0,
            &mut rng,
        )]);
        let back = TrainedModel::from_bytes(&model.to_bytes()).unwrap();
        let TrainedModel::Gcn(layers) = back else {
            panic!()
        };
        assert_eq!(layers[0].act, Activation::LeakyRelu(0.07));
    }

    #[test]
    fn rejects_corrupt_input() {
        let model = &sample_models()[0];
        let good = model.to_bytes();

        assert!(TrainedModel::from_bytes(&[]).is_err(), "empty");
        assert!(
            TrainedModel::from_bytes(&good[..good.len() - 1]).is_err(),
            "truncated"
        );
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(TrainedModel::from_bytes(&trailing).is_err(), "trailing");

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(TrainedModel::from_bytes(&bad_magic).is_err(), "magic");

        let mut bad_version = good.clone();
        bad_version[4] = 0xFF;
        assert!(TrainedModel::from_bytes(&bad_version).is_err(), "version");

        let mut bad_arch = good;
        bad_arch[8] = 0xEE;
        assert!(TrainedModel::from_bytes(&bad_arch).is_err(), "arch tag");
    }

    #[test]
    fn file_round_trip_and_load_errors() {
        let model = sample_models().remove(0);
        let dir = std::env::temp_dir();
        let path = dir.join("bns_model_io_test.bnsm");
        model.save(&path).unwrap();
        let back = TrainedModel::load(&path).unwrap();
        assert_eq!(back.num_classes(), model.num_classes());
        std::fs::remove_file(&path).unwrap();
        assert!(TrainedModel::load(&path).is_err(), "missing file");
    }
}
