//! Per-epoch boundary communication: selection exchange, the serial
//! reference feature/gradient exchange, and the overlap-capable,
//! allocation-free exchange the engine's hot path uses.
//!
//! ## Overlap architecture
//!
//! The serial path ([`exchange_features_serial`]) blocks on peers in
//! fixed owner order and materializes the halo as `vstack(h_inner,
//! h_bd)` — a full copy of the inner activation matrix per layer. The
//! overlapped path splits that into [`send_boundary_rows`] (issue all
//! sends, non-blocking) and [`recv_boundary_blocks`] (drain arrivals
//! with [`RankComm::recv_any`]), so the engine can run the inner-edge
//! partial aggregation between the two while boundary blocks are in
//! flight.
//!
//! ## Determinism
//!
//! Blocks are *received* in arrival order but *written* to fixed,
//! disjoint row ranges of the boundary block (and gradient blocks are
//! *applied* in fixed ascending peer order), so the result is bitwise
//! identical to the serial path no matter which peer delivers first.
//! The proptests in `tests/overlap_determinism.rs` enforce this.
//!
//! ## Allocation-freedom
//!
//! [`ExchangeArena`] recycles every `Vec<f32>` that arrives as a
//! message payload into a free list used for subsequent gather/send
//! staging, and reuses the boundary-block matrix capacity across layers
//! and epochs. In steady state the per-layer comm path performs no
//! heap allocation; `comm.arena.*` counters report bytes reused vs
//! freshly allocated.
//!
//! ## Wire precision
//!
//! Every overlapped send/recv takes a [`WirePrecision`]. `Exact` is the
//! historical raw-f32 path, byte for byte. The quantized modes pack the
//! staged rows through the `bns_tensor::simd::codec` kernels into
//! `Vec<u8>` payloads — so [`bns_comm::TrafficStats`] and the α–β cost
//! model automatically see the *compressed* volume — and unpack on
//! arrival (features fold `feature_scale` into the dequant pass; the
//! gradient return path packs with seeded, per-row **stochastic
//! rounding** and dequantizes into the same staging slots the exact
//! path uses, so the fixed-order scatter-add downstream is untouched).
//! The serial reference functions stay exact-only. See DESIGN.md §13.

use crate::plan::LocalPartition;
use bns_comm::{RankComm, TrafficClass, WirePrecision};
use bns_tensor::simd::{self, codec};
use bns_tensor::Matrix;
use std::ops::Range;

/// Exchanged selection state for one epoch: what to send to and expect
/// from each peer.
#[derive(Debug, Clone)]
pub struct EpochExchange {
    /// For each peer `j`: local inner rows to send each layer.
    pub rows_to_send: Vec<Vec<usize>>,
    /// Per-owner ranges into this rank's selected-boundary list (the
    /// row ranges of the boundary block each owner fills).
    pub owner_sel: Vec<(usize, Range<usize>)>,
}

impl EpochExchange {
    /// True when this rank neither sends nor receives boundary rows.
    pub fn is_trivial(&self) -> bool {
        self.owner_sel.iter().all(|(_, r)| r.is_empty())
            && self.rows_to_send.iter().all(|r| r.is_empty())
    }
}

/// Per-owner view of this rank's selected boundary nodes: `(owner,
/// selected-index range, relative positions within the owner's block)`.
fn per_owner_selection(
    lp: &LocalPartition,
    selected: &[usize],
) -> Vec<(usize, Range<usize>, Vec<u32>)> {
    let mut out = Vec::new();
    let mut cursor = 0usize;
    for owner in 0..lp.owner_ranges.len() {
        if owner == lp.rank {
            continue;
        }
        let (s, e) = lp.owner_ranges[owner];
        let start = cursor;
        let mut rel = Vec::new();
        while cursor < selected.len() && selected[cursor] < e {
            debug_assert!(selected[cursor] >= s);
            rel.push((selected[cursor] - s) as u32);
            cursor += 1;
        }
        out.push((owner, start..cursor, rel));
    }
    out
}

/// Tells every owner which of its nodes this rank selected and learns
/// which local rows each peer wants (Algorithm 1's selection
/// broadcast). The relative-position vectors are moved into the sends —
/// no clone on the send path.
///
/// Blocking driver over [`SelectionOp`]; cooperative tasks use the op
/// directly and park between polls.
pub fn exchange_selection(
    comm: &mut RankComm,
    lp: &LocalPartition,
    selected: &[usize],
    tag: u64,
) -> EpochExchange {
    let mut op = SelectionOp::begin(comm, lp, selected, tag);
    while !op.poll(comm, lp) {
        comm.wait_message();
    }
    op.finish()
}

/// An in-flight selection exchange: [`SelectionOp::begin`] issues every
/// send, each [`SelectionOp::poll`] consumes whichever peer selections
/// have arrived, and [`SelectionOp::finish`] yields the
/// [`EpochExchange`] once polling reported completion. The result is a
/// pure function of the message contents, so arrival order (and
/// therefore scheduling) cannot change it.
pub struct SelectionOp {
    tag: u64,
    owner_sel: Vec<(usize, Range<usize>)>,
    rows_to_send: Vec<Vec<usize>>,
    remaining: Vec<usize>,
}

impl SelectionOp {
    /// Sends this rank's per-owner selections; never blocks.
    pub fn begin(comm: &mut RankComm, lp: &LocalPartition, selected: &[usize], tag: u64) -> Self {
        let k = comm.world_size();
        let me = comm.rank();
        let mut owner_sel = Vec::new();
        for (owner, range, rel) in per_owner_selection(lp, selected) {
            comm.send(owner, tag, rel, TrafficClass::Control);
            owner_sel.push((owner, range));
        }
        Self {
            tag,
            owner_sel,
            rows_to_send: vec![Vec::new(); k],
            remaining: (0..k).filter(|&j| j != me).collect(),
        }
    }

    /// Consumes every peer selection that has arrived; returns `true`
    /// once all peers have reported. Never blocks.
    pub fn poll(&mut self, comm: &mut RankComm, lp: &LocalPartition) -> bool {
        while !self.remaining.is_empty() {
            let Some((src, rel)) = comm.try_recv_any::<Vec<u32>>(self.tag, &self.remaining) else {
                return false;
            };
            self.rows_to_send[src] = rel
                .iter()
                .map(|&p| lp.send_lists[src][p as usize])
                // Size tracks the fresh boundary sample, so a
                // recycled buffer would just resize anyway.
                // bns-allow(BNS-A005): per-peer send list rebuilt once per epoch
                .collect();
            self.remaining.retain(|&j| j != src);
        }
        true
    }

    /// The completed exchange.
    ///
    /// # Panics
    ///
    /// Panics if called before [`SelectionOp::poll`] returned `true`.
    pub fn finish(self) -> EpochExchange {
        assert!(self.remaining.is_empty(), "selection exchange incomplete");
        EpochExchange {
            rows_to_send: self.rows_to_send,
            owner_sel: self.owner_sel,
        }
    }
}

/// Reusable per-rank buffers for the overlapped exchange, plus overlap
/// telemetry. One arena lives for the whole training run; buffers are
/// recycled across layers and epochs.
#[derive(Debug, Default)]
pub struct ExchangeArena {
    /// The received (scaled) boundary block for the current layer.
    h_bd: Matrix,
    /// Recycled payload buffers, reused for gather/send staging.
    free: Vec<Vec<f32>>,
    /// Recycled quantized wire buffers (pack staging and received
    /// payloads).
    free_u8: Vec<Vec<u8>>,
    /// Reusable per-peer gradient staging slots.
    grad_slots: Vec<Vec<f32>>,
    /// Bytes served from the free list.
    pub bytes_reused: u64,
    /// Bytes that needed a fresh allocation.
    pub bytes_alloc: u64,
    /// Boundary/gradient blocks received in total.
    pub blocks: u64,
    /// Blocks serviced ahead of a lower-ranked owner still in flight —
    /// receives the serial path would have head-of-line blocked on.
    pub out_of_order_blocks: u64,
}

/// Bound on recycled buffers kept around (layer dims recur every epoch,
/// so a small pool reaches steady state quickly).
const ARENA_MAX_FREE: usize = 32;

impl ExchangeArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// The boundary block assembled by the latest
    /// [`recv_boundary_blocks`] call.
    pub fn boundary(&self) -> &Matrix {
        &self.h_bd
    }

    /// A zeroed buffer of exactly `len` floats, served from the free
    /// list when a large-enough recycled buffer exists.
    fn take_buf(&mut self, len: usize) -> Vec<f32> {
        if let Some(pos) = self.free.iter().position(|b| b.capacity() >= len) {
            let mut buf = self.free.swap_remove(pos);
            self.bytes_reused += 4 * len as u64;
            buf.clear();
            buf.resize(len, 0.0);
            return buf;
        }
        self.bytes_alloc += 4 * len as u64;
        vec![0.0; len]
    }

    /// Returns a payload buffer to the free list.
    fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 && self.free.len() < ARENA_MAX_FREE {
            self.free.push(buf);
        }
    }

    /// A zeroed wire buffer of exactly `len` bytes, recycled like
    /// [`ExchangeArena::take_buf`].
    fn take_u8(&mut self, len: usize) -> Vec<u8> {
        if let Some(pos) = self.free_u8.iter().position(|b| b.capacity() >= len) {
            let mut buf = self.free_u8.swap_remove(pos);
            self.bytes_reused += len as u64;
            buf.clear();
            buf.resize(len, 0);
            return buf;
        }
        self.bytes_alloc += len as u64;
        vec![0; len]
    }

    /// Returns a wire buffer to the free list.
    fn recycle_u8(&mut self, buf: Vec<u8>) {
        if buf.capacity() > 0 && self.free_u8.len() < ARENA_MAX_FREE {
            self.free_u8.push(buf);
        }
    }

    /// Resets the boundary block to a zeroed `rows x cols` matrix,
    /// reusing its existing capacity.
    fn reset_h_bd(&mut self, rows: usize, cols: usize) {
        let mut data = std::mem::take(&mut self.h_bd).into_vec();
        data.clear();
        data.resize(rows * cols, 0.0);
        self.h_bd = Matrix::from_vec(rows, cols, data);
    }

    /// Flushes the arena's counters to telemetry (call once per rank at
    /// the end of a run).
    pub fn flush_counters(&self) {
        bns_telemetry::counter_add("comm.arena.bytes_reused", self.bytes_reused);
        bns_telemetry::counter_add("comm.arena.bytes_alloc", self.bytes_alloc);
        bns_telemetry::counter_add("comm.overlap.blocks", self.blocks);
        bns_telemetry::counter_add("comm.overlap.out_of_order_blocks", self.out_of_order_blocks);
    }
}

/// A received boundary/gradient payload: raw f32 rows (`Exact`) or a
/// quantized wire buffer to run through the codec.
enum BlockPayload {
    Exact(Vec<f32>),
    Wire(Vec<u8>),
}

/// Packs a staged f32 block into a recycled wire buffer under a
/// non-exact precision. `sr` selects the stochastic-rounding kernels
/// (the gradient path) with the given per-destination stream seed.
fn pack_block(
    arena: &mut ExchangeArena,
    src: &[f32],
    d: usize,
    precision: WirePrecision,
    sr: Option<u64>,
) -> Vec<u8> {
    let rows = src.len() / d;
    let mut wire = arena.take_u8(precision.payload_bytes(rows, d));
    let bk = simd::begin_kernel();
    match (precision, sr) {
        (WirePrecision::F16, None) => codec::pack_f16(bk, &mut wire, src),
        (WirePrecision::F16, Some(seed)) => codec::pack_f16_sr(bk, &mut wire, src, d, seed),
        (WirePrecision::Bf16, None) => codec::pack_bf16(bk, &mut wire, src),
        (WirePrecision::Bf16, Some(seed)) => codec::pack_bf16_sr(bk, &mut wire, src, d, seed),
        (WirePrecision::Int8, None) => codec::pack_int8(bk, &mut wire, src, d),
        (WirePrecision::Int8, Some(seed)) => codec::pack_int8_sr(bk, &mut wire, src, d, seed),
        (WirePrecision::Exact, _) => unreachable!("exact payloads are sent unpacked"),
    }
    wire
}

/// Dequantizes a received wire buffer into `dst`, multiplying by
/// `scale` (the feature path folds `feature_scale` in here; the
/// gradient path passes `1.0` because its sends are pre-scaled).
fn unpack_block(dst: &mut [f32], wire: &[u8], d: usize, scale: f32, precision: WirePrecision) {
    let bk = simd::begin_kernel();
    match precision {
        WirePrecision::F16 => codec::unpack_f16(bk, dst, wire, scale),
        WirePrecision::Bf16 => codec::unpack_bf16(bk, dst, wire, scale),
        WirePrecision::Int8 => codec::unpack_int8(bk, dst, wire, d, scale),
        WirePrecision::Exact => unreachable!("exact payloads arrive unpacked"),
    }
}

/// Serial reference exchange (retained for eval and as the bitwise
/// ground truth the overlapped path is tested against): sends the
/// requested feature rows to every peer, receives blocks in fixed owner
/// order, and returns the stacked `vstack(h_inner, h_bd)`.
pub fn exchange_features_serial(
    comm: &mut RankComm,
    ex: &EpochExchange,
    h_inner: &Matrix,
    n_selected: usize,
    feature_scale: f32,
    tag: u64,
) -> Matrix {
    let d = h_inner.cols();
    for (j, rows) in ex.rows_to_send.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        let block = h_inner.gather_rows(rows);
        comm.send(j, tag, block.into_vec(), TrafficClass::Boundary);
    }
    let mut h_bd = Matrix::zeros(n_selected, d);
    for (owner, range) in &ex.owner_sel {
        if range.is_empty() {
            continue;
        }
        let data: Vec<f32> = comm.recv(*owner, tag);
        debug_assert_eq!(data.len(), range.len() * d);
        h_bd.as_mut_slice()[range.start * d..range.end * d].copy_from_slice(&data);
    }
    if feature_scale != 1.0 {
        h_bd.scale(feature_scale);
    }
    h_inner.vstack(&h_bd)
}

/// Arena-backed full-boundary exchange for evaluation and serving-time
/// (no-sampling) passes: identical wire protocol and bitwise-identical
/// result to [`exchange_features_serial`], but send staging comes from
/// the arena's free list and the boundary block reuses the arena's
/// capacity — so a rank that evaluates (or serves) repeatedly stops
/// allocating on the exchange path after the first pass. Only the final
/// `vstack` (whose lifetime is owned by the caller's layer loop)
/// allocates.
pub fn exchange_features_eval(
    comm: &mut RankComm,
    ex: &EpochExchange,
    h_inner: &Matrix,
    n_selected: usize,
    feature_scale: f32,
    tag: u64,
    arena: &mut ExchangeArena,
) -> Matrix {
    send_boundary_rows(comm, ex, h_inner, tag, arena, WirePrecision::Exact);
    recv_boundary_blocks(
        comm,
        ex,
        n_selected,
        h_inner.cols(),
        feature_scale,
        tag,
        arena,
        None,
        WirePrecision::Exact,
    );
    h_inner.vstack(arena.boundary())
}

/// Serial reference gradient exchange: sends boundary-row gradients
/// back to their owners (scaled by `feature_scale`, the chain rule
/// through the `H/p` rescale) and accumulates peers' contributions in
/// fixed ascending peer order.
pub fn exchange_gradients_serial(
    comm: &mut RankComm,
    ex: &EpochExchange,
    d_inner: &mut Matrix,
    d_bd: &Matrix,
    feature_scale: f32,
    tag: u64,
) {
    let d = d_inner.cols();
    for (owner, range) in &ex.owner_sel {
        if range.is_empty() {
            continue;
        }
        let mut block: Vec<f32> = d_bd.as_slice()[range.start * d..range.end * d].to_vec();
        if feature_scale != 1.0 {
            for x in &mut block {
                *x *= feature_scale;
            }
        }
        comm.send(*owner, tag, block, TrafficClass::Boundary);
    }
    for (j, rows) in ex.rows_to_send.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        let data: Vec<f32> = comm.recv(j, tag);
        let block = Matrix::from_vec(rows.len(), d, data);
        d_inner.scatter_add_rows(rows, &block);
    }
}

/// Overlapped-path phase 1: stages the requested feature rows into
/// arena buffers and issues every send. Returns immediately (sends are
/// non-blocking); call [`recv_boundary_blocks`] after running whatever
/// compute should overlap the transfer.
///
/// Non-exact precisions pack the staged rows (round-to-nearest-even —
/// the feature path is deterministic, no stochastic rounding) and send
/// the wire buffer instead, so the traffic counters record the
/// compressed size.
pub fn send_boundary_rows(
    comm: &mut RankComm,
    ex: &EpochExchange,
    h_inner: &Matrix,
    tag: u64,
    arena: &mut ExchangeArena,
    precision: WirePrecision,
) {
    let d = h_inner.cols();
    for (j, rows) in ex.rows_to_send.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        let mut buf = arena.take_buf(rows.len() * d);
        for (chunk, &r) in buf.chunks_exact_mut(d).zip(rows) {
            chunk.copy_from_slice(h_inner.row(r));
        }
        if precision == WirePrecision::Exact {
            comm.send(j, tag, buf, TrafficClass::Boundary);
        } else {
            let wire = pack_block(arena, &buf, d, precision, None);
            arena.recycle(buf);
            comm.send(j, tag, wire, TrafficClass::Boundary);
        }
    }
}

/// Overlapped-path phase 2: drains boundary blocks in **arrival**
/// order ([`RankComm::recv_any`]) into their fixed disjoint row ranges
/// of the arena's boundary block, applying `feature_scale` during the
/// copy — bitwise identical to receive-in-owner-order + whole-matrix
/// scale, with no head-of-line blocking. Received payload buffers are
/// recycled into the arena.
///
/// With `stale` (PipeGCN pipelining), the fresh block is swapped into
/// the cache and the *previous* epoch's block becomes current (first
/// epoch: fresh is used directly and cached). Access the result via
/// [`ExchangeArena::boundary`].
#[allow(clippy::too_many_arguments)]
pub fn recv_boundary_blocks(
    comm: &mut RankComm,
    ex: &EpochExchange,
    n_selected: usize,
    d: usize,
    feature_scale: f32,
    tag: u64,
    arena: &mut ExchangeArena,
    stale: Option<&mut Option<Matrix>>,
    precision: WirePrecision,
) {
    let mut op = BoundaryRecvOp::begin(ex, n_selected, d, feature_scale, tag, arena, precision);
    while !op.poll(comm, ex, arena) {
        comm.wait_message();
    }
    swap_boundary_stale(arena, stale);
}

/// The PipeGCN staleness swap applied after a boundary receive
/// completes: the fresh block is cached and the previous epoch's block
/// becomes current (first epoch: fresh is used directly and cached).
/// `stale = None` is a no-op. Split out of [`recv_boundary_blocks`] so
/// the cooperative engine can apply it when [`BoundaryRecvOp::poll`]
/// reports completion.
pub fn swap_boundary_stale(arena: &mut ExchangeArena, stale: Option<&mut Option<Matrix>>) {
    if let Some(cache) = stale {
        match cache.take() {
            Some(mut prev) => {
                std::mem::swap(&mut arena.h_bd, &mut prev);
                *cache = Some(prev);
            }
            None => {
                // Every later epoch swaps buffers instead of cloning.
                // bns-allow(BNS-A005): one-time seed of the stale-boundary cache
                *cache = Some(arena.h_bd.clone());
            }
        }
    }
}

/// An in-flight boundary-block receive ([`recv_boundary_blocks`] phase
/// only, sends are issued separately via [`send_boundary_rows`]).
/// Blocks are folded into their fixed disjoint row ranges as they
/// arrive, so completion order cannot change the assembled matrix.
///
/// Emits the same `comm.recv_any_ready`/`comm.recv_any_waited` overlap
/// telemetry as the blocking path: a block consumed without an
/// intervening empty poll counts as overlapped ("ready").
pub struct BoundaryRecvOp {
    tag: u64,
    d: usize,
    feature_scale: f32,
    precision: WirePrecision,
    remaining: Vec<usize>,
    waited: bool,
}

impl BoundaryRecvOp {
    /// Resets the arena's boundary block and records which owners still
    /// owe a block. Never blocks. `precision` must match what the peers
    /// passed to [`send_boundary_rows`] — it decides the payload type
    /// this op receives.
    #[allow(clippy::too_many_arguments)]
    pub fn begin(
        ex: &EpochExchange,
        n_selected: usize,
        d: usize,
        feature_scale: f32,
        tag: u64,
        arena: &mut ExchangeArena,
        precision: WirePrecision,
    ) -> Self {
        arena.reset_h_bd(n_selected, d);
        let remaining: Vec<usize> = ex
            .owner_sel
            .iter()
            .filter(|(_, r)| !r.is_empty())
            .map(|(o, _)| *o)
            // bns-allow(BNS-A005): pending-owner worklist, once per epoch, world-size bounded
            .collect();
        Self {
            tag,
            d,
            feature_scale,
            precision,
            remaining,
            waited: false,
        }
    }

    /// Folds every boundary block that has arrived; returns `true` once
    /// all owners delivered. Never blocks. The caller applies
    /// [`swap_boundary_stale`] after completion if pipelining.
    pub fn poll(
        &mut self,
        comm: &mut RankComm,
        ex: &EpochExchange,
        arena: &mut ExchangeArena,
    ) -> bool {
        let d = self.d;
        while !self.remaining.is_empty() {
            let got = if self.precision == WirePrecision::Exact {
                comm.try_recv_any::<Vec<f32>>(self.tag, &self.remaining)
                    .map(|(s, v)| (s, BlockPayload::Exact(v)))
            } else {
                comm.try_recv_any::<Vec<u8>>(self.tag, &self.remaining)
                    .map(|(s, v)| (s, BlockPayload::Wire(v)))
            };
            let Some((src, payload)) = got else {
                self.waited = true;
                return false;
            };
            bns_telemetry::counter_add(
                if self.waited {
                    "comm.recv_any_waited"
                } else {
                    "comm.recv_any_ready"
                },
                1,
            );
            self.waited = false;
            arena.blocks += 1;
            if src != self.remaining[0] {
                arena.out_of_order_blocks += 1;
            }
            self.remaining.retain(|&o| o != src);
            let range = &ex
                .owner_sel
                .iter()
                .find(|(o, _)| *o == src)
                .expect("unexpected source")
                .1;
            let dst = &mut arena.h_bd.as_mut_slice()[range.start * d..range.end * d];
            match payload {
                BlockPayload::Exact(data) => {
                    debug_assert_eq!(data.len(), range.len() * d);
                    if self.feature_scale != 1.0 {
                        for (a, b) in dst.iter_mut().zip(&data) {
                            *a = b * self.feature_scale;
                        }
                    } else {
                        dst.copy_from_slice(&data);
                    }
                    arena.recycle(data);
                }
                BlockPayload::Wire(wire) => {
                    debug_assert_eq!(wire.len(), self.precision.payload_bytes(range.len(), d));
                    unpack_block(dst, &wire, d, self.feature_scale, self.precision);
                    arena.recycle_u8(wire);
                }
            }
        }
        true
    }
}

/// Overlapped gradient exchange: issues all sends (scaled into arena
/// buffers), receives peers' contributions in arrival order into
/// per-peer staging slots, then applies them to `d_inner` in **fixed
/// ascending peer order** — the scatter-add targets of different peers
/// can overlap, so arrival-order application would not be
/// deterministic.
///
/// With `stale` (PipeGCN), fresh contributions are cached per peer and
/// the previous epoch's are applied instead (first epoch applies
/// fresh).
///
/// Non-exact precisions pack each block with seeded stochastic rounding
/// (`sr_seed` is the run-level stream seed; see [`GradRecvOp::begin`]).
#[allow(clippy::too_many_arguments)]
pub fn exchange_gradients_overlapped(
    comm: &mut RankComm,
    ex: &EpochExchange,
    d_inner: &mut Matrix,
    d_bd: &Matrix,
    feature_scale: f32,
    tag: u64,
    arena: &mut ExchangeArena,
    stale: Option<&mut Option<Vec<Vec<f32>>>>,
    precision: WirePrecision,
    sr_seed: u64,
) {
    let mut op = GradRecvOp::begin(
        comm,
        ex,
        d_bd,
        feature_scale,
        tag,
        arena,
        precision,
        sr_seed,
    );
    while !op.poll(comm, ex, arena) {
        comm.wait_message();
    }
    op.finish(ex, d_inner, arena, stale);
}

/// An in-flight gradient exchange: [`GradRecvOp::begin`] stages and
/// issues every (scaled) send, [`GradRecvOp::poll`] parks arrivals in
/// per-peer staging slots, and [`GradRecvOp::finish`] applies the
/// contributions to `d_inner` in **fixed ascending peer order** —
/// scatter-add targets of different peers can overlap, so
/// arrival-order application would not be deterministic.
pub struct GradRecvOp {
    tag: u64,
    d: usize,
    precision: WirePrecision,
    slots: Vec<Vec<f32>>,
    remaining: Vec<usize>,
    waited: bool,
}

impl GradRecvOp {
    /// Issues every gradient send (scaled by `feature_scale`, the chain
    /// rule through the `H/p` rescale). Never blocks.
    ///
    /// Non-exact precisions pack each scaled block with stochastic
    /// rounding. The per-destination stream seed is
    /// `codec::rand_at(sr_seed, tag, owner)` — `tag` already encodes
    /// epoch and layer, so every (epoch, layer, destination) block gets
    /// an independent stream that is a pure function of the run seed,
    /// bitwise reproducible at any thread/worker/lane count.
    #[allow(clippy::too_many_arguments)]
    pub fn begin(
        comm: &mut RankComm,
        ex: &EpochExchange,
        d_bd: &Matrix,
        feature_scale: f32,
        tag: u64,
        arena: &mut ExchangeArena,
        precision: WirePrecision,
        sr_seed: u64,
    ) -> Self {
        let d = d_bd.cols();
        for (owner, range) in &ex.owner_sel {
            if range.is_empty() {
                continue;
            }
            let mut buf = arena.take_buf(range.len() * d);
            let src = &d_bd.as_slice()[range.start * d..range.end * d];
            if feature_scale != 1.0 {
                for (a, b) in buf.iter_mut().zip(src) {
                    *a = b * feature_scale;
                }
            } else {
                buf.copy_from_slice(src);
            }
            if precision == WirePrecision::Exact {
                comm.send(*owner, tag, buf, TrafficClass::Boundary);
            } else {
                let stream = codec::rand_at(sr_seed, tag, *owner as u64);
                let wire = pack_block(arena, &buf, d, precision, Some(stream));
                arena.recycle(buf);
                comm.send(*owner, tag, wire, TrafficClass::Boundary);
            }
        }
        let mut slots = std::mem::take(&mut arena.grad_slots);
        slots.resize_with(comm.world_size(), Vec::new);
        let remaining: Vec<usize> = ex
            .rows_to_send
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .map(|(j, _)| j)
            // bns-allow(BNS-A005): pending-peer worklist, once per epoch, world-size bounded
            .collect();
        Self {
            tag,
            d,
            precision,
            slots,
            remaining,
            waited: false,
        }
    }

    /// Stashes every gradient block that has arrived; returns `true`
    /// once all peers delivered. Never blocks.
    pub fn poll(
        &mut self,
        comm: &mut RankComm,
        ex: &EpochExchange,
        arena: &mut ExchangeArena,
    ) -> bool {
        while !self.remaining.is_empty() {
            let got = if self.precision == WirePrecision::Exact {
                comm.try_recv_any::<Vec<f32>>(self.tag, &self.remaining)
                    .map(|(s, v)| (s, BlockPayload::Exact(v)))
            } else {
                comm.try_recv_any::<Vec<u8>>(self.tag, &self.remaining)
                    .map(|(s, v)| (s, BlockPayload::Wire(v)))
            };
            let Some((src, payload)) = got else {
                self.waited = true;
                return false;
            };
            bns_telemetry::counter_add(
                if self.waited {
                    "comm.recv_any_waited"
                } else {
                    "comm.recv_any_ready"
                },
                1,
            );
            self.waited = false;
            arena.blocks += 1;
            if src != self.remaining[0] {
                arena.out_of_order_blocks += 1;
            }
            self.remaining.retain(|&j| j != src);
            let rows = ex.rows_to_send[src].len();
            match payload {
                BlockPayload::Exact(data) => {
                    debug_assert_eq!(data.len(), rows * self.d);
                    self.slots[src] = data;
                }
                BlockPayload::Wire(wire) => {
                    // Dequantize into an f32 staging slot so the
                    // fixed-order scatter-add in `finish` (and the
                    // PipeGCN stale cache) are precision-agnostic.
                    debug_assert_eq!(wire.len(), self.precision.payload_bytes(rows, self.d));
                    let mut data = arena.take_buf(rows * self.d);
                    unpack_block(&mut data, &wire, self.d, 1.0, self.precision);
                    arena.recycle_u8(wire);
                    self.slots[src] = data;
                }
            }
        }
        true
    }

    /// Applies the received contributions to `d_inner` (fixed ascending
    /// peer order) and returns the staging slots to the arena. With
    /// `stale` (PipeGCN), fresh contributions are cached per peer and
    /// the previous epoch's are applied instead (first epoch applies
    /// fresh).
    ///
    /// # Panics
    ///
    /// Panics if called before [`GradRecvOp::poll`] returned `true`.
    pub fn finish(
        self,
        ex: &EpochExchange,
        d_inner: &mut Matrix,
        arena: &mut ExchangeArena,
        stale: Option<&mut Option<Vec<Vec<f32>>>>,
    ) {
        assert!(self.remaining.is_empty(), "gradient exchange incomplete");
        let mut slots = self.slots;
        match stale {
            None => {
                for (j, rows) in ex.rows_to_send.iter().enumerate() {
                    if rows.is_empty() {
                        continue;
                    }
                    let data = std::mem::take(&mut slots[j]);
                    d_inner.scatter_add_rows_slice(rows, &data);
                    arena.recycle(data);
                }
                arena.grad_slots = slots;
            }
            Some(cache) => match cache.take() {
                Some(prev) => {
                    for (j, rows) in ex.rows_to_send.iter().enumerate() {
                        if rows.is_empty() {
                            continue;
                        }
                        d_inner.scatter_add_rows_slice(rows, &prev[j]);
                    }
                    for buf in prev {
                        arena.recycle(buf);
                    }
                    *cache = Some(slots);
                }
                None => {
                    for (j, rows) in ex.rows_to_send.iter().enumerate() {
                        if rows.is_empty() {
                            continue;
                        }
                        d_inner.scatter_add_rows_slice(rows, &slots[j]);
                    }
                    *cache = Some(slots);
                }
            },
        }
    }
}
