//! Per-epoch boundary sampling: the BNS method itself plus the paper's
//! edge-sampling ablation baselines (Table 9).

use crate::plan::LocalPartition;
use bns_graph::{CsrGraph, GraphBuilder};
use bns_tensor::SeededRng;

/// The sampling strategy applied every epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundarySampling {
    /// **Boundary Node Sampling** (the paper's method): each partition
    /// independently keeps each of its boundary nodes with probability
    /// `p`; received features are rescaled by `1/p` and the mean
    /// aggregator normalizes by *full-graph* degree, making the
    /// aggregate an unbiased estimator of the full-graph aggregate.
    /// `p = 1` is unsampled vanilla partition parallelism; `p = 0` is
    /// fully isolated training.
    Bns {
        /// Keep probability in `[0, 1]`.
        p: f64,
    },
    /// **Boundary Edge Sampling** (ablation): keep each *cut edge* with
    /// probability `keep`; a boundary node must still be communicated if
    /// *any* of its cut edges survives — the reason the paper finds edge
    /// sampling ineffective. Aggregation normalizes by the surviving
    /// local degree.
    BoundaryEdge {
        /// Per-cut-edge keep probability.
        keep: f64,
    },
    /// **DropEdge** (ablation): keep each edge of the whole graph
    /// (inner-inner included) with probability `keep`; communication is
    /// required for boundary nodes with a surviving cut edge.
    DropEdge {
        /// Per-edge keep probability.
        keep: f64,
    },
    /// **BNS without the `1/p` rescale** (ablation, not in the paper):
    /// boundary nodes are sampled like [`BoundarySampling::Bns`] but
    /// received features are *not* rescaled and the mean normalizes
    /// over locally-present neighbors only — a biased estimator. Used
    /// to demonstrate that the unbiased rescale is load-bearing.
    BnsUnscaled {
        /// Keep probability in `[0, 1]`.
        p: f64,
    },
}

impl BoundarySampling {
    /// The `1/p` rescale factor applied to received boundary features.
    pub fn feature_scale(&self) -> f32 {
        match *self {
            BoundarySampling::Bns { p } if p > 0.0 => (1.0 / p) as f32,
            _ => 1.0,
        }
    }

    /// The sampling rate `p`, when the strategy has one.
    pub fn rate(&self) -> Option<f64> {
        match *self {
            BoundarySampling::Bns { p } | BoundarySampling::BnsUnscaled { p } => Some(p),
            _ => None,
        }
    }

    /// Whether the epoch topology is identical every epoch (no
    /// resampling needed) — true for `p = 1` and `p = 0`, which is why
    /// the paper reports 0% sampling overhead for those (Table 12).
    pub fn is_static(&self) -> bool {
        match *self {
            BoundarySampling::Bns { p } | BoundarySampling::BnsUnscaled { p } => {
                p <= 0.0 || p >= 1.0
            }
            BoundarySampling::BoundaryEdge { keep } | BoundarySampling::DropEdge { keep } => {
                keep <= 0.0 || keep >= 1.0
            }
        }
    }

    /// True when the strategy selects **every** boundary node on every
    /// rank (`p = 1` / `keep = 1`). This is a global property — all
    /// ranks agree — so it is safe to use for collective-avoiding
    /// decisions like reusing the full-selection exchange for eval
    /// (a per-rank test such as comparing selected sets could diverge
    /// across ranks and deadlock).
    pub fn selects_all(&self) -> bool {
        match *self {
            BoundarySampling::Bns { p } | BoundarySampling::BnsUnscaled { p } => p >= 1.0,
            BoundarySampling::BoundaryEdge { keep } | BoundarySampling::DropEdge { keep } => {
                keep >= 1.0
            }
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match *self {
            BoundarySampling::Bns { p } => format!("BNS(p={p})"),
            BoundarySampling::BnsUnscaled { p } => format!("BNS-unscaled(p={p})"),
            BoundarySampling::BoundaryEdge { keep } => format!("BES(keep={keep})"),
            BoundarySampling::DropEdge { keep } => format!("DropEdge(keep={keep})"),
        }
    }
}

/// The sampled topology one partition trains on for one epoch
/// (Algorithm 1 line 5: the node-induced subgraph of `V_i ∪ U_i`).
#[derive(Debug, Clone)]
pub struct EpochTopology {
    /// Positions (into the partition's boundary list) of the selected
    /// boundary nodes `U_i`, ascending.
    pub selected: Vec<usize>,
    /// The epoch graph: `n_in + selected.len()` local nodes; only edges
    /// incident to inner nodes are materialized.
    pub graph: CsrGraph,
    /// Aggregation normalizer per inner node.
    pub row_scale: Vec<f32>,
    /// GCN symmetric normalizer `1/sqrt(deg+1)` for every *epoch-local*
    /// row (inner then selected boundary), by full-graph degree — used
    /// when the engine trains the plain-GCN architecture.
    pub gcn_scale: Vec<f32>,
    /// Rescale factor for received boundary features (`1/p` under BNS).
    pub feature_scale: f32,
}

/// Deterministic symmetric edge-keep decision, shared by the two
/// partitions incident to a cut edge *without communication*: both
/// evaluate the same hash of `(seed, epoch, min_id, max_id)`.
pub fn edge_kept(seed: u64, epoch: usize, gu: usize, gv: usize, keep: f64) -> bool {
    if keep >= 1.0 {
        return true;
    }
    if keep <= 0.0 {
        return false;
    }
    let (a, b) = if gu < gv { (gu, gv) } else { (gv, gu) };
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(epoch as u64)
        .wrapping_add((a as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((b as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z as f64 / u64::MAX as f64) < keep
}

/// Builds the epoch topology for one partition.
///
/// `rng` drives the *node* selection (receiver-side, independent per
/// partition, as in Algorithm 1 line 4); `edge_seed` drives the
/// *symmetric* edge-keep hash for the edge-sampling baselines.
pub fn build_epoch_topology(
    lp: &LocalPartition,
    sampling: &BoundarySampling,
    epoch: usize,
    edge_seed: u64,
    rng: &mut SeededRng,
) -> EpochTopology {
    let n_in = lp.n_inner();
    let n_bd = lp.n_boundary();

    // --- Select boundary nodes ---
    let (selected, edge_filtered): (Vec<usize>, bool) = match *sampling {
        BoundarySampling::Bns { p } | BoundarySampling::BnsUnscaled { p } => {
            let sel = if p >= 1.0 {
                (0..n_bd).collect()
            } else if p <= 0.0 {
                Vec::new()
            } else {
                (0..n_bd).filter(|_| rng.bernoulli(p)).collect()
            };
            (sel, false)
        }
        BoundarySampling::BoundaryEdge { keep } | BoundarySampling::DropEdge { keep } => {
            // A boundary node stays iff at least one of its cut edges
            // survives the symmetric hash.
            let sel = (0..n_bd)
                .filter(|&pos| {
                    let gb = lp.boundary[pos];
                    lp.local_graph
                        .neighbors(n_in + pos)
                        .iter()
                        .filter(|&&x| (x as usize) < n_in)
                        .any(|&x| edge_kept(edge_seed, epoch, gb, lp.inner[x as usize], keep))
                })
                .collect();
            (sel, true)
        }
    };
    let drop_inner_edges = matches!(sampling, BoundarySampling::DropEdge { .. });

    // --- Remap: old local id -> epoch id ---
    let mut bd_remap = vec![usize::MAX; n_bd];
    for (new_idx, &pos) in selected.iter().enumerate() {
        bd_remap[pos] = n_in + new_idx;
    }

    // --- Build the epoch graph ---
    let keep_rate = match *sampling {
        BoundarySampling::BoundaryEdge { keep } | BoundarySampling::DropEdge { keep } => keep,
        BoundarySampling::Bns { .. } | BoundarySampling::BnsUnscaled { .. } => 1.0,
    };
    let mut b = GraphBuilder::new(n_in + selected.len());
    for v in 0..n_in {
        for &nb in lp.local_graph.neighbors(v) {
            let nb = nb as usize;
            if nb < n_in {
                if nb < v {
                    continue; // count each inner edge once
                }
                let kept = if drop_inner_edges {
                    edge_kept(edge_seed, epoch, lp.inner[v], lp.inner[nb], keep_rate)
                } else {
                    true
                };
                if kept {
                    b.add_edge(v, nb);
                }
            } else {
                let pos = nb - n_in;
                let new_id = bd_remap[pos];
                if new_id == usize::MAX {
                    continue;
                }
                let kept = if edge_filtered {
                    edge_kept(edge_seed, epoch, lp.inner[v], lp.boundary[pos], keep_rate)
                } else {
                    true
                };
                if kept {
                    b.add_edge(v, new_id);
                }
            }
        }
    }
    let graph = b.build();

    // --- Aggregation normalizers ---
    let row_scale: Vec<f32> = match sampling {
        // Unbiased full-graph mean: normalize by the full degree; the
        // engine separately multiplies received features by 1/p.
        BoundarySampling::Bns { .. } => lp.inner_scale.clone(),
        // Edge samplers renormalize over surviving neighbors (DropEdge
        // convention).
        _ => (0..n_in)
            .map(|v| 1.0 / graph.degree(v).max(1) as f32)
            .collect(),
    };

    let mut gcn_scale = lp.gcn_scale[..n_in].to_vec();
    gcn_scale.extend(selected.iter().map(|&pos| lp.gcn_scale[n_in + pos]));

    EpochTopology {
        selected,
        graph,
        row_scale,
        gcn_scale,
        feature_scale: sampling.feature_scale(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PartitionPlan;
    use bns_data::SyntheticSpec;
    use bns_partition::{Partitioner, RandomPartitioner};
    use bns_tensor::Matrix;

    fn plan() -> PartitionPlan {
        let ds = SyntheticSpec::reddit_sim().with_nodes(400).generate(11);
        let part = RandomPartitioner.partition(&ds.graph, 3, 1);
        PartitionPlan::build(&ds, &part)
    }

    #[test]
    fn p_one_selects_everything() {
        let plan = plan();
        let lp = &plan.parts[0];
        let mut rng = SeededRng::new(0);
        let t = build_epoch_topology(lp, &BoundarySampling::Bns { p: 1.0 }, 0, 0, &mut rng);
        assert_eq!(t.selected.len(), lp.n_boundary());
        assert_eq!(t.graph.num_nodes(), lp.n_inner() + lp.n_boundary());
        assert_eq!(t.feature_scale, 1.0);
        // Inner nodes keep their full-graph degree (no bd-bd edges are
        // needed, but all inner-incident edges are present).
        for v in 0..lp.n_inner() {
            assert_eq!(t.graph.degree(v), lp.local_graph.degree(v));
        }
    }

    #[test]
    fn p_zero_is_isolated() {
        let plan = plan();
        let lp = &plan.parts[1];
        let mut rng = SeededRng::new(0);
        let t = build_epoch_topology(lp, &BoundarySampling::Bns { p: 0.0 }, 0, 0, &mut rng);
        assert!(t.selected.is_empty());
        assert_eq!(t.graph.num_nodes(), lp.n_inner());
    }

    #[test]
    fn fractional_p_selects_roughly_p() {
        let plan = plan();
        let lp = &plan.parts[2];
        let mut rng = SeededRng::new(5);
        let mut total = 0usize;
        let reps = 200;
        for e in 0..reps {
            let t = build_epoch_topology(lp, &BoundarySampling::Bns { p: 0.3 }, e, 0, &mut rng);
            total += t.selected.len();
        }
        let frac = total as f64 / (reps * lp.n_boundary()) as f64;
        assert!((frac - 0.3).abs() < 0.03, "selected fraction {frac}");
    }

    /// The central unbiasedness property: E[sampled aggregate] equals the
    /// exact aggregate when boundary features are scaled by 1/p and the
    /// mean uses full-graph degrees.
    #[test]
    fn bns_aggregate_is_unbiased() {
        let plan = plan();
        let lp = &plan.parts[0];
        let n_local = lp.n_inner() + lp.n_boundary();
        let mut rng = SeededRng::new(42);
        let h = Matrix::random_normal(n_local, 3, 0.0, 1.0, &mut rng);
        // Exact aggregate with all boundary nodes.
        let exact = bns_nn::aggregate::scaled_sum_aggregate(
            &lp.local_graph,
            &h,
            lp.n_inner(),
            &lp.inner_scale,
        );
        let p = 0.5;
        let trials = 600;
        let mut mean = Matrix::zeros(lp.n_inner(), 3);
        for e in 0..trials {
            let t = build_epoch_topology(lp, &BoundarySampling::Bns { p }, e, 0, &mut rng);
            // Assemble epoch features: inner rows + scaled selected rows.
            let mut rows: Vec<usize> = (0..lp.n_inner()).collect();
            rows.extend(t.selected.iter().map(|&pos| lp.n_inner() + pos));
            let mut h_epoch = h.gather_rows(&rows);
            for r in lp.n_inner()..h_epoch.rows() {
                for x in h_epoch.row_mut(r) {
                    *x *= t.feature_scale;
                }
            }
            let z = bns_nn::aggregate::scaled_sum_aggregate(
                &t.graph,
                &h_epoch,
                lp.n_inner(),
                &t.row_scale,
            );
            mean.axpy(1.0, &z);
        }
        mean.scale(1.0 / trials as f32);
        let diff = mean.max_abs_diff(&exact);
        assert!(diff < 0.2, "bias too large: {diff}");
    }

    #[test]
    fn edge_keep_is_symmetric_and_seeded() {
        assert_eq!(edge_kept(7, 3, 10, 20, 0.5), edge_kept(7, 3, 20, 10, 0.5));
        assert!(edge_kept(0, 0, 1, 2, 1.0));
        assert!(!edge_kept(0, 0, 1, 2, 0.0));
        // Rate sanity over many edges.
        let kept = (0..10_000)
            .filter(|&i| edge_kept(9, 1, i, i + 1, 0.25))
            .count();
        assert!((kept as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn bes_preserves_inner_edges() {
        let plan = plan();
        let lp = &plan.parts[0];
        let mut rng = SeededRng::new(1);
        let t = build_epoch_topology(
            lp,
            &BoundarySampling::BoundaryEdge { keep: 0.2 },
            0,
            99,
            &mut rng,
        );
        // All inner-inner edges survive under BES.
        for v in 0..lp.n_inner() {
            let full_inner: usize = lp
                .local_graph
                .neighbors(v)
                .iter()
                .filter(|&&u| (u as usize) < lp.n_inner())
                .count();
            let epoch_inner: usize = t
                .graph
                .neighbors(v)
                .iter()
                .filter(|&&u| (u as usize) < lp.n_inner())
                .count();
            assert_eq!(full_inner, epoch_inner, "inner edges of {v} changed");
        }
        // And strictly fewer boundary nodes are needed.
        assert!(t.selected.len() < lp.n_boundary());
    }

    #[test]
    fn dropedge_drops_inner_edges_too() {
        let plan = plan();
        let lp = &plan.parts[0];
        let mut rng = SeededRng::new(1);
        let t = build_epoch_topology(
            lp,
            &BoundarySampling::DropEdge { keep: 0.5 },
            0,
            123,
            &mut rng,
        );
        let full_inner: usize = (0..lp.n_inner())
            .map(|v| {
                lp.local_graph
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| (u as usize) < lp.n_inner())
                    .count()
            })
            .sum();
        let epoch_inner: usize = (0..lp.n_inner())
            .map(|v| {
                t.graph
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| (u as usize) < lp.n_inner())
                    .count()
            })
            .sum();
        assert!(
            epoch_inner < full_inner,
            "DropEdge kept all inner edges ({epoch_inner}/{full_inner})"
        );
    }

    #[test]
    fn static_detection() {
        assert!(BoundarySampling::Bns { p: 1.0 }.is_static());
        assert!(BoundarySampling::Bns { p: 0.0 }.is_static());
        assert!(!BoundarySampling::Bns { p: 0.5 }.is_static());
        assert!(!BoundarySampling::DropEdge { keep: 0.9 }.is_static());
        // keep = 0 keeps nothing and keep = 1 keeps everything; both are
        // as static as p = 0 / p = 1.
        assert!(BoundarySampling::BoundaryEdge { keep: 1.0 }.is_static());
        assert!(BoundarySampling::BoundaryEdge { keep: 0.0 }.is_static());
        assert!(!BoundarySampling::BoundaryEdge { keep: 0.5 }.is_static());
        assert!(BoundarySampling::DropEdge { keep: 1.0 }.is_static());
        assert!(BoundarySampling::DropEdge { keep: 0.0 }.is_static());
    }
}
