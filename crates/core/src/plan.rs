//! The partition plan: every static per-partition structure Algorithm 1
//! needs — inner node sets `V_i`, boundary node sets `B_i`, local
//! induced graphs, and the send lists `S_{i,j}`.

use bns_data::{Dataset, Labels};
use bns_graph::CsrGraph;
use bns_partition::Partitioning;
use bns_tensor::Matrix;
use std::sync::Arc;

/// Static, immutable state of one partition (one rank). Local node ids
/// place the `n_in` inner nodes first (ascending global id), followed by
/// the boundary nodes grouped by owner rank (ascending global id within
/// each owner group) — so the features received from one owner form a
/// contiguous block.
#[derive(Debug)]
pub struct LocalPartition {
    /// This partition's rank.
    pub rank: usize,
    /// Global ids of inner nodes (sorted ascending).
    pub inner: Vec<usize>,
    /// Global ids of boundary nodes, grouped by owner then id.
    pub boundary: Vec<usize>,
    /// `owner_ranges[r]` is the half-open range of `boundary` owned by
    /// rank `r`.
    pub owner_ranges: Vec<(usize, usize)>,
    /// Graph induced on `inner ++ boundary` (local ids).
    pub local_graph: CsrGraph,
    /// `1 / full-graph degree` of each inner node (the paper's mean-
    /// aggregator normalizer; 1 for isolated nodes).
    pub inner_scale: Vec<f32>,
    /// GCN normalizer `1/sqrt(deg+1)` for every local node (inner then
    /// boundary), by full-graph degree.
    pub gcn_scale: Vec<f32>,
    /// Per peer rank `j`: local *inner* row indices this partition must
    /// send to `j` (ascending global id — matching `j`'s boundary-block
    /// order for this owner).
    pub send_lists: Vec<Vec<usize>>,
    /// Input features of inner nodes (`n_in x d`).
    pub features: Matrix,
    /// Labels of inner nodes.
    pub labels: Labels,
    /// Local inner indices of training nodes.
    pub train_local: Vec<usize>,
    /// Local inner indices of validation nodes.
    pub val_local: Vec<usize>,
    /// Local inner indices of test nodes.
    pub test_local: Vec<usize>,
}

impl LocalPartition {
    /// Number of inner nodes.
    pub fn n_inner(&self) -> usize {
        self.inner.len()
    }

    /// Number of boundary nodes.
    pub fn n_boundary(&self) -> usize {
        self.boundary.len()
    }
}

/// The full plan: one [`LocalPartition`] per rank plus global counts.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// Per-rank partitions (shared so rank threads can hold references).
    pub parts: Vec<Arc<LocalPartition>>,
    /// Number of partitions.
    pub k: usize,
    /// Global number of training nodes (loss normalizer).
    pub global_train: usize,
    /// Global number of validation nodes.
    pub global_val: usize,
    /// Global number of test nodes.
    pub global_test: usize,
    /// Input feature dimension.
    pub feat_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
}

impl PartitionPlan {
    /// Builds the plan for a dataset under a partitioning.
    ///
    /// # Panics
    ///
    /// Panics if the partitioning does not cover the dataset's graph.
    pub fn build(ds: &Dataset, part: &Partitioning) -> Self {
        let g = &ds.graph;
        let n = g.num_nodes();
        assert_eq!(part.num_nodes(), n, "partitioning does not match graph");
        let k = part.num_parts();

        // Split membership lookup: 0 none, 1 train, 2 val, 3 test.
        let mut split_of = vec![0u8; n];
        for &v in &ds.train {
            split_of[v] = 1;
        }
        for &v in &ds.val {
            split_of[v] = 2;
        }
        for &v in &ds.test {
            split_of[v] = 3;
        }

        // Inner node lists.
        let mut inner: Vec<Vec<usize>> = vec![Vec::new(); k];
        for v in 0..n {
            inner[part.part_of(v)].push(v);
        }
        // Boundary sets per partition, grouped by owner.
        // For partition i, boundary = {u : part(u) != i, u has neighbor in i}.
        let mut boundary_by_owner: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); k]; k];
        {
            let mut stamp = vec![usize::MAX; k];
            for u in 0..n {
                let pu = part.part_of(u);
                for &v in g.neighbors(u) {
                    let pv = part.part_of(v as usize);
                    if pv != pu && stamp[pv] != u {
                        stamp[pv] = u;
                        // u is a boundary node of partition pv, owned by pu.
                        boundary_by_owner[pv][pu].push(u);
                    }
                }
            }
        }

        let parts: Vec<Arc<LocalPartition>> = (0..k)
            .map(|i| {
                let inner_i = &inner[i];
                let mut boundary = Vec::new();
                let mut owner_ranges = vec![(0usize, 0usize); k];
                for (owner, list) in boundary_by_owner[i].iter().enumerate() {
                    let start = boundary.len();
                    // Lists are built in ascending u order already.
                    boundary.extend_from_slice(list);
                    owner_ranges[owner] = (start, boundary.len());
                }
                let mut nodes = inner_i.clone();
                nodes.extend_from_slice(&boundary);
                let sub = g.induced_subgraph(&nodes);
                let inner_scale: Vec<f32> = inner_i
                    .iter()
                    .map(|&v| 1.0 / g.degree(v).max(1) as f32)
                    .collect();
                let gcn_scale: Vec<f32> = nodes
                    .iter()
                    .map(|&v| 1.0 / ((g.degree(v) + 1) as f32).sqrt())
                    .collect();
                // Send lists: my inner rows that appear in peer j's
                // boundary block owned by me.
                let mut global_to_inner = std::collections::BTreeMap::new();
                for (li, &v) in inner_i.iter().enumerate() {
                    global_to_inner.insert(v, li);
                }
                let send_lists: Vec<Vec<usize>> = (0..k)
                    .map(|j| {
                        if j == i {
                            return Vec::new();
                        }
                        boundary_by_owner[j][i]
                            .iter()
                            .map(|&v| global_to_inner[&v])
                            .collect()
                    })
                    .collect();
                let features = ds.features.gather_rows(inner_i);
                let labels = match &ds.labels {
                    Labels::Single(l) => Labels::Single(inner_i.iter().map(|&v| l[v]).collect()),
                    Labels::Multi(m) => Labels::Multi(m.gather_rows(inner_i)),
                };
                let mut train_local = Vec::new();
                let mut val_local = Vec::new();
                let mut test_local = Vec::new();
                for (li, &v) in inner_i.iter().enumerate() {
                    match split_of[v] {
                        1 => train_local.push(li),
                        2 => val_local.push(li),
                        3 => test_local.push(li),
                        _ => {}
                    }
                }
                Arc::new(LocalPartition {
                    rank: i,
                    inner: inner_i.clone(),
                    boundary,
                    owner_ranges,
                    local_graph: sub.graph,
                    inner_scale,
                    gcn_scale,
                    send_lists,
                    features,
                    labels,
                    train_local,
                    val_local,
                    test_local,
                })
            })
            .collect();

        PartitionPlan {
            parts,
            k,
            global_train: ds.train.len(),
            global_val: ds.val.len(),
            global_test: ds.test.len(),
            feat_dim: ds.feat_dim(),
            num_classes: ds.num_classes,
        }
    }

    /// Total boundary nodes across partitions — the paper's Eq. 3
    /// communication volume.
    pub fn total_boundary(&self) -> usize {
        self.parts.iter().map(|p| p.n_boundary()).sum()
    }

    /// Checks cross-partition consistency invariants (send lists match
    /// peer boundary blocks, inner sets partition the node set). For
    /// tests.
    pub fn validate(&self) -> Result<(), String> {
        let k = self.k;
        for i in 0..k {
            let pi = &self.parts[i];
            for j in 0..k {
                if i == j {
                    continue;
                }
                let pj = &self.parts[j];
                let (s, e) = pj.owner_ranges[i];
                let expect: Vec<usize> = pj.boundary[s..e].to_vec();
                let got: Vec<usize> = pi.send_lists[j].iter().map(|&li| pi.inner[li]).collect();
                if expect != got {
                    return Err(format!(
                        "send list {i}->{j} mismatch: {} vs {} entries",
                        got.len(),
                        expect.len()
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::SyntheticSpec;
    use bns_partition::{metrics, MetisLikePartitioner, Partitioner, RandomPartitioner};

    fn tiny_ds() -> Dataset {
        SyntheticSpec::reddit_sim().with_nodes(500).generate(7)
    }

    #[test]
    fn plan_is_consistent() {
        let ds = tiny_ds();
        for k in [2usize, 3, 5] {
            let part = RandomPartitioner.partition(&ds.graph, k, 1);
            let plan = PartitionPlan::build(&ds, &part);
            assert!(plan.validate().is_ok(), "k={k}");
            let total_inner: usize = plan.parts.iter().map(|p| p.n_inner()).sum();
            assert_eq!(total_inner, 500);
            assert_eq!(plan.global_train, ds.train.len());
        }
    }

    #[test]
    fn boundary_counts_match_metrics() {
        let ds = tiny_ds();
        let part = MetisLikePartitioner::default().partition(&ds.graph, 4, 2);
        let plan = PartitionPlan::build(&ds, &part);
        let counts = metrics::boundary_counts(&ds.graph, &part);
        for (i, p) in plan.parts.iter().enumerate() {
            assert_eq!(p.n_boundary(), counts[i], "partition {i}");
        }
        assert_eq!(
            plan.total_boundary(),
            metrics::comm_volume(&ds.graph, &part)
        );
    }

    #[test]
    fn local_graph_preserves_inner_adjacency() {
        let ds = tiny_ds();
        let part = RandomPartitioner.partition(&ds.graph, 3, 3);
        let plan = PartitionPlan::build(&ds, &part);
        for p in &plan.parts {
            // Every inner-inner global edge must exist locally.
            let mut g2l = std::collections::HashMap::new();
            for (li, &v) in p.inner.iter().enumerate() {
                g2l.insert(v, li);
            }
            for (li, &v) in p.inner.iter().enumerate() {
                let mut expected: Vec<usize> = ds
                    .graph
                    .neighbors(v)
                    .iter()
                    .filter_map(|&u| g2l.get(&(u as usize)).copied())
                    .collect();
                expected.sort_unstable();
                let actual: Vec<usize> = p
                    .local_graph
                    .neighbors(li)
                    .iter()
                    .map(|&x| x as usize)
                    .filter(|&x| x < p.n_inner())
                    .collect();
                assert_eq!(actual, expected, "inner adjacency of global {v}");
            }
        }
    }

    #[test]
    fn every_inner_neighbor_is_local() {
        // Each inner node's full-graph neighborhood must be fully present
        // locally (as inner or boundary nodes) — this is what makes p=1
        // training exact.
        let ds = tiny_ds();
        let part = RandomPartitioner.partition(&ds.graph, 4, 5);
        let plan = PartitionPlan::build(&ds, &part);
        for p in &plan.parts {
            for (li, &v) in p.inner.iter().enumerate() {
                assert_eq!(
                    p.local_graph.degree(li),
                    ds.graph.degree(v),
                    "local degree of inner node {v}"
                );
            }
        }
    }

    #[test]
    fn labels_and_splits_are_local_views() {
        let ds = tiny_ds();
        let part = RandomPartitioner.partition(&ds.graph, 2, 9);
        let plan = PartitionPlan::build(&ds, &part);
        let total_train: usize = plan.parts.iter().map(|p| p.train_local.len()).sum();
        assert_eq!(total_train, ds.train.len());
        let Labels::Single(global) = &ds.labels else {
            panic!()
        };
        for p in &plan.parts {
            let Labels::Single(local) = &p.labels else {
                panic!()
            };
            for (li, &v) in p.inner.iter().enumerate() {
                assert_eq!(local[li], global[v]);
                assert_eq!(p.features.row(li), ds.features.row(v));
            }
        }
    }
}
