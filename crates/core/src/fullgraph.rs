//! Single-rank full-graph reference trainer.
//!
//! Used (a) to verify that the partition-parallel engine at `p = 1`
//! computes exactly full-graph training (the paper's premise that
//! vanilla partition parallelism is *exact*), and (b) as the shared
//! infrastructure for the sampling-based baselines in [`crate::minibatch`].

use bns_data::{Dataset, Labels};
use bns_nn::loss::{bce_with_logits, softmax_cross_entropy};
use bns_nn::metrics::{accuracy, micro_f1};
use bns_nn::{Adam, SageModel};
use bns_tensor::{Matrix, SeededRng};

/// Configuration for full-graph training.
#[derive(Debug, Clone)]
pub struct FullGraphConfig {
    /// Hidden-layer widths.
    pub hidden: Vec<usize>,
    /// Input dropout per layer.
    pub dropout: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Epochs.
    pub epochs: usize,
    /// Seed (model init + dropout).
    pub seed: u64,
}

impl FullGraphConfig {
    /// Small fast config for tests.
    pub fn quick_test() -> Self {
        Self {
            hidden: vec![16],
            dropout: 0.0,
            lr: 0.01,
            epochs: 10,
            seed: 0,
        }
    }
}

/// Result of a full-graph run.
#[derive(Debug, Clone)]
pub struct FullGraphRun {
    /// Training loss per epoch.
    pub losses: Vec<f64>,
    /// Final validation score.
    pub final_val: f64,
    /// Final test score.
    pub final_test: f64,
    /// Mean epoch wall time, seconds.
    pub avg_epoch_s: f64,
    /// The trained model.
    pub model: SageModel,
}

/// Trains GraphSAGE on the whole graph in one process.
pub fn train_full(ds: &Dataset, cfg: &FullGraphConfig) -> FullGraphRun {
    // Single rank: give the kernels the whole thread budget.
    let pool_threads = bns_tensor::ThreadConfig::from_env().threads;
    let pool = (pool_threads > 1).then(|| bns_tensor::ThreadPool::new(pool_threads));
    let _pool_guard = pool.map(bns_tensor::pool::install);
    let mut dims = vec![ds.feat_dim()];
    dims.extend_from_slice(&cfg.hidden);
    dims.push(ds.num_classes);
    let mut init_rng = SeededRng::new(cfg.seed);
    let mut model = SageModel::new(&dims, cfg.dropout, &mut init_rng);
    let mut rng = SeededRng::new(cfg.seed ^ 0x5eed_0000).fork(1);
    let mut opt = Adam::new(cfg.lr);
    let scale = ds.mean_scale();
    let mut losses = Vec::with_capacity(cfg.epochs);
    let t0 = std::time::Instant::now();
    for epoch in 0..cfg.epochs {
        let _epoch_span = bns_telemetry::span!("epoch", epoch = epoch);
        let fwd = bns_telemetry::Timed::with_args("compute", &[("epoch", epoch.into())]);
        let (out, caches) = model.forward_full(&ds.graph, &ds.features, &scale, true, &mut rng);
        let (loss, mut dlogits) = match &ds.labels {
            Labels::Single(labels) => {
                let (l, d, _) = softmax_cross_entropy(&out, labels, &ds.train);
                (l, d)
            }
            Labels::Multi(y) => bce_with_logits(&out, y, &ds.train),
        };
        dlogits.scale(1.0 / ds.train.len().max(1) as f32);
        let grads = model.backward_full(&ds.graph, &caches, &dlogits);
        let grad_owned: Vec<Matrix> = SageModel::grads_refs(&grads).into_iter().cloned().collect();
        let grefs: Vec<&Matrix> = grad_owned.iter().collect();
        let mut params = model.params_mut();
        opt.step(&mut params, &grefs);
        let _ = fwd.stop();
        let epoch_loss = loss / ds.train.len().max(1) as f64;
        bns_telemetry::series_push("epoch.loss", epoch as u64, epoch_loss);
        losses.push(epoch_loss);
    }
    let avg_epoch_s = t0.elapsed().as_secs_f64() / cfg.epochs.max(1) as f64;
    let (final_val, final_test) = evaluate(&model, ds);
    FullGraphRun {
        losses,
        final_val,
        final_test,
        avg_epoch_s,
        model,
    }
}

/// Scores a trained model on the dataset's val and test splits
/// (accuracy for single-label, micro-F1 for multi-label).
pub fn evaluate(model: &SageModel, ds: &Dataset) -> (f64, f64) {
    let scale = ds.mean_scale();
    let mut rng = SeededRng::new(0);
    let (out, _) = model.forward_full(&ds.graph, &ds.features, &scale, false, &mut rng);
    match &ds.labels {
        Labels::Single(labels) => (
            accuracy(&out, labels, &ds.val),
            accuracy(&out, labels, &ds.test),
        ),
        Labels::Multi(y) => (micro_f1(&out, y, &ds.val), micro_f1(&out, y, &ds.test)),
    }
}

/// Trains a structure-unaware MLP (same layer widths, no graph) — the
/// control the paper's introduction contrasts GCNs against. Returns
/// `(final_val, final_test)`.
///
/// On the synthetic datasets a fraction of features is deliberately
/// drawn from the wrong class prototype, so the MLP's ceiling sits
/// below the GCN's: neighbor aggregation is what recovers those nodes.
pub fn train_mlp(ds: &Dataset, cfg: &FullGraphConfig) -> (f64, f64) {
    use bns_nn::{Activation, LinearLayer};
    let mut dims = vec![ds.feat_dim()];
    dims.extend_from_slice(&cfg.hidden);
    dims.push(ds.num_classes);
    let mut rng = SeededRng::new(cfg.seed);
    let last = dims.len() - 2;
    let mut layers: Vec<LinearLayer> = (0..dims.len() - 1)
        .map(|l| {
            let act = if l == last {
                Activation::Identity
            } else {
                Activation::Relu
            };
            LinearLayer::new(dims[l], dims[l + 1], act, cfg.dropout, &mut rng)
        })
        .collect();
    let mut opt = Adam::new(cfg.lr);
    let mut drop_rng = SeededRng::new(cfg.seed ^ 0x11);
    for _ in 0..cfg.epochs {
        let mut h = ds.features.clone();
        let mut caches = Vec::with_capacity(layers.len());
        for layer in &layers {
            let (next, c) = layer.forward(&h, true, &mut drop_rng);
            caches.push(c);
            h = next;
        }
        let (_, mut d) = match &ds.labels {
            Labels::Single(labels) => {
                let (l, d, _) = softmax_cross_entropy(&h, labels, &ds.train);
                (l, d)
            }
            Labels::Multi(y) => bce_with_logits(&h, y, &ds.train),
        };
        d.scale(1.0 / ds.train.len().max(1) as f32);
        let mut grads = Vec::with_capacity(layers.len());
        for l in (0..layers.len()).rev() {
            let (dx, g) = layers[l].backward(&caches[l], &d);
            grads.push(g);
            d = dx;
        }
        grads.reverse();
        let owned: Vec<&Matrix> = grads.iter().flat_map(|g| [&g.w, &g.b]).collect();
        let mut params: Vec<&mut Matrix> = layers
            .iter_mut()
            .flat_map(|l| [&mut l.w, &mut l.b])
            .collect();
        opt.step(&mut params, &owned);
    }
    // Evaluate.
    let mut h = ds.features.clone();
    let mut r = SeededRng::new(0);
    for layer in &layers {
        let (next, _) = layer.forward(&h, false, &mut r);
        h = next;
    }
    match &ds.labels {
        Labels::Single(labels) => (
            bns_nn::metrics::accuracy(&h, labels, &ds.val),
            bns_nn::metrics::accuracy(&h, labels, &ds.test),
        ),
        Labels::Multi(y) => (
            bns_nn::metrics::micro_f1(&h, y, &ds.val),
            bns_nn::metrics::micro_f1(&h, y, &ds.test),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::SyntheticSpec;

    #[test]
    fn full_graph_learns() {
        let ds = SyntheticSpec::reddit_sim().with_nodes(600).generate(3);
        let cfg = FullGraphConfig {
            epochs: 50,
            hidden: vec![32],
            ..FullGraphConfig::quick_test()
        };
        let run = train_full(&ds, &cfg);
        assert!(run.losses.last().unwrap() < &run.losses[0]);
        assert!(run.final_test > 0.5, "test {}", run.final_test);
    }

    /// The paper's motivating claim: structure-unaware MLPs lose to
    /// GCNs. Our datasets corrupt a fraction of features, so the MLP's
    /// ceiling is visibly lower.
    #[test]
    fn gcn_beats_mlp_on_corrupted_features() {
        let mut spec = SyntheticSpec::reddit_sim().with_nodes(800);
        spec.feature_corruption = 0.25;
        let ds = spec.generate(6);
        let cfg = FullGraphConfig {
            epochs: 60,
            hidden: vec![32],
            ..FullGraphConfig::quick_test()
        };
        let gcn = train_full(&ds, &cfg);
        let (_, mlp_test) = train_mlp(&ds, &cfg);
        assert!(
            gcn.final_test > mlp_test + 0.05,
            "GCN {} vs MLP {mlp_test}",
            gcn.final_test
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = SyntheticSpec::reddit_sim().with_nodes(300).generate(5);
        let cfg = FullGraphConfig::quick_test();
        let a = train_full(&ds, &cfg);
        let b = train_full(&ds, &cfg);
        assert_eq!(a.losses, b.losses);
        assert_eq!(a.final_test, b.final_test);
    }
}
