//! Empirical feature-approximation variance (the paper's Table 2 and
//! Appendix A).
//!
//! The paper bounds the variance of the one-layer embedding
//! approximation `Z̃` for BNS-GCN at `O(|B_i| γ² / s_ℓ)` versus
//! `O(|N_i| γ² / s_ℓ)` for LADIES, `O(|V| γ² / s_ℓ)` for FastGCN and
//! `O(D |V_i| γ² / s_n)` for GraphSAGE, with `B_i ⊆ N_i ⊆ V`. This
//! module measures those variances empirically under a *fixed sampling
//! budget* so the ordering can be verified on real partition plans.

use crate::plan::LocalPartition;
use bns_nn::aggregate::scaled_sum_aggregate;
use bns_tensor::{Matrix, SeededRng};

/// Which estimator to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarianceMethod {
    /// BNS: sample boundary nodes only, rescale by `1/p`.
    Bns,
    /// FastGCN-style: sample the same *number* of support nodes from the
    /// whole local node set (uniformly), rescale by inclusion
    /// probability.
    FastGcnStyle,
    /// LADIES-style: sample support nodes from the layer's neighbor set
    /// (inner ∪ boundary restricted to actual neighbors), rescale.
    LadiesStyle,
    /// GraphSAGE-style: per-target-node neighbor sampling with a fanout
    /// chosen to match the same expected support size.
    SageStyle,
}

impl VarianceMethod {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            VarianceMethod::Bns => "BNS-GCN",
            VarianceMethod::FastGcnStyle => "FastGCN",
            VarianceMethod::LadiesStyle => "LADIES",
            VarianceMethod::SageStyle => "GraphSAGE",
        }
    }
}

/// Result of a variance measurement.
#[derive(Debug, Clone)]
pub struct VarianceReport {
    /// Method measured.
    pub method: VarianceMethod,
    /// Average per-node squared error of the approximate aggregate,
    /// `E‖Z̃ - Z‖²_F / n_in`.
    pub mean_sq_error: f64,
    /// Expected number of sampled support nodes.
    pub support_size: f64,
}

/// Measures the empirical variance of a one-layer aggregate under the
/// given method, holding the expected support size equal to
/// `n_in + p · |B_i|` (the budget BNS uses).
///
/// `h` must provide a feature row for every local node of `lp`;
/// `global_n` is `|V|`, the full graph's node count — FastGCN samples
/// its support from all of `V` (which is exactly why its variance bound
/// carries the `|V|` factor in the paper's Table 2).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1]` or `h` is too small.
pub fn measure_variance(
    lp: &LocalPartition,
    global_n: usize,
    h: &Matrix,
    method: VarianceMethod,
    p: f64,
    trials: usize,
    rng: &mut SeededRng,
) -> VarianceReport {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
    let n_in = lp.n_inner();
    let n_bd = lp.n_boundary();
    let n_local = n_in + n_bd;
    assert!(h.rows() >= n_local, "feature matrix too small");
    let g = &lp.local_graph;

    // Exact aggregate (full boundary present).
    let exact = scaled_sum_aggregate(g, h, n_in, &lp.inner_scale);

    let budget = (p * n_bd as f64).max(1.0);
    let mut total_sq = 0.0f64;
    for _ in 0..trials {
        // Per-trial support-inclusion weights: w[u] = 1/P(u included); 0 if dropped.
        let mut weight = vec![0.0f32; n_local];
        match method {
            VarianceMethod::Bns => {
                for w in weight.iter_mut().take(n_in) {
                    *w = 1.0; // inner nodes always present
                }
                for w in weight.iter_mut().skip(n_in) {
                    if rng.bernoulli(p) {
                        *w = (1.0 / p) as f32;
                    }
                }
            }
            VarianceMethod::FastGcnStyle => {
                // FastGCN draws its support uniformly from the *global*
                // node set V with the same total budget; a local node is
                // included with probability (n_in + budget)/|V| — the
                // |V| factor in the paper's Table 2 bound. Samples that
                // land outside this partition's neighborhood contribute
                // nothing and are wasted.
                let q = ((n_in as f64 + budget) / global_n as f64).min(1.0);
                for w in weight.iter_mut() {
                    if rng.bernoulli(q) {
                        *w = (1.0 / q) as f32;
                    }
                }
            }
            VarianceMethod::LadiesStyle => {
                // Support restricted to the actual neighbor set of the
                // targets (all local nodes with an inner neighbor).
                let mut in_nbr = vec![false; n_local];
                for v in 0..n_in {
                    for &u in g.neighbors(v) {
                        in_nbr[u as usize] = true;
                    }
                }
                let nbr_count = in_nbr.iter().filter(|&&b| b).count().max(1);
                let q = ((n_in as f64 + budget) / nbr_count as f64).min(1.0);
                for u in 0..n_local {
                    if in_nbr[u] && rng.bernoulli(q) {
                        weight[u] = (1.0 / q) as f32;
                    }
                }
            }
            VarianceMethod::SageStyle => {
                // Handled per-target below (sampling is per node).
            }
        }

        let approx = if method == VarianceMethod::SageStyle {
            sage_style_trial(lp, h, p, rng)
        } else {
            // Weighted aggregate: scale rows by weight, reuse the kernel.
            let mut hw = h.slice_rows(0, n_local);
            for (u, &w) in weight.iter().enumerate() {
                for x in hw.row_mut(u) {
                    *x *= w;
                }
            }
            scaled_sum_aggregate(g, &hw, n_in, &lp.inner_scale)
        };
        let diff = &approx - &exact;
        total_sq += diff.frobenius_norm_sq() as f64;
    }
    VarianceReport {
        method,
        mean_sq_error: total_sq / (trials as f64 * n_in as f64),
        support_size: n_in as f64 + budget,
    }
}

/// One GraphSAGE-style trial: every target samples `ceil(p·deg)`
/// neighbors **with replacement** (the paper notes resampling duplicates
/// is one of node sampling's weaknesses) and averages them.
fn sage_style_trial(lp: &LocalPartition, h: &Matrix, p: f64, rng: &mut SeededRng) -> Matrix {
    let n_in = lp.n_inner();
    let g = &lp.local_graph;
    let d = h.cols();
    let mut out = Matrix::zeros(n_in, d);
    for v in 0..n_in {
        let nbrs = g.neighbors(v);
        if nbrs.is_empty() {
            continue;
        }
        let fanout = ((p * nbrs.len() as f64).ceil() as usize).max(1);
        let full_deg = (1.0 / lp.inner_scale[v]) as usize;
        let row = out.row_mut(v);
        for _ in 0..fanout {
            let u = nbrs[rng.usize_below(nbrs.len())] as usize;
            let hr = h.row(u);
            for (o, &x) in row.iter_mut().zip(hr) {
                *o += x;
            }
        }
        // Unbiased w.r.t. the local mean: sum/fanout · (deg_local/deg_full)
        let scale = nbrs.len() as f32 / (fanout as f32 * full_deg.max(1) as f32);
        for o in row.iter_mut() {
            *o *= scale;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PartitionPlan;
    use bns_data::SyntheticSpec;
    use bns_partition::{MetisLikePartitioner, Partitioner};

    // The Table 2 regime: a quality (METIS-like) partition, where
    // boundary sets are small relative to the neighbor set.
    fn setup() -> (PartitionPlan, Matrix, usize) {
        let ds = SyntheticSpec::reddit_sim().with_nodes(800).generate(21);
        let part = MetisLikePartitioner::default().partition(&ds.graph, 4, 2);
        let plan = PartitionPlan::build(&ds, &part);
        let n_local = plan.parts[0].n_inner() + plan.parts[0].n_boundary();
        let mut rng = SeededRng::new(9);
        let h = Matrix::random_normal(n_local, 8, 0.0, 1.0, &mut rng);
        (plan, h, ds.num_nodes())
    }

    #[test]
    fn bns_variance_shrinks_with_p() {
        let (plan, h, n) = setup();
        let lp = &plan.parts[0];
        let mut rng = SeededRng::new(1);
        let v_low =
            measure_variance(lp, n, &h, VarianceMethod::Bns, 0.1, 60, &mut rng).mean_sq_error;
        let v_high =
            measure_variance(lp, n, &h, VarianceMethod::Bns, 0.8, 60, &mut rng).mean_sq_error;
        assert!(
            v_high < v_low,
            "variance should shrink with p: p=.8 {v_high} vs p=.1 {v_low}"
        );
    }

    #[test]
    fn bns_beats_fastgcn_style_at_equal_budget() {
        // The paper's Table 2 ordering: Var(BNS) < Var(FastGCN) because
        // B_i ⊂ V and BNS never drops inner nodes.
        let (plan, h, n) = setup();
        let lp = &plan.parts[0];
        let mut rng = SeededRng::new(2);
        let bns = measure_variance(lp, n, &h, VarianceMethod::Bns, 0.3, 80, &mut rng);
        let fast = measure_variance(lp, n, &h, VarianceMethod::FastGcnStyle, 0.3, 80, &mut rng);
        assert!(
            bns.mean_sq_error < fast.mean_sq_error,
            "BNS {} vs FastGCN {}",
            bns.mean_sq_error,
            fast.mean_sq_error
        );
        // Budgets match by construction.
        assert!((bns.support_size - fast.support_size).abs() < 1e-9);
    }

    #[test]
    fn ladies_between_bns_and_fastgcn() {
        let (plan, h, n) = setup();
        let lp = &plan.parts[0];
        let mut rng = SeededRng::new(3);
        let bns = measure_variance(lp, n, &h, VarianceMethod::Bns, 0.3, 80, &mut rng).mean_sq_error;
        let ladies = measure_variance(lp, n, &h, VarianceMethod::LadiesStyle, 0.3, 80, &mut rng)
            .mean_sq_error;
        let fast = measure_variance(lp, n, &h, VarianceMethod::FastGcnStyle, 0.3, 80, &mut rng)
            .mean_sq_error;
        assert!(bns < ladies, "BNS {bns} vs LADIES {ladies}");
        assert!(ladies < fast, "LADIES {ladies} vs FastGCN {fast}");
    }

    #[test]
    fn p_one_has_zero_variance() {
        let (plan, h, n) = setup();
        let lp = &plan.parts[1];
        let mut rng = SeededRng::new(4);
        let h1 = {
            let n_local = lp.n_inner() + lp.n_boundary();
            Matrix::random_normal(n_local, 8, 0.0, 1.0, &mut rng)
        };
        let _ = h;
        let v = measure_variance(lp, n, &h1, VarianceMethod::Bns, 1.0, 10, &mut rng);
        assert!(v.mean_sq_error < 1e-10, "p=1 variance {}", v.mean_sq_error);
    }
}
