//! End-to-end properties of the quantized boundary exchange: every
//! wire precision trains deterministically (run-to-run, and invariant
//! to the worker count), the quantized formats genuinely perturb the
//! arithmetic (their curves differ from exact — quantization is not a
//! no-op), and the byte counters report the *compressed* payload with
//! exact arithmetic ratios (selection metadata rides the control
//! class, so boundary bytes are pure payload).
//!
//! The dataset uses `feat_dim == hidden == 64` so every boundary block
//! — features forward, gradients backward, at every layer — carries
//! rows of exactly 64 floats, which makes the per-format byte counts
//! exact closed forms of the exact-path count:
//!
//! * f16/bf16: 2 bytes per element — exactly half the exact bytes.
//! * int8: per row, 64 payload bytes + 8 header bytes against 256
//!   exact bytes — exactly 72/256 of the exact bytes.

use bns_comm::WirePrecision;
use bns_data::SyntheticSpec;
use bns_gcn::engine::{train_with_plan, ModelArch, TrainConfig, TrainRun};
use bns_gcn::plan::PartitionPlan;
use bns_gcn::sampling::BoundarySampling;
use bns_partition::{MetisLikePartitioner, Partitioner};
use std::sync::Arc;

const D: usize = 64;

fn plan() -> Arc<PartitionPlan> {
    let ds = Arc::new(
        SyntheticSpec::reddit_sim()
            .with_nodes(320)
            .with_feat_dim(D)
            .generate(13),
    );
    let part = MetisLikePartitioner::default().partition(&ds.graph, 3, 2);
    Arc::new(PartitionPlan::build(&ds, &part))
}

fn cfg(precision: WirePrecision) -> TrainConfig {
    TrainConfig {
        arch: ModelArch::Sage,
        hidden: vec![D],
        dropout: 0.2,
        lr: 0.01,
        epochs: 4,
        sampling: BoundarySampling::Bns { p: 0.5 },
        eval_every: 0,
        seed: 21,
        clip_norm: Some(5.0),
        pipeline: false,
        workers: None,
        wire_precision: Some(precision),
    }
}

fn losses(run: &TrainRun) -> Vec<u64> {
    run.epochs.iter().map(|e| e.loss.to_bits()).collect()
}

/// Identical configs give bit-identical loss curves under every wire
/// precision — quantization (including the stochastically rounded
/// gradient path) must not introduce any run-to-run nondeterminism.
#[test]
fn quantized_training_is_run_to_run_deterministic() {
    let plan = plan();
    for precision in WirePrecision::ALL {
        let c = cfg(precision);
        let a = train_with_plan(&plan, &c);
        let b = train_with_plan(&plan, &c);
        assert_eq!(
            losses(&a),
            losses(&b),
            "{precision}: loss curve diverged between identical runs"
        );
    }
}

/// The loss curve is a pure function of the config — the number of
/// cooperative workers multiplexing the rank tasks must not leak into
/// results, quantized or not (the SR streams are counter-based, keyed
/// by (seed, tag, peer, row, element), never by execution order).
#[test]
fn quantized_training_is_worker_count_invariant() {
    let plan = plan();
    for precision in [WirePrecision::F16, WirePrecision::Int8] {
        let mut c = cfg(precision);
        c.workers = Some(1);
        let reference = losses(&train_with_plan(&plan, &c));
        for w in [2usize, 4] {
            c.workers = Some(w);
            assert_eq!(
                reference,
                losses(&train_with_plan(&plan, &c)),
                "{precision}: loss curve changed with workers = {w}"
            );
        }
    }
}

/// Each quantized format actually changes the arithmetic: its curve
/// differs from the exact path's (otherwise the codec is silently not
/// engaged), while staying finite and converging in the same regime.
#[test]
fn quantized_curves_differ_from_exact_but_converge() {
    let plan = plan();
    let exact = train_with_plan(&plan, &cfg(WirePrecision::Exact));
    let exact_bits = losses(&exact);
    for precision in [WirePrecision::F16, WirePrecision::Bf16, WirePrecision::Int8] {
        let run = train_with_plan(&plan, &cfg(precision));
        assert_ne!(
            exact_bits,
            losses(&run),
            "{precision}: curve identical to exact — codec not engaged?"
        );
        let first = run.epochs.first().unwrap().loss;
        let last = run.epochs.last().unwrap().loss;
        assert!(last.is_finite(), "{precision}: loss diverged to {last}");
        assert!(
            last < first,
            "{precision}: loss did not decrease ({first} -> {last})"
        );
    }
}

/// `TrafficStats` reports the compressed wire payload: with every
/// exchanged block at d = 64, f16/bf16 move exactly half the exact
/// bytes and int8 exactly 72/256 of them.
#[test]
fn traffic_counters_report_compressed_bytes() {
    let plan = plan();
    let exact = train_with_plan(&plan, &cfg(WirePrecision::Exact)).total_boundary_bytes();
    assert!(exact > 0, "no boundary traffic in the baseline");
    for precision in [WirePrecision::F16, WirePrecision::Bf16] {
        let got = train_with_plan(&plan, &cfg(precision)).total_boundary_bytes();
        assert_eq!(2 * got, exact, "{precision}: not exactly half the bytes");
    }
    let int8 = train_with_plan(&plan, &cfg(WirePrecision::Int8)).total_boundary_bytes();
    assert_eq!(
        int8 * (4 * D as u64),
        exact * (D as u64 + 8),
        "int8: not exactly (d+8)/4d of the exact bytes"
    );
    // The headline compression ratios the formats promise.
    assert!(exact as f64 / int8 as f64 >= 3.5);
}
