//! Bitwise equivalence of the overlapped, arena-backed exchange against
//! the retained serial reference, over random partitionings, sampling
//! rates and kernel-pool sizes.
//!
//! The overlapped path receives boundary blocks in *arrival* order
//! ([`bns_comm::RankComm::recv_any`]) but writes them into fixed
//! per-owner row ranges, and applies gradient contributions in fixed
//! ascending peer order — so it promises results bit-identical to the
//! head-of-line-blocking serial exchange. These tests hold that promise
//! across: the feature exchange itself, the segmented
//! inner-partial/boundary-fold forward composed on top of it (dropout
//! RNG stream included), the gradient scatter-add direction, and arena
//! buffer reuse across rounds.

use bns_comm::{run_ranks, WirePrecision};
use bns_data::SyntheticSpec;
use bns_gcn::engine::{train_with_plan, ModelArch, TrainConfig};
use bns_gcn::exchange::{
    exchange_features_eval, exchange_features_serial, exchange_gradients_overlapped,
    exchange_gradients_serial, exchange_selection, recv_boundary_blocks, send_boundary_rows,
    ExchangeArena,
};
use bns_gcn::plan::PartitionPlan;
use bns_gcn::sampling::{build_epoch_topology, BoundarySampling};
use bns_nn::{Activation, SageLayer};
use bns_partition::{Partitioner, RandomPartitioner};
use bns_tensor::pool::{self, ThreadPool};
use bns_tensor::{Matrix, SeededRng};
use proptest::prelude::*;
use std::sync::Arc;

fn assert_bitwise(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit mismatch at flat index {i}: {x} vs {y}"
        );
    }
}

/// Every rank runs three rounds (same arena throughout, so rounds 2+
/// exercise buffer recycling) of: serial feature exchange vs
/// send/compute/recv overlapped exchange, fused forward on the serial
/// halo vs segmented forward on the overlapped halo, and serial vs
/// overlapped gradient exchange.
fn check_world(k: usize, p: f64, seed: u64, threads: usize) {
    let ds = Arc::new(SyntheticSpec::reddit_sim().with_nodes(260).generate(7));
    let part = RandomPartitioner.partition(&ds.graph, k, seed);
    let plan = Arc::new(PartitionPlan::build(&ds, &part));
    let plan2 = Arc::clone(&plan);
    run_ranks(k, move |mut comm| {
        let me = comm.rank();
        let _guard = (threads > 1).then(|| pool::install(ThreadPool::new(threads)));
        let lp = Arc::clone(&plan2.parts[me]);
        let mut rng = SeededRng::new(seed ^ 0xab5).fork(me as u64 + 1);
        let topo = build_epoch_topology(&lp, &BoundarySampling::Bns { p }, 0, seed, &mut rng);
        let ex = exchange_selection(&mut comm, &lp, &topo.selected, 0);
        let n_in = lp.n_inner();
        let n_sel = topo.selected.len();
        let scale = topo.feature_scale;
        let mut arena = ExchangeArena::new();
        for round in 0..3u64 {
            let d = 2 + ((seed + round) % 6) as usize;
            let mut data_rng = SeededRng::new(seed ^ (round << 8)).fork(me as u64);
            let h_inner = Matrix::random_normal(n_in, d, 0.0, 1.0, &mut data_rng);
            let tag = 10 + round * 5;

            // Feature exchange: serial reference vs overlapped.
            let h_full = exchange_features_serial(&mut comm, &ex, &h_inner, n_sel, scale, tag);
            send_boundary_rows(
                &mut comm,
                &ex,
                &h_inner,
                tag + 1,
                &mut arena,
                WirePrecision::Exact,
            );
            recv_boundary_blocks(
                &mut comm,
                &ex,
                n_sel,
                d,
                scale,
                tag + 1,
                &mut arena,
                None,
                WirePrecision::Exact,
            );
            assert_bitwise(
                &h_full,
                &h_inner.vstack(arena.boundary()),
                "feature exchange",
            );

            // The one-call arena-backed eval/serving exchange (what the
            // engine's selects_all eval path now uses) must also match
            // the serial reference bitwise.
            let h_eval =
                exchange_features_eval(&mut comm, &ex, &h_inner, n_sel, scale, tag + 4, &mut arena);
            assert_bitwise(&h_full, &h_eval, "eval exchange");

            // Segmented forward composed on the overlapped halo vs the
            // fused forward on the serial halo, identical RNG streams
            // (dropout draws must line up row for row).
            let mut init = SeededRng::new(seed ^ 0x1a7e).fork(me as u64);
            let layer = SageLayer::new(d, 4, Activation::Relu, 0.4, &mut init);
            let mut rng_fused = SeededRng::new(seed ^ (round << 16)).fork(me as u64);
            let mut rng_seg = rng_fused.clone();
            let (out_fused, _) = layer.forward(
                &topo.graph,
                &h_full,
                n_in,
                &topo.row_scale,
                true,
                &mut rng_fused,
            );
            let partial = layer.forward_inner(&topo.graph, &h_inner, true, &mut rng_seg);
            let (out_seg, _) = layer.forward_boundary(
                &topo.graph,
                partial,
                arena.boundary(),
                &topo.row_scale,
                true,
                &mut rng_seg,
            );
            assert_bitwise(&out_fused, &out_seg, "segmented forward");

            // Gradient exchange: peers' scatter-add contributions must
            // land identically whichever order their blocks arrive in.
            let d_bd = Matrix::random_normal(n_sel, d, 0.0, 1.0, &mut data_rng);
            let base = Matrix::random_normal(n_in, d, 0.0, 1.0, &mut data_rng);
            let mut g_serial = base.clone();
            exchange_gradients_serial(&mut comm, &ex, &mut g_serial, &d_bd, scale, tag + 2);
            let mut g_ovl = base;
            exchange_gradients_overlapped(
                &mut comm,
                &ex,
                &mut g_ovl,
                &d_bd,
                scale,
                tag + 3,
                &mut arena,
                None,
                WirePrecision::Exact,
                0,
            );
            assert_bitwise(&g_serial, &g_ovl, "gradient exchange");
        }
        true
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn overlapped_exchange_is_bitwise_serial(
        k in 2usize..5,
        p in 0.0f64..=1.0,
        seed in 0u64..1000,
        threads_idx in 0usize..3,
    ) {
        check_world(k, p, seed, [1, 2, 4][threads_idx]);
    }

    /// p = 0 (nothing selected) and p = 1 (everything selected) are the
    /// exchange's degenerate/maximal cases; pin them explicitly.
    #[test]
    fn overlapped_exchange_static_endpoints(
        k in 2usize..5,
        seed in 0u64..1000,
    ) {
        check_world(k, 0.0, seed, 2);
        check_world(k, 1.0, seed, 2);
    }
}

/// Whole-run determinism through the overlapped engine: identical
/// configs give bit-identical loss curves, including the pipelined
/// (stale-exchange) path.
#[test]
fn training_curves_are_run_to_run_deterministic() {
    let ds = Arc::new(SyntheticSpec::reddit_sim().with_nodes(300).generate(9));
    let part = RandomPartitioner.partition(&ds.graph, 3, 4);
    let plan = Arc::new(PartitionPlan::build(&ds, &part));
    for (p, pipeline) in [(0.5, false), (1.0, false), (1.0, true)] {
        let cfg = TrainConfig {
            arch: ModelArch::Sage,
            hidden: vec![12],
            dropout: 0.3,
            lr: 0.01,
            epochs: 4,
            sampling: BoundarySampling::Bns { p },
            eval_every: 2,
            seed: 11,
            clip_norm: Some(5.0),
            pipeline,
            workers: None,
            wire_precision: None,
        };
        let a = train_with_plan(&plan, &cfg);
        let b = train_with_plan(&plan, &cfg);
        for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(
                ea.loss.to_bits(),
                eb.loss.to_bits(),
                "p={p} pipeline={pipeline}: loss diverged between runs"
            );
            assert_eq!(
                ea.val_score.map(f64::to_bits),
                eb.val_score.map(f64::to_bits)
            );
        }
    }
}
