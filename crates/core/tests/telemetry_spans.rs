//! End-to-end telemetry check: the spans emitted by the
//! partition-parallel engine must reproduce the phase breakdown that
//! [`bns_gcn::engine::EpochStats`] reports. The engine accumulates the
//! exact `f64` each [`bns_telemetry::Timed::stop`] records, so the
//! span-derived totals are expected to be bit-identical; the assertions
//! below allow 1% slack (the acceptance bound) but also report the
//! observed error.
//!
//! This file must stay a single `#[test]` binary: telemetry capture is
//! process-global, and a concurrently running instrumented test would
//! interleave its spans with ours.

use bns_data::SyntheticSpec;
use bns_gcn::engine::{train, TrainConfig};
use bns_gcn::sampling::BoundarySampling;
use bns_partition::{MetisLikePartitioner, Partitioner};
use bns_telemetry::{ArgValue, SpanEvent};
use std::collections::HashMap;
use std::sync::Arc;

const K: usize = 3;
const EPOCHS: usize = 5;

fn arg_u64(span: &SpanEvent, key: &str) -> Option<u64> {
    span.args.iter().find_map(|(k, v)| match v {
        ArgValue::U64(x) if *k == key => Some(*x),
        _ => None,
    })
}

fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-12)
}

#[test]
fn span_totals_match_epoch_stats() {
    bns_telemetry::reset();
    bns_telemetry::enable();

    let ds = Arc::new(SyntheticSpec::reddit_sim().with_nodes(500).generate(7));
    let part = MetisLikePartitioner::default().partition(&ds.graph, K, 0);
    let cfg = TrainConfig {
        epochs: EPOCHS,
        sampling: BoundarySampling::Bns { p: 0.5 },
        eval_every: 0,
        ..TrainConfig::quick_test()
    };
    let run = train(&ds, &part, &cfg);

    bns_telemetry::disable();
    let spans = bns_telemetry::drain_spans();
    assert!(!spans.is_empty(), "capture was enabled but no spans landed");

    // One timeline per rank: every trainer span carries a rank tid.
    let mut rank_tids: Vec<u32> = spans
        .iter()
        .filter(|s| matches!(s.name, "sample" | "exchange" | "compute" | "reduce"))
        .map(|s| s.tid)
        .collect();
    rank_tids.sort_unstable();
    rank_tids.dedup();
    assert_eq!(
        rank_tids,
        (0..K as u32).collect::<Vec<_>>(),
        "expected exactly one tid per rank"
    );

    // Sum phase durations per (epoch, rank, phase), mirroring the
    // engine's per-rank accumulators.
    let mut sums: HashMap<(u64, u32, &str), f64> = HashMap::new();
    for span in &spans {
        if !matches!(span.name, "sample" | "exchange" | "compute" | "reduce") {
            continue;
        }
        let epoch = arg_u64(span, "epoch").expect("phase span lost its epoch argument");
        *sums.entry((epoch, span.tid, span.name)).or_default() += span.dur_s;
    }

    assert_eq!(run.epochs.len(), EPOCHS);
    for (epoch, stats) in run.epochs.iter().enumerate() {
        // EpochStats keeps the max over ranks (the synchronous-training
        // bottleneck); reduce the span sums the same way.
        let max_of = |phase: &str| -> f64 {
            (0..K as u32)
                .map(|tid| {
                    sums.get(&(epoch as u64, tid, phase))
                        .copied()
                        .unwrap_or(0.0)
                })
                .fold(0.0, f64::max)
        };
        for (phase, reported) in [
            ("sample", stats.sample_s),
            ("exchange", stats.comm_s),
            ("compute", stats.compute_s),
            ("reduce", stats.reduce_s),
        ] {
            let derived = max_of(phase);
            assert!(
                rel_err(derived, reported) <= 0.01,
                "epoch {epoch} phase {phase}: span-derived {derived} vs \
                 EpochStats {reported} (rel err {})",
                rel_err(derived, reported)
            );
        }
    }

    // The trace must render as well-formed Chrome trace-event JSON.
    let json = bns_telemetry::export::chrome_trace(&spans);
    assert!(json.trim_start().starts_with('['));
    assert!(json.trim_end().ends_with(']'));
    for needle in [
        "\"ph\":\"X\"",
        "\"ph\":\"M\"",
        "\"name\":\"exchange\"",
        "\"pid\":1",
    ] {
        assert!(json.contains(needle), "trace JSON missing {needle}");
    }
}
