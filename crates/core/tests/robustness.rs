//! Robustness and invariant tests for the BNS-GCN core: sampling edge
//! cases, plan invariants under adversarial partitionings, and engine
//! behaviour on degenerate inputs.

use bns_data::{Labels, SyntheticSpec};
use bns_gcn::engine::{train, train_with_plan, ModelArch, TrainConfig};
use bns_gcn::plan::PartitionPlan;
use bns_gcn::sampling::{build_epoch_topology, BoundarySampling};
use bns_partition::{Partitioner, Partitioning, RandomPartitioner};
use bns_tensor::SeededRng;
use proptest::prelude::*;
use std::sync::Arc;

fn cfg(sampling: BoundarySampling) -> TrainConfig {
    TrainConfig {
        arch: ModelArch::Sage,
        hidden: vec![8],
        dropout: 0.0,
        lr: 0.01,
        epochs: 3,
        sampling,
        eval_every: 0,
        seed: 1,
        clip_norm: None,
        pipeline: false,
        workers: None,
        wire_precision: None,
    }
}

/// A partitioning that isolates one node per partition plus a big rest
/// — the most skewed assignment possible.
#[test]
fn skewed_partitioning_trains() {
    let ds = Arc::new(SyntheticSpec::reddit_sim().with_nodes(200).generate(1));
    let mut assign = vec![0usize; 200];
    assign[0] = 1;
    assign[1] = 2;
    let part = Partitioning::new(assign, 3);
    let run = train(&ds, &part, &cfg(BoundarySampling::Bns { p: 0.5 }));
    assert_eq!(run.epochs.len(), 3);
    assert!(run.epochs.iter().all(|e| e.loss.is_finite()));
}

/// Training runs with every sampling strategy on the same plan.
#[test]
fn all_strategies_run() {
    let ds = Arc::new(SyntheticSpec::reddit_sim().with_nodes(300).generate(2));
    let part = RandomPartitioner.partition(&ds.graph, 3, 0);
    let plan = Arc::new(PartitionPlan::build(&ds, &part));
    for s in [
        BoundarySampling::Bns { p: 1.0 },
        BoundarySampling::Bns { p: 0.37 },
        BoundarySampling::Bns { p: 0.0 },
        BoundarySampling::BnsUnscaled { p: 0.37 },
        BoundarySampling::BoundaryEdge { keep: 0.4 },
        BoundarySampling::DropEdge { keep: 0.7 },
    ] {
        let run = train_with_plan(&plan, &cfg(s));
        assert!(
            run.epochs.iter().all(|e| e.loss.is_finite()),
            "{} produced non-finite loss",
            s.label()
        );
    }
}

/// Multi-label labels survive the plan's row gathering.
#[test]
fn plan_preserves_multilabel_rows() {
    let ds = SyntheticSpec::yelp_sim().with_nodes(300).generate(3);
    let part = RandomPartitioner.partition(&ds.graph, 3, 1);
    let plan = PartitionPlan::build(&ds, &part);
    let Labels::Multi(global) = &ds.labels else {
        panic!()
    };
    for p in &plan.parts {
        let Labels::Multi(local) = &p.labels else {
            panic!()
        };
        for (li, &v) in p.inner.iter().enumerate() {
            assert_eq!(local.row(li), global.row(v));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Epoch topologies are structurally valid for arbitrary rates and
    /// partition counts: selected positions in range and strictly
    /// ascending, epoch graph sized exactly `n_in + |selected|`, and
    /// inner degrees never exceed the full local degrees.
    #[test]
    fn epoch_topology_invariants(p in 0.0f64..=1.0, k in 2usize..5, seed in 0u64..30) {
        let ds = SyntheticSpec::reddit_sim().with_nodes(250).generate(4);
        let part = RandomPartitioner.partition(&ds.graph, k, seed);
        let plan = PartitionPlan::build(&ds, &part);
        let mut rng = SeededRng::new(seed);
        for lp in &plan.parts {
            let t = build_epoch_topology(lp, &BoundarySampling::Bns { p }, 0, seed, &mut rng);
            prop_assert_eq!(t.graph.num_nodes(), lp.n_inner() + t.selected.len());
            prop_assert!(t.graph.validate().is_ok());
            prop_assert!(t.selected.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(t.selected.iter().all(|&s| s < lp.n_boundary()));
            for v in 0..lp.n_inner() {
                prop_assert!(t.graph.degree(v) <= lp.local_graph.degree(v));
            }
            prop_assert_eq!(t.row_scale.len(), lp.n_inner());
            prop_assert_eq!(t.gcn_scale.len(), lp.n_inner() + t.selected.len());
        }
    }

    /// The plan's Eq. 3 data structures are consistent for arbitrary
    /// random partitionings.
    #[test]
    fn plan_invariants(k in 1usize..6, seed in 0u64..30) {
        let ds = SyntheticSpec::reddit_sim().with_nodes(200).generate(5);
        let part = RandomPartitioner.partition(&ds.graph, k, seed);
        let plan = PartitionPlan::build(&ds, &part);
        prop_assert!(plan.validate().is_ok());
        // Send lists and boundary blocks agree in total size.
        let total_sends: usize = plan
            .parts
            .iter()
            .map(|p| p.send_lists.iter().map(Vec::len).sum::<usize>())
            .sum();
        prop_assert_eq!(total_sends, plan.total_boundary());
    }
}
