//! Scheduler-independence: the cooperative engine must produce
//! bitwise-identical results at **any** worker count. The worker count
//! only decides how many rank tasks run concurrently; every RNG draw,
//! message and floating-point fold sits at a fixed point in each rank's
//! program order, so interleaving cannot move a single bit (DESIGN.md
//! §12). These tests hold the engine to that across worker counts,
//! sampling modes, and k far beyond the core count.

use bns_data::SyntheticSpec;
use bns_gcn::engine::{train_with_plan, ModelArch, TrainConfig, TrainRun};
use bns_gcn::plan::PartitionPlan;
use bns_gcn::sampling::BoundarySampling;
use bns_partition::{MetisLikePartitioner, Partitioner, RandomPartitioner};
use std::sync::Arc;

fn base_cfg() -> TrainConfig {
    TrainConfig {
        arch: ModelArch::Sage,
        hidden: vec![12],
        dropout: 0.25,
        lr: 0.01,
        epochs: 4,
        sampling: BoundarySampling::Bns { p: 0.5 },
        eval_every: 2,
        seed: 7,
        clip_norm: Some(2.0),
        pipeline: false,
        workers: None,
        wire_precision: None,
    }
}

/// Epoch-by-epoch bitwise comparison of two runs, with a label naming
/// the worker counts under test.
fn assert_bitwise_equal(a: &TrainRun, b: &TrainRun, label: &str) {
    assert_eq!(a.epochs.len(), b.epochs.len(), "{label}: epoch count");
    for (e, (ea, eb)) in a.epochs.iter().zip(&b.epochs).enumerate() {
        assert_eq!(
            ea.loss.to_bits(),
            eb.loss.to_bits(),
            "{label}: loss bits diverged at epoch {e}"
        );
        assert_eq!(
            ea.traffic_per_rank, eb.traffic_per_rank,
            "{label}: per-rank traffic diverged at epoch {e}"
        );
        assert_eq!(
            ea.val_score.map(f64::to_bits),
            eb.val_score.map(f64::to_bits),
            "{label}: val score diverged at epoch {e}"
        );
        assert_eq!(
            ea.test_score.map(f64::to_bits),
            eb.test_score.map(f64::to_bits),
            "{label}: test score diverged at epoch {e}"
        );
        assert_eq!(
            ea.selected_boundary, eb.selected_boundary,
            "{label}: boundary selection diverged at epoch {e}"
        );
    }
    assert_eq!(
        a.peak_mem_per_rank, b.peak_mem_per_rank,
        "{label}: peak memory diverged"
    );
    assert_eq!(
        a.final_val.to_bits(),
        b.final_val.to_bits(),
        "{label}: final val diverged"
    );
    assert_eq!(
        a.final_test.to_bits(),
        b.final_test.to_bits(),
        "{label}: final test diverged"
    );
}

/// The headline guarantee: workers in {1, 2, 5, default} all produce
/// the same bits, for both dynamic (p = 0.5) and static (p = 1,
/// including pipelined) sampling.
#[test]
fn loss_curves_identical_at_any_worker_count() {
    let ds = Arc::new(SyntheticSpec::reddit_sim().with_nodes(400).generate(5));
    let part = MetisLikePartitioner::default().partition(&ds.graph, 4, 0);
    let plan = Arc::new(PartitionPlan::build(&ds, &part));
    for (p, pipeline) in [(0.5, false), (1.0, false), (1.0, true)] {
        let mut cfg = base_cfg();
        cfg.sampling = BoundarySampling::Bns { p };
        cfg.pipeline = pipeline;
        cfg.workers = Some(1);
        let serial = train_with_plan(&plan, &cfg);
        for workers in [Some(2), Some(5), None] {
            cfg.workers = workers;
            let run = train_with_plan(&plan, &cfg);
            assert_bitwise_equal(
                &serial,
                &run,
                &format!("p={p} pipeline={pipeline} workers=1 vs {workers:?}"),
            );
        }
    }
}

/// The oversubscription case the scheduler exists for: k = 32 ranks on
/// 2 workers must complete and match the 1-worker bits. Under the old
/// thread-per-rank engine this config pinned 32 OS threads; here it
/// multiplexes onto 2 (the thread-count assertion lives in
/// `scheduler_threads.rs`, which needs a quiet process).
#[test]
fn k32_on_two_workers_matches_serial() {
    let ds = Arc::new(SyntheticSpec::reddit_sim().with_nodes(500).generate(2));
    let part = RandomPartitioner.partition(&ds.graph, 32, 3);
    let plan = Arc::new(PartitionPlan::build(&ds, &part));
    let mut cfg = base_cfg();
    cfg.epochs = 2;
    cfg.eval_every = 0;
    cfg.workers = Some(1);
    let serial = train_with_plan(&plan, &cfg);
    cfg.workers = Some(2);
    let two = train_with_plan(&plan, &cfg);
    assert_bitwise_equal(&serial, &two, "k=32 workers=1 vs 2");
}
