//! OS-thread footprint: k = 32 ranks on 2 workers must run on ~2
//! threads, not 32. Lives in its own test binary because the assertion
//! reads the whole process's thread count from `/proc/self/status` —
//! a shared harness running unrelated tests concurrently would pollute
//! it.

use bns_data::SyntheticSpec;
use bns_gcn::engine::{train_with_plan, ModelArch, TrainConfig};
use bns_gcn::plan::PartitionPlan;
use bns_gcn::sampling::BoundarySampling;
use bns_partition::{Partitioner, RandomPartitioner};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Current thread count of this process (Linux only).
#[cfg(target_os = "linux")]
fn os_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

/// The thread bound the whole PR exists for: with `workers = 2` and
/// kernel pools disabled, training k = 32 partitions may add at most
/// one spawned scheduler worker (the caller is worker 0) plus a small
/// constant of slack — never a thread per rank. The pre-scheduler
/// engine spawned 32 here and fails this assertion.
#[test]
fn k32_on_two_workers_spawns_no_thread_per_rank() {
    // Force share-of-1 kernel budgets so worker pools spawn nothing;
    // safe to set here because this binary runs exactly one test.
    std::env::set_var("BNS_THREADS", "1");

    let ds = Arc::new(SyntheticSpec::reddit_sim().with_nodes(500).generate(2));
    let part = RandomPartitioner.partition(&ds.graph, 32, 3);
    let plan = Arc::new(PartitionPlan::build(&ds, &part));
    let cfg = TrainConfig {
        hidden: vec![12],
        epochs: 2,
        dropout: 0.0,
        sampling: BoundarySampling::Bns { p: 0.5 },
        eval_every: 0,
        arch: ModelArch::Sage,
        workers: Some(2),
        ..TrainConfig::quick_test()
    };

    #[cfg(target_os = "linux")]
    {
        let before = os_threads();
        let stop = Arc::new(AtomicBool::new(false));
        let high_water = Arc::new(AtomicUsize::new(0));
        let sampler = {
            let stop = Arc::clone(&stop);
            let high_water = Arc::clone(&high_water);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    high_water.fetch_max(os_threads(), Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            })
        };
        let run = train_with_plan(&plan, &cfg);
        stop.store(true, Ordering::Relaxed);
        sampler.join().expect("sampler thread");
        assert_eq!(run.epochs.len(), 2);

        // Expected growth over `before` (snapshotted before the
        // sampler existed): the sampler itself (1) + spawned scheduler
        // workers (workers - 1 = 1), plus slack for harness
        // bookkeeping threads.
        let peak = high_water.load(Ordering::Relaxed);
        let added = peak.saturating_sub(before);
        assert!(
            added <= 4,
            "k=32 on 2 workers grew the process by {added} threads \
             (before={before}, peak={peak}) — thread-per-rank regression"
        );
    }

    #[cfg(not(target_os = "linux"))]
    {
        // No /proc on this platform; still exercise the configuration.
        let run = train_with_plan(&plan, &cfg);
        assert_eq!(run.epochs.len(), 2);
    }
}
