//! `bns-telemetry`: unified tracing, metrics and profile export for the
//! partition-parallel trainer.
//!
//! Three pieces, one global sink:
//!
//! * **Spans** — [`span!`] opens an RAII guard that records a named,
//!   wall-clock-timed region attributed to the calling thread's rank
//!   ([`set_thread_rank`]); [`Timed`] is the variant whose measured
//!   duration the caller also consumes as a value. Completed spans land
//!   in a lock-sharded global collector.
//! * **Metrics** — named [`counter_add`], [`gauge_set`],
//!   [`histogram_record`] and stepped [`series_push`] time series.
//! * **Exporters** — [`export::chrome_trace`] (load in
//!   `chrome://tracing` / Perfetto), [`export::flame_summary`]
//!   (per-rank text profile) and [`export::csv_time_series`].
//!
//! # Cost model
//!
//! Capture is off by default and gated twice: the `capture` cargo
//! feature (on by default) compiles recording in or out, and the
//! runtime [`enable`] flag turns it on per process. Every recording
//! entry point checks [`is_enabled`] first — with capture off the only
//! residual cost is that one relaxed atomic load (and for [`Timed`],
//! the `Instant` reads its caller consumes anyway).
//!
//! # Example
//!
//! ```
//! bns_telemetry::enable();
//! bns_telemetry::set_thread_rank(0);
//! {
//!     let _epoch = bns_telemetry::span!("epoch", epoch = 0usize);
//!     let timed = bns_telemetry::Timed::start("compute");
//!     let secs = timed.stop(); // same f64 the span records
//!     assert!(secs >= 0.0);
//!     bns_telemetry::counter_add("comm.bytes_sent", 1024);
//! }
//! let spans = bns_telemetry::drain_spans();
//! let json = bns_telemetry::export::chrome_trace(&spans);
//! assert!(json.contains("\"ph\":\"X\""));
//! bns_telemetry::disable();
//! # bns_telemetry::reset();
//! ```

// No unsafe here, enforced at compile time (the audited unsafe lives in
// bns-tensor, bns-nn and the vendored loom shim; see UNSAFE_LEDGER.md).
#![forbid(unsafe_code)]
pub mod export;
pub mod metrics;
pub mod span;

pub use metrics::{
    counter_add, gauge_set, histogram_record, metrics_snapshot, register_histogram, series_push,
    HistogramSnapshot, MetricsSnapshot, SeriesSnapshot,
};
pub use span::{current_tid, drain_spans, set_thread_rank, ArgValue, SpanEvent, SpanGuard, Timed};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns capture on for the whole process and pins the trace time
/// origin (so span timestamps start near zero).
pub fn enable() {
    span::pin_origin();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns capture off. Already-captured spans and metrics are kept until
/// [`reset`] or [`drain_spans`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether recording is live: the `capture` feature is compiled in and
/// [`enable`] has been called.
#[inline]
pub fn is_enabled() -> bool {
    cfg!(feature = "capture") && ENABLED.load(Ordering::Relaxed)
}

/// Discards all captured spans and metrics (capture state unchanged).
pub fn reset() {
    span::clear_spans();
    metrics::clear_metrics();
}

/// Opens an RAII span recorded when the returned guard drops.
///
/// ```
/// let _g = bns_telemetry::span!("exchange");
/// let _g = bns_telemetry::span!("layer_fwd", rank = 0usize, layer = 2usize);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(,)?) => {
        $crate::SpanGuard::enter($name, &[])
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::SpanGuard::enter(
            $name,
            &[$((stringify!($key), $crate::ArgValue::from($value))),+],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    /// Telemetry state is process-global; tests that touch it take this
    /// lock so cargo's threaded test runner cannot interleave them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn isolated() -> parking_lot::MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock();
        reset();
        enable();
        guard
    }

    #[test]
    fn spans_capture_name_args_and_duration() {
        let _guard = isolated();
        {
            let _s = span!("outer", epoch = 3usize, loss = 0.5f64);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let spans = drain_spans();
        disable();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert!(outer.dur_s >= 0.002, "dur {}", outer.dur_s);
        assert_eq!(outer.args[0], ("epoch", ArgValue::U64(3)));
        assert_eq!(outer.args[1], ("loss", ArgValue::F64(0.5)));
    }

    #[test]
    fn nested_spans_order_and_containment() {
        let _guard = isolated();
        {
            let _outer = span!("outer");
            let _inner = span!("inner");
        }
        let spans = drain_spans();
        disable();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert!(inner.ts_s >= outer.ts_s);
        assert!(inner.ts_s + inner.dur_s <= outer.ts_s + outer.dur_s + 1e-9);
    }

    #[test]
    fn disabled_capture_records_nothing() {
        let _guard = TEST_LOCK.lock();
        reset();
        disable();
        {
            let _s = span!("ghost");
            counter_add("ghost.counter", 1);
            gauge_set("ghost.gauge", 1.0);
            histogram_record("ghost.hist", 1.0);
            series_push("ghost.series", 0, 1.0);
        }
        assert!(drain_spans().is_empty());
        let m = metrics_snapshot();
        assert!(m.counters.is_empty() && m.gauges.is_empty());
        assert!(m.histograms.is_empty() && m.series.is_empty());
    }

    #[test]
    fn timed_returns_the_recorded_duration() {
        let _guard = isolated();
        let t = Timed::with_args("timed_region", &[("layer", ArgValue::U64(1))]);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let secs = t.stop();
        let spans = drain_spans();
        disable();
        let span = spans.iter().find(|s| s.name == "timed_region").unwrap();
        assert_eq!(span.dur_s, secs, "stop() must return the recorded f64");
        assert!(secs >= 0.001);
    }

    #[test]
    fn rank_threads_get_their_rank_as_tid() {
        let _guard = isolated();
        let handles: Vec<_> = (0..3usize)
            .map(|rank| {
                std::thread::spawn(move || {
                    set_thread_rank(rank);
                    let _s = span!("work", rank = rank);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let spans = drain_spans();
        disable();
        let mut tids: Vec<u32> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        assert_eq!(tids, vec![0, 1, 2]);
    }

    #[test]
    fn unattributed_threads_get_high_tids() {
        let _guard = isolated();
        std::thread::spawn(|| {
            let _s = span!("background");
        })
        .join()
        .unwrap();
        let spans = drain_spans();
        disable();
        assert!(spans[0].tid >= span::UNATTRIBUTED_TID_BASE);
    }

    #[test]
    fn counters_gauges_histograms_series() {
        let _guard = isolated();
        counter_add("c.bytes", 100);
        counter_add("c.bytes", 23);
        gauge_set("g.loss", 0.75);
        gauge_set("g.loss", 0.5);
        register_histogram("h.lat", &[0.1, 1.0, 10.0]);
        histogram_record("h.lat", 0.05);
        histogram_record("h.lat", 5.0);
        histogram_record("h.lat", 100.0);
        series_push("s.loss", 0, 1.0);
        series_push("s.loss", 1, 0.8);
        let m = metrics_snapshot();
        disable();
        assert_eq!(m.counter("c.bytes"), Some(123));
        assert_eq!(m.gauge("g.loss"), Some(0.5));
        let h = &m.histograms[0];
        // 0.05 <= 0.1 -> bucket 0; 5.0 <= 10.0 -> bucket 2; 100 overflows.
        assert_eq!(h.counts, vec![1, 0, 1, 1]);
        assert_eq!(h.count, 3);
        assert!((h.sum - 105.05).abs() < 1e-9);
        assert_eq!(m.series[0].points, vec![(0, 1.0), (1, 0.8)]);
    }

    #[test]
    fn chrome_trace_shape() {
        let _guard = TEST_LOCK.lock();
        let spans = vec![
            SpanEvent {
                name: "compute",
                tid: 0,
                ts_s: 0.001,
                dur_s: 0.002,
                args: vec![("epoch", ArgValue::U64(1))],
            },
            SpanEvent {
                name: "exchange",
                tid: 1,
                ts_s: 0.0015,
                dur_s: 0.0005,
                args: vec![],
            },
        ];
        let json = export::chrome_trace(&spans);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\":\"compute\",\"ph\":\"X\",\"ts\":1000.000,\"dur\":2000.000,\"pid\":1,\"tid\":0"));
        assert!(json.contains("\"args\":{\"epoch\":1}"));
        assert!(json.contains("\"name\":\"thread_name\",\"ph\":\"M\""));
        assert!(json.contains("rank 0") && json.contains("rank 1"));
    }

    #[test]
    fn flame_summary_computes_self_time() {
        let _guard = TEST_LOCK.lock();
        // outer [0, 10] contains inner [2, 5]; self(outer) = 7.
        let spans = vec![
            SpanEvent {
                name: "outer",
                tid: 0,
                ts_s: 0.0,
                dur_s: 10.0,
                args: vec![],
            },
            SpanEvent {
                name: "inner",
                tid: 0,
                ts_s: 2.0,
                dur_s: 3.0,
                args: vec![],
            },
        ];
        let text = export::flame_summary(&spans);
        assert!(text.contains("=== rank 0 (tid 0) ==="), "{text}");
        let outer_row = text.lines().find(|l| l.starts_with("outer")).unwrap();
        assert!(outer_row.contains("10.000 s"), "{outer_row}");
        assert!(outer_row.contains("7.000 s"), "{outer_row}");
    }

    #[test]
    fn csv_exports_series_counters_gauges() {
        let _guard = isolated();
        series_push("epoch.loss", 0, 2.0);
        series_push("epoch.loss", 1, 1.5);
        counter_add("comm.bytes_sent", 4096);
        gauge_set("epoch.final_acc", 0.91);
        let csv = export::csv_time_series(&metrics_snapshot());
        disable();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "metric,step,value");
        assert!(lines.contains(&"epoch.loss,0,2"));
        assert!(lines.contains(&"epoch.loss,1,1.5"));
        assert!(lines.contains(&"counter:comm.bytes_sent,,4096"));
        assert!(lines.contains(&"gauge:epoch.final_acc,,0.91"));
    }

    #[test]
    fn drain_empties_the_collector() {
        let _guard = isolated();
        {
            let _s = span!("once");
        }
        assert_eq!(drain_spans().len(), 1);
        assert!(drain_spans().is_empty());
        disable();
    }
}
