//! Exporters: Chrome trace-event JSON, per-rank flame summaries and CSV
//! time series. All output is built with `std::fmt` — no serde.

use crate::metrics::MetricsSnapshot;
use crate::span::{ArgValue, SpanEvent, UNATTRIBUTED_TID_BASE};
use std::collections::HashMap;
use std::fmt::Write;

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (non-finite values become `null`,
/// which JSON cannot represent otherwise).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_arg(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(x) => format!("{x}"),
        ArgValue::I64(x) => format!("{x}"),
        ArgValue::F64(x) => json_f64(*x),
    }
}

fn tid_label(tid: u32) -> String {
    if tid < UNATTRIBUTED_TID_BASE {
        format!("rank {tid}")
    } else {
        format!("worker {tid}")
    }
}

/// Renders spans as a Chrome trace-event JSON array (complete events,
/// `ph: "X"`, timestamps in microseconds) loadable by `chrome://tracing`
/// and Perfetto. One `tid` per rank, with thread-name metadata events.
pub fn chrome_trace(spans: &[SpanEvent]) -> String {
    let mut tids: Vec<u32> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();

    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("[\n");
    let mut first = true;
    for tid in &tids {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(&tid_label(*tid))
        );
    }
    for span in spans {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}",
            json_escape(span.name),
            span.ts_s * 1e6,
            span.dur_s * 1e6,
            span.tid,
        );
        if !span.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in span.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", json_escape(k), json_arg(v));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

#[derive(Default, Clone, Copy)]
struct NameAgg {
    count: u64,
    total_s: f64,
    self_s: f64,
}

struct Frame {
    name: &'static str,
    end_s: f64,
    dur_s: f64,
    child_s: f64,
}

fn fmt_s(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// Renders a plain-text per-rank summary: for every span name, its call
/// count, cumulative time and self time (cumulative minus time spent in
/// nested spans on the same thread), sorted by cumulative time.
pub fn flame_summary(spans: &[SpanEvent]) -> String {
    let mut by_tid: HashMap<u32, Vec<&SpanEvent>> = HashMap::new();
    for span in spans {
        by_tid.entry(span.tid).or_default().push(span);
    }
    let mut tids: Vec<u32> = by_tid.keys().copied().collect();
    tids.sort_unstable();

    let mut out = String::new();
    for tid in tids {
        let mut events = by_tid.remove(&tid).unwrap();
        // Parents first at equal start times (longer span is the parent).
        events.sort_by(|a, b| {
            a.ts_s
                .total_cmp(&b.ts_s)
                .then_with(|| b.dur_s.total_cmp(&a.dur_s))
        });

        let mut agg: HashMap<&'static str, NameAgg> = HashMap::new();
        let mut stack: Vec<Frame> = Vec::new();
        let pop = |stack: &mut Vec<Frame>, agg: &mut HashMap<&'static str, NameAgg>| {
            let frame = stack.pop().expect("pop on empty span stack");
            let entry = agg.entry(frame.name).or_default();
            entry.count += 1;
            entry.total_s += frame.dur_s;
            entry.self_s += (frame.dur_s - frame.child_s).max(0.0);
            if let Some(parent) = stack.last_mut() {
                parent.child_s += frame.dur_s;
            }
        };
        for ev in &events {
            while stack.last().is_some_and(|f| f.end_s <= ev.ts_s) {
                pop(&mut stack, &mut agg);
            }
            stack.push(Frame {
                name: ev.name,
                end_s: ev.ts_s + ev.dur_s,
                dur_s: ev.dur_s,
                child_s: 0.0,
            });
        }
        while !stack.is_empty() {
            pop(&mut stack, &mut agg);
        }

        let mut rows: Vec<(&'static str, NameAgg)> = agg.into_iter().collect();
        rows.sort_by(|a, b| b.1.total_s.total_cmp(&a.1.total_s));

        let _ = writeln!(out, "=== {} (tid {tid}) ===", tid_label(tid));
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>12} {:>12} {:>12}",
            "span", "count", "total", "self", "mean"
        );
        for (name, a) in rows {
            let _ = writeln!(
                out,
                "{name:<24} {:>8} {:>12} {:>12} {:>12}",
                a.count,
                fmt_s(a.total_s),
                fmt_s(a.self_s),
                fmt_s(a.total_s / a.count as f64),
            );
        }
        out.push('\n');
    }
    out
}

/// Renders metrics as CSV with columns `metric,step,value`.
///
/// Time-series points keep their recorded step; counter totals and
/// final gauge values follow with an empty step column and a
/// `counter:`/`gauge:` name prefix.
pub fn csv_time_series(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("metric,step,value\n");
    for series in &snapshot.series {
        for &(step, value) in &series.points {
            let _ = writeln!(out, "{},{step},{value}", series.name);
        }
    }
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "counter:{name},,{value}");
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(out, "gauge:{name},,{value}");
    }
    out
}
