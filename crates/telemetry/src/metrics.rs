//! Metrics registry: named counters, gauges, fixed-bucket histograms
//! and stepped time series.
//!
//! All writers are lock-light: counters and gauges hit a shared
//! `RwLock<BTreeMap>` read lock plus one atomic op on the hot path
//! (a `BTreeMap`: iteration order is part of the determinism contract);
//! registration (first touch of a name) takes the write lock once.
//! Every write is a no-op unless capture is enabled.

use crate::is_enabled;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fixed-bucket histogram. `bounds[i]` is the inclusive upper edge of
/// bucket `i`; one overflow bucket follows the last bound.
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: Vec<f64>) -> Self {
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    fn record(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // f64 accumulation via CAS on the bit pattern.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Default histogram bucket edges: one-per-decade from 1 ns to 1000 s
/// (values are unit-agnostic; these suit seconds and byte counts alike).
pub const DEFAULT_BUCKETS: [f64; 13] = [
    1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1e0, 1e1, 1e2, 1e3,
];

struct Registry {
    counters: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
    series: Mutex<BTreeMap<&'static str, Vec<(u64, f64)>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: RwLock::new(BTreeMap::new()),
        gauges: RwLock::new(BTreeMap::new()),
        histograms: RwLock::new(BTreeMap::new()),
        series: Mutex::new(BTreeMap::new()),
    })
}

/// Fetches (or lazily creates) the handle for `name` in one of the
/// registry's maps.
///
/// Must stay in early-return form: in edition 2021 an
/// `if let ... else { map.write() }` keeps the read guard alive through
/// the `else` branch and self-deadlocks the calling thread the first
/// time a metric name is created.
fn handle_in<T>(
    map: &RwLock<BTreeMap<&'static str, Arc<T>>>,
    name: &'static str,
    init: impl FnOnce() -> T,
) -> Arc<T> {
    if let Some(h) = map.read().get(name) {
        return Arc::clone(h);
    }
    Arc::clone(map.write().entry(name).or_insert_with(|| Arc::new(init())))
}

/// Adds `delta` to the counter `name`, creating it at zero on first use.
pub fn counter_add(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    handle_in(&registry().counters, name, || AtomicU64::new(0)).fetch_add(delta, Ordering::Relaxed);
}

/// Sets the gauge `name` to `value`.
pub fn gauge_set(name: &'static str, value: f64) {
    if !is_enabled() {
        return;
    }
    let handle = handle_in(&registry().gauges, name, || AtomicU64::new(0f64.to_bits()));
    handle.store(value.to_bits(), Ordering::Relaxed);
}

/// Registers (or re-buckets) the histogram `name` with explicit bucket
/// upper edges. Histograms recorded without registration use
/// [`DEFAULT_BUCKETS`].
pub fn register_histogram(name: &'static str, bounds: &[f64]) {
    assert!(
        bounds.windows(2).all(|w| w[0] < w[1]),
        "histogram bounds must be strictly increasing"
    );
    registry()
        .histograms
        .write()
        .insert(name, Arc::new(Histogram::new(bounds.to_vec())));
}

/// Records `value` into the histogram `name`.
pub fn histogram_record(name: &'static str, value: f64) {
    if !is_enabled() {
        return;
    }
    let handle = handle_in(&registry().histograms, name, || {
        Histogram::new(DEFAULT_BUCKETS.to_vec())
    });
    handle.record(value);
}

/// Appends `(step, value)` to the time series `name` (steps are
/// typically epochs; exporters emit them in insertion order).
pub fn series_push(name: &'static str, step: u64, value: f64) {
    if !is_enabled() {
        return;
    }
    registry()
        .series
        .lock()
        .entry(name)
        .or_default()
        .push((step, value));
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Inclusive bucket upper edges; the final count is the overflow.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// Point-in-time copy of one time series.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Metric name.
    pub name: String,
    /// `(step, value)` in insertion order.
    pub points: Vec<(u64, f64)>,
}

/// A consistent-enough copy of the whole registry, all sections sorted
/// by name for deterministic export.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter totals.
    pub counters: Vec<(String, u64)>,
    /// Latest gauge values.
    pub gauges: Vec<(String, f64)>,
    /// Histograms.
    pub histograms: Vec<HistogramSnapshot>,
    /// Time series.
    pub series: Vec<SeriesSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// Captures the current state of every metric.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let mut counters: Vec<(String, u64)> = registry()
        .counters
        .read()
        .iter()
        .map(|(&n, c)| (n.to_string(), c.load(Ordering::Relaxed)))
        .collect();
    counters.sort();
    let mut gauges: Vec<(String, f64)> = registry()
        .gauges
        .read()
        .iter()
        .map(|(&n, g)| (n.to_string(), f64::from_bits(g.load(Ordering::Relaxed))))
        .collect();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    let mut histograms: Vec<HistogramSnapshot> = registry()
        .histograms
        .read()
        .iter()
        .map(|(&n, h)| HistogramSnapshot {
            name: n.to_string(),
            bounds: h.bounds.clone(),
            counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            count: h.count.load(Ordering::Relaxed),
            sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    let mut series: Vec<SeriesSnapshot> = registry()
        .series
        .lock()
        .iter()
        .map(|(&n, pts)| SeriesSnapshot {
            name: n.to_string(),
            points: pts.clone(),
        })
        .collect();
    series.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
        series,
    }
}

/// Clears every metric (registrations included).
pub(crate) fn clear_metrics() {
    registry().counters.write().clear();
    registry().gauges.write().clear();
    registry().histograms.write().clear();
    registry().series.lock().clear();
}
