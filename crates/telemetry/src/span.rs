//! Span capture: lightweight timed regions attributed to ranks/threads.
//!
//! A span is opened with [`crate::span!`] (RAII guard, records on drop)
//! or with [`Timed`] when the caller also needs the measured duration as
//! a value — trainers feed the same `f64` into their epoch statistics,
//! which keeps span-derived aggregates bit-compatible with the
//! pre-existing bookkeeping.

use crate::is_enabled;
use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A typed span/metric argument (kept numeric so capture never allocates
/// strings on the hot path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (ranks, layers, epochs, byte counts).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (losses, probabilities, seconds).
    F64(f64),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<i32> for ArgValue {
    fn from(v: i32) -> Self {
        ArgValue::I64(v as i64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<f32> for ArgValue {
    fn from(v: f32) -> Self {
        ArgValue::F64(v as f64)
    }
}

/// One completed span, as stored by the collector and fed to exporters.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Static span name (e.g. `"exchange"`, `"all_reduce"`).
    pub name: &'static str,
    /// Logical thread id: the rank for trainer threads (see
    /// [`set_thread_rank`]), `1000+` for unattributed threads.
    pub tid: u32,
    /// Start time in seconds since the capture origin.
    pub ts_s: f64,
    /// Duration in seconds.
    pub dur_s: f64,
    /// Span arguments from the call site.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Tid assigned to threads that never called [`set_thread_rank`].
pub const UNATTRIBUTED_TID_BASE: u32 = 1000;

const SHARDS: usize = 16;

struct Collector {
    shards: [Mutex<Vec<SpanEvent>>; SHARDS],
}

#[allow(clippy::declare_interior_mutable_const)] // const used only as array initializer
const EMPTY_SHARD: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());
static COLLECTOR: Collector = Collector {
    shards: [EMPTY_SHARD; SHARDS],
};

/// The instant all span timestamps are measured from. Pinned on first
/// use (normally inside [`crate::enable`]) so traces start near zero.
fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Pins the trace time origin; called by [`crate::enable`].
pub(crate) fn pin_origin() {
    let _ = origin();
}

static NEXT_BG_TID: AtomicU32 = AtomicU32::new(UNATTRIBUTED_TID_BASE);

thread_local! {
    static THREAD_TID: Cell<Option<u32>> = const { Cell::new(None) };
}

/// Declares the calling thread to be rank `rank` for span attribution.
/// Trainer harnesses call this once per spawned rank thread, giving the
/// exported trace exactly one timeline (`tid`) per rank.
pub fn set_thread_rank(rank: usize) {
    THREAD_TID.with(|t| t.set(Some(rank as u32)));
}

/// The calling thread's tid, assigning a fresh `1000+` id on first use
/// for threads that never declared a rank.
pub fn current_tid() -> u32 {
    THREAD_TID.with(|t| match t.get() {
        Some(id) => id,
        None => {
            let id = NEXT_BG_TID.fetch_add(1, Ordering::Relaxed);
            t.set(Some(id));
            id
        }
    })
}

#[cfg(feature = "capture")]
pub(crate) fn record(ev: SpanEvent) {
    let shard = ev.tid as usize % SHARDS;
    COLLECTOR.shards[shard].lock().push(ev);
}

#[cfg(not(feature = "capture"))]
pub(crate) fn record(_ev: SpanEvent) {}

/// Removes and returns every captured span, ordered by start time.
pub fn drain_spans() -> Vec<SpanEvent> {
    let mut out = Vec::new();
    for shard in &COLLECTOR.shards {
        out.append(&mut shard.lock());
    }
    out.sort_by(|a, b| a.ts_s.total_cmp(&b.ts_s).then_with(|| a.tid.cmp(&b.tid)));
    out
}

/// Discards every captured span.
pub(crate) fn clear_spans() {
    for shard in &COLLECTOR.shards {
        shard.lock().clear();
    }
}

/// RAII span: opened by [`crate::span!`], recorded when dropped.
///
/// When capture is disabled (runtime flag off or `capture` feature
/// compiled out) the guard holds nothing and drop is a no-op.
#[must_use = "a span guard records when dropped; binding it to `_` drops it immediately"]
pub struct SpanGuard(Option<ActiveSpan>);

struct ActiveSpan {
    name: &'static str,
    args: Vec<(&'static str, ArgValue)>,
    start: Instant,
}

impl SpanGuard {
    /// Opens a span named `name` with the given arguments; prefer the
    /// [`crate::span!`] macro.
    #[inline]
    pub fn enter(name: &'static str, args: &[(&'static str, ArgValue)]) -> SpanGuard {
        if !is_enabled() {
            return SpanGuard(None);
        }
        SpanGuard(Some(ActiveSpan {
            name,
            args: args.to_vec(),
            start: Instant::now(),
        }))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(span) = self.0.take() {
            let dur_s = span.start.elapsed().as_secs_f64();
            let ts_s = span.start.duration_since(origin()).as_secs_f64();
            record(SpanEvent {
                name: span.name,
                tid: current_tid(),
                ts_s,
                dur_s,
                args: span.args,
            });
        }
    }
}

/// A span whose duration the caller also consumes as a value.
///
/// [`Timed::stop`] computes `elapsed` exactly once and both records it
/// and returns it, so a trainer accumulating the return value into its
/// epoch statistics produces sums bit-identical to the span-derived
/// aggregation — telemetry observes the timing rather than duplicating
/// it.
#[must_use = "call .stop() to record the span and obtain the elapsed seconds"]
pub struct Timed {
    name: &'static str,
    args: Vec<(&'static str, ArgValue)>,
    start: Instant,
}

impl Timed {
    /// Starts a timed region.
    #[inline]
    pub fn start(name: &'static str) -> Timed {
        Timed {
            name,
            args: Vec::new(),
            start: Instant::now(),
        }
    }

    /// Starts a timed region with span arguments.
    #[inline]
    pub fn with_args(name: &'static str, args: &[(&'static str, ArgValue)]) -> Timed {
        Timed {
            name,
            args: if is_enabled() {
                args.to_vec()
            } else {
                Vec::new()
            },
            start: Instant::now(),
        }
    }

    /// Stops the region, records a span (when capture is on) and returns
    /// the elapsed wall time in seconds. The returned value is the same
    /// `f64` stored in the span event.
    #[inline]
    pub fn stop(self) -> f64 {
        let dur_s = self.start.elapsed().as_secs_f64();
        if is_enabled() {
            let ts_s = self.start.duration_since(origin()).as_secs_f64();
            record(SpanEvent {
                name: self.name,
                tid: current_tid(),
                ts_s,
                dur_s,
                args: self.args,
            });
        }
        dur_s
    }
}
