//! The serving worker pool: one OS thread per shard, each draining its
//! rank's bounded queue through the size/linger batcher into
//! [`ShardServer::serve_batch`].
//!
//! This module is the **only** place in `bns-serve` allowed to call
//! `thread::spawn` (`cargo xtask audit` enforces it), mirroring how
//! training confines spawns to `bns-comm` and the tensor pool. Each
//! worker may additionally install a private `bns-tensor` thread pool
//! so the forward kernels parallelize within a batch — the same
//! per-rank pool discipline the trainer uses, with the same bitwise
//! determinism guarantee.

use crate::batch::{BatchPolicy, Query, RankQueue};
use crate::cache::{CacheConfig, CacheStats};
use crate::latency::{LatencyRecorder, LatencySummary};
use crate::shard::{ServePlan, ShardServer};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Deployment-wide serving knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Batch formation (size cap + linger window).
    pub policy: BatchPolicy,
    /// Bound of each rank's pending-query queue (backpressure point).
    pub queue_capacity: usize,
    /// Boundary-cache sizing.
    pub cache: CacheConfig,
    /// Kernel threads per shard worker (`<= 1` = serial kernels).
    pub threads_per_shard: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            policy: BatchPolicy {
                max_batch: 32,
                linger: Duration::from_micros(200),
            },
            queue_capacity: 1024,
            cache: CacheConfig::default(),
            threads_per_shard: 1,
        }
    }
}

/// One worker's tallies, returned when it exits.
#[derive(Debug)]
pub struct ShardReport {
    /// The shard's rank.
    pub rank: usize,
    /// Queries answered.
    pub queries: u64,
    /// Batches formed.
    pub batches: u64,
    /// Largest batch actually served.
    pub max_batch_seen: usize,
    /// Per-query latencies.
    pub latency: LatencyRecorder,
    /// Boundary-cache counters.
    pub cache: CacheStats,
}

/// Whole-deployment results from [`ServeEngine::shutdown`].
#[derive(Debug)]
pub struct ServeReport {
    /// Per-shard breakdowns.
    pub per_shard: Vec<ShardReport>,
    /// All shards' latencies merged.
    pub latency: LatencyRecorder,
    /// All shards' cache counters merged.
    pub cache: CacheStats,
    /// Wall-clock time from engine start to shutdown completion.
    pub elapsed: Duration,
}

impl ServeReport {
    /// Latency/throughput summary over the engine's lifetime.
    pub fn summary(&self) -> LatencySummary {
        self.latency.summary(self.elapsed)
    }

    /// Mean served-batch occupancy.
    pub fn avg_batch(&self) -> f64 {
        let q: u64 = self.per_shard.iter().map(|s| s.queries).sum();
        let b: u64 = self.per_shard.iter().map(|s| s.batches).sum();
        if b == 0 {
            0.0
        } else {
            q as f64 / b as f64
        }
    }
}

/// A running serving deployment: `k` shard workers behind `k` bounded
/// queues, with queries routed by node ownership.
#[derive(Debug)]
pub struct ServeEngine {
    owner: Arc<Vec<u32>>,
    queues: Vec<Arc<RankQueue>>,
    handles: Vec<JoinHandle<ShardReport>>,
    started: Instant,
}

impl ServeEngine {
    /// Builds every shard (pinning its cache) and spawns the workers.
    pub fn start(plan: &ServePlan, cfg: &ServeConfig) -> ServeEngine {
        let started = Instant::now();
        let mut queues = Vec::with_capacity(plan.k);
        let mut handles = Vec::with_capacity(plan.k);
        for rank in 0..plan.k {
            let queue = Arc::new(RankQueue::bounded(cfg.queue_capacity));
            let server = plan.shard(rank, cfg.cache);
            let q = Arc::clone(&queue);
            let policy = cfg.policy;
            let threads = cfg.threads_per_shard;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("bns-serve-{rank}"))
                    .spawn(move || worker_loop(server, &q, &policy, threads))
                    .expect("spawn shard worker"),
            );
            queues.push(queue);
        }
        ServeEngine {
            owner: Arc::clone(&plan.owner),
            queues,
            handles,
            started,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// Routes a fire-and-forget query to the owning shard, blocking on
    /// a full queue (backpressure). Returns `false` if that queue was
    /// already shut down.
    pub fn submit(&self, node: u32, arrival: Instant) -> bool {
        self.submit_query(Query::new(node, arrival))
    }

    /// Routes a fully-formed query (e.g. one carrying a reply channel).
    pub fn submit_query(&self, query: Query) -> bool {
        let rank = self.owner[query.node as usize] as usize;
        self.queues[rank].push(query)
    }

    /// Total queries still waiting in queues.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Closes every queue, lets the workers drain, joins them, and
    /// merges their reports. Cache counters are flushed to
    /// `bns-telemetry`.
    pub fn shutdown(self) -> ServeReport {
        for q in &self.queues {
            q.close();
        }
        let mut per_shard: Vec<ShardReport> = self
            .handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect();
        per_shard.sort_by_key(|s| s.rank);
        let mut latency = LatencyRecorder::default();
        let mut cache = CacheStats::default();
        let mut queries = 0u64;
        let mut batches = 0u64;
        for s in &per_shard {
            latency.merge(&s.latency);
            cache.merge(&s.cache);
            queries += s.queries;
            batches += s.batches;
        }
        cache.flush_counters();
        bns_telemetry::counter_add("serve.queries", queries);
        bns_telemetry::counter_add("serve.batches", batches);
        ServeReport {
            per_shard,
            latency,
            cache,
            elapsed: self.started.elapsed(),
        }
    }
}

/// One shard's serve loop: pop a batch, answer it, charge each query's
/// latency from its *intended* arrival, deliver replies if requested.
fn worker_loop(
    mut server: ShardServer,
    queue: &RankQueue,
    policy: &BatchPolicy,
    threads: usize,
) -> ShardReport {
    let _pool = if threads > 1 {
        Some(bns_tensor::pool::install(bns_tensor::ThreadPool::new(
            threads,
        )))
    } else {
        None
    };
    let mut latency = LatencyRecorder::default();
    let mut batch: Vec<Query> = Vec::with_capacity(policy.max_batch);
    let mut nodes: Vec<u32> = Vec::with_capacity(policy.max_batch);
    let mut queries = 0u64;
    let mut batches = 0u64;
    let mut max_batch_seen = 0usize;
    while queue.pop_batch(policy, &mut batch) {
        nodes.clear();
        nodes.extend(batch.iter().map(|q| q.node));
        let logits = server.serve_batch(&nodes);
        let done = Instant::now();
        for (j, q) in batch.iter().enumerate() {
            latency.record(done.saturating_duration_since(q.arrival));
            if let Some(tx) = &q.reply {
                // A vanished client is not the shard's problem.
                let _ = tx.send(logits.row(j).to_vec());
            }
        }
        queries += batch.len() as u64;
        batches += 1;
        max_batch_seen = max_batch_seen.max(batch.len());
        bns_telemetry::histogram_record("serve.batch_size", batch.len() as f64);
    }
    ShardReport {
        rank: server.rank(),
        queries,
        batches,
        max_batch_seen,
        latency,
        cache: server.cache_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::SyntheticSpec;
    use bns_gcn::engine::TrainedModel;
    use bns_nn::SageModel;
    use bns_partition::{MetisLikePartitioner, Partitioner};
    use bns_tensor::SeededRng;

    fn plan(k: usize) -> (bns_data::Dataset, ServePlan) {
        let ds = SyntheticSpec::reddit_sim().with_nodes(300).generate(23);
        let part = MetisLikePartitioner::default().partition(&ds.graph, k, 0);
        let mut rng = SeededRng::new(8);
        let model = TrainedModel::Sage(SageModel::new(
            &[ds.feat_dim(), 8, ds.num_classes],
            0.0,
            &mut rng,
        ));
        let p = ServePlan::build(&ds, &part, model);
        (ds, p)
    }

    #[test]
    fn engine_answers_every_query_and_replies_match_reference() {
        let (ds, plan) = plan(4);
        let reference = plan.model.logits(&ds);
        let engine = ServeEngine::start(&plan, &ServeConfig::default());
        assert_eq!(engine.shards(), 4);
        let (tx, rx) = std::sync::mpsc::channel();
        let n_q = 120u32;
        let t0 = Instant::now();
        for i in 0..n_q {
            let node = (i * 7) % ds.num_nodes() as u32;
            assert!(engine.submit_query(Query {
                node,
                arrival: t0,
                reply: Some(tx.clone()),
            }));
        }
        drop(tx);
        // Collect all replies before shutdown so drain order is moot.
        let mut got = 0;
        while let Ok(row) = rx.recv() {
            assert_eq!(row.len(), plan.num_classes);
            got += 1;
            if got == n_q {
                break;
            }
        }
        let report = engine.shutdown();
        assert_eq!(report.latency.count(), n_q as usize);
        let total: u64 = report.per_shard.iter().map(|s| s.queries).sum();
        assert_eq!(total, n_q as u64, "no query dropped");
        assert!(report.avg_batch() >= 1.0);
        // Spot-check one reply against the full-graph reference.
        let mut server = plan.shard(0, CacheConfig::disabled());
        let v = (0..ds.num_nodes() as u32)
            .find(|&x| plan.owner_of(x) == 0)
            .unwrap();
        let out = server.serve_batch(&[v]);
        let want: Vec<u32> = reference
            .row(v as usize)
            .iter()
            .map(|x| x.to_bits())
            .collect();
        let got_bits: Vec<u32> = out.row(0).iter().map(|x| x.to_bits()).collect();
        assert_eq!(got_bits, want);
    }

    #[test]
    fn shutdown_drains_pending_queries() {
        let (ds, plan) = plan(2);
        let cfg = ServeConfig {
            policy: BatchPolicy::immediate(8),
            ..Default::default()
        };
        let engine = ServeEngine::start(&plan, &cfg);
        let t0 = Instant::now();
        for v in 0..ds.num_nodes() as u32 {
            assert!(engine.submit(v, t0));
        }
        let report = engine.shutdown();
        assert_eq!(report.latency.count(), ds.num_nodes());
        assert!(report.elapsed > Duration::ZERO);
    }
}
