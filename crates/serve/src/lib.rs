//! **bns-serve**: partition-sharded inference serving for trained
//! BNS-GCN models, with hot-boundary feature caching and a synthetic
//! heavy-traffic load harness.
//!
//! The training half of this workspace reproduces the paper; this crate
//! is the ROADMAP's serving half — the "production system serving heavy
//! traffic" the north star asks for. It reuses the training artifacts
//! directly: the partition plan becomes the shard layout, the trained
//! model (saved/loaded via `bns_gcn::model_io`) becomes the immutable
//! serving weights, and the pool+SIMD forward kernels answer queries.
//!
//! ## Architecture (DESIGN.md §11 has the full diagram)
//!
//! ```text
//!   clients ──► router (by node owner) ──► k bounded RankQueues
//!                                               │  batcher (max_batch, linger)
//!                                               ▼
//!                                          ShardServer × k
//!                                     L-hop closure → induced subgraph
//!                                       features:  own rows ── store
//!                                                  remote  ── BoundaryCache
//!                                                            (miss → owner fetch)
//! ```
//!
//! * [`shard`] — [`shard::ServePlan`] (deployment state) and
//!   [`shard::ShardServer`] (exact L-hop minibatch inference, bitwise
//!   equal to the full-graph forward pass).
//! * [`cache`] — [`cache::BoundaryCache`]: degree-pinned hot set plus a
//!   CLOCK cold region, sized as a fraction of the shard's boundary.
//! * [`batch`] — bounded FIFO rank queues and the size/linger batcher.
//! * [`worker`] — [`worker::ServeEngine`]: one worker thread per shard
//!   (the crate's only spawn site, audit-enforced).
//! * [`traffic`] — seeded Poisson/bursty open-loop generators and the
//!   schedule replayer.
//! * [`latency`] — coordinated-omission-safe latency recording with
//!   p50/p99/p999 + QPS summaries.
//!
//! ## Determinism
//!
//! Serving inherits the workspace's bitwise-determinism contract: for a
//! fixed query stream, logits are bit-identical across thread counts,
//! SIMD backends, and cache configurations (the cache moves f32 rows
//! verbatim; weights are immutable at serve time). `tests/` holds the
//! matrix.
//!
//! # Example
//!
//! ```
//! use bns_data::SyntheticSpec;
//! use bns_gcn::engine::TrainedModel;
//! use bns_nn::SageModel;
//! use bns_partition::{MetisLikePartitioner, Partitioner};
//! use bns_serve::{CacheConfig, ServeConfig, ServeEngine, ServePlan};
//! use bns_tensor::SeededRng;
//! use std::time::Instant;
//!
//! let ds = SyntheticSpec::reddit_sim().with_nodes(300).generate(1);
//! let part = MetisLikePartitioner::default().partition(&ds.graph, 4, 0);
//! let mut rng = SeededRng::new(0);
//! let model = TrainedModel::Sage(SageModel::new(&[ds.feat_dim(), 16, ds.num_classes], 0.0, &mut rng));
//! let plan = ServePlan::build(&ds, &part, model);
//! let engine = ServeEngine::start(&plan, &ServeConfig::default());
//! let t0 = Instant::now();
//! for v in 0..100u32 {
//!     engine.submit(v, t0);
//! }
//! let report = engine.shutdown();
//! assert_eq!(report.latency.count(), 100);
//! ```

// Serving is pure safe Rust; the audited unsafe lives in bns-tensor.
#![forbid(unsafe_code)]

pub mod batch;
pub mod cache;
pub mod latency;
pub mod shard;
pub mod traffic;
pub mod worker;

pub use batch::{BatchPolicy, Query, RankQueue};
pub use cache::{BoundaryCache, CacheConfig, CacheStats};
pub use latency::{LatencyRecorder, LatencySummary};
pub use shard::{ServePlan, ShardServer};
pub use traffic::{replay_open_loop, Arrivals, NodeMix};
pub use worker::{ServeConfig, ServeEngine, ServeReport, ShardReport};
