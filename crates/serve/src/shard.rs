//! The per-rank shard server: exact L-hop minibatch inference over a
//! partition-sharded feature store.
//!
//! ## Sharding model
//!
//! Serving splits state the same way BNS-GCN training does: node
//! features are *sharded* by partition (each rank's store holds only
//! the rows it owns — the expensive part at production scale), while
//! graph topology, normalizers and the trained weights are *replicated*
//! (weights are a few MB and immutable at serve time; see DESIGN.md
//! §11 for the coherence argument). A query for node `v` is routed to
//! the rank that owns `v`.
//!
//! ## Exactness
//!
//! A batch is answered by expanding the L-hop BFS closure of its target
//! nodes (`L` = model depth), inducing the subgraph on that closure
//! **sorted by ascending global id**, gathering input features, and
//! running all `L` layers. This reproduces full-graph logits *bitwise*:
//! a node at BFS distance `d` from the targets has its complete
//! neighborhood inside the closure whenever `d < L`, which is exactly
//! the set of nodes whose layer-`(L-d)` values the targets consume; and
//! because the closure is sorted ascending, every local CSR row is the
//! full-graph row filtered in order, so each aggregation sums the same
//! values in the same order as the full-graph kernel. (Rows at distance
//! `L` contribute only their layer-0 input features, which are exact by
//! construction.) `tests/exactness.rs` asserts this against
//! [`TrainedModel::predict_logits`].
//!
//! ## Feature I/O
//!
//! Rows the shard owns are read straight from its store. Rows owned by
//! other ranks go through the [`BoundaryCache`]; a miss reads the
//! owner's store and is accounted as fetched bytes — the quantity BGL
//! identifies as the serving bottleneck, and the quantity the cache
//! ratio sweep in `repro serve` trades against memory.

use crate::cache::{BoundaryCache, CacheConfig, CacheStats};
use bns_data::Dataset;
use bns_gcn::engine::TrainedModel;
use bns_gcn::plan::PartitionPlan;
use bns_graph::CsrGraph;
use bns_partition::Partitioning;
use bns_tensor::{Matrix, SeededRng};
use std::sync::Arc;

/// Everything shared by all shards of one serving deployment. Build it
/// once, then spawn one [`ShardServer`] per rank.
#[derive(Debug)]
pub struct ServePlan {
    /// Number of shards (partitions).
    pub k: usize,
    /// Replicated full-graph topology.
    pub graph: Arc<CsrGraph>,
    /// Trained weights (immutable at serve time; replicated).
    pub model: Arc<TrainedModel>,
    /// `owner[v]` = rank owning global node `v`.
    pub owner: Arc<Vec<u32>>,
    /// `local_row[v]` = row of `v` inside its owner's store.
    pub local_row: Arc<Vec<u32>>,
    /// Per-rank feature stores (rank `r` owns `stores[r]`; a read of
    /// another rank's store models a remote fetch and must go through
    /// the cache/fetch path).
    pub stores: Arc<Vec<Matrix>>,
    /// Replicated mean-aggregator normalizer `1/deg(v)` (SAGE).
    pub mean_scale: Arc<Vec<f32>>,
    /// Replicated GCN normalizer `1/sqrt(deg+1)`.
    pub gcn_scale: Arc<Vec<f32>>,
    /// Per rank: that shard's static boundary set ordered by descending
    /// full-graph degree (ties broken by ascending id) — the pinning
    /// priority list.
    pub boundary_by_degree: Vec<Arc<Vec<u32>>>,
    /// Number of output classes.
    pub num_classes: usize,
}

impl ServePlan {
    /// Builds the deployment state for `ds` partitioned by `part`,
    /// serving `model`.
    ///
    /// # Panics
    ///
    /// Panics if the partitioning does not cover the dataset or the
    /// model's input dimension does not match the features.
    pub fn build(ds: &Dataset, part: &Partitioning, model: TrainedModel) -> Self {
        assert_eq!(
            model.feat_dim(),
            ds.feat_dim(),
            "model input dim does not match dataset features"
        );
        let plan = PartitionPlan::build(ds, part);
        let n = ds.num_nodes();
        let mut owner = vec![0u32; n];
        let mut local_row = vec![0u32; n];
        let mut stores = Vec::with_capacity(plan.k);
        let mut boundary_by_degree = Vec::with_capacity(plan.k);
        for p in &plan.parts {
            for (li, &v) in p.inner.iter().enumerate() {
                owner[v] = p.rank as u32;
                local_row[v] = li as u32;
            }
            stores.push(p.features.clone());
            let mut bd: Vec<u32> = p.boundary.iter().map(|&v| v as u32).collect();
            // Descending degree, ascending id on ties: a total order, so
            // the pin set is deterministic.
            bd.sort_unstable_by_key(|&v| (usize::MAX - ds.graph.degree(v as usize), v));
            boundary_by_degree.push(Arc::new(bd));
        }
        ServePlan {
            k: plan.k,
            graph: Arc::new(ds.graph.clone()),
            num_classes: model.num_classes(),
            model: Arc::new(model),
            owner: Arc::new(owner),
            local_row: Arc::new(local_row),
            stores: Arc::new(stores),
            mean_scale: Arc::new(ds.mean_scale()),
            gcn_scale: Arc::new(ds.gcn_scale()),
            boundary_by_degree,
        }
    }

    /// The rank a query for `node` must be routed to.
    pub fn owner_of(&self, node: u32) -> usize {
        self.owner[node as usize] as usize
    }

    /// Instantiates rank `rank`'s server with its boundary cache sized
    /// and pinned per `cfg`.
    pub fn shard(&self, rank: usize, cfg: CacheConfig) -> ShardServer {
        assert!(rank < self.k, "rank {rank} out of range");
        let dim = self.stores[rank].cols();
        let n_boundary = self.boundary_by_degree[rank].len();
        let slots = cfg.slots(n_boundary).min(self.graph.num_nodes());
        let pinned = cfg.pinned(slots);
        let mut cache = BoundaryCache::new(slots, pinned, dim, self.graph.num_nodes());
        let owner = &self.owner;
        let local_row = &self.local_row;
        let stores = &self.stores;
        cache.pin(&self.boundary_by_degree[rank], |g| {
            stores[owner[g as usize] as usize].row(local_row[g as usize] as usize)
        });
        ShardServer {
            rank,
            depth: self.model.num_layers(),
            graph: Arc::clone(&self.graph),
            model: Arc::clone(&self.model),
            owner: Arc::clone(&self.owner),
            local_row: Arc::clone(&self.local_row),
            stores: Arc::clone(&self.stores),
            mean_scale: Arc::clone(&self.mean_scale),
            gcn_scale: Arc::clone(&self.gcn_scale),
            cache,
            epoch: 0,
            mark: vec![0u32; self.graph.num_nodes()],
            frontier: Vec::new(),
            next_frontier: Vec::new(),
            closure: Vec::new(),
        }
    }
}

/// One rank's serving state: shared deployment handles, a private
/// boundary cache, and reusable BFS scratch. Answers batches
/// synchronously via [`ShardServer::serve_batch`]; the worker pool in
/// [`crate::worker`] drives one of these per rank.
#[derive(Debug)]
pub struct ShardServer {
    rank: usize,
    depth: usize,
    graph: Arc<CsrGraph>,
    model: Arc<TrainedModel>,
    owner: Arc<Vec<u32>>,
    local_row: Arc<Vec<u32>>,
    stores: Arc<Vec<Matrix>>,
    mean_scale: Arc<Vec<f32>>,
    gcn_scale: Arc<Vec<f32>>,
    cache: BoundaryCache,
    /// Batch stamp for the `mark` array (epoch-stamped visited set — a
    /// dense array instead of a hash set on the hot path).
    epoch: u32,
    mark: Vec<u32>,
    frontier: Vec<u32>,
    next_frontier: Vec<u32>,
    closure: Vec<usize>,
}

impl ShardServer {
    /// This server's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Snapshot of the boundary-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats
    }

    /// L-hop BFS closure of `targets`, sorted ascending, into
    /// `self.closure`. Duplicates in `targets` are fine.
    fn expand_closure(&mut self, targets: &[u32]) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // u32 wrapped: stamp 0 means "unvisited", so reset.
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.epoch = 1;
        }
        self.closure.clear();
        self.frontier.clear();
        for &t in targets {
            let ti = t as usize;
            if self.mark[ti] != self.epoch {
                self.mark[ti] = self.epoch;
                self.closure.push(ti);
                self.frontier.push(t);
            }
        }
        for _ in 0..self.depth {
            self.next_frontier.clear();
            for fi in 0..self.frontier.len() {
                let v = self.frontier[fi] as usize;
                for &u in self.graph.neighbors(v) {
                    let ui = u as usize;
                    if self.mark[ui] != self.epoch {
                        self.mark[ui] = self.epoch;
                        self.closure.push(ui);
                        self.next_frontier.push(u);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next_frontier);
        }
        self.closure.sort_unstable();
    }

    /// Gathers input features for the sorted closure: owned rows from
    /// this shard's store, remote rows through the cache (miss = a
    /// fetch from the owning shard's store, counted in bytes).
    fn gather_features(&mut self) -> Matrix {
        let dim = self.stores[self.rank].cols();
        let mut h0 = Matrix::zeros(self.closure.len(), dim);
        for (i, &g) in self.closure.iter().enumerate() {
            let owner = self.owner[g] as usize;
            if owner == self.rank {
                h0.row_mut(i)
                    .copy_from_slice(self.stores[owner].row(self.local_row[g] as usize));
            } else if let Some(row) = self.cache.lookup(g as u32) {
                h0.row_mut(i).copy_from_slice(row);
            } else {
                let row = self.stores[owner].row(self.local_row[g] as usize);
                h0.row_mut(i).copy_from_slice(row);
                self.cache.admit(g as u32, row);
            }
        }
        h0
    }

    /// Answers one batch: logits for `targets` in request order
    /// (`targets.len() x num_classes`), bitwise equal to the rows of
    /// [`TrainedModel::logits`] on the full graph.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or an out-of-range node id.
    pub fn serve_batch(&mut self, targets: &[u32]) -> Matrix {
        assert!(!targets.is_empty(), "empty batch");
        self.expand_closure(targets);
        let h0 = self.gather_features();
        let sub = self.graph.induced_subgraph(&self.closure);
        let n_sub = self.closure.len();
        // Eval-mode forward: dropout off, so the RNG stream is inert —
        // a fresh fixed-seed RNG keeps the call deterministic anyway.
        let mut rng = SeededRng::new(0);
        let mut h = h0;
        match &*self.model {
            TrainedModel::Sage(m) => {
                let scale: Vec<f32> = self.closure.iter().map(|&g| self.mean_scale[g]).collect();
                for layer in &m.layers {
                    let (next, _) = layer.forward(&sub.graph, &h, n_sub, &scale, false, &mut rng);
                    h = next;
                }
            }
            TrainedModel::Gat(m) => {
                for layer in &m.layers {
                    let (next, _) = layer.forward(&sub.graph, &h, n_sub, false, &mut rng);
                    h = next;
                }
            }
            TrainedModel::Gcn(layers) => {
                let scale: Vec<f32> = self.closure.iter().map(|&g| self.gcn_scale[g]).collect();
                for layer in layers {
                    let (next, _) = layer.forward(&sub.graph, &h, n_sub, &scale, false, &mut rng);
                    h = next;
                }
            }
        }
        // Route each target (request order, duplicates allowed) to its
        // closure row.
        let rows: Vec<usize> = targets
            .iter()
            .map(|&t| {
                self.closure
                    .binary_search(&(t as usize))
                    .expect("target is in its own closure")
            })
            .collect();
        h.gather_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::SyntheticSpec;
    use bns_gcn::engine::TrainedModel;
    use bns_nn::SageModel;
    use bns_partition::{MetisLikePartitioner, Partitioner};

    fn setup(k: usize) -> (Dataset, ServePlan) {
        let ds = SyntheticSpec::reddit_sim().with_nodes(400).generate(11);
        let part = MetisLikePartitioner::default().partition(&ds.graph, k, 1);
        let mut rng = SeededRng::new(4);
        let model = TrainedModel::Sage(SageModel::new(
            &[ds.feat_dim(), 16, ds.num_classes],
            0.0,
            &mut rng,
        ));
        let plan = ServePlan::build(&ds, &part, model);
        (ds, plan)
    }

    #[test]
    fn plan_shards_every_node_exactly_once() {
        let (ds, plan) = setup(4);
        assert_eq!(plan.k, 4);
        let total_rows: usize = plan.stores.iter().map(Matrix::rows).sum();
        assert_eq!(total_rows, ds.num_nodes());
        for v in 0..ds.num_nodes() {
            let r = plan.owner_of(v as u32);
            let row = plan.stores[r].row(plan.local_row[v] as usize);
            assert_eq!(row, ds.features.row(v), "store row of node {v}");
        }
        // Pinning order is degree-sorted.
        for bd in &plan.boundary_by_degree {
            for w in bd.windows(2) {
                assert!(
                    ds.graph.degree(w[0] as usize) >= ds.graph.degree(w[1] as usize),
                    "pin list not degree-descending"
                );
            }
        }
    }

    #[test]
    fn serve_batch_matches_full_graph_logits() {
        let (ds, plan) = setup(4);
        let reference = plan.model.logits(&ds);
        for rank in 0..plan.k {
            let mut server = plan.shard(rank, CacheConfig::default());
            // Serve every node this shard owns, in a few batches.
            let mine: Vec<u32> = (0..ds.num_nodes() as u32)
                .filter(|&v| plan.owner_of(v) == rank)
                .collect();
            for chunk in mine.chunks(17) {
                let out = server.serve_batch(chunk);
                assert_eq!(out.cols(), plan.num_classes);
                for (j, &t) in chunk.iter().enumerate() {
                    let want: Vec<u32> = reference
                        .row(t as usize)
                        .iter()
                        .map(|x| x.to_bits())
                        .collect();
                    let got: Vec<u32> = out.row(j).iter().map(|x| x.to_bits()).collect();
                    assert_eq!(got, want, "rank {rank} node {t}");
                }
            }
        }
    }

    #[test]
    fn duplicate_targets_get_identical_rows() {
        let (_ds, plan) = setup(2);
        let mut server = plan.shard(0, CacheConfig::disabled());
        let v = (0..plan.owner.len() as u32)
            .find(|&x| plan.owner_of(x) == 0)
            .unwrap();
        let out = server.serve_batch(&[v, v, v]);
        assert_eq!(out.rows(), 3);
        assert_eq!(out.row(0), out.row(1));
        assert_eq!(out.row(1), out.row(2));
    }

    #[test]
    fn cache_counters_move_and_disabled_cache_still_counts_bytes() {
        let (ds, plan) = setup(4);
        let mine: Vec<u32> = (0..ds.num_nodes() as u32)
            .filter(|&v| plan.owner_of(v) == 0)
            .take(40)
            .collect();

        let mut cached = plan.shard(0, CacheConfig::default());
        for chunk in mine.chunks(8) {
            cached.serve_batch(chunk);
        }
        let cs = cached.cache_stats();
        assert!(cs.hits > 0, "repeated closures must hit the cache");

        let mut cold = plan.shard(0, CacheConfig::disabled());
        for chunk in mine.chunks(8) {
            cold.serve_batch(chunk);
        }
        let ns = cold.cache_stats();
        assert_eq!(ns.hits, 0);
        assert!(ns.misses > 0);
        assert!(
            ns.bytes_fetched > cs.bytes_fetched,
            "caching must reduce fetched bytes: {} vs {}",
            cs.bytes_fetched,
            ns.bytes_fetched
        );
    }
}
