//! The hot-boundary feature cache: pinned high-degree rows plus a
//! CLOCK-managed cold region.
//!
//! A serving shard owns the feature rows of its own partition; every
//! other row it needs (cross-partition neighbors — the generalized
//! boundary of the shard) must be fetched from the owning shard. BGL's
//! observation is that this feature I/O, not the GNN compute,
//! dominates; PaGraph's is that graph-query traffic is massively skewed
//! toward high-degree nodes. [`BoundaryCache`] encodes both: a capacity
//! sized as a fraction of the shard's static boundary set, the
//! top-degree slice of that set **pinned** (filled once at startup,
//! never evicted), and the remainder run as a CLOCK (second-chance)
//! cache for whatever the query stream actually touches.
//!
//! Determinism: the cache only changes *where* an f32 row is read from,
//! never its bits, so cached and uncached serving produce bitwise
//! identical logits (`tests/determinism.rs` holds this across the
//! `BNS_THREADS`/`BNS_SIMD` matrix). Lookups go through a dense
//! `global id -> slot` index — no hash maps in the per-query hot path
//! (enforced by `cargo xtask audit`).

/// Slot index marking "not cached".
const NO_SLOT: u32 = u32::MAX;

/// Sizing and pinning policy for a [`BoundaryCache`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Capacity as a fraction of the shard's boundary-row count
    /// (`0.0` disables the cache entirely; values above 1.0 are
    /// allowed and simply over-provision the cold region).
    pub capacity_ratio: f64,
    /// Fraction of the capacity reserved for degree-pinned hot rows
    /// (clamped to `[0, 1]`).
    pub pin_fraction: f64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity_ratio: 0.25,
            pin_fraction: 0.5,
        }
    }
}

impl CacheConfig {
    /// A disabled cache (every boundary row is fetched remotely).
    pub fn disabled() -> Self {
        Self {
            capacity_ratio: 0.0,
            pin_fraction: 0.0,
        }
    }

    /// Slot count for a shard with `n_boundary` static boundary rows.
    pub fn slots(&self, n_boundary: usize) -> usize {
        (self.capacity_ratio * n_boundary as f64).round() as usize
    }

    /// How many of `slots` are pinned.
    pub fn pinned(&self, slots: usize) -> usize {
        ((self.pin_fraction.clamp(0.0, 1.0) * slots as f64).round() as usize).min(slots)
    }
}

/// Hit/miss/byte counters, snapshotted into the serve report and
/// flushed as `serve.cache.*` telemetry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a pinned or cold slot.
    pub hits: u64,
    /// Lookups that fell through to a remote fetch.
    pub misses: u64,
    /// Bytes fetched from owning shards on the miss path.
    pub bytes_fetched: u64,
    /// Bytes prefetched into pinned slots at startup (not on the
    /// query path; kept separate so hit-rate math stays honest).
    pub bytes_prefetched: u64,
    /// Cold-region evictions performed by the CLOCK hand.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate over the query path (`0.0` when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another shard's counters (for the engine report).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.bytes_fetched += other.bytes_fetched;
        self.bytes_prefetched += other.bytes_prefetched;
        self.evictions += other.evictions;
    }

    /// Flushes the counters to `bns-telemetry`.
    pub fn flush_counters(&self) {
        bns_telemetry::counter_add("serve.cache.hits", self.hits);
        bns_telemetry::counter_add("serve.cache.misses", self.misses);
        bns_telemetry::counter_add("serve.cache.bytes_fetched", self.bytes_fetched);
        bns_telemetry::counter_add("serve.cache.bytes_prefetched", self.bytes_prefetched);
        bns_telemetry::counter_add("serve.cache.evictions", self.evictions);
    }
}

/// Fixed-capacity feature-row cache keyed by global node id.
///
/// Slots `[0, pinned)` are immutable after [`BoundaryCache::pin`];
/// slots `[pinned, slots)` are managed by a CLOCK hand. All state is
/// dense vectors — lookup is two array reads, insertion is O(evict
/// scan), and nothing allocates after construction.
#[derive(Debug)]
pub struct BoundaryCache {
    /// Row storage, `slots x dim`, flat.
    rows: Vec<f32>,
    /// Feature dimension.
    dim: usize,
    /// `global id -> slot` (dense over the whole graph).
    slot_of: Vec<u32>,
    /// `slot -> global id` (NO_SLOT while empty).
    node_of: Vec<u32>,
    /// First `pinned` slots are never evicted.
    pinned: usize,
    /// CLOCK reference bits for the cold region (indexed by slot).
    referenced: Vec<bool>,
    /// CLOCK hand over `[pinned, slots)`.
    hand: usize,
    /// Next never-used cold slot (fill before evicting).
    cold_fill: usize,
    /// Counters.
    pub stats: CacheStats,
}

impl BoundaryCache {
    /// An empty cache with `slots` rows of `dim` floats over a graph of
    /// `num_nodes` global ids. `pinned <= slots` slots are reserved for
    /// the pin set.
    pub fn new(slots: usize, pinned: usize, dim: usize, num_nodes: usize) -> Self {
        assert!(pinned <= slots, "pinned set larger than capacity");
        Self {
            rows: vec![0.0; slots * dim],
            dim,
            slot_of: vec![NO_SLOT; num_nodes],
            node_of: vec![NO_SLOT; slots],
            pinned,
            referenced: vec![false; slots],
            hand: pinned,
            cold_fill: pinned,
            stats: CacheStats::default(),
        }
    }

    /// Total slot count.
    pub fn slots(&self) -> usize {
        self.node_of.len()
    }

    /// Pinned slot count.
    pub fn pinned_slots(&self) -> usize {
        self.pinned
    }

    /// Whether the cache holds no slots at all (disabled).
    pub fn is_disabled(&self) -> bool {
        self.node_of.is_empty()
    }

    /// Fills the pinned region with `nodes` (at most `pinned` of them
    /// are taken) using `fetch(global) -> row`. Call once at startup;
    /// the fetched bytes are accounted as prefetch, not misses.
    ///
    /// # Panics
    ///
    /// Panics if a fetched row has the wrong dimension or a node is
    /// pinned twice.
    pub fn pin<'a>(&mut self, nodes: &[u32], mut fetch: impl FnMut(u32) -> &'a [f32]) {
        let take = nodes.len().min(self.pinned);
        for (slot, &g) in nodes[..take].iter().enumerate() {
            assert_eq!(self.slot_of[g as usize], NO_SLOT, "node {g} pinned twice");
            let row = fetch(g);
            assert_eq!(row.len(), self.dim, "pinned row dim mismatch");
            self.rows[slot * self.dim..(slot + 1) * self.dim].copy_from_slice(row);
            self.slot_of[g as usize] = slot as u32;
            self.node_of[slot] = g;
            self.stats.bytes_prefetched += (self.dim * 4) as u64;
        }
        // Unfilled pinned slots (tiny boundary sets) join the cold pool.
        if take < self.pinned {
            self.pinned = take;
            self.hand = take;
            self.cold_fill = take;
        }
    }

    /// Looks `global` up; a hit returns the cached row and marks the
    /// slot referenced. Counters are updated either way.
    pub fn lookup(&mut self, global: u32) -> Option<&[f32]> {
        let slot = self.slot_of[global as usize];
        if slot == NO_SLOT {
            self.stats.misses += 1;
            return None;
        }
        let slot = slot as usize;
        self.stats.hits += 1;
        self.referenced[slot] = true;
        Some(&self.rows[slot * self.dim..(slot + 1) * self.dim])
    }

    /// Records a remote fetch of `row` for `global` and inserts it into
    /// the cold region (evicting via CLOCK if full). With no cold slots
    /// the row is only accounted, not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong dimension.
    pub fn admit(&mut self, global: u32, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "admitted row dim mismatch");
        self.stats.bytes_fetched += (self.dim * 4) as u64;
        let slots = self.node_of.len();
        if self.pinned >= slots {
            return; // no cold region
        }
        let slot = if self.cold_fill < slots {
            let s = self.cold_fill;
            self.cold_fill += 1;
            s
        } else {
            // CLOCK: advance the hand, clearing reference bits, until an
            // unreferenced victim is found (terminates within two laps).
            loop {
                let s = self.hand;
                self.hand += 1;
                if self.hand >= slots {
                    self.hand = self.pinned;
                }
                if self.referenced[s] {
                    self.referenced[s] = false;
                } else {
                    break s;
                }
            }
        };
        let old = self.node_of[slot];
        if old != NO_SLOT {
            self.slot_of[old as usize] = NO_SLOT;
            self.stats.evictions += 1;
        }
        self.rows[slot * self.dim..(slot + 1) * self.dim].copy_from_slice(row);
        self.slot_of[global as usize] = slot as u32;
        self.node_of[slot] = global;
        // Inserted cold: only a subsequent hit earns the second chance,
        // so one-touch rows wash out of a scanning workload quickly.
        self.referenced[slot] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: f32, d: usize) -> Vec<f32> {
        vec![v; d]
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = BoundaryCache::new(0, 0, 4, 100);
        assert!(c.is_disabled());
        assert!(c.lookup(3).is_none());
        c.admit(3, &row(1.0, 4));
        assert!(c.lookup(3).is_none());
        assert_eq!(c.stats.misses, 2);
        assert_eq!(c.stats.bytes_fetched, 16);
        assert_eq!(c.stats.hits, 0);
    }

    #[test]
    fn pinned_rows_survive_any_traffic() {
        let d = 2;
        let mut c = BoundaryCache::new(3, 2, d, 100);
        let backing: Vec<Vec<f32>> = (0..100).map(|i| row(i as f32, d)).collect();
        c.pin(&[7, 9], |g| &backing[g as usize]);
        assert_eq!(c.stats.bytes_prefetched, 2 * d as u64 * 4);
        // Hammer the single cold slot with a conflict stream.
        for g in 20..60u32 {
            assert!(c.lookup(g).is_none());
            c.admit(g, &backing[g as usize]);
        }
        assert_eq!(c.lookup(7).unwrap(), &backing[7][..]);
        assert_eq!(c.lookup(9).unwrap(), &backing[9][..]);
        // Last-admitted cold row is resident.
        assert_eq!(c.lookup(59).unwrap(), &backing[59][..]);
        assert!(c.stats.evictions > 0);
    }

    #[test]
    fn clock_gives_second_chances() {
        let d = 1;
        let mut c = BoundaryCache::new(2, 0, d, 10);
        c.admit(0, &[0.0]);
        c.admit(1, &[1.0]);
        // Touch node 0 so its reference bit protects it from the next
        // eviction; node 1 is the victim.
        assert!(c.lookup(0).is_some());
        c.admit(2, &[2.0]);
        assert!(c.lookup(0).is_some(), "referenced row was evicted");
        assert!(c.lookup(1).is_none(), "unreferenced row survived");
        assert!(c.lookup(2).is_some());
    }

    #[test]
    fn short_pin_list_releases_slots_to_cold_region() {
        let mut c = BoundaryCache::new(4, 4, 1, 10);
        let backing = [[5.0f32]];
        c.pin(&[0], |_| &backing[0][..]);
        assert_eq!(c.pinned_slots(), 1);
        // The released slots accept cold admissions.
        c.admit(1, &[1.0]);
        c.admit(2, &[2.0]);
        c.admit(3, &[3.0]);
        assert!(c.lookup(1).is_some());
        assert!(c.lookup(2).is_some());
        assert!(c.lookup(3).is_some());
        assert_eq!(c.stats.evictions, 0);
    }

    #[test]
    fn hit_rate_math() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        let mut t = CacheStats::default();
        t.merge(&s);
        assert_eq!(t, s);
    }
}
