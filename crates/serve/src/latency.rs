//! Latency recording and tail-percentile reporting for the serving
//! harness.
//!
//! Open-loop load generation measures each query's latency from its
//! *intended* arrival time, not from when the generator managed to
//! enqueue it — so queueing delay caused by an overloaded server shows
//! up in the tail instead of being silently absorbed (the classic
//! coordinated-omission mistake).

use std::time::Duration;

/// Collects per-query latencies (microseconds) for one shard worker;
/// merged across shards into the final report.
#[derive(Debug, Default, Clone)]
pub struct LatencyRecorder {
    samples_us: Vec<f64>,
}

impl LatencyRecorder {
    /// An empty recorder with room for `cap` samples.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            samples_us: Vec::with_capacity(cap),
        }
    }

    /// Records one query latency.
    pub fn record(&mut self, latency: Duration) {
        self.samples_us.push(latency.as_secs_f64() * 1e6);
    }

    /// Records a raw microsecond sample (for tests and merges).
    pub fn record_us(&mut self, us: f64) {
        self.samples_us.push(us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples_us.len()
    }

    /// Absorbs another recorder's samples.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_us.extend_from_slice(&other.samples_us);
    }

    /// Nearest-rank quantile in microseconds (`q` in `[0, 1]`); 0 when
    /// empty.
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_us.clone();
        // total_cmp, not partial_cmp().unwrap(): a NaN sample (e.g. a
        // poisoned duration computed from a clock that stepped
        // backwards) must not panic the report at the very end of a
        // long load run. NaNs order after every real sample, so they
        // can only inflate the max — never crash it.
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Full summary over a wall-clock window of `elapsed`.
    pub fn summary(&self, elapsed: Duration) -> LatencySummary {
        let mut sorted = self.samples_us.clone();
        sorted.sort_by(f64::total_cmp);
        let pick = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        let count = sorted.len();
        let mean = if count == 0 {
            0.0
        } else {
            sorted.iter().sum::<f64>() / count as f64
        };
        let secs = elapsed.as_secs_f64();
        LatencySummary {
            count,
            mean_us: mean,
            p50_us: pick(0.50),
            p99_us: pick(0.99),
            p999_us: pick(0.999),
            max_us: sorted.last().copied().unwrap_or(0.0),
            qps: if secs > 0.0 { count as f64 / secs } else { 0.0 },
        }
    }
}

/// Percentile/throughput summary of one serving run (all times in
/// microseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Completed queries.
    pub count: usize,
    /// Mean latency.
    pub mean_us: f64,
    /// Median latency.
    pub p50_us: f64,
    /// 99th-percentile latency.
    pub p99_us: f64,
    /// 99.9th-percentile latency.
    pub p999_us: f64,
    /// Worst observed latency.
    pub max_us: f64,
    /// Completed queries per second of wall-clock time.
    pub qps: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let mut r = LatencyRecorder::default();
        for us in 1..=1000 {
            r.record_us(us as f64);
        }
        assert_eq!(r.quantile_us(0.5), 500.0);
        assert_eq!(r.quantile_us(0.99), 990.0);
        assert_eq!(r.quantile_us(0.999), 999.0);
        assert_eq!(r.quantile_us(1.0), 1000.0);
        // Out-of-window samples arrive in any order.
        let mut shuffled = LatencyRecorder::default();
        for us in [7.0, 1.0, 9.0, 3.0] {
            shuffled.record_us(us);
        }
        assert_eq!(shuffled.quantile_us(0.5), 3.0);
    }

    #[test]
    fn empty_recorder_is_zero() {
        let r = LatencyRecorder::default();
        assert_eq!(r.quantile_us(0.99), 0.0);
        let s = r.summary(Duration::from_secs(1));
        assert_eq!(s.count, 0);
        assert_eq!(s.qps, 0.0);
        assert_eq!(s.max_us, 0.0);
    }

    /// Regression test: `sort_by(partial_cmp().unwrap())` panicked on
    /// the first NaN sample, taking down the report after the full load
    /// run had already completed. NaNs must sort after real samples.
    #[test]
    fn nan_sample_does_not_panic_percentiles() {
        let mut r = LatencyRecorder::default();
        r.record_us(100.0);
        r.record_us(f64::NAN);
        r.record_us(50.0);
        assert_eq!(r.quantile_us(0.5), 100.0);
        let s = r.summary(Duration::from_secs(1));
        assert_eq!(s.count, 3);
        assert_eq!(s.p50_us, 100.0);
        assert!(s.max_us.is_nan());
    }

    #[test]
    fn summary_and_merge() {
        let mut a = LatencyRecorder::with_capacity(2);
        a.record(Duration::from_micros(100));
        a.record(Duration::from_micros(300));
        let mut b = LatencyRecorder::default();
        b.record(Duration::from_micros(200));
        a.merge(&b);
        let s = a.summary(Duration::from_secs(3));
        assert_eq!(s.count, 3);
        assert!((s.mean_us - 200.0).abs() < 1e-6);
        assert!((s.p50_us - 200.0).abs() < 1e-6);
        assert!((s.max_us - 300.0).abs() < 1e-6);
        assert!((s.qps - 1.0).abs() < 1e-9);
    }
}
