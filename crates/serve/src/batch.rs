//! Per-rank bounded query queues and the size/linger batcher.
//!
//! Every shard worker drains exactly one [`RankQueue`]; the router
//! pushes a query onto the queue of the rank that owns the target node.
//! The queue is bounded — a saturated shard pushes back on the load
//! generator instead of buffering unboundedly — and strictly FIFO, so
//! per-rank query order is the submission order (asserted by proptest).
//!
//! Batch formation trades latency for throughput with two knobs
//! ([`BatchPolicy`]): a batch closes when it reaches `max_batch`
//! queries *or* when `linger` has elapsed since the batch's first query
//! was picked up, whichever comes first. `linger = 0` degrades to
//! "serve whatever is queued right now".

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One node-classification query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Global id of the node to classify.
    pub node: u32,
    /// Intended (scheduled) arrival instant — latency is charged from
    /// here, not from when the queue accepted the query.
    pub arrival: Instant,
    /// Where to deliver the logits row; `None` for fire-and-forget load
    /// (the harness only measures latency).
    pub reply: Option<std::sync::mpsc::Sender<Vec<f32>>>,
}

impl Query {
    /// A fire-and-forget query.
    pub fn new(node: u32, arrival: Instant) -> Self {
        Self {
            node,
            arrival,
            reply: None,
        }
    }
}

/// The latency/throughput knob for batch formation.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Hard cap on queries per batch (at least 1).
    pub max_batch: usize,
    /// How long a partially-filled batch may wait for stragglers.
    pub linger: Duration,
}

impl BatchPolicy {
    /// A policy that never waits: batch = current queue contents,
    /// capped at `max_batch`.
    pub fn immediate(max_batch: usize) -> Self {
        Self {
            max_batch,
            linger: Duration::ZERO,
        }
    }
}

/// Pops at most `max_batch` queries off the front of `q` into `out`,
/// preserving FIFO order. The pure core of batch formation — the
/// concurrent wrapper below and the proptests share it.
pub fn drain_batch(q: &mut VecDeque<Query>, max_batch: usize, out: &mut Vec<Query>) {
    let take = q.len().min(max_batch.saturating_sub(out.len()));
    for _ in 0..take {
        out.push(q.pop_front().expect("len checked"));
    }
}

#[derive(Debug)]
struct QueueState {
    q: VecDeque<Query>,
    closed: bool,
}

/// A bounded MPSC query queue with blocking push (backpressure) and a
/// batching pop.
#[derive(Debug)]
pub struct RankQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl RankQueue {
    /// A queue holding at most `capacity` pending queries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            state: Mutex::new(QueueState {
                q: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Pending query count.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().q.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues a query, blocking while the queue is full. Returns
    /// `false` (dropping the query) iff the queue has been closed.
    pub fn push(&self, query: Query) -> bool {
        self.push_with(query, &mut || {})
    }

    /// Seam behind [`RankQueue::push`]: `on_full` runs (queue still
    /// locked) each time the queue is observed full, immediately before
    /// blocking. A test signals "producer parked" from the hook instead
    /// of sleeping and hoping the producer got that far — the condvar
    /// releases the lock atomically, so anything the signalled thread
    /// does under the lock is ordered strictly after the wait begins.
    fn push_with(&self, query: Query, on_full: &mut dyn FnMut()) -> bool {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.closed {
                return false;
            }
            if st.q.len() < self.capacity {
                st.q.push_back(query);
                drop(st);
                self.not_empty.notify_one();
                return true;
            }
            on_full();
            st = self.not_full.wait(st).unwrap();
        }
    }

    /// Closes the queue: future pushes fail, and once drained,
    /// `pop_batch` returns `false` forever.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Forms the next batch into `out` (cleared first). Blocks until at
    /// least one query is available, then lingers per `policy` for more
    /// (up to `policy.max_batch`). Returns `false` iff the queue is
    /// closed and fully drained — the worker's exit signal.
    pub fn pop_batch(&self, policy: &BatchPolicy, out: &mut Vec<Query>) -> bool {
        self.pop_batch_with(policy, out, &mut || {})
    }

    /// Seam behind [`RankQueue::pop_batch`]: `before_linger_wait` runs
    /// (queue locked) immediately before each timed straggler wait. A
    /// test releases its straggler producer from the hook, so "query
    /// arrives during the linger window" is a forced interleaving
    /// rather than a race against a sleep.
    fn pop_batch_with(
        &self,
        policy: &BatchPolicy,
        out: &mut Vec<Query>,
        before_linger_wait: &mut dyn FnMut(),
    ) -> bool {
        out.clear();
        let max_batch = policy.max_batch.max(1);
        let mut st = self.state.lock().unwrap();
        // Wait for the batch's first query.
        while st.q.is_empty() {
            if st.closed {
                return false;
            }
            st = self.not_empty.wait(st).unwrap();
        }
        drain_batch(&mut st.q, max_batch, out);
        // Linger for stragglers.
        if out.len() < max_batch && !policy.linger.is_zero() {
            let deadline = Instant::now() + policy.linger;
            loop {
                if st.closed {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                before_linger_wait();
                let (g, _timeout) = self.not_empty.wait_timeout(st, deadline - now).unwrap();
                st = g;
                drain_batch(&mut st.q, max_batch, out);
                if out.len() >= max_batch {
                    break;
                }
            }
        }
        drop(st);
        self.not_full.notify_all();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn q(node: u32) -> Query {
        Query::new(node, Instant::now())
    }

    #[test]
    fn fifo_and_bounds_single_thread() {
        let rq = RankQueue::bounded(64);
        for n in 0..10 {
            assert!(rq.push(q(n)));
        }
        let policy = BatchPolicy::immediate(4);
        let mut out = Vec::new();
        let mut seen = Vec::new();
        while !rq.is_empty() {
            assert!(rq.pop_batch(&policy, &mut out));
            assert!(!out.is_empty() && out.len() <= 4);
            seen.extend(out.iter().map(|x| x.node));
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn close_drains_then_stops() {
        let rq = RankQueue::bounded(8);
        rq.push(q(1));
        rq.close();
        assert!(!rq.push(q(2)), "push after close must fail");
        let mut out = Vec::new();
        assert!(rq.pop_batch(&BatchPolicy::immediate(8), &mut out));
        assert_eq!(out.len(), 1);
        assert!(!rq.pop_batch(&BatchPolicy::immediate(8), &mut out));
        assert!(out.is_empty());
    }

    /// Deterministic via the `push_with` seam: the producer signals
    /// from inside the "queue is full" hook, so the consumer pops only
    /// once the producer is provably at its blocking point — no sleep,
    /// no race.
    #[test]
    fn push_blocks_until_pop_frees_a_slot() {
        let rq = Arc::new(RankQueue::bounded(2));
        rq.push(q(0));
        rq.push(q(1));
        let (parked_tx, parked_rx) = std::sync::mpsc::channel();
        let rq2 = Arc::clone(&rq);
        let t = std::thread::spawn(move || {
            rq2.push_with(q(2), &mut || {
                parked_tx.send(()).expect("test alive");
            })
        });
        // Runs strictly after the producer observed the queue full and
        // entered its condvar wait; free a slot.
        parked_rx.recv().expect("producer parked");
        let mut out = Vec::new();
        assert!(rq.pop_batch(&BatchPolicy::immediate(1), &mut out));
        assert_eq!(out[0].node, 0);
        assert!(t.join().unwrap(), "blocked push must complete");
        assert_eq!(rq.len(), 2);
    }

    /// Deterministic via the `pop_batch_with` seam: the straggler is
    /// released only once the consumer is at its linger wait, so it is
    /// guaranteed to arrive inside the window regardless of scheduler
    /// stalls (the generous linger is a ceiling, never slept through).
    #[test]
    fn linger_collects_stragglers() {
        let rq = Arc::new(RankQueue::bounded(16));
        rq.push(q(0));
        let (lingering_tx, lingering_rx) = std::sync::mpsc::channel();
        let rq2 = Arc::clone(&rq);
        let t = std::thread::spawn(move || {
            lingering_rx.recv().expect("consumer lingering");
            rq2.push(q(1));
        });
        let policy = BatchPolicy {
            max_batch: 2,
            linger: Duration::from_secs(60),
        };
        let mut out = Vec::new();
        assert!(rq.pop_batch_with(&policy, &mut out, &mut || {
            let _ = lingering_tx.send(());
        }));
        t.join().unwrap();
        // The straggler arrived inside the linger window, so it must
        // ride in the same batch (and close it at max_batch).
        assert_eq!(out.iter().map(|x| x.node).collect::<Vec<_>>(), vec![0, 1]);
    }
}
