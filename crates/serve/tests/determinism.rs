//! The serving determinism matrix: the same query set must produce
//! bitwise-identical logits no matter the cache configuration, kernel
//! thread count, or SIMD backend — and all of them must equal the
//! full-graph reference ([`TrainedModel::predict_logits`]).
//!
//! Caching only changes *where* an f32 row is copied from (pinned slot,
//! cold slot, or owner store), never its bits; thread pools and SIMD
//! lanes are covered by the workspace-wide fixed-reduction-order
//! contract. This test pins the composition of all three. CI re-runs
//! the suite under `BNS_THREADS=1` and `BNS_SIMD=scalar` legs, so the
//! ambient environment axis is exercised there on top of the forced
//! matrix here.

use bns_data::SyntheticSpec;
use bns_gcn::engine::TrainedModel;
use bns_nn::{GatModel, SageModel};
use bns_partition::{MetisLikePartitioner, Partitioner};
use bns_serve::{CacheConfig, ServePlan};
use bns_tensor::pool::{self, ThreadPool};
use bns_tensor::simd::{self, Backend};
use bns_tensor::{Matrix, SeededRng};

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

/// Serves a fixed query set on every shard under one cache config and
/// returns the concatenated logits.
fn serve_all(plan: &ServePlan, cache: CacheConfig, queries: &[u32], batch: usize) -> Matrix {
    let mut out = Matrix::zeros(0, plan.num_classes);
    for rank in 0..plan.k {
        let mut server = plan.shard(rank, cache);
        let mine: Vec<u32> = queries
            .iter()
            .copied()
            .filter(|&v| plan.owner_of(v) == rank)
            .collect();
        for chunk in mine.chunks(batch.max(1)) {
            out = out.vstack(&server.serve_batch(chunk));
        }
    }
    out
}

fn build(arch: &str) -> (std::sync::Arc<bns_data::Dataset>, ServePlan, Vec<u32>) {
    let ds = std::sync::Arc::new(SyntheticSpec::reddit_sim().with_nodes(350).generate(17));
    let part = MetisLikePartitioner::default().partition(&ds.graph, 4, 2);
    let mut rng = SeededRng::new(21);
    let dims = [ds.feat_dim(), 12, ds.num_classes];
    let model = match arch {
        "sage" => TrainedModel::Sage(SageModel::new(&dims, 0.0, &mut rng)),
        "gat" => TrainedModel::Gat(GatModel::new(&dims, 0.0, &mut rng)),
        _ => unreachable!(),
    };
    let plan = ServePlan::build(&ds, &part, model);
    // A skewed, duplicate-heavy query stream.
    let mut qrng = SeededRng::new(5);
    let queries: Vec<u32> = (0..200)
        .map(|_| (qrng.usize_below(ds.num_nodes())) as u32)
        .collect();
    (ds, plan, queries)
}

#[test]
fn cached_vs_uncached_bitwise_identical_across_threads_and_lanes() {
    let (ds, plan, queries) = build("sage");
    // Reference rows, full-graph forward, in per-rank serve order.
    let mut ref_order: Vec<usize> = Vec::new();
    for rank in 0..plan.k {
        ref_order.extend(
            queries
                .iter()
                .filter(|&&v| plan.owner_of(v) == rank)
                .map(|&v| v as usize),
        );
    }
    let reference = plan.model.predict_logits(&ds, &ref_order);
    let ref_bits = bits(&reference);

    let cache_axis = [
        CacheConfig::disabled(),
        CacheConfig {
            capacity_ratio: 0.25,
            pin_fraction: 1.0,
        },
        CacheConfig {
            capacity_ratio: 0.5,
            pin_fraction: 0.5,
        },
        CacheConfig {
            capacity_ratio: 1.0,
            pin_fraction: 0.0,
        },
    ];
    let backend_axis = [Backend::Scalar, simd::detect()];
    let thread_axis = [1usize, 2, 4];

    for backend in backend_axis {
        let _simd = simd::force(backend);
        for threads in thread_axis {
            let _pool = (threads > 1).then(|| pool::install(ThreadPool::new(threads)));
            for (ci, cache) in cache_axis.iter().enumerate() {
                for batch in [1usize, 7, 64] {
                    let got = serve_all(&plan, *cache, &queries, batch);
                    assert_eq!(
                        bits(&got),
                        ref_bits,
                        "diverged: backend={backend:?} threads={threads} cache#{ci} batch={batch}"
                    );
                }
            }
        }
    }
}

#[test]
fn gat_serving_matches_reference_with_and_without_cache() {
    // GAT's attention softmax is the numerically touchiest path; one
    // cached-vs-uncached leg keeps it honest.
    let (ds, plan, queries) = build("gat");
    let warm = serve_all(&plan, CacheConfig::default(), &queries, 16);
    let cold = serve_all(&plan, CacheConfig::disabled(), &queries, 16);
    assert_eq!(bits(&warm), bits(&cold), "cache changed GAT logits");
    let mut ref_order: Vec<usize> = Vec::new();
    for rank in 0..plan.k {
        ref_order.extend(
            queries
                .iter()
                .filter(|&&v| plan.owner_of(v) == rank)
                .map(|&v| v as usize),
        );
    }
    let reference = plan.model.predict_logits(&ds, &ref_order);
    assert_eq!(bits(&warm), bits(&reference), "GAT serving != full graph");
}

#[test]
fn repeated_serving_is_stable_as_cache_fills() {
    // The cache mutates between identical batches (cold -> warm ->
    // evicting); the answers must not.
    let (_ds, plan, queries) = build("sage");
    let mut server = plan.shard(
        0,
        CacheConfig {
            capacity_ratio: 0.3,
            pin_fraction: 0.5,
        },
    );
    let mine: Vec<u32> = queries
        .iter()
        .copied()
        .filter(|&v| plan.owner_of(v) == 0)
        .collect();
    let first = server.serve_batch(&mine);
    for _ in 0..5 {
        let again = server.serve_batch(&mine);
        assert_eq!(
            bits(&first),
            bits(&again),
            "answers drifted as cache churned"
        );
    }
    assert!(server.cache_stats().hits > 0);
}
