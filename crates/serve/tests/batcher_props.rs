//! Property tests for the rank queue and batcher: across arbitrary
//! push/pop interleavings and policy knobs, no query is ever dropped,
//! no batch exceeds its bound, and per-rank FIFO order is preserved.

use bns_serve::{BatchPolicy, Query, RankQueue};
use proptest::prelude::*;
use std::time::Instant;

fn q(node: u32) -> Query {
    Query::new(node, Instant::now())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-threaded interleavings: an arbitrary script of pushes and
    /// batched pops (linger 0 so pops never block on the clock).
    #[test]
    fn no_drop_no_overflow_fifo(
        capacity in 1usize..32,
        max_batch in 1usize..16,
        ops in proptest::collection::vec(0usize..2, 1..200),
    ) {
        let queue = RankQueue::bounded(capacity);
        let policy = BatchPolicy::immediate(max_batch);
        let mut next = 0u32;
        let mut popped: Vec<u32> = Vec::new();
        let mut batch = Vec::new();
        for op in ops {
            if op == 1 {
                // Skip pushes that would block the single thread.
                if queue.len() < capacity {
                    prop_assert!(queue.push(q(next)));
                    next += 1;
                }
            } else if !queue.is_empty() {
                prop_assert!(queue.pop_batch(&policy, &mut batch));
                prop_assert!(!batch.is_empty(), "pop on non-empty queue returned nothing");
                prop_assert!(batch.len() <= max_batch, "batch bound violated");
                popped.extend(batch.iter().map(|x| x.node));
            }
        }
        // Drain the remainder.
        while !queue.is_empty() {
            prop_assert!(queue.pop_batch(&policy, &mut batch));
            prop_assert!(batch.len() <= max_batch);
            popped.extend(batch.iter().map(|x| x.node));
        }
        // No drop + FIFO: exactly 0..next in order.
        prop_assert_eq!(popped, (0..next).collect::<Vec<_>>());
    }

    /// Concurrent producer/consumer: every query pushed before close is
    /// served exactly once, in order, whatever the capacity/batch/linger
    /// mix — including pushes that block on a full queue.
    #[test]
    fn concurrent_producer_consumer_preserves_everything(
        capacity in 1usize..8,
        max_batch in 1usize..8,
        n in 1u32..300,
        linger_us in 0u64..200,
    ) {
        let queue = std::sync::Arc::new(RankQueue::bounded(capacity));
        let producer = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || {
                for i in 0..n {
                    assert!(queue.push(q(i)), "queue closed under producer");
                }
                queue.close();
            })
        };
        let policy = BatchPolicy {
            max_batch,
            linger: std::time::Duration::from_micros(linger_us),
        };
        let mut seen: Vec<u32> = Vec::new();
        let mut batch = Vec::new();
        while queue.pop_batch(&policy, &mut batch) {
            prop_assert!(batch.len() <= max_batch, "batch bound violated");
            seen.extend(batch.iter().map(|x| x.node));
        }
        producer.join().unwrap();
        prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }
}
