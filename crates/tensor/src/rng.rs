//! Deterministic random number generation.
//!
//! Everything stochastic in the workspace (dataset synthesis, partitioning
//! tie-breaks, boundary-node sampling, weight init, dropout) flows through
//! [`SeededRng`] so that a run is reproducible from a single `u64` seed.
//!
//! The generator is a self-contained xoshiro256** whose state is expanded
//! from the seed with SplitMix64, so the workspace carries no external
//! RNG dependency and streams are identical on every platform.

/// A seeded random number generator with the distribution helpers the
/// workspace needs (uniform, normal via Box–Muller, permutations,
/// Bernoulli, and weighted choice).
///
/// # Example
///
/// ```
/// use bns_tensor::SeededRng;
///
/// let mut a = SeededRng::new(42);
/// let mut b = SeededRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: [u64; 4],
    seed: u64,
}

/// One SplitMix64 step; used to expand seeds and mix fork streams.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeededRng {
    /// Creates a generator from a `u64` seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { state, seed }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator. Used to hand each partition
    /// rank or each epoch its own stream without sharing state.
    pub fn fork(&mut self, stream: u64) -> SeededRng {
        // Mix the parent's seed, a fresh draw and the stream id through
        // SplitMix64 so sibling forks are decorrelated.
        let mut z = self
            .seed
            .wrapping_add(self.next_u64())
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SeededRng::new(z)
    }

    /// Next raw `u64` (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, n)` via widening multiply.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform_range requires lo < hi, got [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn usize_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "usize_below requires n > 0");
        self.below(n as u64) as usize
    }

    /// A draw from `N(mean, std^2)` via the Box–Muller transform.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        // Box–Muller; rejecting u1 == 0 keeps ln finite.
        let mut u1 = self.uniform();
        while u1 <= f32::MIN_POSITIVE {
            u1 = self.uniform();
        }
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        mean + std * r * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// `p <= 0` always yields `false`; `p >= 1` always yields `true`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }

    /// Samples `k` distinct indices from `0..n` (Floyd's algorithm), in
    /// unspecified order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from 0..{n}");
        if k == 0 {
            return Vec::new();
        }
        // For large k relative to n a shuffle-prefix is cheaper and avoids
        // the hash-set churn of Floyd's algorithm.
        if k * 3 >= n {
            let mut p = self.permutation(n);
            p.truncate(k);
            return p;
        }
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.below(j as u64 + 1) as usize;
            let pick = if chosen.insert(t) { t } else { j };
            if pick != t {
                chosen.insert(pick);
            }
            out.push(pick);
        }
        out
    }

    /// Draws one index in `0..weights.len()` with probability proportional
    /// to `weights[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or the total weight is not positive
    /// and finite.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_choice on empty weights");
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "weighted_choice requires positive finite total weight, got {total}"
        );
        let mut t = self.unit_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            t -= w;
            if t <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(123);
        let mut b = SeededRng::new(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_is_deterministic_and_decorrelated() {
        let mut parent1 = SeededRng::new(9);
        let mut parent2 = SeededRng::new(9);
        let mut c1 = parent1.fork(0);
        let mut c2 = parent2.fork(0);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut c3 = parent1.fork(1);
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn normal_moments() {
        let mut rng = SeededRng::new(5);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = SeededRng::new(17);
        for _ in 0..1000 {
            let x = rng.uniform_range(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn uniform_covers_unit_interval() {
        let mut rng = SeededRng::new(29);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
            buckets[(x * 10.0) as usize] += 1;
        }
        assert!(buckets.iter().all(|&c| c > 700), "buckets {buckets:?}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SeededRng::new(3);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn permutation_is_permutation() {
        let mut rng = SeededRng::new(11);
        let p = rng.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = SeededRng::new(13);
        for &(n, k) in &[(10usize, 3usize), (100, 90), (50, 0), (7, 7)] {
            let s = rng.sample_distinct(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "duplicates in sample");
            assert!(s.iter().all(|&x| x < n));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_distinct_too_many_panics() {
        SeededRng::new(1).sample_distinct(3, 4);
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = SeededRng::new(21);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[rng.weighted_choice(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }
}
