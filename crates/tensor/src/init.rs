//! Weight initialization schemes.

use crate::{Matrix, SeededRng};

/// Xavier/Glorot uniform initialization: entries drawn from
/// `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// The returned matrix has shape `(fan_in, fan_out)`, matching how the
/// layers in `bns-nn` multiply `input (n x fan_in) * W (fan_in x fan_out)`.
///
/// # Example
///
/// ```
/// use bns_tensor::{xavier_uniform, SeededRng};
///
/// let w = xavier_uniform(64, 32, &mut SeededRng::new(0));
/// assert_eq!(w.shape(), (64, 32));
/// ```
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut SeededRng) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Matrix::random_uniform(fan_in, fan_out, -a, a, rng)
}

/// Kaiming/He uniform initialization for ReLU networks: entries drawn from
/// `U(-a, a)` with `a = sqrt(6 / fan_in)`.
pub fn kaiming_uniform(fan_in: usize, fan_out: usize, rng: &mut SeededRng) -> Matrix {
    let a = (6.0 / fan_in as f32).sqrt();
    Matrix::random_uniform(fan_in, fan_out, -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_bounds_and_centered() {
        let mut rng = SeededRng::new(42);
        let w = xavier_uniform(100, 50, &mut rng);
        let a = (6.0f32 / 150.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= a));
        let mean = w.sum() / w.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn kaiming_within_bounds() {
        let mut rng = SeededRng::new(43);
        let w = kaiming_uniform(64, 64, &mut rng);
        let a = (6.0f32 / 64.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn init_is_deterministic() {
        let w1 = xavier_uniform(10, 10, &mut SeededRng::new(7));
        let w2 = xavier_uniform(10, 10, &mut SeededRng::new(7));
        assert_eq!(w1, w2);
    }
}
