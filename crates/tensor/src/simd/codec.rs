//! Wire codecs for the quantized boundary exchange (DESIGN.md §13).
//!
//! Boundary-feature rows dominate BNS-GCN's communication volume, so the
//! exchange layer can optionally quantize rows on the wire. This module
//! owns the pack/unpack kernels for the three formats:
//!
//! * **f16** — IEEE 754 binary16, 2 bytes/element. Pack is
//!   round-to-nearest-even; values below half the smallest subnormal
//!   (|x| < 2⁻²⁵) flush to signed zero, overflow saturates to ±∞, and
//!   NaN collapses to the canonical quiet NaN (`0x7E00`).
//! * **bf16** — bfloat16 (f32 with the mantissa truncated to 7 bits),
//!   2 bytes/element, round-to-nearest-even; NaN keeps its truncated
//!   payload with the quiet bit forced so it can never become ∞.
//! * **int8** — per-row affine: an 8-byte header `[scale: f32 LE,
//!   zero_point: f32 LE]` followed by one byte per element, `d + 8`
//!   bytes for a row of `d`. `x ≈ zero_point + q·scale` with
//!   `scale = (max−min)/255` folded over the row ignoring NaN. NaN
//!   elements quantize to `q = 0` and therefore dequantize to the row
//!   zero-point — int8 does *not* preserve NaN (f16/bf16 do). A row
//!   whose min/max range is not finite (±∞ present, or the span
//!   overflows f32) collapses to `scale = 0` with a zero zero-point;
//!   training data never produces such rows.
//!
//! The gradient return path uses **stochastic rounding** (`*_sr`
//! kernels): instead of rounding to nearest, each element rounds up with
//! probability equal to its fractional distance, which keeps the
//! *expected* dequantized value equal to the input and stops quantization
//! bias from accumulating across epochs. Randomness is counter-based —
//! `rand_at(seed, row, j)` hashes (seed, row index, element index)
//! through a SplitMix64-style finalizer — so the result for a fixed seed
//! is a pure function of the data and its position, bitwise identical at
//! any thread count, worker count, or lane width. SR values below 2⁻²⁵
//! flush to zero deterministically (no random round-up in the
//! sub-subnormal tail); gradients there are noise.
//!
//! # Determinism
//!
//! Every conversion is scalar integer/float bit manipulation with an
//! identical per-element program order on every backend; the dispatched
//! `#[target_feature]` wrappers exist so LLVM may autovectorize those
//! element-independent loops with wider integer instructions (and so the
//! dispatch shows up in `simd.dispatch.*` telemetry), never to change
//! the arithmetic. The only float ops the vector trait executes are
//! lanewise multiplies in the unpack scale pass — correctly rounded IEEE
//! ops, so quantize→dequantize is bitwise identical across
//! scalar/SSE2/AVX2/NEON (proptests in
//! `crates/tensor/tests/codec_roundtrip.rs` force every backend).

use super::*;

/// Bytes of per-row header in the int8 wire format (`scale` then
/// `zero_point`, both f32 little-endian).
pub const INT8_HEADER_BYTES: usize = 8;

/// Converts one f32 to IEEE binary16 with round-to-nearest-even.
pub fn f32_to_f16_rne(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // ±∞ stays ∞; every NaN collapses to the canonical quiet NaN so
        // payloads cannot differ across backends.
        return if man != 0 { 0x7e00 } else { sign | 0x7c00 };
    }
    let h_exp = exp - 112; // rebias: f32 bias 127 -> f16 bias 15
    if h_exp >= 0x1f {
        return sign | 0x7c00; // overflow -> ±∞
    }
    if h_exp <= 0 {
        // f16 subnormal (or zero): shift the 24-bit significand down.
        if h_exp < -10 {
            return sign; // below half the smallest subnormal -> ±0
        }
        let shift = (14 - h_exp) as u32;
        let sig = man | 0x0080_0000;
        let half = 1u32 << (shift - 1);
        let low = sig & ((1u32 << shift) - 1);
        let mut out = sig >> shift;
        if low > half || (low == half && out & 1 == 1) {
            out += 1; // may carry to 0x400 = smallest normal: correct
        }
        return sign | out as u16;
    }
    let base = ((h_exp as u32) << 10) | (man >> 13);
    let low = man & 0x1fff;
    let mut h = base;
    if low > 0x1000 || (low == 0x1000 && h & 1 == 1) {
        h += 1; // mantissa carry may bump the exponent, up to ∞: correct
    }
    sign | h as u16
}

/// Converts one f32 to IEEE binary16 with stochastic rounding driven by
/// the random word `r`: rounds away from zero with probability equal to
/// the fractional distance, so `E[dequant] = x` (magnitude-symmetric,
/// hence unbiased for both signs). Special values behave like
/// [`f32_to_f16_rne`].
pub fn f32_to_f16_sr(x: f32, r: u64) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        return if man != 0 { 0x7e00 } else { sign | 0x7c00 };
    }
    let h_exp = exp - 112;
    if h_exp >= 0x1f {
        return sign | 0x7c00;
    }
    let r = (r >> 32) as u32;
    if h_exp <= 0 {
        if h_exp < -10 {
            return sign; // deterministic flush (see module docs)
        }
        let shift = (14 - h_exp) as u32;
        let sig = man | 0x0080_0000;
        // P(round up) = (discarded bits) / 2^shift; sums fit in u32.
        return sign | ((sig + (r & ((1u32 << shift) - 1))) >> shift) as u16;
    }
    let base = ((h_exp as u32) << 10) | (man >> 13);
    let carry = ((man & 0x1fff) + (r & 0x1fff)) >> 13;
    sign | (base + carry) as u16
}

/// Converts one IEEE binary16 to f32 (exact — every f16 value is
/// representable in f32).
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & 0x3ff) as u32;
    let bits = if exp == 0x1f {
        sign | 0x7f80_0000 | (man << 13) // ±∞ / NaN (payload widened)
    } else if exp == 0 {
        if man == 0 {
            sign // ±0
        } else {
            // Normalize the subnormal: value = man × 2⁻²⁴.
            let mut e = 1i32;
            let mut m = man;
            while m & 0x400 == 0 {
                m <<= 1;
                e -= 1;
            }
            sign | (((e + 112) as u32) << 23) | ((m & 0x3ff) << 13)
        }
    } else {
        sign | ((exp + 112) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

/// Converts one f32 to bfloat16 with round-to-nearest-even.
pub fn f32_to_bf16_rne(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Force the quiet bit so a truncated payload can't read as ∞.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let round = 0x7fff + ((bits >> 16) & 1);
    ((bits + round) >> 16) as u16
}

/// Converts one f32 to bfloat16 with stochastic rounding driven by `r`
/// (magnitude-symmetric, unbiased; see [`f32_to_f16_sr`]).
pub fn f32_to_bf16_sr(x: f32, r: u64) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        return ((bits >> 16) as u16) | 0x0040;
    }
    // The magnitude occupies bits 0..31, so adding the random word to the
    // low 16 bits rounds the magnitude up with P = frac; the carry can
    // reach the exponent (overflow saturates to ∞) but never the sign.
    ((bits + ((r >> 48) as u32 & 0xffff)) >> 16) as u16
}

/// Converts one bfloat16 to f32 (exact).
pub fn bf16_to_f32(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

/// SplitMix64-style finalizer: decorrelates consecutive or related
/// inputs into independent-looking 64-bit words.
#[inline(always)]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The counter-based random word for element `j` of row `row` under
/// `seed`: a pure function of its arguments, so stochastic rounding does
/// not depend on loop order, chunking, threads, or workers.
#[inline(always)]
pub fn rand_at(seed: u64, row: u64, j: u64) -> u64 {
    mix64(seed ^ row.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ j.wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
}

/// Per-row affine parameters for the int8 format: `(scale, zero_point,
/// inv)` with `scale = (max−min)/255`, `zero_point = min`, `inv =
/// 255/(max−min)`. The min/max fold skips NaN (comparisons are false);
/// a row with no finite spread — constant, empty, all-NaN, or a span
/// that is not finite — degenerates to `scale = 0` so every element
/// dequantizes to the zero-point exactly.
fn int8_row_params(srow: &[f32]) -> (f32, f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &x in srow {
        if x < lo {
            lo = x;
        }
        if x > hi {
            hi = x;
        }
    }
    let range = hi - lo;
    if range <= 0.0 || !range.is_finite() {
        let zp = if lo.is_finite() { lo } else { 0.0 };
        return (0.0, zp, 0.0);
    }
    (range / 255.0, lo, 255.0 / range)
}

// The codec kernels. Generic over the vector trait like every other
// kernel family so `dispatch_kernels!` can monomorphize them per
// backend; the conversions themselves are element-independent scalar
// bit manipulation (identical program order everywhere — that is the
// bitwise-determinism argument), and the vector lanes only execute the
// lanewise unpack scale multiply. The pack kernels therefore do not
// name `S` — the `#[target_feature]` wrapper still lets LLVM widen
// their integer loops.
#[allow(clippy::extra_unused_type_parameters)]
mod kernels {
    use super::super::Vf32;
    use super::{
        bf16_to_f32, f16_to_f32, f32_to_bf16_rne, f32_to_bf16_sr, f32_to_f16_rne, f32_to_f16_sr,
        int8_row_params, rand_at, INT8_HEADER_BYTES,
    };

    /// Applies the feature-scale multiply lanewise; `scale == 1.0` is
    /// skipped entirely so the gradient path (pre-scaled sends) never
    /// touches the data after conversion.
    #[inline(always)]
    fn scale_in_place<S: Vf32>(dst: &mut [f32], scale: f32) {
        if scale == 1.0 {
            return;
        }
        let sv = S::splat(scale);
        let mut c = dst.chunks_exact_mut(S::LANES);
        for ch in &mut c {
            S::store(ch, S::mul(S::load(ch), sv));
        }
        for x in c.into_remainder() {
            *x *= scale;
        }
    }

    #[inline(always)]
    pub fn pack_f16<S: Vf32>(dst: &mut [u8], src: &[f32]) {
        assert_eq!(dst.len(), src.len() * 2, "f16 wire buffer size");
        for (d2, &x) in dst.chunks_exact_mut(2).zip(src) {
            d2.copy_from_slice(&f32_to_f16_rne(x).to_le_bytes());
        }
    }

    #[inline(always)]
    pub fn pack_bf16<S: Vf32>(dst: &mut [u8], src: &[f32]) {
        assert_eq!(dst.len(), src.len() * 2, "bf16 wire buffer size");
        for (d2, &x) in dst.chunks_exact_mut(2).zip(src) {
            d2.copy_from_slice(&f32_to_bf16_rne(x).to_le_bytes());
        }
    }

    #[inline(always)]
    pub fn pack_f16_sr<S: Vf32>(dst: &mut [u8], src: &[f32], d: usize, seed: u64) {
        assert!(
            d > 0 && src.len().is_multiple_of(d),
            "src must be whole rows"
        );
        assert_eq!(dst.len(), src.len() * 2, "f16 wire buffer size");
        for (row, (drow, srow)) in dst
            .chunks_exact_mut(2 * d)
            .zip(src.chunks_exact(d))
            .enumerate()
        {
            for (j, (d2, &x)) in drow.chunks_exact_mut(2).zip(srow).enumerate() {
                let h = f32_to_f16_sr(x, rand_at(seed, row as u64, j as u64));
                d2.copy_from_slice(&h.to_le_bytes());
            }
        }
    }

    #[inline(always)]
    pub fn pack_bf16_sr<S: Vf32>(dst: &mut [u8], src: &[f32], d: usize, seed: u64) {
        assert!(
            d > 0 && src.len().is_multiple_of(d),
            "src must be whole rows"
        );
        assert_eq!(dst.len(), src.len() * 2, "bf16 wire buffer size");
        for (row, (drow, srow)) in dst
            .chunks_exact_mut(2 * d)
            .zip(src.chunks_exact(d))
            .enumerate()
        {
            for (j, (d2, &x)) in drow.chunks_exact_mut(2).zip(srow).enumerate() {
                let h = f32_to_bf16_sr(x, rand_at(seed, row as u64, j as u64));
                d2.copy_from_slice(&h.to_le_bytes());
            }
        }
    }

    #[inline(always)]
    pub fn pack_int8<S: Vf32>(dst: &mut [u8], src: &[f32], d: usize) {
        assert!(
            d > 0 && src.len().is_multiple_of(d),
            "src must be whole rows"
        );
        let rb = d + INT8_HEADER_BYTES;
        assert_eq!(dst.len(), (src.len() / d) * rb, "int8 wire buffer size");
        for (drow, srow) in dst.chunks_exact_mut(rb).zip(src.chunks_exact(d)) {
            let (scale, zp, inv) = int8_row_params(srow);
            drow[0..4].copy_from_slice(&scale.to_le_bytes());
            drow[4..8].copy_from_slice(&zp.to_le_bytes());
            for (q, &x) in drow[INT8_HEADER_BYTES..].iter_mut().zip(srow) {
                // NaN propagates to NaN here and casts to 0 (-> zp).
                *q = ((x - zp) * inv).round().clamp(0.0, 255.0) as u8;
            }
        }
    }

    #[inline(always)]
    pub fn pack_int8_sr<S: Vf32>(dst: &mut [u8], src: &[f32], d: usize, seed: u64) {
        assert!(
            d > 0 && src.len().is_multiple_of(d),
            "src must be whole rows"
        );
        let rb = d + INT8_HEADER_BYTES;
        assert_eq!(dst.len(), (src.len() / d) * rb, "int8 wire buffer size");
        for (row, (drow, srow)) in dst
            .chunks_exact_mut(rb)
            .zip(src.chunks_exact(d))
            .enumerate()
        {
            let (scale, zp, inv) = int8_row_params(srow);
            drow[0..4].copy_from_slice(&scale.to_le_bytes());
            drow[4..8].copy_from_slice(&zp.to_le_bytes());
            for (j, (q, &x)) in drow[INT8_HEADER_BYTES..].iter_mut().zip(srow).enumerate() {
                // floor(y + u) with u uniform in [0,1): up with P = frac.
                let r = rand_at(seed, row as u64, j as u64);
                let u = ((r >> 40) as u32) as f32 / 16_777_216.0;
                *q = ((x - zp) * inv + u).floor().clamp(0.0, 255.0) as u8;
            }
        }
    }

    #[inline(always)]
    pub fn unpack_f16<S: Vf32>(dst: &mut [f32], src: &[u8], scale: f32) {
        assert_eq!(src.len(), dst.len() * 2, "f16 wire buffer size");
        for (x, s2) in dst.iter_mut().zip(src.chunks_exact(2)) {
            *x = f16_to_f32(u16::from_le_bytes([s2[0], s2[1]]));
        }
        scale_in_place::<S>(dst, scale);
    }

    #[inline(always)]
    pub fn unpack_bf16<S: Vf32>(dst: &mut [f32], src: &[u8], scale: f32) {
        assert_eq!(src.len(), dst.len() * 2, "bf16 wire buffer size");
        for (x, s2) in dst.iter_mut().zip(src.chunks_exact(2)) {
            *x = bf16_to_f32(u16::from_le_bytes([s2[0], s2[1]]));
        }
        scale_in_place::<S>(dst, scale);
    }

    #[inline(always)]
    pub fn unpack_int8<S: Vf32>(dst: &mut [f32], src: &[u8], d: usize, scale: f32) {
        assert!(
            d > 0 && dst.len().is_multiple_of(d),
            "dst must be whole rows"
        );
        let rb = d + INT8_HEADER_BYTES;
        assert_eq!(src.len(), (dst.len() / d) * rb, "int8 wire buffer size");
        for (xrow, srow) in dst.chunks_exact_mut(d).zip(src.chunks_exact(rb)) {
            let rs = f32::from_le_bytes([srow[0], srow[1], srow[2], srow[3]]);
            let zp = f32::from_le_bytes([srow[4], srow[5], srow[6], srow[7]]);
            for (x, &q) in xrow.iter_mut().zip(&srow[INT8_HEADER_BYTES..]) {
                *x = zp + q as f32 * rs;
            }
        }
        scale_in_place::<S>(dst, scale);
    }
}

dispatch_kernels! {
    /// Packs f32s to little-endian f16, round-to-nearest-even (the
    /// feature path).
    ///
    /// # Panics
    ///
    /// Panics unless `dst.len() == 2 * src.len()`.
    pub fn pack_f16(dst: &mut [u8], src: &[f32]);

    /// Packs f32s to little-endian bf16, round-to-nearest-even.
    ///
    /// # Panics
    ///
    /// Panics unless `dst.len() == 2 * src.len()`.
    pub fn pack_bf16(dst: &mut [u8], src: &[f32]);

    /// Packs rows of `d` f32s to f16 with per-element stochastic
    /// rounding from the counter-based stream `(seed, row, j)` (the
    /// gradient path).
    ///
    /// # Panics
    ///
    /// Panics unless `src` is whole rows and `dst.len() == 2 * src.len()`.
    pub fn pack_f16_sr(dst: &mut [u8], src: &[f32], d: usize, seed: u64);

    /// Packs rows of `d` f32s to bf16 with stochastic rounding.
    ///
    /// # Panics
    ///
    /// Panics unless `src` is whole rows and `dst.len() == 2 * src.len()`.
    pub fn pack_bf16_sr(dst: &mut [u8], src: &[f32], d: usize, seed: u64);

    /// Packs rows of `d` f32s to the per-row affine int8 wire format
    /// (8-byte scale/zero-point header + `d` bytes), round-to-nearest.
    ///
    /// # Panics
    ///
    /// Panics unless `src` is whole rows and `dst.len()` is
    /// `rows * (d + 8)`.
    pub fn pack_int8(dst: &mut [u8], src: &[f32], d: usize);

    /// Packs rows of `d` f32s to affine int8 with stochastic rounding.
    ///
    /// # Panics
    ///
    /// Panics unless `src` is whole rows and `dst.len()` is
    /// `rows * (d + 8)`.
    pub fn pack_int8_sr(dst: &mut [u8], src: &[f32], d: usize, seed: u64);

    /// Unpacks little-endian f16 to f32 and multiplies by `scale`
    /// (`1.0` skips the multiply — used by the pre-scaled gradient
    /// path).
    ///
    /// # Panics
    ///
    /// Panics unless `src.len() == 2 * dst.len()`.
    pub fn unpack_f16(dst: &mut [f32], src: &[u8], scale: f32);

    /// Unpacks little-endian bf16 to f32 and multiplies by `scale`.
    ///
    /// # Panics
    ///
    /// Panics unless `src.len() == 2 * dst.len()`.
    pub fn unpack_bf16(dst: &mut [f32], src: &[u8], scale: f32);

    /// Unpacks affine int8 rows to f32 (`zp + q * row_scale`) and
    /// multiplies by `scale`.
    ///
    /// # Panics
    ///
    /// Panics unless `dst` is whole rows and `src.len()` is
    /// `rows * (d + 8)`.
    pub fn unpack_int8(dst: &mut [f32], src: &[u8], d: usize, scale: f32);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_special_values() {
        assert_eq!(f32_to_f16_rne(0.0), 0x0000);
        assert_eq!(f32_to_f16_rne(-0.0), 0x8000);
        assert_eq!(f32_to_f16_rne(1.0), 0x3c00);
        assert_eq!(f32_to_f16_rne(-2.0), 0xc000);
        assert_eq!(f32_to_f16_rne(65504.0), 0x7bff); // f16 max
        assert_eq!(f32_to_f16_rne(65536.0), 0x7c00); // overflow -> inf
        assert_eq!(f32_to_f16_rne(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_rne(f32::NEG_INFINITY), 0xfc00);
        assert_eq!(f32_to_f16_rne(f32::NAN), 0x7e00);
        // Smallest subnormal and the flush boundary at 2^-25.
        assert_eq!(f32_to_f16_rne(2.0f32.powi(-24)), 0x0001);
        assert_eq!(f32_to_f16_rne(2.0f32.powi(-25)), 0x0000); // tie -> even
        assert_eq!(f32_to_f16_rne(2.0f32.powi(-26)), 0x0000);
        assert_eq!(f16_to_f32(0x0001), 2.0f32.powi(-24));
        assert_eq!(f16_to_f32(0x3c00), 1.0);
        assert!(f16_to_f32(0x7e00).is_nan());
        assert_eq!(f16_to_f32(0xfc00), f32::NEG_INFINITY);
    }

    #[test]
    fn f16_rne_rounds_to_even() {
        // 1.0 + 2^-11 is exactly between 0x3c00 and 0x3c01 -> even.
        let tie = f32::from_bits(0x3f80_0000 | (1 << 12));
        assert_eq!(f32_to_f16_rne(tie), 0x3c00);
        // Just above the tie rounds up.
        let above = f32::from_bits(0x3f80_0000 | (1 << 12) | 1);
        assert_eq!(f32_to_f16_rne(above), 0x3c01);
    }

    #[test]
    fn bf16_special_values() {
        assert_eq!(f32_to_bf16_rne(1.0), 0x3f80);
        assert_eq!(f32_to_bf16_rne(-0.0), 0x8000);
        assert_eq!(f32_to_bf16_rne(f32::INFINITY), 0x7f80);
        assert_eq!(f32_to_bf16_rne(f32::MAX), 0x7f80); // rounds up to inf
        let n = f32_to_bf16_rne(f32::NAN);
        assert!(bf16_to_f32(n).is_nan());
        assert_eq!(bf16_to_f32(0x3f80), 1.0);
        // Tie at 1.0 + 2^-8 rounds to even.
        let tie = f32::from_bits(0x3f80_0000 | (1 << 15));
        assert_eq!(f32_to_bf16_rne(tie), 0x3f80);
    }

    #[test]
    fn int8_wire_layout_and_nan_policy() {
        let src = [1.0f32, 2.0, f32::NAN, 3.0];
        let mut wire = vec![0u8; 4 + INT8_HEADER_BYTES];
        pack_int8(Backend::Scalar, &mut wire, &src, 4);
        let scale = f32::from_le_bytes([wire[0], wire[1], wire[2], wire[3]]);
        let zp = f32::from_le_bytes([wire[4], wire[5], wire[6], wire[7]]);
        assert_eq!(zp, 1.0);
        assert!((scale - 2.0 / 255.0).abs() < 1e-9);
        assert_eq!(wire[8], 0); // 1.0 -> q = 0
        assert_eq!(wire[10], 0); // NaN -> q = 0
        assert_eq!(wire[11], 255); // 3.0 -> q = 255
        let mut out = [0.0f32; 4];
        unpack_int8(Backend::Scalar, &mut out, &wire, 4, 1.0);
        assert_eq!(out[0], 1.0); // zero-point is exact
        assert_eq!(out[2], 1.0); // NaN became the zero-point
        assert!((out[3] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn int8_degenerate_rows() {
        // Constant row: scale 0, every element dequantizes exactly.
        let src = [7.5f32; 6];
        let mut wire = vec![0u8; 6 + INT8_HEADER_BYTES];
        pack_int8(Backend::Scalar, &mut wire, &src, 6);
        let mut out = [0.0f32; 6];
        unpack_int8(Backend::Scalar, &mut out, &wire, 6, 1.0);
        assert_eq!(out, src);
        // Infinite span collapses to zeros rather than NaN.
        let src = [f32::NEG_INFINITY, 0.0, 1.0];
        pack_int8(Backend::Scalar, &mut wire[..3 + INT8_HEADER_BYTES], &src, 3);
        let mut out = [9.0f32; 3];
        unpack_int8(
            Backend::Scalar,
            &mut out,
            &wire[..3 + INT8_HEADER_BYTES],
            3,
            1.0,
        );
        assert_eq!(out, [0.0, 0.0, 0.0]);
    }

    #[test]
    fn rand_at_is_a_pure_function_of_position() {
        let a = rand_at(42, 3, 17);
        assert_eq!(a, rand_at(42, 3, 17));
        assert_ne!(a, rand_at(42, 3, 18));
        assert_ne!(a, rand_at(42, 4, 17));
        assert_ne!(a, rand_at(43, 3, 17));
    }

    #[test]
    fn sr_is_deterministic_for_fixed_seed() {
        let src: Vec<f32> = (0..32).map(|i| (i as f32) * 0.37 - 4.0).collect();
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        pack_f16_sr(Backend::Scalar, &mut a, &src, 8, 99);
        pack_f16_sr(Backend::Scalar, &mut b, &src, 8, 99);
        assert_eq!(a, b);
        pack_f16_sr(Backend::Scalar, &mut b, &src, 8, 100);
        assert_ne!(a, b);
    }
}
