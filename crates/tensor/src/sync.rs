//! Switched synchronization primitives for the pool's dispatch
//! protocol.
//!
//! Normal builds re-export `std`; under `--cfg loom` the same names
//! resolve to the vendored loom shims so `cargo test --test loom_pool`
//! can exhaustively model-check the `JobBatch` latch (see
//! `tests/loom_pool.rs` and DESIGN.md §9). Only *protocol* state goes
//! through these types — monotonic telemetry counters stay on real
//! `std` atomics so they do not blow up the model's state space.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::AtomicUsize;
#[cfg(loom)]
pub(crate) use loom::sync::{mpsc, Condvar, Mutex};
#[cfg(loom)]
pub(crate) use loom::thread;

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::AtomicUsize;
#[cfg(not(loom))]
pub(crate) use std::sync::{mpsc, Condvar, Mutex};
#[cfg(not(loom))]
pub(crate) use std::thread;
