//! A dependency-free scoped worker pool for intra-rank kernel
//! parallelism.
//!
//! Every partition rank of the training engine runs Algorithm 1's
//! compute phase (dense matmul + sparse aggregation) on its own OS
//! thread. This module gives each rank a small pool of `std::thread`
//! workers so those two kernels use the cores the rank was budgeted —
//! without pulling in rayon or crossbeam (the workspace builds fully
//! offline; see `vendor/README.md`).
//!
//! # Design
//!
//! * [`ThreadPool`] owns `threads - 1` persistent workers fed over an
//!   `mpsc` channel; the dispatching thread always participates as the
//!   extra worker, so `ThreadPool::new(1)` spawns nothing and runs
//!   jobs inline.
//! * Kernels never take a pool argument. A pool is *installed* on the
//!   current thread ([`install`]) and the `Matrix` / aggregation
//!   kernels pick it up via thread-local lookup ([`current`]). The
//!   engine installs one pool per rank thread, which is exactly the
//!   per-rank scoping the paper's partition-parallel layout needs.
//! * **Determinism**: [`parallel_row_blocks`] partitions work into
//!   contiguous row blocks. Each output row is produced by exactly one
//!   job with a fixed per-element operation order, so results are
//!   bitwise identical no matter how many threads execute the blocks
//!   (including zero, i.e. the serial fallback).
//!
//! # Configuration
//!
//! [`ThreadConfig::from_env`] resolves the thread budget: the
//! `BNS_THREADS` environment variable when set, otherwise
//! [`std::thread::available_parallelism`]. The engine divides that
//! budget across ranks ([`ThreadConfig::for_ranks`]) so
//! `ranks x threads <= cores`.
//!
//! # Example
//!
//! ```
//! use bns_tensor::pool::{self, ThreadPool};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let pool = ThreadPool::new(4);
//! let _guard = pool::install(pool);
//! let hits = AtomicUsize::new(0);
//! pool::parallel_row_blocks(100, 1, &|start, end| {
//!     hits.fetch_add(end - start, Ordering::Relaxed);
//! });
//! assert_eq!(hits.load(Ordering::Relaxed), 100);
//! ```

// Protocol state (`JobBatch.next`, the completion latch, the dispatch
// channel, worker threads) goes through `crate::sync`, which resolves
// to `std` normally and to the loom shims under `--cfg loom` so the
// latch protocol can be model-checked exhaustively (tests/loom_pool.rs).
// Monotonic telemetry counters stay on real std atomics: they play no
// role in the protocol and would only inflate the model's state space.
use crate::sync::{mpsc, thread, AtomicUsize, Condvar, Mutex};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

type JoinHandle = thread::JoinHandle<()>;

/// Environment variable overriding the thread budget.
pub const ENV_THREADS: &str = "BNS_THREADS";

/// Resolved thread budget for kernel parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadConfig {
    /// Total worker threads available to kernels (>= 1).
    pub threads: usize,
}

impl ThreadConfig {
    /// A budget of exactly `threads` (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The process-wide budget: `BNS_THREADS` when set to a positive
    /// integer, otherwise the machine's available parallelism.
    pub fn from_env() -> Self {
        let env = std::env::var(ENV_THREADS).ok();
        Self::resolve(env.as_deref())
    }

    /// Pure resolution helper backing [`ThreadConfig::from_env`]
    /// (separated so the parse rules are testable without mutating
    /// process environment).
    pub fn resolve(env: Option<&str>) -> Self {
        if let Some(s) = env {
            if let Ok(n) = s.trim().parse::<usize>() {
                if n >= 1 {
                    return Self::new(n);
                }
            }
        }
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Splits the budget over `ranks` partition workers so that the
    /// shares sum to the budget when it is large enough (each rank gets
    /// at least one). The remainder `budget % ranks` is handed out
    /// deterministically to the lowest-index ranks, so a budget of 6
    /// over 4 ranks yields shares `[2, 2, 1, 1]` — not `[1, 1, 1, 1]`
    /// with two cores idle.
    pub fn for_ranks(self, ranks: usize, rank: usize) -> Self {
        let ranks = ranks.max(1);
        let base = self.threads / ranks;
        let rem = self.threads % ranks;
        Self::new(base + usize::from(rank < rem))
    }
}

/// Snapshot of a pool's dispatch counters (for telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// `run` calls that fanned jobs out to workers.
    pub parallel_dispatches: u64,
    /// Individual jobs executed (by workers or the caller).
    pub jobs: u64,
}

/// One fan-out of jobs `0..total` over the shared closure.
///
/// Workers claim indices from `next`; the dispatcher waits until
/// `completed == total`. The struct is reference-counted so a late
/// worker that claims an exhausted index after the dispatcher has
/// already returned only touches memory it co-owns (the closure
/// pointer is never dereferenced once `next >= total`).
struct JobBatch {
    /// Type-erased pointer to the caller's closure. Only valid while
    /// the dispatching `run` call is blocked in `wait`.
    f: *const (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    total: usize,
    completed: Mutex<usize>,
    all_done: Condvar,
}

// SAFETY: the closure pointer is only dereferenced for claimed job
// indices `< total`, and `run` does not return until all such jobs
// have completed, so the borrow the pointer erases is always live at
// dereference time. All other fields are Sync primitives.
unsafe impl Send for JobBatch {}
unsafe impl Sync for JobBatch {}

impl JobBatch {
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            // SAFETY: i < total, so the dispatcher is still parked in
            // `wait` and the closure borrow is live.
            (unsafe { &*self.f })(i);
            let mut done = self.completed.lock().unwrap();
            *done += 1;
            if *done == self.total {
                self.all_done.notify_all();
            }
        }
    }

    fn wait(&self) {
        let mut done = self.completed.lock().unwrap();
        while *done < self.total {
            done = self.all_done.wait(done).unwrap();
        }
    }
}

/// A fixed-size pool of persistent worker threads (see module docs).
pub struct ThreadPool {
    threads: usize,
    sender: Option<mpsc::Sender<Arc<JobBatch>>>,
    workers: Vec<JoinHandle>,
    parallel_dispatches: AtomicU64,
    jobs: AtomicU64,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// A pool with `threads` total execution slots: `threads - 1`
    /// spawned workers plus the dispatching thread itself.
    pub fn new(threads: usize) -> Arc<Self> {
        let threads = threads.max(1);
        let mut workers = Vec::new();
        let sender = if threads > 1 {
            let (tx, rx) = mpsc::channel::<Arc<JobBatch>>();
            let rx = Arc::new(Mutex::new(rx));
            for w in 0..threads - 1 {
                let rx = Arc::clone(&rx);
                workers.push(
                    thread::Builder::new()
                        .name(format!("bns-pool-{w}"))
                        .spawn(move || loop {
                            let batch = {
                                let guard = rx.lock().unwrap();
                                guard.recv()
                            };
                            match batch {
                                Ok(b) => b.work(),
                                Err(_) => return, // pool dropped
                            }
                        })
                        .expect("failed to spawn pool worker"),
                );
            }
            Some(tx)
        } else {
            None
        };
        Arc::new(Self {
            threads,
            sender,
            workers,
            parallel_dispatches: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
        })
    }

    /// Total execution slots (including the dispatching thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Dispatch counters accumulated since construction.
    pub fn stats(&self) -> DispatchStats {
        DispatchStats {
            parallel_dispatches: self.parallel_dispatches.load(Ordering::Relaxed),
            jobs: self.jobs.load(Ordering::Relaxed),
        }
    }

    /// Runs `f(0)..f(n_jobs - 1)` across the pool, blocking until all
    /// jobs finish. The dispatching thread participates. Jobs must be
    /// independent (they run concurrently in unspecified order).
    pub fn run(&self, n_jobs: usize, f: &(dyn Fn(usize) + Sync)) {
        if n_jobs == 0 {
            return;
        }
        self.jobs.fetch_add(n_jobs as u64, Ordering::Relaxed);
        if n_jobs == 1 || self.sender.is_none() {
            for i in 0..n_jobs {
                f(i);
            }
            return;
        }
        self.parallel_dispatches.fetch_add(1, Ordering::Relaxed);
        // SAFETY: lifetime erasure only; `wait` below keeps the borrow
        // live until every dereference has happened.
        let f_static = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync + 'static)>(
                f,
            )
        };
        let batch = Arc::new(JobBatch {
            f: f_static as *const _,
            next: AtomicUsize::new(0),
            total: n_jobs,
            completed: Mutex::new(0),
            all_done: Condvar::new(),
        });
        // Wake at most one worker per remaining job.
        let sender = self.sender.as_ref().unwrap();
        for _ in 0..(self.threads - 1).min(n_jobs - 1) {
            // A send error means workers are gone (pool shutting
            // down); the caller thread then just runs everything.
            let _ = sender.send(Arc::clone(&batch));
        }
        batch.work();
        batch.wait();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.sender.take(); // closes the channel; workers exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

thread_local! {
    static CURRENT_POOL: RefCell<Option<Arc<ThreadPool>>> = const { RefCell::new(None) };
}

/// Serial executions of [`parallel_row_blocks`] (no pool installed,
/// one thread, or work below the parallel threshold), process-wide.
static SERIAL_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// RAII guard returned by [`install`]; restores the previously
/// installed pool (if any) on drop.
#[must_use = "dropping the guard immediately uninstalls the pool"]
pub struct PoolGuard {
    prev: Option<Arc<ThreadPool>>,
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        CURRENT_POOL.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Installs `pool` as the current thread's kernel pool. Kernels on
/// this thread dispatch to it until the guard drops.
pub fn install(pool: Arc<ThreadPool>) -> PoolGuard {
    let prev = CURRENT_POOL.with(|c| c.borrow_mut().replace(pool));
    PoolGuard { prev }
}

/// The pool installed on the current thread, if any.
pub fn current() -> Option<Arc<ThreadPool>> {
    CURRENT_POOL.with(|c| c.borrow().clone())
}

/// Execution slots available to kernels on this thread (1 when no
/// pool is installed).
pub fn current_threads() -> usize {
    CURRENT_POOL.with(|c| c.borrow().as_ref().map(|p| p.threads()).unwrap_or(1))
}

/// Process-wide count of serial kernel dispatches (telemetry).
pub fn serial_fallbacks() -> u64 {
    SERIAL_FALLBACKS.load(Ordering::Relaxed)
}

/// Splits `rows` into at most `threads` contiguous blocks and runs
/// `body(start, end)` for each, in parallel when a pool is installed
/// and the work is worth fanning out.
///
/// `min_rows_per_block` bounds fan-out granularity: blocks are never
/// smaller than it (except the last), and when `rows` fits in a single
/// block the body runs inline on the caller.
///
/// Each row lands in exactly one block regardless of thread count, so
/// kernels whose per-row computation has a fixed operation order are
/// bitwise deterministic under any pool size.
pub fn parallel_row_blocks(
    rows: usize,
    min_rows_per_block: usize,
    body: &(dyn Fn(usize, usize) + Sync),
) {
    if rows == 0 {
        return;
    }
    let pool = current();
    let threads = pool.as_ref().map(|p| p.threads()).unwrap_or(1);
    let min_rows = min_rows_per_block.max(1);
    let max_blocks = rows.div_ceil(min_rows);
    let blocks = threads.min(max_blocks);
    if blocks <= 1 {
        SERIAL_FALLBACKS.fetch_add(1, Ordering::Relaxed);
        body(0, rows);
        return;
    }
    let chunk = rows.div_ceil(blocks);
    let pool = pool.unwrap();
    pool.run(blocks, &|b| {
        let start = b * chunk;
        let end = ((b + 1) * chunk).min(rows);
        if start < end {
            body(start, end);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn config_clamps_and_splits() {
        assert_eq!(ThreadConfig::new(0).threads, 1);
        assert_eq!(ThreadConfig::new(8).for_ranks(4, 0).threads, 2);
        assert_eq!(ThreadConfig::new(4).for_ranks(8, 0).threads, 1);
        assert_eq!(ThreadConfig::new(4).for_ranks(0, 0).threads, 4);
    }

    /// Regression: the old `budget / ranks` split threw the remainder
    /// away — budget 6 over 4 ranks gave every rank 1 thread (via the
    /// floor 6/4 = 1) and left 2 cores idle. The remainder must go to
    /// the lowest-index ranks instead.
    #[test]
    fn for_ranks_distributes_remainder() {
        let shares = |budget: usize, k: usize| -> Vec<usize> {
            (0..k)
                .map(|r| ThreadConfig::new(budget).for_ranks(k, r).threads)
                .collect()
        };
        // Non-dividing budget: remainder to ranks 0 and 1.
        assert_eq!(shares(6, 4), vec![2, 2, 1, 1]);
        // Full budget is used (no idle cores) whenever budget >= ranks.
        for (budget, k) in [(6, 4), (7, 3), (9, 4), (8, 8), (13, 5)] {
            let s = shares(budget, k);
            assert_eq!(s.iter().sum::<usize>(), budget, "budget {budget} k {k}");
            // Deterministic, monotone non-increasing with rank index.
            assert!(s.windows(2).all(|w| w[0] >= w[1]), "{s:?}");
        }
        // More ranks than budget: everyone still gets the 1-thread floor.
        assert_eq!(shares(4, 8), vec![1; 8]);
        assert_eq!(shares(1, 3), vec![1, 1, 1]);
        // Exact division is unchanged.
        assert_eq!(shares(8, 4), vec![2, 2, 2, 2]);
    }

    #[test]
    fn config_env_resolution() {
        assert_eq!(ThreadConfig::resolve(Some("3")).threads, 3);
        assert_eq!(ThreadConfig::resolve(Some(" 2 ")).threads, 2);
        // Invalid / zero values fall back to available parallelism.
        assert!(ThreadConfig::resolve(Some("0")).threads >= 1);
        assert!(ThreadConfig::resolve(Some("lots")).threads >= 1);
        assert!(ThreadConfig::resolve(None).threads >= 1);
    }

    #[test]
    fn pool_runs_every_job_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run(64, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
        let stats = pool.stats();
        assert_eq!(stats.jobs, 64);
        assert_eq!(stats.parallel_dispatches, 1);
    }

    #[test]
    fn single_thread_pool_is_inline() {
        let pool = ThreadPool::new(1);
        let count = AtomicUsize::new(0);
        pool.run(5, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 5);
        assert_eq!(pool.stats().parallel_dispatches, 0);
    }

    #[test]
    fn install_guard_restores_previous_pool() {
        assert!(current().is_none());
        let p2 = ThreadPool::new(2);
        let p3 = ThreadPool::new(3);
        let g2 = install(p2);
        assert_eq!(current_threads(), 2);
        {
            let _g3 = install(p3);
            assert_eq!(current_threads(), 3);
        }
        assert_eq!(current_threads(), 2);
        drop(g2);
        assert!(current().is_none());
        assert_eq!(current_threads(), 1);
    }

    #[test]
    fn row_blocks_cover_range_without_overlap() {
        for threads in [1usize, 2, 3, 4, 7] {
            let pool = ThreadPool::new(threads);
            let _g = install(pool);
            for rows in [1usize, 2, 5, 17, 100] {
                let hits: Vec<AtomicUsize> = (0..rows).map(|_| AtomicUsize::new(0)).collect();
                parallel_row_blocks(rows, 1, &|s, e| {
                    for h in &hits[s..e] {
                        h.fetch_add(1, Ordering::Relaxed);
                    }
                });
                for (r, h) in hits.iter().enumerate() {
                    assert_eq!(h.load(Ordering::Relaxed), 1, "row {r} at {threads} threads");
                }
            }
        }
    }

    #[test]
    fn min_block_size_limits_fanout() {
        let pool = ThreadPool::new(8);
        let _g = install(Arc::clone(&pool));
        // 10 rows with 16-row minimum: single serial block.
        parallel_row_blocks(10, 16, &|s, e| {
            assert_eq!((s, e), (0, 10));
        });
        assert_eq!(pool.stats().parallel_dispatches, 0);
    }

    #[test]
    fn reentrant_dispatch_from_worker_runs_inline() {
        // A worker thread has no pool installed, so nested kernels run
        // serially instead of deadlocking the shared queue.
        let pool = ThreadPool::new(3);
        let _g = install(Arc::clone(&pool));
        let n = AtomicUsize::new(0);
        parallel_row_blocks(3, 1, &|_, _| {
            parallel_row_blocks(4, 1, &|s, e| {
                n.fetch_add(e - s, Ordering::Relaxed);
            });
        });
        assert_eq!(n.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn oversubscribed_jobs_complete() {
        // More jobs than threads: the claim loop drains them all.
        let pool = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        pool.run(50, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 50);
    }
}
