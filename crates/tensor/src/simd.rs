//! Runtime-dispatched SIMD backend for the f32 kernels.
//!
//! Every hot loop in the workspace (dense matmul, neighbor aggregation,
//! activations, Adam) funnels through the kernels in this module, which
//! pick a lane width at runtime: AVX2 (8 lanes) or SSE2 (4) on x86_64,
//! NEON (4) on aarch64, and a scalar fallback everywhere. The choice is
//! made once per process from CPU feature detection, overridable with
//! the `BNS_SIMD` environment variable (mirroring `BNS_THREADS` from
//! [`crate::pool`]): `scalar`, `sse2`, `avx2`, `neon`, or `auto`.
//!
//! # Determinism contract
//!
//! Results are **bitwise identical at every lane width**, extending the
//! thread-count invariance established by the pool. Two rules make this
//! hold:
//!
//! * **Reduction order is never changed.** Kernels vectorize across
//!   *independent output elements* (matmul rows broadcast one `a[i][k]`
//!   across contiguous output columns; elementwise ops are lane-local),
//!   so each output element still accumulates its `k` terms in exactly
//!   the scalar program order. No horizontal adds, no per-lane partial
//!   accumulators.
//! * **No FMA, ever.** A fused multiply-add rounds once where `mul`
//!   then `add` rounds twice, so `a*b+c` would differ in the last ulp
//!   between backends. Every kernel multiplies and adds as separate
//!   correctly-rounded IEEE 754 ops (`cargo xtask audit` bans FMA
//!   intrinsics in kernel files). `div` and `sqrt` are also correctly
//!   rounded on every supported ISA, so the Adam kernel is exact too.
//!
//! One caveat: when an add or mul combines **two NaNs with different
//! payloads** (e.g. an injected `f32::NAN` meeting the `0xFFC00000`
//! NaN that `inf * 0.0` generates), which payload survives is
//! unspecified in Rust — LLVM may commute the operands differently per
//! backend. All NaNs of a single payload propagate bit-identically, so
//! the contract holds for every input that does not mix NaN payloads;
//! training never produces mixed payloads (the kernels have no inf
//! constants and quiet all NaNs to the canonical payload on the ReLU
//! path).
//!
//! # Composition with the pool
//!
//! The backend is resolved **once at each top-level kernel entry** (on
//! the calling thread, where a [`force`] override is visible) and the
//! resulting [`Backend`] value is passed into the pool closures — worker
//! threads never consult thread-local state. Threads × lanes compose:
//! the pool splits output rows, the lanes split each row.
//!
//! # Telemetry
//!
//! Top-level kernel entries call [`begin_kernel`], which counts the
//! dispatch per backend in a thread-local [`DispatchStats`]; the engine
//! drains it per rank with [`take_thread_stats`] into the
//! `simd.dispatch.*` counters.

use std::cell::Cell;
use std::sync::OnceLock;

/// Environment variable naming the backend (`scalar`, `sse2`, `avx2`,
/// `neon`, or `auto`). Unknown or unavailable values fall back to
/// [`detect`], like an absent variable.
pub const ENV_SIMD: &str = "BNS_SIMD";

/// Depth-blocking factor for the NN matmul kernel: an `MM_KC x cols`
/// panel of the right-hand operand is reused across every row of a
/// block while it is hot in cache. Panels ascend and `k` ascends within
/// a panel, so the per-element accumulation order is plain ascending
/// `k` — identical to the untiled loop.
pub(crate) const MM_KC: usize = 128;

/// A SIMD instruction set the kernels can dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Backend {
    /// Plain scalar f32 loops — always available, the reference.
    Scalar,
    /// 4-lane x86_64 (baseline on every x86_64 target).
    Sse2,
    /// 8-lane x86_64.
    Avx2,
    /// 4-lane aarch64 (baseline on every aarch64 target).
    Neon,
}

impl Backend {
    /// All variants, best-first within each architecture.
    pub const ALL: [Backend; 4] = [Backend::Neon, Backend::Avx2, Backend::Sse2, Backend::Scalar];

    /// The `BNS_SIMD` spelling of this backend.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    /// f32 lanes per vector op.
    pub fn lanes(self) -> usize {
        match self {
            Backend::Scalar => 1,
            Backend::Sse2 | Backend::Neon => 4,
            Backend::Avx2 => 8,
        }
    }

    /// Parses a `BNS_SIMD` value (case-insensitive). `None` for
    /// unknown spellings — [`resolve`] maps those to [`detect`].
    pub fn parse(s: &str) -> Option<Backend> {
        Backend::ALL
            .into_iter()
            .find(|bk| s.eq_ignore_ascii_case(bk.name()))
    }

    /// Whether this CPU can execute the backend. `Scalar` always can;
    /// baseline features (SSE2 on x86_64, NEON on aarch64) short-cut
    /// through compile-time knowledge so the check also holds under
    /// interpreters that report no runtime features (Miri).
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 => cfg!(target_feature = "sse2") || is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// Panics unless the backend can run on this CPU. Every dispatched
    /// kernel funnels through this, which is what makes the public
    /// kernel functions sound: an unavailable `Backend` value aborts
    /// before any intrinsic executes.
    fn checked(self) -> Backend {
        assert!(
            self.is_available(),
            "SIMD backend `{}` is not available on this CPU (set {ENV_SIMD}=auto)",
            self.name()
        );
        self
    }
}

/// The best backend this CPU supports.
pub fn detect() -> Backend {
    static CACHE: OnceLock<Backend> = OnceLock::new();
    *CACHE.get_or_init(|| {
        Backend::ALL
            .into_iter()
            .find(|bk| bk.is_available())
            .unwrap_or(Backend::Scalar)
    })
}

/// Resolves a `BNS_SIMD` request to a usable backend: absent / empty /
/// `auto` / unknown / unavailable all yield [`detect`]; a recognized,
/// available name is honored (including forcing `scalar` or `sse2` on
/// an AVX2 host). Pure in its argument, so tests can cover the whole
/// table without touching the process environment.
pub fn resolve(request: Option<&str>) -> Backend {
    match request.map(str::trim) {
        None | Some("") => detect(),
        Some(s) if s.eq_ignore_ascii_case("auto") => detect(),
        Some(s) => match Backend::parse(s) {
            Some(bk) if bk.is_available() => bk,
            _ => detect(),
        },
    }
}

fn default_backend() -> Backend {
    static DEFAULT: OnceLock<Backend> = OnceLock::new();
    *DEFAULT.get_or_init(|| resolve(std::env::var(ENV_SIMD).ok().as_deref()))
}

thread_local! {
    static FORCED: Cell<Option<Backend>> = const { Cell::new(None) };
    static STATS: Cell<DispatchStats> = const { Cell::new(DispatchStats::ZERO) };
}

/// The backend top-level kernels use on this thread: a [`force`]
/// override if one is active, else the process-wide `BNS_SIMD` /
/// [`detect`] default.
pub fn active() -> Backend {
    FORCED.with(Cell::get).unwrap_or_else(default_backend)
}

/// Resolves the active backend and counts one top-level kernel
/// dispatch against it (see [`DispatchStats`]). Kernel entry points
/// call this once, before any pool fan-out.
pub fn begin_kernel() -> Backend {
    let bk = active();
    note_dispatch(bk);
    bk
}

/// Counts one top-level kernel dispatch on this thread's stats.
pub fn note_dispatch(bk: Backend) {
    STATS.with(|s| {
        let mut d = s.get();
        *d.slot_mut(bk) += 1;
        s.set(d);
    });
}

/// Restores the previous per-thread backend override on drop.
#[must_use = "the override ends when the guard drops"]
pub struct ForceGuard {
    prev: Option<Backend>,
}

impl Drop for ForceGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        FORCED.with(|f| f.set(prev));
    }
}

/// Forces `bk` for top-level kernels on **this thread** until the
/// guard drops (tests and benches; production uses `BNS_SIMD`). Pool
/// workers inherit the choice because kernels resolve the backend on
/// the calling thread and pass it into their pool closures.
///
/// # Panics
///
/// Panics if `bk` cannot run on this CPU.
pub fn force(bk: Backend) -> ForceGuard {
    let bk = bk.checked();
    let prev = FORCED.with(|f| f.replace(Some(bk)));
    ForceGuard { prev }
}

/// Per-thread top-level kernel dispatch counts, by backend.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DispatchStats {
    /// Dispatches that ran the scalar fallback.
    pub scalar: u64,
    /// Dispatches that ran SSE2 kernels.
    pub sse2: u64,
    /// Dispatches that ran AVX2 kernels.
    pub avx2: u64,
    /// Dispatches that ran NEON kernels.
    pub neon: u64,
}

impl DispatchStats {
    const ZERO: DispatchStats = DispatchStats {
        scalar: 0,
        sse2: 0,
        avx2: 0,
        neon: 0,
    };

    fn slot_mut(&mut self, bk: Backend) -> &mut u64 {
        match bk {
            Backend::Scalar => &mut self.scalar,
            Backend::Sse2 => &mut self.sse2,
            Backend::Avx2 => &mut self.avx2,
            Backend::Neon => &mut self.neon,
        }
    }

    /// The count for one backend.
    pub fn get(&self, bk: Backend) -> u64 {
        match bk {
            Backend::Scalar => self.scalar,
            Backend::Sse2 => self.sse2,
            Backend::Avx2 => self.avx2,
            Backend::Neon => self.neon,
        }
    }

    /// Total dispatches across all backends.
    pub fn total(&self) -> u64 {
        self.scalar + self.sse2 + self.avx2 + self.neon
    }

    /// Dispatches that used a vector backend.
    pub fn vectorized(&self) -> u64 {
        self.total() - self.scalar
    }
}

/// This thread's dispatch counts since start (or the last take).
pub fn thread_stats() -> DispatchStats {
    STATS.with(Cell::get)
}

/// Drains and resets this thread's dispatch counts — the engine flushes
/// the delta into the `simd.dispatch.*` telemetry counters per rank.
pub fn take_thread_stats() -> DispatchStats {
    STATS.with(|s| s.replace(DispatchStats::ZERO))
}

/// Adam hyper-parameters plus the step-dependent bias corrections,
/// packaged for [`adam_update`]. `b1t`/`b2t` are `1 - βᵢ^t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamHyper {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f32,
    /// `1 - beta1.powi(t)` for the current step `t`.
    pub b1t: f32,
    /// `1 - beta2.powi(t)` for the current step `t`.
    pub b2t: f32,
}

/// Lane-parallel f32 primitives, one impl per [`Backend`].
///
/// The methods are safe *functions* whose bodies contain the raw
/// intrinsics. Their CPU-feature obligation is discharged non-locally:
/// the only callers are the generic kernels in [`kernels`], which are
/// `#[inline(always)]` and reachable solely through the
/// `#[target_feature]` wrappers generated by `dispatch_kernels!`, after
/// [`Backend::checked`] verified the feature at runtime. Memory safety
/// is discharged locally: `load`/`store` take slices and assert the
/// lane count before touching pointers.
trait Vf32 {
    /// f32 lanes per vector.
    const LANES: usize;
    /// The vector register type.
    type V: Copy;
    /// All lanes set to `x`.
    fn splat(x: f32) -> Self::V;
    /// Loads `LANES` f32s from the front of `s` (unaligned).
    fn load(s: &[f32]) -> Self::V;
    /// Stores the vector to the front of `s` (unaligned).
    fn store(s: &mut [f32], v: Self::V);
    /// Lanewise `a + b`.
    fn add(a: Self::V, b: Self::V) -> Self::V;
    /// Lanewise `a - b`.
    fn sub(a: Self::V, b: Self::V) -> Self::V;
    /// Lanewise `a * b` (never fused with an add).
    fn mul(a: Self::V, b: Self::V) -> Self::V;
    /// Lanewise `a / b` (correctly rounded; no reciprocal estimate).
    fn div(a: Self::V, b: Self::V) -> Self::V;
    /// Lanewise square root (correctly rounded; no rsqrt estimate).
    fn sqrt(a: Self::V) -> Self::V;
    /// Lanewise `if c > 0.0 { a } else { b }`; NaN and `-0.0` in `c`
    /// select `b`, exactly like the scalar `>` comparison.
    fn select_gtz(c: Self::V, a: Self::V, b: Self::V) -> Self::V;
}

/// The scalar reference "backend": one lane, plain f32 arithmetic. The
/// vector impls must match it bit for bit (tests force every backend
/// through the same inputs).
struct ScalarV;

impl Vf32 for ScalarV {
    const LANES: usize = 1;
    type V = f32;

    #[inline(always)]
    fn splat(x: f32) -> f32 {
        x
    }

    #[inline(always)]
    fn load(s: &[f32]) -> f32 {
        s[0]
    }

    #[inline(always)]
    fn store(s: &mut [f32], v: f32) {
        s[0] = v;
    }

    #[inline(always)]
    fn add(a: f32, b: f32) -> f32 {
        a + b
    }

    #[inline(always)]
    fn sub(a: f32, b: f32) -> f32 {
        a - b
    }

    #[inline(always)]
    fn mul(a: f32, b: f32) -> f32 {
        a * b
    }

    #[inline(always)]
    fn div(a: f32, b: f32) -> f32 {
        a / b
    }

    #[inline(always)]
    fn sqrt(a: f32) -> f32 {
        a.sqrt()
    }

    #[inline(always)]
    fn select_gtz(c: f32, a: f32, b: f32) -> f32 {
        if c > 0.0 {
            a
        } else {
            b
        }
    }
}

#[cfg(target_arch = "x86_64")]
use core::arch::x86_64 as x86;

/// 4-lane SSE2 (x86_64 baseline).
#[cfg(target_arch = "x86_64")]
struct Sse2V;

#[cfg(target_arch = "x86_64")]
impl Vf32 for Sse2V {
    const LANES: usize = 4;
    type V = x86::__m128;

    #[inline(always)]
    fn splat(x: f32) -> Self::V {
        // SAFETY: SSE2 verified by `Backend::checked` in the dispatcher
        // before this impl is reachable (x86_64 baseline feature).
        unsafe { x86::_mm_set1_ps(x) }
    }

    #[inline(always)]
    fn load(s: &[f32]) -> Self::V {
        assert!(s.len() >= 4);
        // SAFETY: `s` holds at least 4 f32s (asserted above), so the
        // unaligned load stays in bounds; SSE2 per `Backend::checked`.
        unsafe { x86::_mm_loadu_ps(s.as_ptr()) }
    }

    #[inline(always)]
    fn store(s: &mut [f32], v: Self::V) {
        assert!(s.len() >= 4);
        // SAFETY: `s` holds at least 4 f32s (asserted above), so the
        // unaligned store stays in bounds; SSE2 per `Backend::checked`.
        unsafe { x86::_mm_storeu_ps(s.as_mut_ptr(), v) }
    }

    #[inline(always)]
    fn add(a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: SSE2 per `Backend::checked` (see `splat`).
        unsafe { x86::_mm_add_ps(a, b) }
    }

    #[inline(always)]
    fn sub(a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: SSE2 per `Backend::checked` (see `splat`).
        unsafe { x86::_mm_sub_ps(a, b) }
    }

    #[inline(always)]
    fn mul(a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: SSE2 per `Backend::checked` (see `splat`).
        unsafe { x86::_mm_mul_ps(a, b) }
    }

    #[inline(always)]
    fn div(a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: SSE2 per `Backend::checked` (see `splat`).
        unsafe { x86::_mm_div_ps(a, b) }
    }

    #[inline(always)]
    fn sqrt(a: Self::V) -> Self::V {
        // SAFETY: SSE2 per `Backend::checked` (see `splat`).
        unsafe { x86::_mm_sqrt_ps(a) }
    }

    #[inline(always)]
    fn select_gtz(c: Self::V, a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: SSE2 per `Backend::checked` (see `splat`). cmpgt is
        // an ordered compare: NaN lanes produce a zero mask -> `b`.
        unsafe {
            let m = x86::_mm_cmpgt_ps(c, x86::_mm_setzero_ps());
            x86::_mm_or_ps(x86::_mm_and_ps(m, a), x86::_mm_andnot_ps(m, b))
        }
    }
}

/// 8-lane AVX2.
#[cfg(target_arch = "x86_64")]
struct Avx2V;

#[cfg(target_arch = "x86_64")]
impl Vf32 for Avx2V {
    const LANES: usize = 8;
    type V = x86::__m256;

    #[inline(always)]
    fn splat(x: f32) -> Self::V {
        // SAFETY: AVX2 verified at runtime by `Backend::checked` in the
        // dispatcher before this impl is reachable.
        unsafe { x86::_mm256_set1_ps(x) }
    }

    #[inline(always)]
    fn load(s: &[f32]) -> Self::V {
        assert!(s.len() >= 8);
        // SAFETY: `s` holds at least 8 f32s (asserted above), so the
        // unaligned load stays in bounds; AVX2 per `Backend::checked`.
        unsafe { x86::_mm256_loadu_ps(s.as_ptr()) }
    }

    #[inline(always)]
    fn store(s: &mut [f32], v: Self::V) {
        assert!(s.len() >= 8);
        // SAFETY: `s` holds at least 8 f32s (asserted above), so the
        // unaligned store stays in bounds; AVX2 per `Backend::checked`.
        unsafe { x86::_mm256_storeu_ps(s.as_mut_ptr(), v) }
    }

    #[inline(always)]
    fn add(a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: AVX2 per `Backend::checked` (see `splat`).
        unsafe { x86::_mm256_add_ps(a, b) }
    }

    #[inline(always)]
    fn sub(a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: AVX2 per `Backend::checked` (see `splat`).
        unsafe { x86::_mm256_sub_ps(a, b) }
    }

    #[inline(always)]
    fn mul(a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: AVX2 per `Backend::checked` (see `splat`).
        unsafe { x86::_mm256_mul_ps(a, b) }
    }

    #[inline(always)]
    fn div(a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: AVX2 per `Backend::checked` (see `splat`).
        unsafe { x86::_mm256_div_ps(a, b) }
    }

    #[inline(always)]
    fn sqrt(a: Self::V) -> Self::V {
        // SAFETY: AVX2 per `Backend::checked` (see `splat`).
        unsafe { x86::_mm256_sqrt_ps(a) }
    }

    #[inline(always)]
    fn select_gtz(c: Self::V, a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: AVX2 per `Backend::checked` (see `splat`). _CMP_GT_OQ
        // is the ordered quiet `>`: NaN lanes give a zero mask -> `b`.
        unsafe {
            let m = x86::_mm256_cmp_ps::<{ x86::_CMP_GT_OQ }>(c, x86::_mm256_setzero_ps());
            x86::_mm256_blendv_ps(b, a, m)
        }
    }
}

/// 4-lane NEON (aarch64 baseline).
#[cfg(target_arch = "aarch64")]
struct NeonV;

#[cfg(target_arch = "aarch64")]
impl Vf32 for NeonV {
    const LANES: usize = 4;
    type V = core::arch::aarch64::float32x4_t;

    #[inline(always)]
    fn splat(x: f32) -> Self::V {
        // SAFETY: NEON verified by `Backend::checked` in the dispatcher
        // before this impl is reachable (aarch64 baseline feature).
        unsafe { core::arch::aarch64::vdupq_n_f32(x) }
    }

    #[inline(always)]
    fn load(s: &[f32]) -> Self::V {
        assert!(s.len() >= 4);
        // SAFETY: `s` holds at least 4 f32s (asserted above), so the
        // load stays in bounds; NEON per `Backend::checked`.
        unsafe { core::arch::aarch64::vld1q_f32(s.as_ptr()) }
    }

    #[inline(always)]
    fn store(s: &mut [f32], v: Self::V) {
        assert!(s.len() >= 4);
        // SAFETY: `s` holds at least 4 f32s (asserted above), so the
        // store stays in bounds; NEON per `Backend::checked`.
        unsafe { core::arch::aarch64::vst1q_f32(s.as_mut_ptr(), v) }
    }

    #[inline(always)]
    fn add(a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: NEON per `Backend::checked` (see `splat`).
        unsafe { core::arch::aarch64::vaddq_f32(a, b) }
    }

    #[inline(always)]
    fn sub(a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: NEON per `Backend::checked` (see `splat`).
        unsafe { core::arch::aarch64::vsubq_f32(a, b) }
    }

    #[inline(always)]
    fn mul(a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: NEON per `Backend::checked` (see `splat`).
        unsafe { core::arch::aarch64::vmulq_f32(a, b) }
    }

    #[inline(always)]
    fn div(a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: NEON per `Backend::checked` (see `splat`).
        unsafe { core::arch::aarch64::vdivq_f32(a, b) }
    }

    #[inline(always)]
    fn sqrt(a: Self::V) -> Self::V {
        // SAFETY: NEON per `Backend::checked` (see `splat`).
        unsafe { core::arch::aarch64::vsqrtq_f32(a) }
    }

    #[inline(always)]
    fn select_gtz(c: Self::V, a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: NEON per `Backend::checked` (see `splat`). vcgt is an
        // ordered compare: NaN lanes produce a zero mask -> `b`.
        unsafe {
            let m = core::arch::aarch64::vcgtq_f32(c, core::arch::aarch64::vdupq_n_f32(0.0));
            core::arch::aarch64::vbslq_f32(m, a, b)
        }
    }
}

/// The kernel bodies, generic over [`Vf32`]. Everything here is
/// `#[inline(always)]` so each instantiation collapses into the
/// `#[target_feature]` wrapper that calls it, letting the intrinsics
/// inline and vectorize. Safe code throughout: all bounds go through
/// slice indexing or `chunks_exact`.
mod kernels {
    use super::{AdamHyper, Vf32, MM_KC};

    /// `out[j] = v(out[j], src[j])` lanewise, with the scalar closure
    /// on the remainder.
    #[inline(always)]
    fn zip2<S: Vf32>(
        out: &mut [f32],
        src: &[f32],
        v: impl Fn(S::V, S::V) -> S::V,
        s: impl Fn(f32, f32) -> f32,
    ) {
        let mut o = out.chunks_exact_mut(S::LANES);
        let mut q = src.chunks_exact(S::LANES);
        for (oc, sc) in (&mut o).zip(&mut q) {
            S::store(oc, v(S::load(oc), S::load(sc)));
        }
        for (oe, &se) in o.into_remainder().iter_mut().zip(q.remainder()) {
            *oe = s(*oe, se);
        }
    }

    /// `out[j] = v(out[j])` lanewise, scalar closure on the remainder.
    #[inline(always)]
    fn map1<S: Vf32>(out: &mut [f32], v: impl Fn(S::V) -> S::V, s: impl Fn(f32) -> f32) {
        let mut o = out.chunks_exact_mut(S::LANES);
        for oc in &mut o {
            S::store(oc, v(S::load(oc)));
        }
        for oe in o.into_remainder() {
            *oe = s(*oe);
        }
    }

    /// `out[j] += alpha * src[j]` — the row-axpy every matmul and
    /// aggregation kernel is built from. One multiply, one add, no
    /// fusing; identical to the scalar loop per element.
    #[inline(always)]
    fn axpy_row<S: Vf32>(out: &mut [f32], alpha: f32, src: &[f32]) {
        let va = S::splat(alpha);
        zip2::<S>(
            out,
            src,
            |o, x| S::add(o, S::mul(va, x)),
            |o, x| o + alpha * x,
        );
    }

    #[inline(always)]
    pub(super) fn add_assign<S: Vf32>(out: &mut [f32], src: &[f32]) {
        zip2::<S>(out, src, |a, b| S::add(a, b), |a, b| a + b);
    }

    #[inline(always)]
    pub(super) fn sub_assign<S: Vf32>(out: &mut [f32], src: &[f32]) {
        zip2::<S>(out, src, |a, b| S::sub(a, b), |a, b| a - b);
    }

    #[inline(always)]
    pub(super) fn hadamard_assign<S: Vf32>(out: &mut [f32], src: &[f32]) {
        zip2::<S>(out, src, |a, b| S::mul(a, b), |a, b| a * b);
    }

    #[inline(always)]
    pub(super) fn axpy<S: Vf32>(out: &mut [f32], alpha: f32, src: &[f32]) {
        axpy_row::<S>(out, alpha, src);
    }

    #[inline(always)]
    pub(super) fn scale<S: Vf32>(out: &mut [f32], s: f32) {
        let vs = S::splat(s);
        map1::<S>(out, |a| S::mul(a, vs), |a| a * s);
    }

    #[inline(always)]
    pub(super) fn scaled_copy<S: Vf32>(out: &mut [f32], s: f32, src: &[f32]) {
        let vs = S::splat(s);
        zip2::<S>(out, src, |_, x| S::mul(x, vs), |_, x| x * s);
    }

    #[inline(always)]
    pub(super) fn scale_axpy<S: Vf32>(out: &mut [f32], c1: f32, c2: f32, src: &[f32]) {
        let v1 = S::splat(c1);
        let v2 = S::splat(c2);
        zip2::<S>(
            out,
            src,
            |a, b| S::add(S::mul(v1, a), S::mul(v2, b)),
            |a, b| c1 * a + c2 * b,
        );
    }

    #[inline(always)]
    pub(super) fn relu<S: Vf32>(out: &mut [f32]) {
        let z = S::splat(0.0);
        map1::<S>(
            out,
            |a| S::select_gtz(a, a, z),
            |a| if a > 0.0 { a } else { 0.0 },
        );
    }

    #[inline(always)]
    pub(super) fn leaky_relu<S: Vf32>(out: &mut [f32], slope: f32) {
        let vs = S::splat(slope);
        map1::<S>(
            out,
            |a| S::select_gtz(a, a, S::mul(vs, a)),
            |a| if a > 0.0 { a } else { slope * a },
        );
    }

    #[inline(always)]
    pub(super) fn relu_backward<S: Vf32>(out: &mut [f32], pre: &[f32]) {
        let one = S::splat(1.0);
        let zero = S::splat(0.0);
        zip2::<S>(
            out,
            pre,
            |u, p| S::mul(u, S::select_gtz(p, one, zero)),
            |u, p| u * if p > 0.0 { 1.0 } else { 0.0 },
        );
    }

    #[inline(always)]
    pub(super) fn leaky_relu_backward<S: Vf32>(out: &mut [f32], pre: &[f32], slope: f32) {
        let one = S::splat(1.0);
        let vs = S::splat(slope);
        zip2::<S>(
            out,
            pre,
            |u, p| S::mul(u, S::select_gtz(p, one, vs)),
            |u, p| u * if p > 0.0 { 1.0 } else { slope },
        );
    }

    /// Column tiles of the accumulator held in registers across the
    /// whole neighbor list: per element the additions still run in
    /// `idx` order (identical to the scalar loop), but the `acc`
    /// traffic drops from one load+store per neighbor to one per tile.
    #[inline(always)]
    pub(super) fn sum_rows<S: Vf32>(
        acc: &mut [f32],
        src: &[f32],
        d: usize,
        idx: &[u32],
        offset: usize,
    ) {
        let mut col = 0;
        while col + 2 * S::LANES <= d {
            let mut a0 = S::load(&acc[col..]);
            let mut a1 = S::load(&acc[col + S::LANES..]);
            for &u in idx {
                let r = (u as usize - offset) * d + col;
                a0 = S::add(a0, S::load(&src[r..]));
                a1 = S::add(a1, S::load(&src[r + S::LANES..]));
            }
            S::store(&mut acc[col..], a0);
            S::store(&mut acc[col + S::LANES..], a1);
            col += 2 * S::LANES;
        }
        if col + S::LANES <= d {
            let mut a0 = S::load(&acc[col..]);
            for &u in idx {
                a0 = S::add(a0, S::load(&src[(u as usize - offset) * d + col..]));
            }
            S::store(&mut acc[col..], a0);
            col += S::LANES;
        }
        for c in col..d {
            let mut s = acc[c];
            for &u in idx {
                s += src[(u as usize - offset) * d + c];
            }
            acc[c] = s;
        }
    }

    /// Same register tiling as [`sum_rows`], with each neighbor row
    /// scaled by `scales[u]` (multiply then add — never fused).
    #[inline(always)]
    pub(super) fn sum_rows_scaled<S: Vf32>(
        acc: &mut [f32],
        src: &[f32],
        d: usize,
        idx: &[u32],
        offset: usize,
        scales: &[f32],
    ) {
        let mut col = 0;
        while col + 2 * S::LANES <= d {
            let mut a0 = S::load(&acc[col..]);
            let mut a1 = S::load(&acc[col + S::LANES..]);
            for &u in idx {
                let av = S::splat(scales[u as usize]);
                let r = (u as usize - offset) * d + col;
                a0 = S::add(a0, S::mul(av, S::load(&src[r..])));
                a1 = S::add(a1, S::mul(av, S::load(&src[r + S::LANES..])));
            }
            S::store(&mut acc[col..], a0);
            S::store(&mut acc[col + S::LANES..], a1);
            col += 2 * S::LANES;
        }
        if col + S::LANES <= d {
            let mut a0 = S::load(&acc[col..]);
            for &u in idx {
                let av = S::splat(scales[u as usize]);
                a0 = S::add(
                    a0,
                    S::mul(av, S::load(&src[(u as usize - offset) * d + col..])),
                );
            }
            S::store(&mut acc[col..], a0);
            col += S::LANES;
        }
        for c in col..d {
            let mut s = acc[c];
            for &u in idx {
                s += scales[u as usize] * src[(u as usize - offset) * d + c];
            }
            acc[c] = s;
        }
    }

    #[inline(always)]
    pub(super) fn scatter_rows<S: Vf32>(dst: &mut [f32], d: usize, idx: &[u32], row: &[f32]) {
        for &u in idx {
            let r = u as usize * d;
            add_assign::<S>(&mut dst[r..r + d], row);
        }
    }

    #[inline(always)]
    pub(super) fn scatter_rows_scaled<S: Vf32>(
        dst: &mut [f32],
        d: usize,
        idx: &[u32],
        row: &[f32],
        scales: &[f32],
    ) {
        for &u in idx {
            let r = u as usize * d;
            axpy_row::<S>(&mut dst[r..r + d], scales[u as usize], row);
        }
    }

    /// One `MM_KC`-deep panel of `C[i] += a[i][k] * B[k]`, the whole
    /// panel's `k` sum held in registers per output vector pair (two
    /// independent chains hide the add latency). Registers round
    /// exactly like memory, so per element this is still the plain
    /// ascending-`k` scalar accumulation, bit for bit.
    #[inline(always)]
    fn mm_nn_panel<S: Vf32>(arow: &[f32], b: &[f32], orow: &mut [f32], kb: usize, n: usize) {
        let mut oc = orow.chunks_exact_mut(2 * S::LANES);
        let mut j = 0;
        for opair in &mut oc {
            let (o0, o1) = opair.split_at_mut(S::LANES);
            let mut a0 = S::load(o0);
            let mut a1 = S::load(o1);
            for (k, &av) in arow.iter().enumerate() {
                let vav = S::splat(av);
                let r = (kb + k) * n + j;
                a0 = S::add(a0, S::mul(vav, S::load(&b[r..])));
                a1 = S::add(a1, S::mul(vav, S::load(&b[r + S::LANES..])));
            }
            S::store(o0, a0);
            S::store(o1, a1);
            j += 2 * S::LANES;
        }
        let tail = oc.into_remainder();
        let mut tc = tail.chunks_exact_mut(S::LANES);
        for ochunk in &mut tc {
            let mut a0 = S::load(ochunk);
            for (k, &av) in arow.iter().enumerate() {
                a0 = S::add(a0, S::mul(S::splat(av), S::load(&b[(kb + k) * n + j..])));
            }
            S::store(ochunk, a0);
            j += S::LANES;
        }
        for (jj, oe) in tc.into_remainder().iter_mut().enumerate() {
            let col = j + jj;
            let mut s = *oe;
            for (k, &av) in arow.iter().enumerate() {
                s += av * b[(kb + k) * n + col];
            }
            *oe = s;
        }
    }

    #[inline(always)]
    pub(super) fn mm_nn_block<S: Vf32>(
        a_block: &[f32],
        b: &[f32],
        out_block: &mut [f32],
        kd: usize,
        n: usize,
    ) {
        let block_rows = out_block.len() / n.max(1);
        let mut kb = 0;
        while kb < kd {
            let kend = (kb + MM_KC).min(kd);
            for i in 0..block_rows {
                let arow = &a_block[i * kd + kb..i * kd + kend];
                let orow = &mut out_block[i * n..(i + 1) * n];
                mm_nn_panel::<S>(arow, b, orow, kb, n);
            }
            kb = kend;
        }
    }

    /// One `MM_KC`-deep panel of `C[i] += a[r][i] * B[r]` for a single
    /// output row `i` (a column of `A`), the `r` sum held in registers
    /// per output vector pair — same structure and same per-element
    /// ascending-`r` order as [`mm_nn_panel`].
    #[inline(always)]
    fn mm_tn_panel<S: Vf32>(
        a: &[f32],
        b: &[f32],
        orow: &mut [f32],
        i: usize,
        (rb, rend): (usize, usize),
        kd: usize,
    ) {
        let n = orow.len();
        let mut oc = orow.chunks_exact_mut(2 * S::LANES);
        let mut j = 0;
        for opair in &mut oc {
            let (o0, o1) = opair.split_at_mut(S::LANES);
            let mut a0 = S::load(o0);
            let mut a1 = S::load(o1);
            for r in rb..rend {
                let vav = S::splat(a[r * kd + i]);
                let q = r * n + j;
                a0 = S::add(a0, S::mul(vav, S::load(&b[q..])));
                a1 = S::add(a1, S::mul(vav, S::load(&b[q + S::LANES..])));
            }
            S::store(o0, a0);
            S::store(o1, a1);
            j += 2 * S::LANES;
        }
        let tail = oc.into_remainder();
        let mut tc = tail.chunks_exact_mut(S::LANES);
        for ochunk in &mut tc {
            let mut a0 = S::load(ochunk);
            for r in rb..rend {
                a0 = S::add(
                    a0,
                    S::mul(S::splat(a[r * kd + i]), S::load(&b[r * n + j..])),
                );
            }
            S::store(ochunk, a0);
            j += S::LANES;
        }
        for (jj, oe) in tc.into_remainder().iter_mut().enumerate() {
            let col = j + jj;
            let mut s = *oe;
            for r in rb..rend {
                s += a[r * kd + i] * b[r * n + col];
            }
            *oe = s;
        }
    }

    #[inline(always)]
    pub(super) fn mm_tn_block<S: Vf32>(
        a: &[f32],
        b: &[f32],
        out_block: &mut [f32],
        (i0, i1): (usize, usize),
        kd: usize,
        n: usize,
    ) {
        let rows = a.len().checked_div(kd).unwrap_or(0);
        let mut rb = 0;
        while rb < rows {
            let rend = (rb + MM_KC).min(rows);
            for (ii, orow) in out_block.chunks_exact_mut(n).take(i1 - i0).enumerate() {
                mm_tn_panel::<S>(a, b, orow, i0 + ii, (rb, rend), kd);
            }
            rb = rend;
        }
    }

    #[inline(always)]
    pub(super) fn adam_update<S: Vf32>(
        p: &mut [f32],
        g: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        h: &AdamHyper,
    ) {
        let wd = S::splat(h.weight_decay);
        let b1 = S::splat(h.beta1);
        let b2 = S::splat(h.beta2);
        let omb1 = S::splat(1.0 - h.beta1);
        let omb2 = S::splat(1.0 - h.beta2);
        let b1t = S::splat(h.b1t);
        let b2t = S::splat(h.b2t);
        let lr = S::splat(h.lr);
        let eps = S::splat(h.eps);
        let mut pc = p.chunks_exact_mut(S::LANES);
        let mut gc = g.chunks_exact(S::LANES);
        let mut mc = m.chunks_exact_mut(S::LANES);
        let mut vc = v.chunks_exact_mut(S::LANES);
        while let (Some(pp), Some(gg), Some(mm), Some(vv)) =
            (pc.next(), gc.next(), mc.next(), vc.next())
        {
            let gi = S::add(S::load(gg), S::mul(wd, S::load(pp)));
            let mn = S::add(S::mul(b1, S::load(mm)), S::mul(omb1, gi));
            let vn = S::add(S::mul(b2, S::load(vv)), S::mul(S::mul(omb2, gi), gi));
            S::store(mm, mn);
            S::store(vv, vn);
            let mhat = S::div(mn, b1t);
            let vhat = S::div(vn, b2t);
            let step = S::div(S::mul(lr, mhat), S::add(S::sqrt(vhat), eps));
            S::store(pp, S::sub(S::load(pp), step));
        }
        for (((pp, &gg), mm), vv) in pc
            .into_remainder()
            .iter_mut()
            .zip(gc.remainder())
            .zip(mc.into_remainder().iter_mut())
            .zip(vc.into_remainder().iter_mut())
        {
            let gi = gg + h.weight_decay * *pp;
            *mm = h.beta1 * *mm + (1.0 - h.beta1) * gi;
            *vv = h.beta2 * *vv + (1.0 - h.beta2) * gi * gi;
            let mhat = *mm / h.b1t;
            let vhat = *vv / h.b2t;
            *pp -= h.lr * mhat / (vhat.sqrt() + h.eps);
        }
    }
}

/// Generates the public dispatch wrapper for each kernel: verify the
/// backend is runnable ([`Backend::checked`]), then jump into the
/// matching `#[target_feature]` monomorphization. The wrappers are the
/// *only* route to the vector impls, which is what the `SAFETY`
/// arguments in the impls rely on.
macro_rules! dispatch_kernels {
    ($(
        $(#[$meta:meta])*
        pub fn $name:ident( $($arg:ident : $ty:ty),* $(,)? );
    )+) => {$(
        $(#[$meta])*
        #[allow(clippy::too_many_arguments)]
        pub fn $name(bk: Backend, $($arg: $ty),*) {
            match bk.checked() {
                Backend::Scalar => kernels::$name::<ScalarV>($($arg),*),
                #[cfg(target_arch = "x86_64")]
                Backend::Avx2 => {
                    #[target_feature(enable = "avx2")]
                    fn with_avx2($($arg: $ty),*) {
                        kernels::$name::<Avx2V>($($arg),*)
                    }
                    // SAFETY: `checked` confirmed AVX2 on this CPU, so
                    // calling the AVX2-feature fn cannot fault.
                    unsafe { with_avx2($($arg),*) }
                }
                #[cfg(target_arch = "x86_64")]
                Backend::Sse2 => {
                    #[target_feature(enable = "sse2")]
                    fn with_sse2($($arg: $ty),*) {
                        kernels::$name::<Sse2V>($($arg),*)
                    }
                    // SAFETY: `checked` confirmed SSE2 on this CPU
                    // (x86_64 baseline), so the call cannot fault.
                    unsafe { with_sse2($($arg),*) }
                }
                #[cfg(target_arch = "aarch64")]
                Backend::Neon => {
                    #[target_feature(enable = "neon")]
                    fn with_neon($($arg: $ty),*) {
                        kernels::$name::<NeonV>($($arg),*)
                    }
                    // SAFETY: `checked` confirmed NEON on this CPU
                    // (aarch64 baseline), so the call cannot fault.
                    unsafe { with_neon($($arg),*) }
                }
                other => unreachable!(
                    "backend {other:?} passed the availability check but has no dispatch arm"
                ),
            }
        }
    )+};
}

dispatch_kernels! {
    /// `out[j] += src[j]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ.
    pub fn add_assign(out: &mut [f32], src: &[f32]);

    /// `out[j] -= src[j]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ.
    pub fn sub_assign(out: &mut [f32], src: &[f32]);

    /// `out[j] *= src[j]` (Hadamard).
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ.
    pub fn hadamard_assign(out: &mut [f32], src: &[f32]);

    /// `out[j] += alpha * src[j]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ.
    pub fn axpy(out: &mut [f32], alpha: f32, src: &[f32]);

    /// `out[j] *= s`.
    pub fn scale(out: &mut [f32], s: f32);

    /// `out[j] = src[j] * s` (the old contents of `out` are ignored).
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ.
    pub fn scaled_copy(out: &mut [f32], s: f32, src: &[f32]);

    /// `out[j] = c1 * out[j] + c2 * src[j]` — the GCN self-loop
    /// finalization with `c1 = s_v`, `c2 = s_v²`.
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ.
    pub fn scale_axpy(out: &mut [f32], c1: f32, c2: f32, src: &[f32]);

    /// In-place ReLU: `out[j] = if out[j] > 0 { out[j] } else { 0.0 }`.
    /// NaN inputs map to `0.0` and `-0.0` maps to `+0.0` on every
    /// backend (a strict select, unlike `f32::max` whose signed-zero
    /// result is documented as unspecified).
    pub fn relu(out: &mut [f32]);

    /// In-place LeakyReLU with the given negative slope.
    pub fn leaky_relu(out: &mut [f32], slope: f32);

    /// Fused ReLU backward: `out[j] *= if pre[j] > 0 { 1.0 } else
    /// { 0.0 }` — the same arithmetic as the former mask-then-hadamard
    /// two-pass, in one sweep (NaN upstream still propagates through
    /// the multiply).
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ.
    pub fn relu_backward(out: &mut [f32], pre: &[f32]);

    /// Fused LeakyReLU backward: `out[j] *= if pre[j] > 0 { 1.0 } else
    /// { slope }`.
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ.
    pub fn leaky_relu_backward(out: &mut [f32], pre: &[f32], slope: f32);

    /// `acc += src.row(idx[i] - offset)` for each index in order, rows
    /// of width `d` — the neighbor-sum inner loop of the aggregation
    /// kernels, dispatched once per target row.
    ///
    /// # Panics
    ///
    /// Panics if an index falls outside `src` or `acc.len() != d`.
    pub fn sum_rows(acc: &mut [f32], src: &[f32], d: usize, idx: &[u32], offset: usize);

    /// `acc += scales[idx[i]] * src.row(idx[i] - offset)` for each
    /// index in order (GCN-normalized neighbor sum).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices or width mismatches.
    pub fn sum_rows_scaled(
        acc: &mut [f32],
        src: &[f32],
        d: usize,
        idx: &[u32],
        offset: usize,
        scales: &[f32],
    );

    /// `dst.row(idx[i]) += row` for each index in order (`dst` is a
    /// flat `rows x d` buffer) — the backward scatter inner loop.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices or width mismatches.
    pub fn scatter_rows(dst: &mut [f32], d: usize, idx: &[u32], row: &[f32]);

    /// `dst.row(idx[i]) += scales[idx[i]] * row` for each index in
    /// order.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices or width mismatches.
    pub fn scatter_rows_scaled(dst: &mut [f32], d: usize, idx: &[u32], row: &[f32], scales: &[f32]);

    /// The i-k-j matmul kernel on one block of output rows: `out[i] +=
    /// a[i][k] * b[k]`, `k` tiled in [`MM_KC`] panels, vectorized
    /// across the `n` output columns. Per-element accumulation order is
    /// ascending `k`, identical to the untiled scalar loop.
    pub fn mm_nn_block(a_block: &[f32], b: &[f32], out_block: &mut [f32], kd: usize, n: usize);

    /// The `A^T B` kernel on output rows `[i0, i1)` (columns of `A`):
    /// for each row `r` of `A`, broadcast `a[r][i]` across `B`'s row
    /// `r`. Accumulation order per element is ascending `r`.
    pub fn mm_tn_block(
        a: &[f32],
        b: &[f32],
        out_block: &mut [f32],
        i01: (usize, usize),
        kd: usize,
        n: usize,
    );

    /// One Adam update over a flat parameter tensor, replicating the
    /// scalar expression order exactly (see [`AdamHyper`]); `div` and
    /// `sqrt` are correctly rounded on every backend, so the update is
    /// bitwise identical at any lane width.
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ.
    pub fn adam_update(p: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], h: &AdamHyper);
}

pub mod codec;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_and_rejects_unknown() {
        for bk in Backend::ALL {
            assert_eq!(Backend::parse(bk.name()), Some(bk));
            assert_eq!(Backend::parse(&bk.name().to_uppercase()), Some(bk));
        }
        assert_eq!(Backend::parse("avx512"), None);
        assert_eq!(Backend::parse(""), None);
    }

    #[test]
    fn resolve_table() {
        assert_eq!(resolve(None), detect());
        assert_eq!(resolve(Some("")), detect());
        assert_eq!(resolve(Some("auto")), detect());
        assert_eq!(resolve(Some("AUTO")), detect());
        assert_eq!(resolve(Some("nonsense")), detect());
        assert_eq!(resolve(Some("scalar")), Backend::Scalar);
        assert_eq!(resolve(Some(" scalar ")), Backend::Scalar);
        // A recognized but unavailable backend degrades to detect().
        let foreign = if cfg!(target_arch = "x86_64") {
            "neon"
        } else {
            "avx2"
        };
        assert_eq!(resolve(Some(foreign)), detect());
    }

    #[test]
    fn detect_is_available_and_best() {
        let bk = detect();
        assert!(bk.is_available());
        #[cfg(target_arch = "x86_64")]
        assert_ne!(bk, Backend::Neon);
        #[cfg(target_arch = "aarch64")]
        assert_eq!(bk, Backend::Neon);
    }

    #[test]
    fn force_nests_and_restores() {
        let outer = active();
        {
            let _g1 = force(Backend::Scalar);
            assert_eq!(active(), Backend::Scalar);
            {
                let _g2 = force(detect());
                assert_eq!(active(), detect());
            }
            assert_eq!(active(), Backend::Scalar);
        }
        assert_eq!(active(), outer);
    }

    #[test]
    #[should_panic(expected = "not available")]
    fn force_rejects_unavailable_backend() {
        let foreign = if cfg!(target_arch = "x86_64") {
            Backend::Neon
        } else {
            Backend::Avx2
        };
        let _g = force(foreign);
    }

    #[test]
    fn dispatch_stats_count_and_drain() {
        let _ = take_thread_stats();
        let _g = force(Backend::Scalar);
        let mut a = [1.0f32, 2.0, 3.0];
        add_assign(begin_kernel(), &mut a, &[1.0, 1.0, 1.0]);
        let st = thread_stats();
        assert_eq!(st.scalar, 1);
        assert_eq!(st.total(), 1);
        assert_eq!(st.vectorized(), 0);
        let drained = take_thread_stats();
        assert_eq!(drained, st);
        assert_eq!(thread_stats().total(), 0);
    }

    #[test]
    fn lanes_are_consistent() {
        assert_eq!(Backend::Scalar.lanes(), 1);
        assert_eq!(Backend::Sse2.lanes(), 4);
        assert_eq!(Backend::Avx2.lanes(), 8);
        assert_eq!(Backend::Neon.lanes(), 4);
    }

    /// Every available backend must agree with scalar bit for bit on a
    /// remainder-heavy length with special values in play.
    #[test]
    fn kernels_match_scalar_bitwise_smoke() {
        let base: Vec<f32> = (0..19)
            .map(|i| match i % 6 {
                0 => f32::NAN,
                1 => -0.0,
                2 => f32::INFINITY,
                3 => -3.5,
                4 => 1.0e-40, // subnormal
                _ => 2.5 + i as f32,
            })
            .collect();
        let src: Vec<f32> = base.iter().map(|x| x * 0.5 - 1.0).collect();
        for bk in Backend::ALL.into_iter().filter(|b| b.is_available()) {
            let mut want = base.clone();
            add_assign(Backend::Scalar, &mut want, &src);
            relu(Backend::Scalar, &mut want);
            let mut got = base.clone();
            add_assign(bk, &mut got, &src);
            relu(bk, &mut got);
            let wb: Vec<u32> = want.iter().map(|x| x.to_bits()).collect();
            let gb: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
            assert_eq!(wb, gb, "backend {bk:?} diverged from scalar");
        }
    }
}
