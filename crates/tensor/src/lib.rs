//! Dense `f32` matrix kernels and seeded randomness for the BNS-GCN
//! reproduction.
//!
//! The training stack in this workspace is deliberately BLAS-free and
//! dependency-light: everything a GraphSAGE/GCN/GAT layer needs is a
//! row-major [`Matrix`] with a handful of kernels (matmul in its three
//! transpose flavours, row gather/scatter, broadcast add, elementwise maps)
//! plus a deterministic random-number source ([`SeededRng`]) for
//! initialization, dropout and sampling.
//!
//! The hot kernels run on a scoped, `std::thread`-only worker pool
//! ([`pool`]) when one is installed on the calling thread, and their
//! inner loops go through the runtime-dispatched SIMD backend
//! ([`simd`], AVX2/SSE2/NEON with a scalar fallback, `BNS_SIMD`
//! override); results are bitwise identical at any thread count *and*
//! any lane width (see the module docs for the determinism arguments).
//!
//! # Example
//!
//! ```
//! use bns_tensor::{Matrix, SeededRng};
//!
//! let mut rng = SeededRng::new(7);
//! let a = Matrix::random_normal(4, 3, 0.0, 1.0, &mut rng);
//! let b = Matrix::random_normal(3, 2, 0.0, 1.0, &mut rng);
//! let c = a.matmul(&b);
//! assert_eq!((c.rows(), c.cols()), (4, 2));
//! ```

mod init;
mod matrix;
pub mod pool;
mod rng;
pub mod simd;
mod sync;

pub use init::{kaiming_uniform, xavier_uniform};
pub use matrix::Matrix;
pub use pool::{ThreadConfig, ThreadPool};
pub use rng::SeededRng;

/// Absolute tolerance used by [`Matrix::approx_eq`] helpers in tests across
/// the workspace.
pub const DEFAULT_TOL: f32 = 1e-4;
