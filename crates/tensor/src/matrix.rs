//! Row-major dense `f32` matrices with the kernels needed by the neural
//! network and training engine crates.

use crate::SeededRng;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A row-major dense `f32` matrix.
///
/// All shape mismatches panic: the training engine builds matrices of
/// statically-known shapes, so a mismatch is a programming error, not a
/// recoverable condition.
///
/// # Example
///
/// ```
/// use bns_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, Default, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            write!(f, "  [")?;
            let rc = self.cols.min(8);
            for c in 0..rc {
                write!(f, "{:>9.4}", self[(r, c)])?;
                if c + 1 < rc {
                    write!(f, ", ")?;
                }
            }
            if rc < self.cols {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if show < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n x n` identity.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: {} values cannot fill a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(r, c)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A matrix of i.i.d. `N(mean, std^2)` entries.
    pub fn random_normal(
        rows: usize,
        cols: usize,
        mean: f32,
        std: f32,
        rng: &mut SeededRng,
    ) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.normal(mean, std))
    }

    /// A matrix of i.i.d. uniform entries in `[lo, hi)`.
    pub fn random_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut SeededRng) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.uniform_range(lo, hi))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// Row-blocked over the installed [`crate::pool`] (serial when no
    /// pool is installed or the product is small) with a cache-blocked
    /// i-k-j inner kernel dispatched through [`crate::simd`]. Every
    /// output element is accumulated in ascending-`k` order by exactly
    /// one thread, vectorized across output *columns* with no FMA, so
    /// the result is bitwise identical at any thread count and any
    /// SIMD lane width. Unlike the earlier scalar kernel there is
    /// **no** skip of zero entries: `0 * NaN` must stay `NaN`
    /// (IEEE 754), so divergence in either operand always propagates
    /// to the product.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{} shape mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        self.mm_nn(rhs.cols, &rhs.data)
    }

    /// The shared NN-layout product core: `self * B` where `B` is a
    /// flat row-major `self.cols x n` buffer. The SIMD backend is
    /// resolved once here, on the calling thread, and handed to the
    /// pool closures (worker threads never consult dispatch state).
    fn mm_nn(&self, n: usize, b: &[f32]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, n);
        let kd = self.cols;
        let a = &self.data;
        let bk = crate::simd::begin_kernel();
        let min_rows = par_min_rows(self.rows, kd * n);
        let optr = SendMutPtr(out.data.as_mut_ptr());
        crate::pool::parallel_row_blocks(self.rows, min_rows, &|i0, i1| {
            // SAFETY: each block owns the disjoint output rows [i0, i1).
            let oblock =
                unsafe { std::slice::from_raw_parts_mut(optr.get().add(i0 * n), (i1 - i0) * n) };
            crate::simd::mm_nn_block(bk, &a[i0 * kd..i1 * kd], b, oblock, kd, n);
        });
        out
    }

    /// `self^T * rhs` without materializing the transpose.
    ///
    /// Parallel over blocks of output rows (= columns of `self`); the
    /// per-element accumulation order is ascending over `self`'s rows
    /// regardless of blocking or lane width (the [`crate::simd`]
    /// kernel vectorizes across output columns), so results are
    /// bitwise deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: {}x{} ^T * {}x{} shape mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        let n = rhs.cols;
        let kd = self.cols;
        let rows = self.rows;
        let a = &self.data;
        let b = &rhs.data;
        let bk = crate::simd::begin_kernel();
        let min_rows = par_min_rows(kd, rows * n);
        let optr = SendMutPtr(out.data.as_mut_ptr());
        crate::pool::parallel_row_blocks(kd, min_rows, &|i0, i1| {
            // SAFETY: disjoint output rows [i0, i1) per block.
            let oblock =
                unsafe { std::slice::from_raw_parts_mut(optr.get().add(i0 * n), (i1 - i0) * n) };
            crate::simd::mm_tn_block(bk, a, b, oblock, (i0, i1), kd, n);
        });
        out
    }

    /// `self * rhs^T`, computed as one explicit `rhs` transpose
    /// followed by the shared NN kernel: with `rhs^T` materialized the
    /// inner loop reads contiguous rows and vectorizes across output
    /// columns, where the old fused dot-product walked `rhs` with a
    /// lane-hostile stride. Each output element still accumulates its
    /// products in ascending-`k` order starting from `0.0` — the exact
    /// float sequence of the former `acc += x * y` loop — so results
    /// are bitwise unchanged and deterministic at any thread count and
    /// lane width. The transpose is a one-off `O(k·n)` copy against an
    /// `O(m·k·n)` product.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: {}x{} * {}x{} ^T shape mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let bt = rhs.transpose();
        self.mm_nn(rhs.rows, &bt.data)
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise in-place `self += rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        crate::simd::add_assign(crate::simd::begin_kernel(), &mut self.data, &rhs.data);
    }

    /// Elementwise in-place `self += alpha * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        crate::simd::axpy(
            crate::simd::begin_kernel(),
            &mut self.data,
            alpha,
            &rhs.data,
        );
    }

    /// Elementwise in-place `self -= rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "sub_assign shape mismatch");
        crate::simd::sub_assign(crate::simd::begin_kernel(), &mut self.data, &rhs.data);
    }

    /// In-place scaling by a scalar.
    pub fn scale(&mut self, s: f32) {
        crate::simd::scale(crate::simd::begin_kernel(), &mut self.data, s);
    }

    /// Elementwise (Hadamard) product as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let mut out = self.clone();
        crate::simd::hadamard_assign(crate::simd::begin_kernel(), &mut out.data, &rhs.data);
        out
    }

    /// Adds a length-`cols` row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        let bk = crate::simd::begin_kernel();
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            crate::simd::add_assign(bk, row, bias);
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Applies `f` elementwise, returning a new matrix.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            // The exchange loop never calls Matrix::map; the edge is
            // an iterator/Option `map` name collision.
            // bns-allow(BNS-A005): Matrix::map returns a new matrix by contract
            self.data.iter().map(|&a| f(a)).collect(),
        )
    }

    /// Gathers the given rows into a new matrix (`out.row(i) =
    /// self.row(idx[i])`).
    ///
    /// Stays a plain `copy_from_slice` per row: a pure memcpy is
    /// already the optimal (and trivially bitwise-exact) form, so it
    /// is not routed through [`crate::simd`].
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            assert!(r < self.rows, "gather_rows: index {r} out of bounds");
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Adds each row of `src` into `self.row(idx[i])` (the adjoint of
    /// [`Matrix::gather_rows`]).
    ///
    /// # Panics
    ///
    /// Panics on index out of bounds or column mismatch.
    pub fn scatter_add_rows(&mut self, idx: &[usize], src: &Matrix) {
        assert_eq!(idx.len(), src.rows, "scatter_add_rows: index/src mismatch");
        assert_eq!(self.cols, src.cols, "scatter_add_rows: column mismatch");
        let bk = crate::simd::begin_kernel();
        for (i, &r) in idx.iter().enumerate() {
            assert!(r < self.rows, "scatter_add_rows: index {r} out of bounds");
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            crate::simd::add_assign(bk, dst, src.row(i));
        }
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics on column mismatch.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Horizontally concatenates `self` with `other`.
    ///
    /// # Panics
    ///
    /// Panics on row mismatch.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.data[r * out.cols..r * out.cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * out.cols + self.cols..(r + 1) * out.cols].copy_from_slice(other.row(r));
        }
        out
    }

    /// Adds rows laid out contiguously in `src` (`idx.len() × self.cols`
    /// row-major) into `self.row(idx[i])` — [`Matrix::scatter_add_rows`]
    /// without requiring the source to be materialized as a `Matrix`.
    ///
    /// # Panics
    ///
    /// Panics on index out of bounds or if `src.len() != idx.len() * cols`.
    pub fn scatter_add_rows_slice(&mut self, idx: &[usize], src: &[f32]) {
        assert_eq!(
            src.len(),
            idx.len() * self.cols,
            "scatter_add_rows_slice: src length mismatch"
        );
        let bk = crate::simd::begin_kernel();
        for (i, &r) in idx.iter().enumerate() {
            assert!(
                r < self.rows,
                "scatter_add_rows_slice: index {r} out of bounds"
            );
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            crate::simd::add_assign(bk, dst, &src[i * self.cols..(i + 1) * self.cols]);
        }
    }

    /// Splits rows at `at`, consuming `self`: returns
    /// `(self[..at, :], self[at.., :])`. The top part reuses the existing
    /// allocation (truncate in place, no copy); only the bottom rows are
    /// copied out.
    ///
    /// # Panics
    ///
    /// Panics if `at > rows`.
    pub fn split_rows(mut self, at: usize) -> (Matrix, Matrix) {
        assert!(at <= self.rows, "split_rows out of bounds");
        let bottom = Matrix::from_vec(
            self.rows - at,
            self.cols,
            self.data[at * self.cols..].to_vec(),
        );
        self.data.truncate(at * self.cols);
        self.rows = at;
        (self, bottom)
    }

    /// The sub-matrix of rows `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > rows`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "slice_rows out of bounds");
        Matrix::from_vec(
            end - start,
            self.cols,
            self.data[start * self.cols..end * self.cols].to_vec(),
        )
    }

    /// Splits columns at `at`: returns `(self[:, ..at], self[:, at..])`.
    ///
    /// # Panics
    ///
    /// Panics if `at > cols`.
    pub fn split_cols(&self, at: usize) -> (Matrix, Matrix) {
        assert!(at <= self.cols, "split_cols out of bounds");
        let mut left = Matrix::zeros(self.rows, at);
        let mut right = Matrix::zeros(self.rows, self.cols - at);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..at]);
            right.row_mut(r).copy_from_slice(&self.row(r)[at..]);
        }
        (left, right)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Per-column sums as a length-`cols` vector.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// Squared Frobenius norm.
    pub fn frobenius_norm_sq(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>()
    }

    /// Maximum absolute difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Whether all elements differ by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }

    /// Whether any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|a| !a.is_finite())
    }
}

/// A `*mut f32` the pool closures may carry across threads. Sound
/// because every user writes only to a disjoint row range of the
/// pointee (see the SAFETY comments at each use).
#[derive(Clone, Copy)]
struct SendMutPtr(*mut f32);
// SAFETY: the wrapper is only handed to pool jobs that write disjoint
// row ranges of the output buffer, and `ThreadPool::run` joins every
// job before the `&mut` borrow it was derived from ends.
unsafe impl Send for SendMutPtr {}
// SAFETY: as above — shared references only ever read the pointer
// value itself; all writes through it are range-disjoint per job.
unsafe impl Sync for SendMutPtr {}

impl SendMutPtr {
    /// Accessed via a method so closures capture the whole `Send`
    /// wrapper — a 2021-edition closure naming the field directly would
    /// capture only the raw (non-`Send`) pointer.
    fn get(self) -> *mut f32 {
        self.0
    }
}

/// Minimum FLOPs-per-element budget below which a matmul stays serial
/// (fan-out costs more than it saves on tiny products).
#[cfg(not(miri))]
const PAR_MIN_WORK: usize = 64 * 1024;
/// Under Miri the interpreter is ~1000x slower, so the budget shrinks:
/// tiny test products still take the parallel raw-pointer path that
/// Miri is there to check (tests/miri_kernels.rs).
#[cfg(miri)]
const PAR_MIN_WORK: usize = 64;

/// Minimum rows per parallel block for a kernel whose per-output-row
/// cost is `work_per_row` multiply-adds.
fn par_min_rows(rows: usize, work_per_row: usize) -> usize {
    if rows == 0 {
        return 1;
    }
    PAR_MIN_WORK.div_ceil(work_per_row.max(1)).max(1)
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.sub_assign(rhs);
        out
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f32) -> Matrix {
        let mut out = self.clone();
        out.scale(s);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = SeededRng::new(1);
        let a = Matrix::random_normal(7, 5, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(5, 9, 0.0, 1.0, &mut rng);
        assert!(a.matmul(&b).approx_eq(&naive_matmul(&a, &b), 1e-5));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = SeededRng::new(2);
        let a = Matrix::random_normal(6, 4, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(6, 3, 0.0, 1.0, &mut rng);
        assert!(a.matmul_tn(&b).approx_eq(&a.transpose().matmul(&b), 1e-5));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = SeededRng::new(3);
        let a = Matrix::random_normal(6, 4, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(5, 4, 0.0, 1.0, &mut rng);
        assert!(a.matmul_nt(&b).approx_eq(&a.matmul(&b.transpose()), 1e-5));
    }

    #[test]
    fn zero_times_nan_propagates() {
        // IEEE 754: 0 * NaN = NaN and 0 * Inf = NaN. A zero-entry fast
        // path in the kernels would mask divergence in the other
        // operand, so all three matmul flavours must propagate it.
        let zero = Matrix::zeros(2, 2);
        let mut bad = Matrix::zeros(2, 2);
        bad[(0, 0)] = f32::NAN;
        bad[(1, 1)] = f32::INFINITY;

        let z = zero.matmul(&bad);
        assert!(z[(0, 0)].is_nan(), "0 * NaN must be NaN (matmul)");
        assert!(z[(0, 1)].is_nan(), "0 * Inf must be NaN (matmul)");

        let z = zero.matmul_tn(&bad);
        assert!(z[(0, 0)].is_nan(), "0 * NaN must be NaN (matmul_tn)");
        assert!(z[(1, 1)].is_nan(), "0 * Inf must be NaN (matmul_tn)");

        let z = zero.matmul_nt(&bad);
        assert!(z[(0, 0)].is_nan(), "0 * NaN must be NaN (matmul_nt)");
        assert!(z[(0, 1)].is_nan(), "0 * Inf must be NaN (matmul_nt)");

        // And the mirrored case: NaN in the left operand, zeros right.
        let z = bad.matmul(&zero);
        assert!(z[(0, 0)].is_nan(), "NaN * 0 must be NaN (matmul)");
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = SeededRng::new(4);
        let a = Matrix::random_normal(5, 5, 0.0, 1.0, &mut rng);
        assert!(a.matmul(&Matrix::eye(5)).approx_eq(&a, 1e-6));
        assert!(Matrix::eye(5).matmul(&a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = SeededRng::new(5);
        let a = Matrix::random_normal(4, 7, 0.0, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let mut rng = SeededRng::new(6);
        let a = Matrix::random_normal(8, 3, 0.0, 1.0, &mut rng);
        let idx = vec![1, 4, 7];
        let g = a.gather_rows(&idx);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.row(0), a.row(1));
        let mut z = Matrix::zeros(8, 3);
        z.scatter_add_rows(&idx, &g);
        for r in 0..8 {
            if idx.contains(&r) {
                assert_eq!(z.row(r), a.row(r));
            } else {
                assert!(z.row(r).iter().all(|&x| x == 0.0));
            }
        }
    }

    #[test]
    fn scatter_add_accumulates_duplicates() {
        let src = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut dst = Matrix::zeros(2, 2);
        dst.scatter_add_rows(&[0, 0], &src);
        assert_eq!(dst.row(0), &[4.0, 6.0]);
        assert_eq!(dst.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn scatter_add_rows_slice_matches_matrix_form() {
        let src = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let idx = [2usize, 0, 2];
        let mut a = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let mut b = a.clone();
        a.scatter_add_rows(&idx, &src);
        b.scatter_add_rows_slice(&idx, src.as_slice());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "src length mismatch")]
    fn scatter_add_rows_slice_rejects_bad_length() {
        let mut a = Matrix::zeros(2, 2);
        a.scatter_add_rows_slice(&[0], &[1.0]);
    }

    #[test]
    fn split_rows_inverts_vstack() {
        let mut rng = SeededRng::new(3);
        let a = Matrix::random_normal(4, 3, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(2, 3, 0.0, 1.0, &mut rng);
        let (top, bottom) = a.vstack(&b).split_rows(4);
        assert_eq!(top, a);
        assert_eq!(bottom, b);
        // Degenerate splits.
        let (t, bot) = a.clone().split_rows(0);
        assert_eq!(t.shape(), (0, 3));
        assert_eq!(bot, a);
        let (t, bot) = a.clone().split_rows(4);
        assert_eq!(t, a);
        assert_eq!(bot.shape(), (0, 3));
    }

    #[test]
    fn hstack_and_split_cols_roundtrip() {
        let mut rng = SeededRng::new(7);
        let a = Matrix::random_normal(4, 3, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(4, 2, 0.0, 1.0, &mut rng);
        let c = a.hstack(&b);
        assert_eq!(c.shape(), (4, 5));
        let (l, r) = c.split_cols(3);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    fn vstack_and_slice_rows_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0]]);
        let c = a.vstack(&b);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.slice_rows(0, 2), a);
        assert_eq!(c.slice_rows(2, 3), b);
    }

    #[test]
    fn broadcast_and_reductions() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(m.sum(), 9.0);
        assert_eq!(m.col_sums(), vec![3.0, 6.0]);
        assert!((m.frobenius_norm() - (3.0f32 + 12.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn axpy_and_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0]]);
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c.row(0), &[6.0, 12.0]);
        assert_eq!((&a + &b).row(0), &[11.0, 22.0]);
        assert_eq!((&b - &a).row(0), &[9.0, 18.0]);
        assert_eq!((&a * 3.0).row(0), &[3.0, 6.0]);
        assert_eq!(a.hadamard(&b).row(0), &[10.0, 40.0]);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn non_finite_detection() {
        let mut m = Matrix::zeros(2, 2);
        assert!(!m.has_non_finite());
        m[(0, 1)] = f32::NAN;
        assert!(m.has_non_finite());
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Matrix::zeros(0, 0));
        assert!(!s.is_empty());
    }
}
