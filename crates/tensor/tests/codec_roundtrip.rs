//! Round-trip, error-bound, unbiasedness and cross-backend determinism
//! properties of the wire codecs (`bns_tensor::simd::codec`).
//!
//! The codecs carry the quantized boundary exchange, so they inherit
//! the SIMD backend's determinism contract: every pack/unpack must be
//! bitwise identical on every backend this CPU supports, for both the
//! round-to-nearest feature path and the stochastically rounded
//! gradient path (whose randomness is counter-based, hence
//! position-pure). On top of that the formats promise analytic error
//! bounds — int8 is within half a step of the per-row affine grid,
//! f16/bf16 reproduce exactly-representable values exactly, and
//! stochastic rounding is unbiased in expectation.

use bns_tensor::simd::{codec, Backend};
use bns_tensor::SeededRng;
use proptest::prelude::*;

/// A pack kernel under test: name, the boxed pack closure, and the
/// wire-buffer size it expects.
type PackCase<'a> = (&'a str, Box<dyn Fn(Backend, &mut [u8]) + 'a>, usize);
/// An unpack kernel under test: name and the boxed unpack closure.
type UnpackCase<'a> = (&'a str, Box<dyn Fn(Backend, &mut [f32]) + 'a>);

/// Every backend this CPU can run, scalar first (the reference).
fn backends() -> Vec<Backend> {
    Backend::ALL
        .into_iter()
        .filter(|bk| bk.is_available())
        .collect()
}

/// Random row-major data in a training-like range with a few exact
/// values planted (so the "representable stays exact" corner is always
/// exercised).
fn sample_rows(rng: &mut SeededRng, rows: usize, d: usize) -> Vec<f32> {
    let mut v: Vec<f32> = (0..rows * d)
        .map(|_| rng.uniform_range(-8.0, 8.0))
        .collect();
    for s in [0.0f32, -0.0, 1.0, -2.5] {
        let at = rng.usize_below(v.len().max(1));
        if !v.is_empty() {
            v[at] = s;
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// int8: every finite element dequantizes to within half a
    /// quantization step of the original (round-to-nearest onto the
    /// per-row affine grid), and the row min/max endpoints are exact.
    #[test]
    fn int8_roundtrip_error_is_within_half_step(
        rows in 1usize..12, d in 1usize..40, seed in 0u64..1_000_000
    ) {
        let mut rng = SeededRng::new(seed);
        let src = sample_rows(&mut rng, rows, d);
        let rb = d + codec::INT8_HEADER_BYTES;
        let mut wire = vec![0u8; rows * rb];
        codec::pack_int8(Backend::Scalar, &mut wire, &src, d);
        let mut out = vec![0.0f32; rows * d];
        codec::unpack_int8(Backend::Scalar, &mut out, &wire, d, 1.0);
        for (row, (srow, orow)) in src.chunks_exact(d).zip(out.chunks_exact(d)).enumerate() {
            let scale = f32::from_le_bytes(wire[row * rb..row * rb + 4].try_into().unwrap());
            // Half a step, plus slack for the f32 rounding of
            // (x - zp) * inv and zp + q * scale themselves.
            let bound = 0.5 * scale * (1.0 + 1e-5) + 1e-6;
            for (j, (&x, &y)) in srow.iter().zip(orow).enumerate() {
                prop_assert!(
                    (x - y).abs() <= bound,
                    "row {row} elem {j}: {x} -> {y}, step {scale}"
                );
            }
            let lo = srow.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = srow.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(orow.contains(&lo), "row min must be exact");
            if scale > 0.0 {
                let hi_deq = orow.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                prop_assert!(
                    (hi_deq - hi).abs() <= 1e-4 * hi.abs().max(1.0),
                    "row max {hi} came back {hi_deq}"
                );
            }
        }
    }

    /// f16/bf16: a value that is exactly representable in the narrow
    /// format round-trips bitwise. Representable values are generated
    /// from the narrow side (every finite f16/bf16 widens exactly).
    #[test]
    fn half_formats_are_exact_on_representable_values(bits in 0u16..=u16::MAX) {
        // f16: skip inf/NaN encodings (exp field all ones).
        if bits & 0x7c00 != 0x7c00 {
            let x = codec::f16_to_f32(bits);
            prop_assert_eq!(codec::f32_to_f16_rne(x), bits);
        }
        // bf16: skip inf/NaN encodings (exp field all ones).
        if bits & 0x7f80 != 0x7f80 {
            let x = codec::bf16_to_f32(bits);
            prop_assert_eq!(codec::f32_to_bf16_rne(x), bits);
        }
    }

    /// Every pack/unpack kernel is bitwise identical across backends —
    /// the property that lets a heterogeneous set of ranks (or a CI
    /// matrix of `BNS_SIMD` values) exchange quantized rows and still
    /// train deterministically.
    #[test]
    fn codec_kernels_bitwise_across_backends(
        rows in 1usize..10, d in 1usize..32, seed in 0u64..1_000_000
    ) {
        let mut rng = SeededRng::new(seed);
        let mut src = sample_rows(&mut rng, rows, d);
        // NaN and ±∞ must not break cross-backend identity either.
        let n = src.len();
        src[rng.usize_below(n)] = f32::NAN;
        src[rng.usize_below(n)] = f32::INFINITY;
        let scale = rng.uniform_range(0.5, 4.0);
        let sr_seed = rng.next_u64();

        let half = vec![0u8; rows * d * 2];
        let i8w = vec![0u8; rows * (d + codec::INT8_HEADER_BYTES)];
        let packs: [PackCase; 6] = [
            ("pack_f16", Box::new(|bk, w: &mut [u8]| codec::pack_f16(bk, w, &src)), half.len()),
            ("pack_bf16", Box::new(|bk, w: &mut [u8]| codec::pack_bf16(bk, w, &src)), half.len()),
            (
                "pack_f16_sr",
                Box::new(|bk, w: &mut [u8]| codec::pack_f16_sr(bk, w, &src, d, sr_seed)),
                half.len(),
            ),
            (
                "pack_bf16_sr",
                Box::new(|bk, w: &mut [u8]| codec::pack_bf16_sr(bk, w, &src, d, sr_seed)),
                half.len(),
            ),
            (
                "pack_int8",
                Box::new(|bk, w: &mut [u8]| codec::pack_int8(bk, w, &src, d)),
                i8w.len(),
            ),
            (
                "pack_int8_sr",
                Box::new(|bk, w: &mut [u8]| codec::pack_int8_sr(bk, w, &src, d, sr_seed)),
                i8w.len(),
            ),
        ];
        for (name, pack, len) in &packs {
            let mut reference = vec![0u8; *len];
            pack(Backend::Scalar, &mut reference);
            for bk in backends() {
                let mut got = vec![0u8; *len];
                pack(bk, &mut got);
                prop_assert_eq!(&reference, &got, "{} diverged on {}", name, bk.name());
            }
        }

        // Unpack: pack once on scalar, unpack on every backend; the
        // lanewise scale multiply must not change a single bit.
        let mut f16w = vec![0u8; rows * d * 2];
        codec::pack_f16(Backend::Scalar, &mut f16w, &src);
        let mut bf16w = vec![0u8; rows * d * 2];
        codec::pack_bf16(Backend::Scalar, &mut bf16w, &src);
        let mut int8w = vec![0u8; rows * (d + codec::INT8_HEADER_BYTES)];
        codec::pack_int8(Backend::Scalar, &mut int8w, &src, d);
        let unpacks: [UnpackCase; 3] = [
            (
                "unpack_f16",
                Box::new(|bk, o: &mut [f32]| codec::unpack_f16(bk, o, &f16w, scale)),
            ),
            (
                "unpack_bf16",
                Box::new(|bk, o: &mut [f32]| codec::unpack_bf16(bk, o, &bf16w, scale)),
            ),
            (
                "unpack_int8",
                Box::new(|bk, o: &mut [f32]| codec::unpack_int8(bk, o, &int8w, d, scale)),
            ),
        ];
        for (name, unpack) in &unpacks {
            let mut reference = vec![0.0f32; rows * d];
            unpack(Backend::Scalar, &mut reference);
            for bk in backends() {
                let mut got = vec![0.0f32; rows * d];
                unpack(bk, &mut got);
                let same = reference
                    .iter()
                    .zip(&got)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                prop_assert!(same, "{} diverged on {}", name, bk.name());
            }
        }
    }

    /// Stochastic rounding never lands anywhere but the two bracketing
    /// grid points, and its per-position randomness is position-pure:
    /// packing the same rows twice under one seed is byte-identical.
    #[test]
    fn sr_stays_on_bracketing_grid_points(
        rows in 1usize..8, d in 1usize..24, seed in 0u64..1_000_000
    ) {
        let mut rng = SeededRng::new(seed);
        let src = sample_rows(&mut rng, rows, d);
        let sr_seed = rng.next_u64();
        let mut wire = vec![0u8; rows * d * 2];
        codec::pack_f16_sr(Backend::Scalar, &mut wire, &src, d, sr_seed);
        let mut again = vec![0u8; rows * d * 2];
        codec::pack_f16_sr(Backend::Scalar, &mut again, &src, d, sr_seed);
        prop_assert_eq!(&wire, &again, "SR must be deterministic per seed");
        for (&x, h2) in src.iter().zip(wire.chunks_exact(2)) {
            let y = codec::f16_to_f32(u16::from_le_bytes([h2[0], h2[1]]));
            let down = codec::f16_to_f32(codec::f32_to_f16_rne(x));
            // y is either RNE's choice or its neighbor one ulp toward
            // the other side of x — never further than one f16 step.
            let lo = down.min(x);
            let hi = down.max(x);
            let step = (hi - lo).abs().max(f32::EPSILON);
            prop_assert!(
                (y - x).abs() <= 2.0 * step + 2.0 * (x.abs() * 0.001),
                "SR of {x} landed at {y}, too far off the grid"
            );
        }
    }
}

/// SR unbiasedness: averaging the dequantized value over many
/// independent seeds converges to the input, for every format. RNE by
/// contrast has a fixed bias for a value sitting off-center between
/// grid points — which is exactly why the gradient path uses SR.
#[test]
fn stochastic_rounding_is_unbiased() {
    // Values chosen off-grid in every format (f16 step at 1.2 is
    // ~0.00098; bf16 step is ~0.0078; int8 step depends on the row).
    let src = [1.2003f32, -0.7377, 3.2083, 0.0101];
    let d = src.len();
    let trials = 4000u64;

    let mut sums = [[0.0f64; 4]; 3];
    for t in 0..trials {
        let seed = 0x5eed_0000 + t;
        let mut f16w = vec![0u8; d * 2];
        codec::pack_f16_sr(Backend::Scalar, &mut f16w, &src, d, seed);
        let mut bf16w = vec![0u8; d * 2];
        codec::pack_bf16_sr(Backend::Scalar, &mut bf16w, &src, d, seed);
        let mut i8w = vec![0u8; d + codec::INT8_HEADER_BYTES];
        codec::pack_int8_sr(Backend::Scalar, &mut i8w, &src, d, seed);

        let mut out = vec![0.0f32; d];
        codec::unpack_f16(Backend::Scalar, &mut out, &f16w, 1.0);
        for (s, &y) in sums[0].iter_mut().zip(&out) {
            *s += y as f64;
        }
        codec::unpack_bf16(Backend::Scalar, &mut out, &bf16w, 1.0);
        for (s, &y) in sums[1].iter_mut().zip(&out) {
            *s += y as f64;
        }
        codec::unpack_int8(Backend::Scalar, &mut out, &i8w, d, 1.0);
        for (s, &y) in sums[2].iter_mut().zip(&out) {
            *s += y as f64;
        }
    }
    // int8's grid is shared by the whole row: one step is
    // (max - min)/255 regardless of the element's own magnitude, so a
    // small element in a wide row sees the full row step as its noise
    // scale.
    let lo = src.iter().cloned().fold(f32::INFINITY, f32::min) as f64;
    let hi = src.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
    let int8_step = (hi - lo) / 255.0;
    for (fmt, sums) in ["f16", "bf16", "int8"].iter().zip(&sums) {
        for (&x, &s) in src.iter().zip(sums) {
            let mean = s / trials as f64;
            // The mean must sit within a small fraction of one
            // quantization step of the input (the empirical-mean noise
            // is ~step/(2·√trials) ≈ 0.008·step, so 0.05·step is ~6σ).
            // bf16's step at these magnitudes is ~2^-8 of the value;
            // use that as the yard for the float formats.
            let step = if *fmt == "int8" {
                int8_step
            } else {
                (x.abs() as f64) / 128.0 + 1e-4
            };
            assert!(
                (mean - x as f64).abs() < 0.05 * step + 5e-5,
                "{fmt}: E[deq({x})] = {mean}, off by more than SR noise"
            );
        }
    }
}

/// NaN policy across formats: the half formats carry NaN through the
/// wire, int8 replaces it with the row zero-point (finite), and no
/// format ever turns a non-NaN into NaN.
#[test]
fn nan_policy_per_format() {
    let src = [f32::NAN, 1.0f32, 2.0, 3.0];
    let d = src.len();

    let mut f16w = vec![0u8; d * 2];
    codec::pack_f16(Backend::Scalar, &mut f16w, &src);
    let mut out = vec![0.0f32; d];
    codec::unpack_f16(Backend::Scalar, &mut out, &f16w, 2.0);
    assert!(out[0].is_nan(), "f16 must preserve NaN");
    assert!(out[1..].iter().all(|x| x.is_finite()));

    let mut bf16w = vec![0u8; d * 2];
    codec::pack_bf16(Backend::Scalar, &mut bf16w, &src);
    codec::unpack_bf16(Backend::Scalar, &mut out, &bf16w, 2.0);
    assert!(out[0].is_nan(), "bf16 must preserve NaN");
    assert!(out[1..].iter().all(|x| x.is_finite()));

    let mut i8w = vec![0u8; d + codec::INT8_HEADER_BYTES];
    codec::pack_int8(Backend::Scalar, &mut i8w, &src, d);
    codec::unpack_int8(Backend::Scalar, &mut out, &i8w, d, 2.0);
    assert!(out.iter().all(|x| x.is_finite()), "int8 drops NaN to zp");
    assert_eq!(out[0], 2.0, "NaN became zero-point (1.0) x scale (2.0)");
}
