//! Bitwise scalar/SIMD equivalence of every dispatched kernel.
//!
//! The SIMD backend's determinism contract (see `bns_tensor::simd`)
//! promises results *bitwise identical at every lane width*. These
//! tests enforce it with `f32::to_bits` comparisons — NaN-safe and
//! `-0.0`-strict — by running each dispatched kernel once per backend
//! this CPU supports and diffing against the scalar reference, on
//! inputs seeded with IEEE specials (NaN, ±0.0, ±∞, a subnormal).
//!
//! Matrix-level entry points (`matmul*`, `scatter_add_rows`) are driven
//! through [`simd::force`] instead of explicit `Backend` arguments, so
//! the per-thread override and its composition with the worker pool
//! (threads × lanes) are exercised too.

use bns_tensor::pool::{self, ThreadPool};
use bns_tensor::simd::{self, AdamHyper, Backend};
use bns_tensor::{Matrix, SeededRng};
use proptest::prelude::*;

/// Non-scalar backends this CPU can actually run (empty only on exotic
/// hosts; x86_64 always has at least SSE2, aarch64 always has NEON).
fn vector_backends() -> Vec<Backend> {
    Backend::ALL
        .into_iter()
        .filter(|bk| *bk != Backend::Scalar && bk.is_available())
        .collect()
}

/// NaN-safe, signed-zero-strict slice equality.
fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Random data with IEEE specials planted at seeded positions, so
/// every kernel sees NaN, both zero signs and subnormals somewhere in
/// its lanes *and* its scalar remainder.
///
/// Infinities are deliberately absent: `inf * 0.0` *generates* a NaN
/// (payload `0xFFC00000`) that differs bitwise from the injected
/// `f32::NAN` (`0x7FC00000`), and when two distinct-payload NaNs meet
/// in an add/mul, which payload survives is unspecified in Rust (LLVM
/// may commute the operands differently per backend). With all NaNs
/// sharing one payload, propagation is payload-invisible and bitwise
/// identity is well-defined — that is the determinism contract's NaN
/// caveat, documented in `bns_tensor::simd`.
fn special_data(rng: &mut SeededRng, len: usize) -> Vec<f32> {
    let mut v: Vec<f32> = (0..len).map(|_| rng.uniform_range(-2.0, 2.0)).collect();
    const SPECIALS: [f32; 6] = [f32::NAN, -0.0, 0.0, 1.0e-40, -1.0e-40, 1.0];
    for &s in SPECIALS
        .iter()
        .take(if len == 0 { 0 } else { SPECIALS.len() })
    {
        let at = rng.usize_below(len);
        v[at] = s;
    }
    v
}

fn special_matrix(rng: &mut SeededRng, rows: usize, cols: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    let data = special_data(rng, rows * cols);
    m.as_mut_slice().copy_from_slice(&data);
    m
}

/// Runs `f(backend, out)` on a fresh copy of `base` for the scalar
/// reference and every vector backend, asserting bitwise identity.
fn assert_lane_invariant(
    name: &str,
    base: &[f32],
    f: impl Fn(Backend, &mut [f32]),
) -> Result<(), TestCaseError> {
    let mut scalar = base.to_vec();
    f(Backend::Scalar, &mut scalar);
    for bk in vector_backends() {
        let mut out = base.to_vec();
        f(bk, &mut out);
        prop_assert!(
            bits_eq(&scalar, &out),
            "{name}: {} diverged from scalar at len {}",
            bk.name(),
            base.len()
        );
    }
    Ok(())
}

/// Runs `f` under every backend via [`simd::force`], asserting the
/// returned matrix is bitwise identical to the forced-scalar result.
fn assert_forced_invariant(name: &str, f: impl Fn() -> Matrix) -> Result<(), TestCaseError> {
    let scalar = {
        let _g = simd::force(Backend::Scalar);
        f()
    };
    for bk in vector_backends() {
        let _g = simd::force(bk);
        let got = f();
        prop_assert!(
            scalar.shape() == got.shape() && bits_eq(scalar.as_slice(), got.as_slice()),
            "{name}: forced {} diverged from forced scalar on shape {:?}",
            bk.name(),
            scalar.shape()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The elementwise tier: every slice kernel the dispatch macro
    /// exports, on lengths spanning empty, sub-lane and multi-vector.
    #[test]
    fn elementwise_kernels_bitwise_across_backends(
        len in 0usize..200, seed in 0u64..1_000_000
    ) {
        let mut rng = SeededRng::new(seed);
        let out0 = special_data(&mut rng, len);
        let src = special_data(&mut rng, len);
        let alpha = rng.uniform_range(-2.0, 2.0);
        let c1 = rng.uniform_range(-2.0, 2.0);

        assert_lane_invariant("add_assign", &out0, |bk, o| simd::add_assign(bk, o, &src))?;
        assert_lane_invariant("sub_assign", &out0, |bk, o| simd::sub_assign(bk, o, &src))?;
        assert_lane_invariant("hadamard_assign", &out0, |bk, o| {
            simd::hadamard_assign(bk, o, &src)
        })?;
        assert_lane_invariant("axpy", &out0, |bk, o| simd::axpy(bk, o, alpha, &src))?;
        assert_lane_invariant("scale", &out0, |bk, o| simd::scale(bk, o, alpha))?;
        assert_lane_invariant("scaled_copy", &out0, |bk, o| {
            simd::scaled_copy(bk, o, alpha, &src)
        })?;
        assert_lane_invariant("scale_axpy", &out0, |bk, o| {
            simd::scale_axpy(bk, o, c1, alpha, &src)
        })?;
    }

    /// Activation kernels: the strict-select forward pair and the
    /// mask-multiply backward pair (NaN upstream must propagate, NaN
    /// pre-activation must gate exactly like the scalar `>`).
    #[test]
    fn activation_kernels_bitwise_across_backends(
        len in 0usize..200, seed in 0u64..1_000_000
    ) {
        let mut rng = SeededRng::new(seed);
        let out0 = special_data(&mut rng, len);
        let pre = special_data(&mut rng, len);
        let slope = rng.uniform_range(0.01, 0.5);

        assert_lane_invariant("relu", &out0, simd::relu)?;
        assert_lane_invariant("leaky_relu", &out0, |bk, o| simd::leaky_relu(bk, o, slope))?;
        assert_lane_invariant("relu_backward", &out0, |bk, o| {
            simd::relu_backward(bk, o, &pre)
        })?;
        assert_lane_invariant("leaky_relu_backward", &out0, |bk, o| {
            simd::leaky_relu_backward(bk, o, &pre, slope)
        })?;
    }

    /// Aggregation kernels: gather-sum and scatter over random index
    /// lists (duplicates allowed — accumulation order must hold).
    #[test]
    fn aggregation_kernels_bitwise_across_backends(
        n in 1usize..40, d in 1usize..24, deg in 0usize..24, seed in 0u64..1_000_000
    ) {
        let mut rng = SeededRng::new(seed);
        let src = special_data(&mut rng, n * d);
        let acc0 = special_data(&mut rng, d);
        let row = special_data(&mut rng, d);
        let dst0 = special_data(&mut rng, n * d);
        let scales = special_data(&mut rng, n);
        let idx: Vec<u32> = (0..deg).map(|_| rng.usize_below(n) as u32).collect();

        assert_lane_invariant("sum_rows", &acc0, |bk, a| {
            simd::sum_rows(bk, a, &src, d, &idx, 0)
        })?;
        assert_lane_invariant("sum_rows_scaled", &acc0, |bk, a| {
            simd::sum_rows_scaled(bk, a, &src, d, &idx, 0, &scales)
        })?;
        assert_lane_invariant("scatter_rows", &dst0, |bk, dst| {
            simd::scatter_rows(bk, dst, d, &idx, &row)
        })?;
        assert_lane_invariant("scatter_rows_scaled", &dst0, |bk, dst| {
            simd::scatter_rows_scaled(bk, dst, d, &idx, &row, &scales)
        })?;
    }

    /// Adam: p, m and v must all come out bitwise identical (div and
    /// sqrt are correctly rounded on every backend).
    #[test]
    fn adam_update_bitwise_across_backends(
        len in 0usize..200, seed in 0u64..1_000_000
    ) {
        let mut rng = SeededRng::new(seed);
        let p0 = special_data(&mut rng, len);
        let g = special_data(&mut rng, len);
        let m0: Vec<f32> = (0..len).map(|_| rng.uniform_range(-0.5, 0.5)).collect();
        let v0: Vec<f32> = (0..len).map(|_| rng.uniform_range(0.0, 0.5)).collect();
        let h = AdamHyper {
            lr: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 1e-4,
            b1t: 1.0 - 0.9f32.powi(3),
            b2t: 1.0 - 0.999f32.powi(3),
        };

        let run = |bk: Backend| {
            let (mut p, mut m, mut v) = (p0.clone(), m0.clone(), v0.clone());
            simd::adam_update(bk, &mut p, &g, &mut m, &mut v, &h);
            (p, m, v)
        };
        let (ps, ms, vs) = run(Backend::Scalar);
        for bk in vector_backends() {
            let (p, m, v) = run(bk);
            prop_assert!(bits_eq(&ps, &p), "adam p: {} diverged", bk.name());
            prop_assert!(bits_eq(&ms, &m), "adam m: {} diverged", bk.name());
            prop_assert!(bits_eq(&vs, &v), "adam v: {} diverged", bk.name());
        }
    }

    /// The three matmul variants through the public `Matrix` API under
    /// a forced backend — covers the tiled NN kernel, the TN kernel and
    /// the NT transpose-then-NN route.
    #[test]
    fn matmul_variants_bitwise_across_backends(
        m in 1usize..48, k in 1usize..32, n in 1usize..32, seed in 0u64..1_000_000
    ) {
        let mut rng = SeededRng::new(seed);
        let a = special_matrix(&mut rng, m, k);
        let b = special_matrix(&mut rng, k, n);
        let bt = special_matrix(&mut rng, n, k);
        let at = special_matrix(&mut rng, k, m);

        assert_forced_invariant("matmul", || a.matmul(&b))?;
        assert_forced_invariant("matmul_tn", || at.matmul_tn(&b))?;
        assert_forced_invariant("matmul_nt", || a.matmul_nt(&bt))?;
    }

    /// Row-level Matrix helpers that dispatch the elementwise kernels.
    #[test]
    fn matrix_helpers_bitwise_across_backends(
        rows in 1usize..32, cols in 1usize..24, seed in 0u64..1_000_000
    ) {
        let mut rng = SeededRng::new(seed);
        let base = special_matrix(&mut rng, rows, cols);
        let other = special_matrix(&mut rng, rows, cols);
        let bias = special_data(&mut rng, cols);
        let n_src = rng.usize_below(rows) + 1;
        let src = special_matrix(&mut rng, n_src, cols);
        let idx: Vec<usize> = (0..n_src).map(|_| rng.usize_below(rows)).collect();

        assert_forced_invariant("Matrix::add_assign", || {
            let mut x = base.clone();
            x.add_assign(&other);
            x
        })?;
        assert_forced_invariant("Matrix::axpy", || {
            let mut x = base.clone();
            x.axpy(0.37, &other);
            x
        })?;
        assert_forced_invariant("Matrix::hadamard", || base.hadamard(&other))?;
        assert_forced_invariant("Matrix::add_row_broadcast", || {
            let mut x = base.clone();
            x.add_row_broadcast(&bias);
            x
        })?;
        assert_forced_invariant("Matrix::scatter_add_rows", || {
            let mut x = base.clone();
            x.scatter_add_rows(&idx, &src);
            x
        })?;
    }

    /// Threads × lanes: a pooled, vectorized matmul must equal the
    /// serial scalar product bit for bit. Rows are large enough to
    /// clear the fan-out threshold at 4 threads.
    #[test]
    fn pool_and_lanes_compose_bitwise(seed in 0u64..1_000_000) {
        let mut rng = SeededRng::new(seed);
        let a = Matrix::random_normal(192, 40, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(40, 24, 0.0, 1.0, &mut rng);
        let serial_scalar = {
            let _g = simd::force(Backend::Scalar);
            a.matmul(&b)
        };
        for bk in vector_backends() {
            let _g = simd::force(bk);
            for threads in [1usize, 2, 4] {
                let _p = pool::install(ThreadPool::new(threads));
                let got = a.matmul(&b);
                prop_assert!(
                    bits_eq(serial_scalar.as_slice(), got.as_slice()),
                    "{} x {} threads diverged from serial scalar",
                    bk.name(),
                    threads
                );
            }
        }
    }
}

/// Forced dispatches land on the forced backend's counter — one count
/// per top-level kernel entry, none for the per-row inner calls.
#[test]
fn dispatch_stats_attribute_forced_kernels() {
    let mut rng = SeededRng::new(9);
    let a = Matrix::random_normal(8, 6, 0.0, 1.0, &mut rng);
    let b = Matrix::random_normal(6, 5, 0.0, 1.0, &mut rng);

    let _ = simd::take_thread_stats();
    for bk in Backend::ALL.into_iter().filter(|bk| bk.is_available()) {
        let before = simd::thread_stats().get(bk);
        let _g = simd::force(bk);
        let _ = a.matmul(&b);
        let mut x = a.clone();
        x.scale(2.0);
        assert_eq!(
            simd::thread_stats().get(bk) - before,
            2,
            "expected exactly two top-level dispatches on {}",
            bk.name()
        );
    }
    let drained = simd::take_thread_stats();
    assert!(
        drained.total() >= 2,
        "drain returned the accumulated counts"
    );
    assert_eq!(simd::thread_stats().total(), 0, "drain must reset");
}

/// `detect` is the best available backend and is what `auto`, unknown
/// and unavailable requests resolve to; explicit available names win.
#[test]
fn resolve_honors_explicit_available_backends() {
    let best = simd::detect();
    assert!(best.is_available());
    assert_eq!(simd::resolve(None), best);
    assert_eq!(simd::resolve(Some("auto")), best);
    assert_eq!(simd::resolve(Some("definitely-not-an-isa")), best);
    assert_eq!(simd::resolve(Some("scalar")), Backend::Scalar);
    for bk in vector_backends() {
        assert_eq!(simd::resolve(Some(bk.name())), bk);
        assert_eq!(simd::resolve(Some(&bk.name().to_uppercase())), bk);
    }
}
