//! Miri-sized exercise of every raw-pointer kernel in bns-tensor: the
//! pool's `JobBatch` dispatch and the three parallel matmul variants.
//!
//! Run under Miri with:
//!
//! ```text
//! cargo +nightly miri test -p bns-tensor --test miri_kernels
//! ```
//!
//! Under `cfg(miri)` the kernels' serial/parallel thresholds shrink
//! (`PAR_MIN_WORK`, see src/matrix.rs), so the small inputs here still
//! fan out across a real multi-thread pool and Miri checks the
//! `from_raw_parts_mut` aliasing claims on the genuinely concurrent
//! path. The same tests run natively (larger sizes) as ordinary
//! regression tests; each one asserts via `DispatchStats` that the
//! parallel path actually ran — a silent serial fallback would make
//! the whole exercise vacuous.

use bns_tensor::pool::{self, ThreadPool};
use bns_tensor::simd::{self, Backend};
use bns_tensor::{Matrix, SeededRng};
use std::sync::atomic::{AtomicUsize, Ordering};

#[cfg(miri)]
const M: usize = 10;
#[cfg(miri)]
const K: usize = 6;
#[cfg(miri)]
const N: usize = 5;

#[cfg(not(miri))]
const M: usize = 200;
#[cfg(not(miri))]
const K: usize = 48;
#[cfg(not(miri))]
const N: usize = 40;

/// Naive reference product with the same ascending-`k` accumulation
/// order as the kernels, so equality can be exact.
fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a.row(i)[k];
            for j in 0..b.cols() {
                out.row_mut(i)[j] += av * b.row(k)[j];
            }
        }
    }
    out
}

fn transpose(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.cols(), m.rows());
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            out.row_mut(j)[i] = m.row(i)[j];
        }
    }
    out
}

#[test]
fn pool_runs_every_job_exactly_once() {
    let pool = ThreadPool::new(3);
    let n_jobs = if cfg!(miri) { 8 } else { 64 };
    let hits: Vec<AtomicUsize> = (0..n_jobs).map(|_| AtomicUsize::new(0)).collect();
    pool.run(n_jobs, &|i| {
        hits[i].fetch_add(1, Ordering::SeqCst);
    });
    for (i, h) in hits.iter().enumerate() {
        assert_eq!(h.load(Ordering::SeqCst), 1, "job {i}");
    }
    assert!(pool.stats().parallel_dispatches > 0);
}

#[test]
fn parallel_row_blocks_covers_rows_disjointly() {
    let _guard = pool::install(ThreadPool::new(3));
    let rows = if cfg!(miri) { 13 } else { 211 };
    let seen: Vec<AtomicUsize> = (0..rows).map(|_| AtomicUsize::new(0)).collect();
    pool::parallel_row_blocks(rows, 1, &|r0, r1| {
        for s in &seen[r0..r1] {
            s.fetch_add(1, Ordering::SeqCst);
        }
    });
    for (r, s) in seen.iter().enumerate() {
        assert_eq!(s.load(Ordering::SeqCst), 1, "row {r}");
    }
}

#[test]
fn matmul_variants_parallel_match_serial_bitwise() {
    let mut rng = SeededRng::new(7);
    let a = Matrix::random_normal(M, K, 0.0, 1.0, &mut rng);
    let b = Matrix::random_normal(K, N, 0.0, 1.0, &mut rng);

    // Serial results first (no pool installed => inline fallback).
    let nn_serial = a.matmul(&b);
    let tn_serial = transpose(&a).matmul_tn(&b);
    let nt_serial = a.matmul_nt(&transpose(&b));

    // Same products through a multi-thread pool.
    let pool = ThreadPool::new(3);
    let guard = pool::install(pool.clone());
    let nn_par = a.matmul(&b);
    let tn_par = transpose(&a).matmul_tn(&b);
    let nt_par = a.matmul_nt(&transpose(&b));
    assert!(
        pool.stats().parallel_dispatches >= 3,
        "matmul sizes did not reach the parallel path: {:?}",
        pool.stats()
    );
    drop(guard);

    // The determinism contract: identical bits, any thread count.
    assert_eq!(nn_serial, nn_par, "matmul");
    assert_eq!(tn_serial, tn_par, "matmul_tn");
    assert_eq!(nt_serial, nt_par, "matmul_nt");

    // And the values are the actual product.
    let reference = reference_matmul(&a, &b);
    assert_eq!(nn_serial, reference, "matmul accumulation order");
    for i in 0..M {
        for j in 0..N {
            let r = reference.row(i)[j];
            assert!((tn_serial.row(i)[j] - r).abs() <= 1e-4 * r.abs().max(1.0));
            assert!((nt_serial.row(i)[j] - r).abs() <= 1e-4 * r.abs().max(1.0));
        }
    }
}

/// The SIMD dispatch layer under Miri: SSE2 (statically guaranteed on
/// x86_64, so the intrinsic path is exercisable even under the
/// interpreter) and any other available backend must match the forced-
/// scalar result bitwise, and every forced dispatch must land on the
/// forced backend's `DispatchStats` counter — including through a
/// multi-thread pool, where the backend is resolved on the calling
/// thread and shipped into the workers.
#[test]
fn simd_backends_dispatch_and_match_scalar_bitwise() {
    let mut rng = SeededRng::new(17);
    let a = Matrix::random_normal(M, K, 0.0, 1.0, &mut rng);
    let b = Matrix::random_normal(K, N, 0.0, 1.0, &mut rng);

    let _ = simd::take_thread_stats();
    let scalar = {
        let _g = simd::force(Backend::Scalar);
        a.matmul(&b)
    };
    assert_eq!(
        simd::thread_stats().get(Backend::Scalar),
        1,
        "one forced-scalar matmul = one scalar dispatch"
    );

    let vector: Vec<Backend> = Backend::ALL
        .into_iter()
        .filter(|bk| *bk != Backend::Scalar && bk.is_available())
        .collect();
    assert!(
        cfg!(not(target_arch = "x86_64")) || vector.contains(&Backend::Sse2),
        "SSE2 is baseline on x86_64, so Miri must be able to force it"
    );
    for bk in vector {
        let before = simd::thread_stats().get(bk);
        let _g = simd::force(bk);
        let serial = a.matmul(&b);
        let pooled = {
            let _p = pool::install(ThreadPool::new(3));
            a.matmul(&b)
        };
        assert_eq!(serial, scalar, "{} serial vs scalar", bk.name());
        assert_eq!(pooled, scalar, "{} pooled vs scalar", bk.name());
        assert_eq!(
            simd::thread_stats().get(bk) - before,
            2,
            "both {} matmuls must count on the forced backend",
            bk.name()
        );
    }

    let drained = simd::take_thread_stats();
    assert!(drained.total() >= 1, "drain returns accumulated counts");
    assert_eq!(simd::thread_stats().total(), 0, "drain resets the stats");
}
