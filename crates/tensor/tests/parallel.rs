//! Bitwise serial/parallel equivalence of the matmul kernels.
//!
//! The pool's determinism contract (see `bns_tensor::pool`) promises
//! that kernel outputs are *bitwise identical* at any thread count.
//! These tests enforce that with `f32::to_bits` comparisons — NaN-safe
//! and `-0.0`-strict, unlike `==` — across random shapes, at thread
//! counts 1, 2 and 4, against the no-pool serial path.

use bns_tensor::pool::{self, ThreadPool};
use bns_tensor::{Matrix, SeededRng};
use proptest::prelude::*;

/// NaN-safe, signed-zero-strict equality.
fn bitwise_eq(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Runs `f` serially (no pool) and under pools of 1, 2 and 4 threads,
/// asserting every result is bitwise identical to the serial one.
fn assert_thread_invariant(f: impl Fn() -> Matrix) -> Result<(), TestCaseError> {
    let serial = f();
    for threads in [1usize, 2, 4] {
        let _guard = pool::install(ThreadPool::new(threads));
        let parallel = f();
        prop_assert!(
            bitwise_eq(&serial, &parallel),
            "{} threads diverged from serial on shape {:?}",
            threads,
            serial.shape()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// matmul: shapes span both the inline path (small) and real
    /// fan-out (large rows clear the per-block work threshold).
    #[test]
    fn matmul_bitwise_any_thread_count(
        m in 1usize..160, k in 1usize..64, n in 1usize..48, seed in 0u64..1_000_000
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Matrix::random_normal(m, k, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(k, n, 0.0, 1.0, &mut rng);
        assert_thread_invariant(|| a.matmul(&b))?;
    }

    /// matmul_tn (A^T B): parallel over A's columns.
    #[test]
    fn matmul_tn_bitwise_any_thread_count(
        m in 1usize..96, k in 1usize..96, n in 1usize..48, seed in 0u64..1_000_000
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Matrix::random_normal(m, k, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(m, n, 0.0, 1.0, &mut rng);
        assert_thread_invariant(|| a.matmul_tn(&b))?;
    }

    /// matmul_nt (A B^T): parallel over A's rows.
    #[test]
    fn matmul_nt_bitwise_any_thread_count(
        m in 1usize..160, k in 1usize..64, n in 1usize..48, seed in 0u64..1_000_000
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Matrix::random_normal(m, k, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(n, k, 0.0, 1.0, &mut rng);
        assert_thread_invariant(|| a.matmul_nt(&b))?;
    }
}

#[test]
fn nan_propagates_under_parallel_dispatch() {
    // The serial NaN regression lives in the unit tests; this pins the
    // same IEEE behaviour on the fanned-out path (rows large enough to
    // clear the work threshold at 4 threads).
    let _guard = pool::install(ThreadPool::new(4));
    let zero = Matrix::zeros(256, 64);
    let mut bad = Matrix::zeros(64, 64);
    bad[(0, 0)] = f32::NAN;
    let z = zero.matmul(&bad);
    assert!(
        z[(0, 0)].is_nan(),
        "0 * NaN must be NaN on the parallel path"
    );
    assert!(z[(255, 0)].is_nan(), "last block must also propagate NaN");
}

#[test]
fn large_shape_dispatches_in_parallel() {
    // Sanity-check the proptests exercise real fan-out, not just the
    // serial fallback: a 256x64 * 64x64 product must dispatch.
    let pool = ThreadPool::new(4);
    let _guard = pool::install(std::sync::Arc::clone(&pool));
    let mut rng = SeededRng::new(7);
    let a = Matrix::random_normal(256, 64, 0.0, 1.0, &mut rng);
    let b = Matrix::random_normal(64, 64, 0.0, 1.0, &mut rng);
    let _ = a.matmul(&b);
    assert!(
        pool.stats().parallel_dispatches >= 1,
        "expected at least one parallel dispatch, stats {:?}",
        pool.stats()
    );
}
