//! Property-based tests for the matrix kernels.

use bns_tensor::{Matrix, SeededRng};
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    /// (A B) C == A (B C) within f32 tolerance.
    #[test]
    fn matmul_associative(a in arb_matrix(3, 4), b in arb_matrix(4, 2), c in arb_matrix(2, 5)) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-2), "diff {}", lhs.max_abs_diff(&rhs));
    }

    /// (A B)^T == B^T A^T.
    #[test]
    fn transpose_of_product(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    /// matmul_tn and matmul_nt agree with explicit transposes.
    #[test]
    fn transpose_kernels_consistent(a in arb_matrix(5, 3), b in arb_matrix(5, 2)) {
        prop_assert!(a.matmul_tn(&b).approx_eq(&a.transpose().matmul(&b), 1e-3));
        let c = Matrix::from_vec(2, 3, b.as_slice()[..6].to_vec());
        prop_assert!(a.matmul_nt(&c).approx_eq(&a.matmul(&c.transpose()), 1e-3));
    }

    /// Frobenius norm is absolutely homogeneous: ||sA|| == |s|·||A||.
    #[test]
    fn norm_homogeneous(a in arb_matrix(4, 4), s in -5.0f32..5.0) {
        let scaled = &a * s;
        let lhs = scaled.frobenius_norm();
        let rhs = s.abs() * a.frobenius_norm();
        prop_assert!((lhs - rhs).abs() < 1e-2 * rhs.max(1.0));
    }

    /// vstack/slice_rows round-trips.
    #[test]
    fn vstack_slice_roundtrip(a in arb_matrix(3, 2), b in arb_matrix(2, 2)) {
        let c = a.vstack(&b);
        prop_assert_eq!(c.slice_rows(0, 3), a);
        prop_assert_eq!(c.slice_rows(3, 5), b);
    }

    /// gather_rows(permutation) is itself a permutation of rows.
    #[test]
    fn gather_permutation(a in arb_matrix(6, 3), seed in 0u64..100) {
        let mut rng = SeededRng::new(seed);
        let perm = rng.permutation(6);
        let g = a.gather_rows(&perm);
        for (i, &p) in perm.iter().enumerate() {
            prop_assert_eq!(g.row(i), a.row(p));
        }
    }

    /// scatter_add is the adjoint of gather: <gather(x), y> == <x, scatter(y)>.
    #[test]
    fn gather_scatter_adjoint(a in arb_matrix(6, 2), b in arb_matrix(3, 2), seed in 0u64..100) {
        let mut rng = SeededRng::new(seed);
        let idx = rng.sample_distinct(6, 3);
        let ga = a.gather_rows(&idx);
        let mut sb = Matrix::zeros(6, 2);
        sb.scatter_add_rows(&idx, &b);
        let lhs: f32 = ga.hadamard(&b).sum();
        let rhs: f32 = a.hadamard(&sb).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0));
    }

    /// axpy matches the operator formulation.
    #[test]
    fn axpy_matches_ops(a in arb_matrix(3, 3), b in arb_matrix(3, 3), s in -3.0f32..3.0) {
        let mut c = a.clone();
        c.axpy(s, &b);
        let expect = &a + &(&b * s);
        prop_assert!(c.approx_eq(&expect, 1e-4));
    }
}
