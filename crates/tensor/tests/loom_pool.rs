//! Loom model checking of the pool's `JobBatch` dispatch/completion
//! latch (`src/pool.rs`).
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p bns-tensor --test loom_pool --release
//! ```
//!
//! Under `--cfg loom` the pool's protocol state (claim counter,
//! completion latch, dispatch channel, worker threads) resolves to the
//! vendored loom shims, and each test below explores **every**
//! interleaving of dispatcher and worker(s) — the proptests in
//! `tests/parallel.rs` can only sample arrival orders; these prove the
//! latch for the small configurations exhaustively.
//!
//! What the models verify, in every schedule:
//! * each job index in `0..n_jobs` runs exactly once (no lost or
//!   double-claimed jobs),
//! * `run` does not return before every claimed job has completed (the
//!   closure-borrow safety argument for the `f_static` transmute),
//! * pool drop closes the channel and joins the worker (no deadlock,
//!   no worker touching a dead batch).

#![cfg(loom)]

use bns_tensor::pool::ThreadPool;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `n_jobs` through a fresh 2-slot pool (1 worker + dispatcher)
/// inside one loom execution, asserting exactly-once semantics and a
/// completed latch before `run` returns.
fn latch_model(n_jobs: usize) {
    loom::model(move || {
        let pool = ThreadPool::new(2);
        // Real std atomics on purpose: the job body is not part of the
        // protocol under test and must not add schedule points.
        let hits: Vec<AtomicUsize> = (0..n_jobs).map(|_| AtomicUsize::new(0)).collect();
        pool.run(n_jobs, &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        // `run` returned: the latch must have seen every job.
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "job {i} ran != 1 times");
        }
        // Drop closes the dispatch channel and joins the worker; a
        // schedule where the worker never exits would deadlock here
        // and the explorer would report it.
        drop(pool);
    });
    eprintln!(
        "latch_model({n_jobs}): {} schedules explored",
        loom::last_iteration_count()
    );
}

#[test]
fn latch_one_worker_two_jobs_exhaustive() {
    latch_model(2);
}

#[test]
fn latch_oversubscribed_three_jobs_exhaustive() {
    // More jobs than execution slots: the claim loop must drain the
    // queue without losing a job in any schedule.
    latch_model(3);
}

#[test]
fn idle_worker_pool_drops_cleanly() {
    // A dispatch that never fans out (n_jobs = 1 runs inline): the
    // worker must still be joinable in every schedule even though it
    // never received a batch.
    loom::model(|| {
        let pool = ThreadPool::new(2);
        let hit = AtomicUsize::new(0);
        pool.run(1, &|_| {
            hit.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hit.load(Ordering::SeqCst), 1);
        drop(pool);
    });
}
