//! The dataset container consumed by trainers.

use bns_graph::CsrGraph;
use bns_tensor::Matrix;

/// Node labels: single-label (Reddit / ogbn-products style, trained with
/// softmax cross-entropy) or multi-label (Yelp style, trained with BCE).
#[derive(Debug, Clone, PartialEq)]
pub enum Labels {
    /// One class id per node.
    Single(Vec<usize>),
    /// An `n x num_classes` 0/1 matrix.
    Multi(Matrix),
}

impl Labels {
    /// Whether this is the multi-label variant.
    pub fn is_multi(&self) -> bool {
        matches!(self, Labels::Multi(_))
    }
}

/// A complete node-classification dataset: graph, features, labels and
/// train/val/test splits.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (e.g. `"reddit-sim"`).
    pub name: String,
    /// The graph.
    pub graph: CsrGraph,
    /// Node features, `n x d`.
    pub features: Matrix,
    /// Node labels.
    pub labels: Labels,
    /// Number of classes (columns for multi-label).
    pub num_classes: usize,
    /// Training node ids (sorted).
    pub train: Vec<usize>,
    /// Validation node ids (sorted).
    pub val: Vec<usize>,
    /// Test node ids (sorted).
    pub test: Vec<usize>,
}

impl Dataset {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Feature dimension.
    pub fn feat_dim(&self) -> usize {
        self.features.cols()
    }

    /// Mean-aggregator row scales: `1/deg(v)` (1 for isolated nodes).
    /// These are *full-graph* degrees, which is what makes BNS-GCN's
    /// `H/p` rescaling an unbiased estimator of the full-graph mean.
    pub fn mean_scale(&self) -> Vec<f32> {
        (0..self.num_nodes())
            .map(|v| 1.0 / self.graph.degree(v).max(1) as f32)
            .collect()
    }

    /// GCN symmetric-normalization scales: `1/sqrt(deg(v) + 1)`.
    pub fn gcn_scale(&self) -> Vec<f32> {
        (0..self.num_nodes())
            .map(|v| 1.0 / ((self.graph.degree(v) + 1) as f32).sqrt())
            .collect()
    }

    /// Checks split disjointness and coverage invariants.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_nodes();
        if self.features.rows() != n {
            return Err("feature rows != nodes".into());
        }
        match &self.labels {
            Labels::Single(l) => {
                if l.len() != n {
                    return Err("label count != nodes".into());
                }
                if l.iter().any(|&c| c >= self.num_classes) {
                    return Err("label out of range".into());
                }
            }
            Labels::Multi(m) => {
                if m.rows() != n || m.cols() != self.num_classes {
                    return Err("label matrix shape mismatch".into());
                }
            }
        }
        let mut seen = vec![false; n];
        for split in [&self.train, &self.val, &self.test] {
            for &v in split {
                if v >= n {
                    return Err(format!("split node {v} out of bounds"));
                }
                if seen[v] {
                    return Err(format!("node {v} appears in two splits"));
                }
                seen[v] = true;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_graph::generators::ring;

    fn tiny() -> Dataset {
        Dataset {
            name: "tiny".into(),
            graph: ring(4),
            features: Matrix::zeros(4, 2),
            labels: Labels::Single(vec![0, 1, 0, 1]),
            num_classes: 2,
            train: vec![0, 1],
            val: vec![2],
            test: vec![3],
        }
    }

    #[test]
    fn validate_accepts_consistent_dataset() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn validate_rejects_overlapping_splits() {
        let mut d = tiny();
        d.val = vec![0];
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_labels() {
        let mut d = tiny();
        d.labels = Labels::Single(vec![0, 1, 0, 5]);
        assert!(d.validate().is_err());
    }

    #[test]
    fn scales_are_positive() {
        let d = tiny();
        assert!(d.mean_scale().iter().all(|&s| s > 0.0));
        assert!(d.gcn_scale().iter().all(|&s| s > 0.0 && s <= 1.0));
        assert!((d.mean_scale()[0] - 0.5).abs() < 1e-6); // ring degree 2
    }
}
