//! Synthetic dataset specification and generation.

use crate::{Dataset, Labels};
use bns_graph::generators::{dc_sbm, power_law_degrees, DcSbmParams};
use bns_tensor::{Matrix, SeededRng};

/// How train/val/test nodes are chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SplitKind {
    /// Uniform random split (Reddit / Yelp style).
    Random,
    /// Highest-degree nodes train, next slice validates, the long tail
    /// tests — mimicking ogbn-products' sales-rank split and its
    /// train/test distribution shift (the cause of the overfitting the
    /// paper shows in Fig. 7).
    DegreeRank,
}

/// Parameters of a synthetic dataset. Build one with a preset
/// (e.g. [`SyntheticSpec::reddit_sim`]) and customize with the `with_*`
/// methods.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Dataset name.
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of classes (= planted communities).
    pub classes: usize,
    /// Feature dimension.
    pub feat_dim: usize,
    /// Power-law degree bounds and exponent.
    pub d_min: f64,
    /// Maximum expected degree.
    pub d_max: f64,
    /// Power-law exponent (`> 1`).
    pub gamma: f64,
    /// Probability an edge stays within its community.
    pub p_within: f64,
    /// Feature noise standard deviation (prototypes are unit-scale).
    pub noise: f32,
    /// Fraction of nodes whose *feature* is drawn from a wrong class
    /// prototype — forces the model to rely on neighbors, not features
    /// alone.
    pub feature_corruption: f64,
    /// Split fractions `(train, val, test)`; must sum to ≤ 1.
    pub splits: (f64, f64, f64),
    /// Split selection scheme.
    pub split_kind: SplitKind,
    /// `Some(extra_rate)` makes the dataset multi-label: each node keeps
    /// its primary class and gains each other class with this
    /// probability (Yelp style).
    pub multi_label_extra: Option<f64>,
    /// Label-noise rate: single-label nodes have their *observed* label
    /// replaced by a uniform random class with this probability;
    /// multi-label datasets flip each label bit with this probability.
    /// This models the irreducible error of the real datasets and sets
    /// the achievable score band (Reddit ≈ 97%, ogbn-products ≈ 79%,
    /// Yelp micro-F1 ≈ 0.65 in the paper's Table 4).
    pub label_noise: f64,
}

impl SyntheticSpec {
    /// Reddit stand-in: dense power-law community graph, 66/10/24 split
    /// (paper Table 3). Scaled from 233k nodes / 114M edges to 24k
    /// nodes / ~0.4M edges.
    pub fn reddit_sim() -> Self {
        Self {
            name: "reddit-sim".into(),
            nodes: 24_000,
            classes: 16,
            feat_dim: 64,
            d_min: 6.0,
            d_max: 600.0,
            gamma: 2.0,
            p_within: 0.85,
            noise: 1.2,
            feature_corruption: 0.10,
            splits: (0.66, 0.10, 0.24),
            split_kind: SplitKind::Random,
            multi_label_extra: None,
            label_noise: 0.04,
        }
    }

    /// ogbn-products stand-in: sparser graph, tiny degree-ranked train
    /// split (8/2/90, paper Table 3) — the split regime under which the
    /// paper observes rapid overfitting (Fig. 7). Scaled from 2.4M
    /// nodes / 62M edges to 36k nodes / ~0.35M edges.
    pub fn products_sim() -> Self {
        Self {
            name: "products-sim".into(),
            nodes: 36_000,
            classes: 24,
            feat_dim: 64,
            d_min: 5.0,
            d_max: 500.0,
            gamma: 2.1,
            p_within: 0.80,
            noise: 1.6,
            feature_corruption: 0.15,
            splits: (0.08, 0.02, 0.90),
            split_kind: SplitKind::DegreeRank,
            multi_label_extra: None,
            label_noise: 0.20,
        }
    }

    /// Yelp stand-in: multi-label, 75/10/15 split (paper Table 3),
    /// micro-F1 scoring. Scaled from 716k nodes / 7M edges to 24k
    /// nodes / ~0.15M edges.
    pub fn yelp_sim() -> Self {
        Self {
            name: "yelp-sim".into(),
            nodes: 24_000,
            classes: 24,
            feat_dim: 64,
            d_min: 4.0,
            d_max: 300.0,
            gamma: 2.2,
            p_within: 0.80,
            noise: 1.0,
            feature_corruption: 0.10,
            splits: (0.75, 0.10, 0.15),
            split_kind: SplitKind::Random,
            multi_label_extra: Some(0.08),
            label_noise: 0.08,
        }
    }

    /// ogbn-papers100M stand-in, used for the 192-partition topology and
    /// cost-model studies (paper Fig. 3, Table 6, Fig. 8). Scaled from
    /// 111M nodes to 120k; only ~1.5% of nodes are labeled, like the
    /// original.
    pub fn papers100m_sim() -> Self {
        Self {
            name: "papers100m-sim".into(),
            nodes: 120_000,
            classes: 32,
            feat_dim: 64,
            d_min: 4.0,
            d_max: 800.0,
            gamma: 1.9,
            p_within: 0.75,
            noise: 1.2,
            feature_corruption: 0.10,
            splits: (0.010, 0.003, 0.002),
            split_kind: SplitKind::Random,
            multi_label_extra: None,
            label_noise: 0.30,
        }
    }

    /// Overrides the node count (degree bounds are kept; edges scale
    /// proportionally).
    pub fn with_nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    /// Overrides the feature dimension.
    pub fn with_feat_dim(mut self, d: usize) -> Self {
        self.feat_dim = d;
        self
    }

    /// Overrides the number of classes.
    pub fn with_classes(mut self, c: usize) -> Self {
        self.classes = c;
        self
    }

    /// Generates the dataset. The same `(spec, seed)` pair always
    /// produces the identical dataset.
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent (zero nodes/classes, splits
    /// summing above 1, or more classes than nodes).
    pub fn generate(&self, seed: u64) -> Dataset {
        assert!(self.nodes > 0 && self.classes > 0, "empty spec");
        assert!(self.classes <= self.nodes, "more classes than nodes");
        let (ft, fv, fs) = self.splits;
        assert!(
            ft >= 0.0 && fv >= 0.0 && fs >= 0.0 && ft + fv + fs <= 1.0 + 1e-9,
            "invalid split fractions"
        );
        let mut rng = SeededRng::new(seed);
        let n = self.nodes;

        // Planted communities: balanced random assignment.
        let mut classes_of: Vec<usize> = (0..n).map(|v| v % self.classes).collect();
        rng.shuffle(&mut classes_of);

        // Graph topology.
        let degrees = power_law_degrees(n, self.d_min, self.d_max, self.gamma, &mut rng);
        let graph = dc_sbm(
            &DcSbmParams {
                block_of: classes_of.clone(),
                expected_degrees: degrees,
                p_within: self.p_within,
            },
            &mut rng,
        );

        // Class prototypes and features.
        let protos = Matrix::random_normal(self.classes, self.feat_dim, 0.0, 1.0, &mut rng);
        let labels_multi = self.multi_label_extra.map(|extra| {
            let mut y = Matrix::zeros(n, self.classes);
            for v in 0..n {
                y[(v, classes_of[v])] = 1.0;
                for c in 0..self.classes {
                    if c != classes_of[v] && rng.bernoulli(extra) {
                        y[(v, c)] = 1.0;
                    }
                }
            }
            y
        });
        let mut features = Matrix::zeros(n, self.feat_dim);
        for v in 0..n {
            // Occasionally corrupt the feature's class so plain MLPs
            // can't solve the task without neighbor information.
            let feat_class = if rng.bernoulli(self.feature_corruption) {
                rng.usize_below(self.classes)
            } else {
                classes_of[v]
            };
            let row = features.row_mut(v);
            match &labels_multi {
                None => {
                    let p = protos.row(feat_class);
                    for (o, &x) in row.iter_mut().zip(p) {
                        *o = x + self.noise * 0.0; // noise added below
                    }
                }
                Some(y) => {
                    // Multi-label: mean of the prototypes of all held
                    // labels (using the possibly-corrupted primary).
                    let mut count = 0.0f32;
                    for c in 0..self.classes {
                        let held = if c == classes_of[v] {
                            true
                        } else {
                            y[(v, c)] > 0.5
                        };
                        if held {
                            let c_eff = if c == classes_of[v] { feat_class } else { c };
                            let p = protos.row(c_eff);
                            for (o, &x) in row.iter_mut().zip(p) {
                                *o += x;
                            }
                            count += 1.0;
                        }
                    }
                    for o in row.iter_mut() {
                        *o /= count.max(1.0);
                    }
                }
            }
        }
        // Additive noise.
        for v in 0..n {
            for x in features.row_mut(v) {
                *x += rng.normal(0.0, self.noise);
            }
        }

        // Observed labels: inject label noise (after features, which
        // always follow the true planted communities).
        let labels_multi = labels_multi.map(|mut y| {
            if self.label_noise > 0.0 {
                for v in 0..n {
                    for c in 0..self.classes {
                        if rng.bernoulli(self.label_noise) {
                            y[(v, c)] = 1.0 - y[(v, c)];
                        }
                    }
                }
            }
            y
        });
        let mut observed_classes = classes_of.clone();
        if labels_multi.is_none() && self.label_noise > 0.0 {
            for label in observed_classes.iter_mut() {
                if rng.bernoulli(self.label_noise) {
                    *label = rng.usize_below(self.classes);
                }
            }
        }

        // Splits.
        let order: Vec<usize> = match self.split_kind {
            SplitKind::Random => rng.permutation(n),
            SplitKind::DegreeRank => {
                let mut idx: Vec<usize> = (0..n).collect();
                // Descending degree; ties broken by id for determinism.
                idx.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
                idx
            }
        };
        let n_train = (ft * n as f64).round() as usize;
        let n_val = (fv * n as f64).round() as usize;
        let n_test = (fs * n as f64).round() as usize;
        let mut train: Vec<usize> = order[..n_train].to_vec();
        let mut val: Vec<usize> = order[n_train..n_train + n_val].to_vec();
        let mut test: Vec<usize> =
            order[n_train + n_val..(n_train + n_val + n_test).min(n)].to_vec();
        train.sort_unstable();
        val.sort_unstable();
        test.sort_unstable();

        let labels = match labels_multi {
            Some(y) => Labels::Multi(y),
            None => Labels::Single(observed_classes),
        };
        let ds = Dataset {
            name: self.name.clone(),
            graph,
            features,
            labels,
            num_classes: self.classes,
            train,
            val,
            test,
        };
        debug_assert!(ds.validate().is_ok());
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_reddit() -> Dataset {
        SyntheticSpec::reddit_sim().with_nodes(3000).generate(1)
    }

    #[test]
    fn shapes_and_splits() {
        let ds = small_reddit();
        assert!(ds.validate().is_ok());
        assert_eq!(ds.num_nodes(), 3000);
        assert_eq!(ds.feat_dim(), 64);
        assert_eq!(ds.train.len(), 1980); // 66%
        assert_eq!(ds.val.len(), 300);
        assert_eq!(ds.test.len(), 720);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticSpec::yelp_sim().with_nodes(1000).generate(9);
        let b = SyntheticSpec::yelp_sim().with_nodes(1000).generate(9);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.features, b.features);
        assert_eq!(a.train, b.train);
        let c = SyntheticSpec::yelp_sim().with_nodes(1000).generate(10);
        assert_ne!(a.features, c.features);
    }

    #[test]
    fn features_carry_class_signal() {
        let ds = small_reddit();
        let Labels::Single(labels) = &ds.labels else {
            panic!("expected single labels")
        };
        // Nearest-centroid on raw features should beat chance clearly
        // (but stay below 100% given the noise/corruption).
        let mut centroids = Matrix::zeros(ds.num_classes, ds.feat_dim());
        let mut counts = vec![0f32; ds.num_classes];
        for (v, &c) in labels.iter().enumerate() {
            counts[c] += 1.0;
            let row = ds.features.row(v).to_vec();
            for (o, x) in centroids.row_mut(c).iter_mut().zip(row) {
                *o += x;
            }
        }
        for (c, cnt) in counts.iter().enumerate() {
            for o in centroids.row_mut(c) {
                *o /= cnt.max(1.0);
            }
        }
        let mut correct = 0usize;
        for (v, &label) in labels.iter().enumerate() {
            let f = ds.features.row(v);
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..ds.num_classes {
                let d: f32 = centroids
                    .row(c)
                    .iter()
                    .zip(f)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if best == label {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.num_nodes() as f64;
        let chance = 1.0 / ds.num_classes as f64;
        assert!(acc > 4.0 * chance, "nearest-centroid acc {acc}");
        assert!(acc < 0.99, "features too clean: {acc}");
    }

    #[test]
    fn graph_is_label_assortative() {
        let ds = small_reddit();
        let Labels::Single(labels) = &ds.labels else {
            panic!()
        };
        let within = ds
            .graph
            .edges()
            .filter(|&(u, v)| labels[u] == labels[v])
            .count();
        let frac = within as f64 / ds.graph.num_edges() as f64;
        assert!(frac > 0.6, "within-class edge fraction {frac}");
    }

    #[test]
    fn products_split_is_degree_ranked() {
        let ds = SyntheticSpec::products_sim().with_nodes(4000).generate(2);
        let train_min_deg = ds.train.iter().map(|&v| ds.graph.degree(v)).min().unwrap();
        let test_max: Vec<usize> = ds.test.iter().map(|&v| ds.graph.degree(v)).collect();
        let test_avg = test_max.iter().sum::<usize>() as f64 / test_max.len() as f64;
        assert!(
            train_min_deg as f64 >= test_avg,
            "train min degree {train_min_deg} vs test avg {test_avg}"
        );
    }

    #[test]
    fn yelp_is_multilabel_with_primary() {
        let ds = SyntheticSpec::yelp_sim().with_nodes(800).generate(3);
        let Labels::Multi(y) = &ds.labels else {
            panic!()
        };
        assert_eq!(y.cols(), ds.num_classes);
        // Nearly every node holds a label (bit-flip label noise can zero
        // a few out); average label count is comfortably above 1.
        let mut total = 0.0f32;
        let mut empty = 0usize;
        for v in 0..800 {
            let s: f32 = y.row(v).iter().sum();
            if s == 0.0 {
                empty += 1;
            }
            total += s;
        }
        assert!(empty < 80, "too many label-free nodes: {empty}");
        assert!(total / 800.0 > 1.5, "avg labels {}", total / 800.0);
    }

    #[test]
    fn papers_sim_is_sparse_labeled() {
        let ds = SyntheticSpec::papers100m_sim().with_nodes(5000).generate(4);
        assert!(ds.train.len() < 100);
        assert!(ds.test.len() < 100);
    }
}
