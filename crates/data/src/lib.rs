//! Seeded synthetic stand-ins for the paper's four datasets.
//!
//! The paper evaluates on Reddit, ogbn-products, Yelp and
//! ogbn-papers100M. None of those datasets can be downloaded here, so
//! this crate synthesizes graphs that preserve the properties every
//! experiment depends on:
//!
//! * **power-law degrees + community structure** (degree-corrected
//!   stochastic block model) — this is what makes boundary-node sets
//!   explode under partitioning (paper Table 1, Fig. 3);
//! * **label/feature/structure correlation** — features are noisy class
//!   prototypes and edges are assortative by class, so neighbor
//!   aggregation genuinely improves accuracy and the accuracy-vs-`p`
//!   trade-offs of Tables 4, 7, 13 are observable;
//! * **the paper's split regimes** — e.g. products-sim gives the *top
//!   8% of nodes by degree* to the training split (ogbn-products splits
//!   by sales rank), reproducing the distribution shift that drives the
//!   overfitting behaviour in Fig. 7;
//! * **multi-label Yelp** — yelp-sim is multi-label with BCE training
//!   and micro-F1 scoring, like the real dataset.
//!
//! Node and edge counts are scaled down (documented per preset) so the
//! full experiment suite runs on CPU in minutes; experiments compare
//! *relative* behaviour, not absolute numbers.
//!
//! # Example
//!
//! ```
//! use bns_data::SyntheticSpec;
//!
//! let ds = SyntheticSpec::reddit_sim().with_nodes(2_000).generate(42);
//! assert_eq!(ds.features.rows(), 2_000);
//! assert!(ds.graph.num_edges() > 2_000);
//! ```

// No unsafe here, enforced at compile time (the audited unsafe lives in
// bns-tensor, bns-nn and the vendored loom shim; see UNSAFE_LEDGER.md).
#![forbid(unsafe_code)]
mod dataset;
mod spec;

pub use dataset::{Dataset, Labels};
pub use spec::{SplitKind, SyntheticSpec};
