//! Dataset-generation tests: every preset, determinism, statistical
//! properties, and the custom-spec surface.

use bns_data::{Labels, SplitKind, SyntheticSpec};
use bns_graph::GraphStats;
use proptest::prelude::*;

fn presets() -> Vec<SyntheticSpec> {
    vec![
        SyntheticSpec::reddit_sim(),
        SyntheticSpec::products_sim(),
        SyntheticSpec::yelp_sim(),
        SyntheticSpec::papers100m_sim(),
    ]
}

/// Every preset generates a valid dataset at a reduced size.
#[test]
fn all_presets_generate_and_validate() {
    for spec in presets() {
        let ds = spec.with_nodes(1_200).generate(7);
        assert!(ds.validate().is_ok(), "{} invalid", ds.name);
        assert_eq!(ds.num_nodes(), 1_200);
        assert!(ds.graph.num_edges() > 1_200, "{} too sparse", ds.name);
        let stats = GraphStats::of(&ds.graph);
        assert!(
            stats.degrees.max > 4 * stats.degrees.median.max(1),
            "{}: no heavy tail (max {} median {})",
            ds.name,
            stats.degrees.max,
            stats.degrees.median
        );
    }
}

/// Split fractions match the paper's Table 3 within rounding.
#[test]
fn split_fractions_match_paper() {
    let cases = [
        (SyntheticSpec::reddit_sim(), 0.66, 0.10, 0.24),
        (SyntheticSpec::products_sim(), 0.08, 0.02, 0.90),
        (SyntheticSpec::yelp_sim(), 0.75, 0.10, 0.15),
    ];
    for (spec, ft, fv, fs) in cases {
        let n = 2_000usize;
        let ds = spec.with_nodes(n).generate(1);
        let close = |got: usize, frac: f64| (got as f64 / n as f64 - frac).abs() < 0.01;
        assert!(close(ds.train.len(), ft), "{} train", ds.name);
        assert!(close(ds.val.len(), fv), "{} val", ds.name);
        assert!(close(ds.test.len(), fs), "{} test", ds.name);
    }
}

/// Label noise leaves most labels intact: accuracy of the observed vs
/// planted labels is ~(1 - noise + noise/classes).
#[test]
fn label_noise_rate_is_calibrated() {
    let mut spec = SyntheticSpec::reddit_sim().with_nodes(4_000);
    spec.label_noise = 0.2;
    spec.feature_corruption = 0.0;
    // Regenerate without noise for ground truth.
    let mut clean_spec = spec.clone();
    clean_spec.label_noise = 0.0;
    let noisy = spec.generate(9);
    let clean = clean_spec.generate(9);
    let (Labels::Single(a), Labels::Single(b)) = (&noisy.labels, &clean.labels) else {
        panic!()
    };
    let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
    let frac = same as f64 / a.len() as f64;
    let expect = 0.8 + 0.2 / 16.0;
    assert!((frac - expect).abs() < 0.03, "agreement {frac} vs {expect}");
}

/// The degree-rank split regime puts hubs in training.
#[test]
fn degree_rank_split_kind() {
    let spec = SyntheticSpec::products_sim().with_nodes(2_000);
    assert_eq!(spec.split_kind, SplitKind::DegreeRank);
    let ds = spec.generate(2);
    let train_mean: f64 = ds
        .train
        .iter()
        .map(|&v| ds.graph.degree(v) as f64)
        .sum::<f64>()
        / ds.train.len() as f64;
    let test_mean: f64 = ds
        .test
        .iter()
        .map(|&v| ds.graph.degree(v) as f64)
        .sum::<f64>()
        / ds.test.len() as f64;
    assert!(
        train_mean > 3.0 * test_mean,
        "train mean degree {train_mean} vs test {test_mean}"
    );
}

/// Builder-style overrides compose.
#[test]
fn with_overrides_compose() {
    let ds = SyntheticSpec::reddit_sim()
        .with_nodes(500)
        .with_feat_dim(10)
        .with_classes(4)
        .generate(3);
    assert_eq!(ds.num_nodes(), 500);
    assert_eq!(ds.feat_dim(), 10);
    assert_eq!(ds.num_classes, 4);
    assert!(ds.validate().is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Generation never produces invalid datasets for arbitrary small
    /// sizes and seeds.
    #[test]
    fn generate_is_total(n in 50usize..400, seed in 0u64..1_000) {
        let ds = SyntheticSpec::reddit_sim().with_nodes(n).generate(seed);
        prop_assert!(ds.validate().is_ok());
        prop_assert_eq!(ds.features.rows(), n);
    }

    /// Same seed, same dataset; different seed, different graph.
    #[test]
    fn seeding_behaviour(seed in 0u64..500) {
        let a = SyntheticSpec::yelp_sim().with_nodes(300).generate(seed);
        let b = SyntheticSpec::yelp_sim().with_nodes(300).generate(seed);
        prop_assert_eq!(&a.graph, &b.graph);
        prop_assert_eq!(&a.features, &b.features);
        let c = SyntheticSpec::yelp_sim().with_nodes(300).generate(seed + 1);
        prop_assert_ne!(&a.features, &c.features);
    }
}
