//! Per-rank communication handles, point-to-point messaging and
//! collectives.

// The mailbox transport (channels, rank threads) goes through
// `crate::sync`, which resolves to `std` normally and to the vendored
// loom shims under `--cfg loom` so the protocol can be model-checked
// exhaustively (tests/loom_mailbox.rs).
use crate::sync::mpsc::{channel, Receiver, Sender};
use crate::sync::thread;
use crate::{TrafficClass, TrafficStats};
use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

/// Anything that can be sent between ranks with a well-defined wire size.
///
/// The wire size drives [`TrafficStats`]; it is the number of bytes the
/// payload would occupy on a real interconnect.
pub trait Wire: Send + 'static {
    /// Serialized size in bytes.
    fn wire_bytes(&self) -> usize;
}

impl<T: Copy + Send + 'static> Wire for Vec<T> {
    fn wire_bytes(&self) -> usize {
        std::mem::size_of::<T>() * self.len()
    }
}

struct Message {
    tag: u64,
    payload: Box<dyn Any + Send>,
    bytes: usize,
    /// Position in the sender's per-destination send order; drives the
    /// `debug_assertions`-gated per-`(source, tag)` FIFO delivery check.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    seq: u64,
}

/// A tagged message in flight: `(source rank, message)`.
type Envelope = (usize, Message);

/// Callback invoked after a message lands in a rank's inbox. The
/// cooperative scheduler registers one per rank so a parked rank task
/// is marked runnable the moment a peer enqueues for it.
pub type WakeFn = Arc<dyn Fn() + Send + Sync>;

/// Shared waker slot for one rank's inbox. Senders hold clones of the
/// *destination's* slot and invoke the registered callback after
/// enqueuing. Deliberately plain `std` sync even under `--cfg loom`:
/// the loom mailbox models never register a waker, and a modeled mutex
/// here would only inflate the checked state space (same policy as the
/// telemetry counters, DESIGN.md §9).
type WakerCell = std::sync::Mutex<Option<WakeFn>>;

/// One outgoing edge of the mailbox mesh: the destination's inbox
/// sender plus the destination's waker slot.
struct Peer {
    tx: Sender<Envelope>,
    waker: Arc<WakerCell>,
}

/// One rank's endpoint in a simulated world of `world_size` ranks.
///
/// Create a full world with [`create_world`] or spawn threads directly
/// with [`run_ranks`]. Point-to-point messages are matched by `(source,
/// tag)`; collectives must be invoked by **all ranks in the same order**
/// (they synchronize internally via sequence-numbered tags).
///
/// Delivery uses a single shared inbox per rank (every peer holds a
/// clone of the same sender), so [`RankComm::recv_any`] can hand back
/// whichever peer's message lands first. Per-peer FIFO order is still
/// guaranteed: an mpsc channel preserves the send order of each
/// individual producer.
pub struct RankComm {
    rank: usize,
    world: usize,
    to_peer: Vec<Option<Peer>>,
    inbox: Receiver<Envelope>,
    /// This rank's own waker slot (peers hold clones via [`Peer`]).
    waker: Arc<WakerCell>,
    pending: Vec<VecDeque<Message>>,
    stats: TrafficStats,
    coll_seq: u64,
    /// Per-destination count of messages sent (assigns `Message::seq`).
    send_seq: Vec<u64>,
    /// Highest `seq` delivered so far per `(source, tag)` stream, used
    /// by the FIFO invariant check. Only populated in debug builds.
    #[cfg(debug_assertions)]
    delivered_seq: std::collections::HashMap<(usize, u64), u64>,
    /// Bytes enqueued into peers' mailboxes (mailbox-side accounting).
    #[cfg(debug_assertions)]
    mailbox_bytes: u64,
    /// Bytes recorded into [`TrafficStats`] (stats-side accounting).
    /// Shadowed separately from the stats themselves because callers
    /// may reset those between epochs; the two shadow streams must
    /// agree byte-for-byte after every send.
    #[cfg(debug_assertions)]
    recorded_bytes: u64,
}

impl std::fmt::Debug for RankComm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RankComm {{ rank: {}/{} }}", self.rank, self.world)
    }
}

/// Creates all `world_size` communication endpoints.
///
/// # Panics
///
/// Panics if `world_size == 0`.
pub fn create_world(world_size: usize) -> Vec<RankComm> {
    assert!(world_size > 0, "world_size must be positive");
    // One shared inbox (and waker slot) per rank; senders[i][j] carries
    // i -> j and is a clone of rank j's inbox sender.
    let mut senders: Vec<Vec<Option<Peer>>> = (0..world_size)
        .map(|_| (0..world_size).map(|_| None).collect())
        .collect();
    let mut inboxes: Vec<Receiver<Envelope>> = Vec::with_capacity(world_size);
    let mut wakers: Vec<Arc<WakerCell>> = Vec::with_capacity(world_size);
    for j in 0..world_size {
        let (s, r) = channel();
        let w: Arc<WakerCell> = Arc::new(std::sync::Mutex::new(None));
        inboxes.push(r);
        for (i, row) in senders.iter_mut().enumerate() {
            if i != j {
                row[j] = Some(Peer {
                    tx: s.clone(),
                    waker: Arc::clone(&w),
                });
            }
        }
        wakers.push(w);
    }
    senders
        .into_iter()
        .zip(inboxes)
        .zip(wakers)
        .enumerate()
        .map(|(rank, ((to_peer, inbox), waker))| RankComm {
            rank,
            world: world_size,
            to_peer,
            inbox,
            waker,
            pending: (0..world_size).map(|_| VecDeque::new()).collect(),
            stats: TrafficStats::new(),
            coll_seq: 0,
            send_seq: vec![0; world_size],
            #[cfg(debug_assertions)]
            delivered_seq: std::collections::HashMap::new(),
            #[cfg(debug_assertions)]
            mailbox_bytes: 0,
            #[cfg(debug_assertions)]
            recorded_bytes: 0,
        })
        .collect()
}

/// Spawns one thread per rank, runs `f` on each, and returns the results
/// in rank order. Panics in any rank propagate.
pub fn run_ranks<T, F>(world_size: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(RankComm) -> T + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let comms = create_world(world_size);
    let handles: Vec<_> = comms
        .into_iter()
        .map(|comm| {
            let f = Arc::clone(&f);
            thread::spawn(move || {
                // One trace timeline (tid) per rank.
                bns_telemetry::set_thread_rank(comm.rank());
                f(comm)
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("rank thread panicked"))
        .collect()
}

impl RankComm {
    /// This endpoint's rank id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// Traffic sent by this rank so far.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Mutable access to the traffic counters (to reset between epochs).
    pub fn stats_mut(&mut self) -> &mut TrafficStats {
        &mut self.stats
    }

    /// Sends `payload` to rank `to` with a user tag.
    ///
    /// User tags must be below `2^60`; higher tags are reserved for
    /// collectives.
    ///
    /// # Panics
    ///
    /// Panics on self-send, out-of-bounds rank, reserved tag, or if the
    /// peer has disconnected.
    pub fn send<T: Wire>(&mut self, to: usize, tag: u64, payload: T, class: TrafficClass) {
        assert!(tag < COLL_BASE, "tag {tag} is reserved for collectives");
        self.send_raw(to, tag, payload, class)
    }

    fn send_raw<T: Wire>(&mut self, to: usize, tag: u64, payload: T, class: TrafficClass) {
        assert!(to < self.world, "send to rank {to} out of bounds");
        assert_ne!(to, self.rank, "self-send is not allowed");
        let bytes = payload.wire_bytes();
        self.stats.record(class, bytes);
        #[cfg(debug_assertions)]
        {
            self.recorded_bytes += bytes as u64;
        }
        bns_telemetry::counter_add("comm.bytes_sent", bytes as u64);
        bns_telemetry::counter_add(class.counter_name(), bytes as u64);
        bns_telemetry::counter_add("comm.msgs_sent", 1);
        let seq = self.send_seq[to];
        self.send_seq[to] += 1;
        let msg = Message {
            tag,
            // Owned messages are the wire contract, metered by
            // TrafficStats rather than recycled.
            // bns-allow(BNS-A005): the envelope boxes each payload once
            payload: Box::new(payload),
            bytes,
            seq,
        };
        #[cfg(debug_assertions)]
        {
            self.mailbox_bytes += msg.bytes as u64;
            // Exact byte agreement between the two accounting paths:
            // what TrafficStats recorded and what the mailbox carries.
            debug_assert_eq!(
                self.mailbox_bytes, self.recorded_bytes,
                "rank {}: mailbox accounting ({} B) diverged from TrafficStats ({} B)",
                self.rank, self.mailbox_bytes, self.recorded_bytes
            );
        }
        let peer = self.to_peer[to].as_ref().expect("sender missing");
        peer.tx.send((self.rank, msg)).expect("peer disconnected");
        // Wake the destination *after* the enqueue so a woken task is
        // guaranteed to observe the message on its next drain. The
        // callback is cloned out of the slot before invocation so no
        // lock is held while running scheduler code.
        // bns-allow(BNS-A005): waker Arc clone is a refcount bump, no heap growth
        let wake = peer.waker.lock().unwrap_or_else(|e| e.into_inner()).clone();
        if let Some(wake) = wake {
            wake();
        }
    }

    /// Registers the callback peers invoke after enqueuing into this
    /// rank's inbox (see [`WakeFn`]). A task-based caller registers its
    /// scheduler waker once, before its first receive.
    pub fn set_waker(&self, wake: WakeFn) {
        *self.waker.lock().unwrap_or_else(|e| e.into_inner()) = Some(wake);
    }

    /// Removes any registered waker; subsequent sends to this rank no
    /// longer invoke a callback.
    pub fn clear_waker(&self) {
        *self.waker.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Receives the next message from rank `from` with tag `tag`,
    /// blocking until it arrives. Messages with other tags from the same
    /// peer are buffered.
    ///
    /// # Panics
    ///
    /// Panics on self-receive, out-of-bounds rank, payload type mismatch,
    /// or if the peer disconnected before sending.
    pub fn recv<T: Wire>(&mut self, from: usize, tag: u64) -> T {
        let msg = self.recv_msg(from, tag);
        let bytes = msg.bytes;
        let v = *msg.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving tag {tag} from {from}",
                self.rank
            )
        });
        // The type-erased transport must preserve accounted wire size.
        debug_assert_eq!(
            v.wire_bytes(),
            bytes,
            "rank {}: wire size changed in transit (tag {tag} from {from})",
            self.rank
        );
        v
    }

    /// Like [`RankComm::recv`] but also returns the wire size in bytes.
    pub fn recv_with_bytes<T: Wire>(&mut self, from: usize, tag: u64) -> (T, usize) {
        let msg = self.recv_msg(from, tag);
        let bytes = msg.bytes;
        let v = *msg.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving tag {tag} from {from}",
                self.rank
            )
        });
        debug_assert_eq!(
            v.wire_bytes(),
            bytes,
            "rank {}: wire size changed in transit (tag {tag} from {from})",
            self.rank
        );
        (v, bytes)
    }

    /// `debug_assertions`-gated delivery invariant: within one
    /// `(source, tag)` stream, messages must reach the application in
    /// strictly increasing send order. `seq` is numbered per
    /// destination across all tags, so within a stream it is monotone
    /// but not contiguous.
    #[cfg(debug_assertions)]
    fn note_delivery(&mut self, src: usize, msg: &Message) {
        use std::collections::hash_map::Entry;
        match self.delivered_seq.entry((src, msg.tag)) {
            Entry::Occupied(mut e) => {
                assert!(
                    msg.seq > *e.get(),
                    "rank {}: FIFO violation on (source {src}, tag {}): \
                     delivered seq {} after seq {}",
                    self.rank,
                    msg.tag,
                    msg.seq,
                    e.get()
                );
                e.insert(msg.seq);
            }
            Entry::Vacant(e) => {
                e.insert(msg.seq);
            }
        }
    }

    #[cfg(not(debug_assertions))]
    #[inline]
    fn note_delivery(&mut self, _src: usize, _msg: &Message) {}

    fn recv_msg(&mut self, from: usize, tag: u64) -> Message {
        assert!(from < self.world, "recv from rank {from} out of bounds");
        assert_ne!(from, self.rank, "self-receive is not allowed");
        if let Some(pos) = self.pending[from].iter().position(|m| m.tag == tag) {
            let msg = self.pending[from].remove(pos).unwrap();
            self.note_delivery(from, &msg);
            return msg;
        }
        loop {
            let (src, msg) = self.inbox.recv().expect("peer disconnected");
            if src == from && msg.tag == tag {
                self.note_delivery(src, &msg);
                return msg;
            }
            self.pending[src].push_back(msg);
        }
    }

    /// Receives a message with tag `tag` from **whichever** candidate in
    /// `from` delivers first, returning `(source, payload)`. Buffered
    /// (pending) messages win over fresh arrivals, scanned in `from`
    /// order; messages from other peers or with other tags are buffered
    /// as in [`RankComm::recv`].
    ///
    /// Emits `comm.recv_any_ready` when a match was already buffered
    /// (the wait was fully overlapped by compute) and
    /// `comm.recv_any_waited` when it had to block — the ratio of the
    /// two is the overlap hit rate.
    ///
    /// # Panics
    ///
    /// Panics if `from` is empty, contains this rank or an out-of-bounds
    /// rank, on payload type mismatch, or if a peer disconnected.
    pub fn recv_any<T: Wire>(&mut self, tag: u64, from: &[usize]) -> (usize, T) {
        let (src, msg) = self.recv_any_msg(tag, from);
        let bytes = msg.bytes;
        let v = *msg.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving tag {tag} from {src}",
                self.rank
            )
        });
        debug_assert_eq!(
            v.wire_bytes(),
            bytes,
            "rank {}: wire size changed in transit (tag {tag} from {src})",
            self.rank
        );
        (src, v)
    }

    fn recv_any_msg(&mut self, tag: u64, from: &[usize]) -> (usize, Message) {
        assert!(!from.is_empty(), "recv_any needs at least one candidate");
        for &src in from {
            assert!(src < self.world, "recv from rank {src} out of bounds");
            assert_ne!(src, self.rank, "self-receive is not allowed");
            if let Some(pos) = self.pending[src].iter().position(|m| m.tag == tag) {
                bns_telemetry::counter_add("comm.recv_any_ready", 1);
                let msg = self.pending[src].remove(pos).unwrap();
                self.note_delivery(src, &msg);
                return (src, msg);
            }
        }
        bns_telemetry::counter_add("comm.recv_any_waited", 1);
        loop {
            let (src, msg) = self.inbox.recv().expect("peer disconnected");
            if msg.tag == tag && from.contains(&src) {
                self.note_delivery(src, &msg);
                return (src, msg);
            }
            self.pending[src].push_back(msg);
        }
    }

    /// Pops the first pending message matching `(from, tag)`, if any.
    fn take_pending(&mut self, from: usize, tag: u64) -> Option<Message> {
        let pos = self.pending[from].iter().position(|m| m.tag == tag)?;
        let msg = self.pending[from].remove(pos).unwrap();
        self.note_delivery(from, &msg);
        Some(msg)
    }

    /// Moves every queued inbox envelope into the per-source pending
    /// queues without blocking. Returns `true` if the channel is
    /// disconnected (all peers dropped) *and* fully drained.
    fn drain_inbox(&mut self) -> bool {
        use crate::sync::mpsc::TryRecvError;
        loop {
            match self.inbox.try_recv() {
                Ok((src, msg)) => self.pending[src].push_back(msg),
                Err(TryRecvError::Empty) => return false,
                Err(TryRecvError::Disconnected) => return true,
            }
        }
    }

    /// Blocks until at least one more envelope arrives, buffering it
    /// into the pending queues. The blocking drivers of the poll-style
    /// operations ([`AllReduceOp`] and the exchange ops in `bns-gcn`)
    /// use this between polls; cooperative callers park their task
    /// instead and rely on the [`WakeFn`] hook.
    ///
    /// # Panics
    ///
    /// Panics if every peer has disconnected.
    pub fn wait_message(&mut self) {
        let (src, msg) = self.inbox.recv().expect("peer disconnected");
        self.pending[src].push_back(msg);
    }

    fn downcast_msg<T: Wire>(&self, msg: Message, from: usize, tag: u64) -> T {
        let bytes = msg.bytes;
        let v = *msg.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving tag {tag} from {from}",
                self.rank
            )
        });
        debug_assert_eq!(
            v.wire_bytes(),
            bytes,
            "rank {}: wire size changed in transit (tag {tag} from {from})",
            self.rank
        );
        v
    }

    /// Non-blocking [`RankComm::recv`]: returns `None` if no matching
    /// message has arrived yet. Never blocks; anything else queued in
    /// the inbox is buffered exactly as the blocking path would.
    ///
    /// # Panics
    ///
    /// Panics on self-receive, out-of-bounds rank, payload type
    /// mismatch, or if every peer disconnected with no match queued.
    pub fn try_recv<T: Wire>(&mut self, from: usize, tag: u64) -> Option<T> {
        assert!(from < self.world, "recv from rank {from} out of bounds");
        assert_ne!(from, self.rank, "self-receive is not allowed");
        let msg = match self.take_pending(from, tag) {
            Some(m) => m,
            None => {
                let disconnected = self.drain_inbox();
                match self.take_pending(from, tag) {
                    Some(m) => m,
                    None => {
                        assert!(!disconnected, "rank {}: peer disconnected", self.rank);
                        return None;
                    }
                }
            }
        };
        Some(self.downcast_msg(msg, from, tag))
    }

    /// Non-blocking [`RankComm::recv_any`]: returns the first match in
    /// candidate order (pending first, then freshly drained arrivals),
    /// or `None` if nothing matching has arrived. Never blocks.
    ///
    /// # Panics
    ///
    /// Panics if `from` is empty, contains this rank or an out-of-bounds
    /// rank, on payload type mismatch, or if every peer disconnected
    /// with no match queued.
    pub fn try_recv_any<T: Wire>(&mut self, tag: u64, from: &[usize]) -> Option<(usize, T)> {
        assert!(!from.is_empty(), "recv_any needs at least one candidate");
        for &src in from {
            assert!(src < self.world, "recv from rank {src} out of bounds");
            assert_ne!(src, self.rank, "self-receive is not allowed");
        }
        let mut disconnected = false;
        for pass in 0..2 {
            for &src in from {
                if let Some(msg) = self.take_pending(src, tag) {
                    let v = self.downcast_msg(msg, src, tag);
                    return Some((src, v));
                }
            }
            if pass == 0 {
                disconnected = self.drain_inbox();
            }
        }
        assert!(!disconnected, "rank {}: peer disconnected", self.rank);
        None
    }

    fn next_coll_tag(&mut self, step: u64) -> u64 {
        COLL_BASE + self.coll_seq * MAX_COLL_STEPS + step
    }

    fn finish_collective(&mut self) {
        self.coll_seq += 1;
    }

    /// Ring AllReduce (sum) over an `f32` buffer: reduce-scatter followed
    /// by all-gather. Every rank must pass a buffer of the same length.
    /// Per-rank traffic is `2·(k-1)/k · len · 4` bytes, the standard ring
    /// cost the paper assumes for gradient sharing.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths disagree across ranks (detected as a
    /// chunk-size mismatch) or ranks call collectives in different orders.
    pub fn all_reduce_sum(&mut self, buf: &mut [f32]) {
        let _span = bns_telemetry::span!("all_reduce", elems = buf.len());
        let mut op = AllReduceOp::begin(self, buf);
        while !op.poll(self, buf) {
            self.wait_message();
        }
    }

    /// Gathers one value from every rank; returns them indexed by rank.
    pub fn all_gather<T: Wire + Clone>(&mut self, value: T, class: TrafficClass) -> Vec<T> {
        let _span = bns_telemetry::span!("all_gather");
        let k = self.world;
        let tag = self.next_coll_tag(0);
        for peer in 0..k {
            if peer != self.rank {
                self.send_raw(peer, tag, value.clone(), class);
            }
        }
        let mut out: Vec<Option<T>> = (0..k).map(|_| None).collect();
        out[self.rank] = Some(value);
        let me = self.rank;
        for peer in (0..k).filter(|&p| p != me) {
            out[peer] = Some(self.recv(peer, tag));
        }
        self.finish_collective();
        out.into_iter().map(Option::unwrap).collect()
    }

    /// All-to-all personalized exchange: `outbox[j]` is delivered to
    /// rank `j`; returns the inbox indexed by source rank (own slot =
    /// own outbox entry, moved, never counted as traffic).
    ///
    /// # Panics
    ///
    /// Panics if `outbox.len() != world_size`.
    pub fn all_to_all<T: Wire + Default>(
        &mut self,
        mut outbox: Vec<T>,
        class: TrafficClass,
    ) -> Vec<T> {
        let _span = bns_telemetry::span!("all_to_all");
        assert_eq!(
            outbox.len(),
            self.world,
            "outbox must have one entry per rank"
        );
        let tag = self.next_coll_tag(0);
        let me = self.rank;
        // Send everything first (channels are unbounded, so no deadlock).
        let mut own: Option<T> = None;
        for (j, item) in outbox.drain(..).enumerate() {
            if j == me {
                own = Some(item);
            } else {
                self.send_raw(j, tag, item, class);
            }
        }
        let mut inbox: Vec<T> = (0..self.world).map(|_| T::default()).collect();
        inbox[me] = own.expect("own outbox entry present");
        for j in (0..self.world).filter(|&j| j != me) {
            inbox[j] = self.recv(j, tag);
        }
        self.finish_collective();
        inbox
    }

    /// Broadcast from `root`: the root passes `Some(value)`, everyone else
    /// `None`; all ranks return the value.
    ///
    /// # Panics
    ///
    /// Panics if the root passes `None` or a non-root passes `Some`.
    pub fn broadcast<T: Wire + Clone>(
        &mut self,
        root: usize,
        value: Option<T>,
        class: TrafficClass,
    ) -> T {
        let _span = bns_telemetry::span!("broadcast", root = root);
        let tag = self.next_coll_tag(0);
        let out = if self.rank == root {
            let v = value.expect("root must supply a value");
            for peer in 0..self.world {
                if peer != root {
                    self.send_raw(peer, tag, v.clone(), class);
                }
            }
            v
        } else {
            assert!(value.is_none(), "non-root rank must pass None");
            self.recv(root, tag)
        };
        self.finish_collective();
        out
    }

    /// Blocks until every rank has reached the barrier.
    pub fn barrier(&mut self) {
        let _ = self.all_gather(Vec::<u8>::new(), TrafficClass::Control);
    }
}

/// An in-flight ring all-reduce (sum) that a cooperative task can
/// drive incrementally: [`AllReduceOp::begin`] issues the first chunk
/// send, each [`AllReduceOp::poll`] consumes whatever ring traffic has
/// arrived and issues follow-up sends, and the task parks between
/// polls. [`RankComm::all_reduce_sum`] is the blocking driver over the
/// same op, so both paths execute the identical send/receive/fold
/// sequence — reduce-scatter then all-gather, chunk `c` =
/// `c*len/k..(c+1)*len/k`, additions in ring order — and stay bitwise
/// identical regardless of how the waiting is implemented.
///
/// The same `buf` (same length, same rank) must be passed to `begin`
/// and every `poll`.
pub struct AllReduceOp {
    seq: u64,
    step: usize,
    total_steps: usize,
    done: bool,
}

impl AllReduceOp {
    /// Starts the collective; every rank must call it in the same
    /// collective order with equal-length buffers. A world of one (or
    /// an empty buffer) completes immediately.
    pub fn begin(comm: &mut RankComm, buf: &mut [f32]) -> Self {
        let k = comm.world;
        let seq = comm.coll_seq;
        if k == 1 || buf.is_empty() {
            comm.finish_collective();
            return Self {
                seq,
                step: 0,
                total_steps: 0,
                done: true,
            };
        }
        let op = Self {
            seq,
            step: 0,
            total_steps: 2 * (k - 1),
            done: false,
        };
        op.send_step(comm, buf);
        op
    }

    fn chunk_range(k: usize, len: usize, c: usize) -> std::ops::Range<usize> {
        (c * len / k)..((c + 1) * len / k)
    }

    /// Issues the send for the current ring step. Reduce-scatter steps
    /// (`step < k-1`) send chunk `(r+k-step)%k`; all-gather steps send
    /// chunk `(r+1+k-s)%k` with `s = step-(k-1)`. The per-step tag
    /// index equals `step` in both phases.
    fn send_step(&self, comm: &mut RankComm, buf: &[f32]) {
        let k = comm.world;
        let r = comm.rank;
        let next = (r + 1) % k;
        let send_c = if self.step < k - 1 {
            (r + k - self.step) % k
        } else {
            let s = self.step - (k - 1);
            (r + 1 + k - s) % k
        };
        let tag = COLL_BASE + self.seq * MAX_COLL_STEPS + self.step as u64;
        // Chunks are 1/k of a small buffer and become the wire payload.
        // bns-allow(BNS-A005): ring all-reduce stages one owned chunk per step
        let out: Vec<f32> = buf[Self::chunk_range(k, buf.len(), send_c)].to_vec();
        comm.send_raw(next, tag, out, TrafficClass::AllReduce);
    }

    /// Completes as many ring steps as arrived messages allow; returns
    /// `true` once the collective has finished. Never blocks.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths disagree across ranks (detected as a
    /// chunk-size mismatch).
    pub fn poll(&mut self, comm: &mut RankComm, buf: &mut [f32]) -> bool {
        while !self.done {
            let k = comm.world;
            let r = comm.rank;
            let prev = (r + k - 1) % k;
            let tag = COLL_BASE + self.seq * MAX_COLL_STEPS + self.step as u64;
            let Some(inc) = comm.try_recv::<Vec<f32>>(prev, tag) else {
                return false;
            };
            let len = buf.len();
            if self.step < k - 1 {
                let recv_c = (r + k - self.step - 1) % k;
                let range = Self::chunk_range(k, len, recv_c);
                assert_eq!(inc.len(), range.len(), "all_reduce_sum length mismatch");
                for (d, s) in buf[range].iter_mut().zip(&inc) {
                    *d += s;
                }
            } else {
                let s = self.step - (k - 1);
                let recv_c = (r + k - s) % k;
                let range = Self::chunk_range(k, len, recv_c);
                assert_eq!(inc.len(), range.len(), "all_reduce_sum length mismatch");
                buf[range].copy_from_slice(&inc);
            }
            self.step += 1;
            if self.step == self.total_steps {
                self.done = true;
                comm.finish_collective();
            } else {
                self.send_step(comm, buf);
            }
        }
        true
    }
}

const COLL_BASE: u64 = 1 << 60;
const MAX_COLL_STEPS: u64 = 1 << 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_roundtrip() {
        let out = run_ranks(2, |mut c| {
            let peer = 1 - c.rank();
            c.send(peer, 1, vec![c.rank() as u32 * 10], TrafficClass::Control);
            let got: Vec<u32> = c.recv(peer, 1);
            got[0]
        });
        assert_eq!(out, vec![10, 0]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let out = run_ranks(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![5.0f32], TrafficClass::Control);
                c.send(1, 6, vec![6.0f32], TrafficClass::Control);
                0.0
            } else {
                // Receive in reverse order of sending.
                let b: Vec<f32> = c.recv(0, 6);
                let a: Vec<f32> = c.recv(0, 5);
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(out[1], 56.0);
    }

    #[test]
    fn recv_any_returns_first_arrival() {
        // Rank 2 sends immediately; rank 1 only sends after rank 0's
        // go-signal, so rank 0's first recv_any can only ever see rank 2.
        let out = run_ranks(3, |mut c| match c.rank() {
            0 => {
                let (first, a): (usize, Vec<u32>) = c.recv_any(7, &[1, 2]);
                c.send(1, 9, vec![0u8], TrafficClass::Control); // go
                let (second, b): (usize, Vec<u32>) = c.recv_any(7, &[1, 2]);
                vec![first as u32, a[0], second as u32, b[0]]
            }
            1 => {
                let _: Vec<u8> = c.recv(0, 9);
                c.send(0, 7, vec![100u32], TrafficClass::Control);
                vec![]
            }
            _ => {
                c.send(0, 7, vec![200u32], TrafficClass::Control);
                vec![]
            }
        });
        assert_eq!(out[0], vec![2, 200, 1, 100]);
    }

    #[test]
    fn recv_any_buffers_unrelated_messages() {
        let out = run_ranks(3, |mut c| match c.rank() {
            0 => {
                // Wait until everything is in flight before receiving.
                let _: Vec<u8> = c.recv(1, 99);
                let (src, v): (usize, Vec<u32>) = c.recv_any(7, &[2]);
                assert_eq!((src, v[0]), (2, 5));
                // The candidate's *other*-tag message and the non-candidate
                // message must both have been buffered, not dropped.
                let other: Vec<u32> = c.recv(2, 8);
                let non_candidate: Vec<u32> = c.recv(1, 7);
                other[0] * 10 + non_candidate[0]
            }
            1 => {
                c.send(0, 7, vec![3u32], TrafficClass::Control);
                c.send(0, 99, vec![0u8], TrafficClass::Control);
                0
            }
            _ => {
                c.send(0, 8, vec![4u32], TrafficClass::Control);
                c.send(0, 7, vec![5u32], TrafficClass::Control);
                0
            }
        });
        assert_eq!(out[0], 43);
    }

    #[test]
    fn recv_any_prefers_pending_in_candidate_order() {
        let out = run_ranks(3, |mut c| match c.rank() {
            0 => {
                // Make sure both peer messages are buffered first.
                let _: Vec<u8> = c.recv(1, 99);
                let _: Vec<u8> = c.recv(2, 99);
                let warm: Vec<u32> = c.recv(1, 7);
                assert_eq!(warm[0], 1);
                c.send(1, 7, vec![warm[0]], TrafficClass::Control);
                // Both rank-1 and rank-2 tag-8 messages are now pending;
                // candidate order [2, 1] must pick rank 2 first.
                let (first, _): (usize, Vec<u32>) = c.recv_any(8, &[2, 1]);
                let (second, _): (usize, Vec<u32>) = c.recv_any(8, &[2, 1]);
                (first * 10 + second) as u32
            }
            1 => {
                c.send(0, 7, vec![1u32], TrafficClass::Control);
                c.send(0, 8, vec![11u32], TrafficClass::Control);
                c.send(0, 99, vec![0u8], TrafficClass::Control);
                let _: Vec<u32> = c.recv(0, 7);
                0
            }
            _ => {
                c.send(0, 8, vec![22u32], TrafficClass::Control);
                c.send(0, 99, vec![0u8], TrafficClass::Control);
                0
            }
        });
        assert_eq!(out[0], 21);
    }

    #[test]
    fn recv_any_traffic_accounting_unchanged() {
        let out = run_ranks(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![0f32; 64], TrafficClass::Boundary);
            } else {
                let (_, v): (usize, Vec<f32>) = c.recv_any(1, &[0]);
                assert_eq!(v.len(), 64);
            }
            c.stats().clone()
        });
        assert_eq!(out[0].bytes(TrafficClass::Boundary), 256);
        assert_eq!(out[1].total_bytes(), 0);
    }

    #[test]
    fn all_reduce_sum_is_correct_for_various_world_sizes() {
        for k in [1usize, 2, 3, 4, 7] {
            for len in [0usize, 1, 5, 16, 33] {
                let out = run_ranks(k, move |mut c| {
                    let mut buf: Vec<f32> = (0..len)
                        .map(|i| (c.rank() + 1) as f32 * (i + 1) as f32)
                        .collect();
                    c.all_reduce_sum(&mut buf);
                    buf
                });
                let total_rank: f32 = (1..=k).map(|r| r as f32).sum();
                for buf in &out {
                    for (i, &x) in buf.iter().enumerate() {
                        let expect = total_rank * (i + 1) as f32;
                        assert!(
                            (x - expect).abs() < 1e-4,
                            "k={k} len={len} i={i}: {x} != {expect}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn all_reduce_ring_traffic_volume() {
        let k = 4usize;
        let len = 1024usize;
        let out = run_ranks(k, move |mut c| {
            let mut buf = vec![1.0f32; len];
            c.all_reduce_sum(&mut buf);
            c.stats().bytes(TrafficClass::AllReduce)
        });
        // Ring: each rank sends 2*(k-1) chunks of len/k floats.
        let expect = (2 * (k - 1) * (len / k) * 4) as u64;
        for &b in &out {
            assert_eq!(b, expect);
        }
    }

    #[test]
    fn all_gather_collects_in_rank_order() {
        let out = run_ranks(3, |mut c| {
            c.all_gather(vec![c.rank() as u64], TrafficClass::Control)
        });
        for got in out {
            assert_eq!(got, vec![vec![0], vec![1], vec![2]]);
        }
    }

    #[test]
    fn broadcast_delivers_root_value() {
        let out = run_ranks(4, |mut c| {
            let v = if c.rank() == 2 {
                Some(vec![42.0f32])
            } else {
                None
            };
            c.broadcast(2, v, TrafficClass::Control)[0]
        });
        assert_eq!(out, vec![42.0; 4]);
    }

    #[test]
    fn collectives_compose_in_sequence() {
        let out = run_ranks(3, |mut c| {
            let mut a = vec![c.rank() as f32];
            c.all_reduce_sum(&mut a);
            c.barrier();
            let g = c.all_gather(vec![a[0] as u64], TrafficClass::Control);
            g.iter().map(|v| v[0]).sum::<u64>()
        });
        assert_eq!(out, vec![9, 9, 9]); // 0+1+2 = 3, gathered thrice
    }

    #[test]
    fn all_to_all_delivers_personalized_payloads() {
        let k = 4;
        let out = run_ranks(k, move |mut c| {
            let me = c.rank();
            let outbox: Vec<Vec<u32>> = (0..k).map(|j| vec![(me * 10 + j) as u32]).collect();
            c.all_to_all(outbox, TrafficClass::Control)
        });
        for (me, inbox) in out.iter().enumerate() {
            for (src, v) in inbox.iter().enumerate() {
                assert_eq!(v[0] as usize, src * 10 + me, "rank {me} from {src}");
            }
        }
    }

    #[test]
    fn traffic_counts_point_to_point() {
        let out = run_ranks(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![0f32; 100], TrafficClass::Boundary);
            } else {
                let _: Vec<f32> = c.recv(0, 1);
            }
            c.stats().clone()
        });
        assert_eq!(out[0].bytes(TrafficClass::Boundary), 400);
        assert_eq!(out[1].total_bytes(), 0);
    }

    #[test]
    fn world_of_one_collectives_are_noops() {
        let out = run_ranks(1, |mut c| {
            let mut buf = vec![3.0f32];
            c.all_reduce_sum(&mut buf);
            c.barrier();
            let g = c.all_gather(vec![7u32], TrafficClass::Control);
            (buf[0], g.len())
        });
        assert_eq!(out, vec![(3.0, 1)]);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_tags_rejected() {
        let mut world = create_world(2);
        let mut c = world.remove(0);
        c.send(1, COLL_BASE, vec![0u8], TrafficClass::Control);
    }
}
