//! Switched synchronization primitives for the mailbox transport.
//!
//! Normal builds re-export `std`; under `--cfg loom` the same names
//! resolve to the vendored loom shims so `cargo test --test
//! loom_mailbox` can exhaustively model-check the `RankComm` mailbox
//! protocol — per-`(source, tag)` FIFO pending queues and `recv_any`
//! arrival-order delivery (see `tests/loom_mailbox.rs` and DESIGN.md
//! §9).

#[cfg(loom)]
pub(crate) use loom::sync::mpsc;
#[cfg(loom)]
pub(crate) use loom::thread;

#[cfg(not(loom))]
pub(crate) use std::sync::mpsc;
#[cfg(not(loom))]
pub(crate) use std::thread;
