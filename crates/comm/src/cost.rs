//! The α–β communication / compute cost model.

use crate::{TrafficClass, TrafficStats, WirePrecision};

/// Converts traffic counters and FLOP counts into simulated seconds.
///
/// The model is the classic α–β (latency–bandwidth) form: a step that
/// sends `m` messages totalling `b` bytes costs `m·α + b·β` seconds, and
/// `f` floating-point operations cost `f / flops` seconds. Experiments use
/// this to report deterministic, hardware-independent timings whose
/// *shape* (which method wins, how gaps scale) mirrors the paper even
/// though the absolute numbers are synthetic.
///
/// Defaults approximate the paper's single-machine testbed: PCIe-3 x16
/// class links (~12 GB/s effective, ~10 µs latency) and an
/// RTX-2080-Ti-class ~13 TFLOP/s device.
///
/// # Example
///
/// ```
/// use bns_comm::CostModel;
///
/// let m = CostModel::pcie3();
/// let t = m.comm_time(12_000_000_000, 1);
/// assert!((t - 1.0).abs() < 0.01); // ~1 s to move 12 GB
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message latency, seconds.
    pub latency_s: f64,
    /// Link bandwidth, bytes per second.
    pub bandwidth_bps: f64,
    /// Compute throughput, FLOP per second.
    pub flops: f64,
}

impl CostModel {
    /// PCIe-3 x16 class GPU-to-GPU link plus a 2080-Ti-class device — the
    /// paper's single-machine setup (Reddit/products/Yelp experiments).
    pub fn pcie3() -> Self {
        Self {
            latency_s: 10e-6,
            bandwidth_bps: 12e9,
            flops: 13e12,
        }
    }

    /// Cross-machine Ethernet-class interconnect plus a V100-class device
    /// — the paper's 32-machine ogbn-papers100M setup, where communication
    /// dominates (its Table 6 shows 99% comm time).
    pub fn cluster_ethernet() -> Self {
        Self {
            latency_s: 50e-6,
            bandwidth_bps: 1.25e9, // ~10 GbE effective
            flops: 15e12,
        }
    }

    /// Host-to-device swap link for the ROC-style baseline (CPU↔GPU paging
    /// over PCIe shared with other traffic).
    pub fn swap_link() -> Self {
        Self {
            latency_s: 20e-6,
            bandwidth_bps: 6e9,
            flops: 13e12,
        }
    }

    /// Seconds to send `messages` messages totalling `bytes` bytes.
    pub fn comm_time(&self, bytes: u64, messages: u64) -> f64 {
        messages as f64 * self.latency_s + bytes as f64 / self.bandwidth_bps
    }

    /// Seconds to execute `flops` floating-point operations.
    pub fn compute_time(&self, flop: f64) -> f64 {
        flop / self.flops
    }

    /// Seconds to move `rows` boundary rows of `d` f32 elements each in
    /// `messages` messages, at the given wire precision.
    ///
    /// Before the quantized exchange existed, every cost-model call site
    /// hard-coded `rows * d * 4` bytes; this helper owns the
    /// bytes-per-element assumption instead, so estimated epoch time
    /// tracks the active [`WirePrecision`] (f16/bf16 halve the byte term;
    /// int8 pays `d + 8` per row for the per-row scale+zero-point
    /// header).
    pub fn exchange_time(
        &self,
        rows: u64,
        d: usize,
        messages: u64,
        precision: WirePrecision,
    ) -> f64 {
        let bytes = rows * precision.row_bytes(d) as u64;
        self.comm_time(bytes, messages)
    }

    /// Simulated time of one synchronous step in which each rank sent the
    /// traffic recorded in its entry of `per_rank`: the slowest rank
    /// (bottleneck) determines the step time, matching the paper's
    /// observation that partition-parallel training is synchronous and
    /// straggler-bound.
    pub fn step_time(&self, per_rank: &[TrafficStats]) -> f64 {
        per_rank
            .iter()
            .map(|t| self.comm_time(t.total_bytes(), t.total_messages()))
            .fold(0.0, f64::max)
    }

    /// Like [`CostModel::step_time`] but restricted to one traffic class.
    pub fn step_time_class(&self, per_rank: &[TrafficStats], class: TrafficClass) -> f64 {
        per_rank
            .iter()
            .map(|t| self.comm_time(t.bytes(class), t.messages(class)))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_time_linear_in_bytes() {
        let m = CostModel {
            latency_s: 1e-3,
            bandwidth_bps: 1e6,
            flops: 1e9,
        };
        assert!((m.comm_time(1_000_000, 0) - 1.0).abs() < 1e-12);
        assert!((m.comm_time(0, 10) - 0.01).abs() < 1e-12);
        assert!((m.compute_time(2e9) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn step_time_is_bottleneck() {
        let m = CostModel {
            latency_s: 0.0,
            bandwidth_bps: 1e3,
            flops: 1.0,
        };
        let mut a = TrafficStats::new();
        a.record(TrafficClass::Boundary, 1000);
        let mut b = TrafficStats::new();
        b.record(TrafficClass::Boundary, 3000);
        assert!((m.step_time(&[a.clone(), b.clone()]) - 3.0).abs() < 1e-9);
        assert!((m.step_time_class(&[a, b], TrafficClass::AllReduce)).abs() < 1e-12);
    }

    #[test]
    fn exchange_time_tracks_wire_precision() {
        // Zero latency isolates the bandwidth (byte-count) term; one
        // assertion per supported precision pins the exact byte math.
        let m = CostModel {
            latency_s: 0.0,
            bandwidth_bps: 1e6,
            flops: 1.0,
        };
        let (rows, d) = (1000u64, 64usize);
        let t = |p| m.exchange_time(rows, d, 1, p);
        // exact: 1000 * 64 * 4 B = 256 kB -> 0.256 s
        assert!((t(WirePrecision::Exact) - 0.256).abs() < 1e-12);
        // f16/bf16: exactly half
        assert!((t(WirePrecision::F16) - 0.128).abs() < 1e-12);
        assert!((t(WirePrecision::Bf16) - 0.128).abs() < 1e-12);
        // int8: 1000 * (64 + 8) B = 72 kB -> 0.072 s
        assert!((t(WirePrecision::Int8) - 0.072).abs() < 1e-12);
        // Latency term is unaffected by precision.
        let m_lat = CostModel {
            latency_s: 1e-3,
            ..m
        };
        for p in WirePrecision::ALL {
            let with_lat = m_lat.exchange_time(rows, d, 10, p);
            assert!((with_lat - (t(p) + 0.01)).abs() < 1e-12, "{p}");
        }
    }

    #[test]
    fn presets_are_sane() {
        assert!(CostModel::pcie3().bandwidth_bps > CostModel::cluster_ethernet().bandwidth_bps);
        assert!(CostModel::swap_link().bandwidth_bps < CostModel::pcie3().bandwidth_bps);
    }
}
