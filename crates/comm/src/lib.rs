//! A simulated multi-rank communication layer.
//!
//! The BNS-GCN paper trains with one GPU per graph partition, exchanging
//! boundary-node features over Gloo/NCCL. This machine has no GPUs, so the
//! reproduction runs **one logical endpoint per partition ("rank")** —
//! scheduled either as dedicated OS threads ([`run_ranks`]) or as
//! cooperative tasks multiplexed onto a fixed worker pool (the engine's
//! `bns-runtime` scheduler; see DESIGN.md §12) — and routes all
//! inter-partition traffic through this crate, which provides:
//!
//! * typed point-to-point [`RankComm::send`]/[`RankComm::recv`] over
//!   std::sync::mpsc channels with tag matching, plus non-blocking
//!   [`RankComm::try_recv`]/[`RankComm::try_recv_any`] and a per-rank
//!   [`WakeFn`] mailbox hook so a cooperative scheduler can park a
//!   waiting rank and reschedule it on message arrival,
//! * the collectives the training loop needs (ring
//!   [`RankComm::all_reduce_sum`], [`RankComm::all_gather`],
//!   [`RankComm::barrier`], [`RankComm::broadcast`]),
//! * byte-accurate [`TrafficStats`] per rank, split by [`TrafficClass`]
//!   (boundary-feature exchange vs. gradient all-reduce vs. control), and
//! * an α–β [`CostModel`] that converts measured traffic into simulated
//!   wall-clock time, making throughput experiments deterministic and
//!   hardware-independent.
//!
//! The paper's communication-volume identity (its Eq. 3: total volume =
//! total number of boundary nodes) is validated against the byte counters
//! recorded here.
//!
//! # Example
//!
//! ```
//! use bns_comm::{run_ranks, TrafficClass};
//!
//! // Two ranks exchange a value and all-reduce a vector.
//! let results = run_ranks(2, |mut comm| {
//!     let peer = 1 - comm.rank();
//!     comm.send(peer, 7, vec![comm.rank() as f32], TrafficClass::Control);
//!     let got: Vec<f32> = comm.recv(peer, 7);
//!     let mut buf = vec![1.0f32, 2.0];
//!     comm.all_reduce_sum(&mut buf);
//!     (got[0], buf[0])
//! });
//! assert_eq!(results[0], (1.0, 2.0));
//! assert_eq!(results[1], (0.0, 2.0));
//! ```

// No unsafe here, enforced at compile time (the audited unsafe lives in
// bns-tensor, bns-nn and the vendored loom shim; see UNSAFE_LEDGER.md).
#![forbid(unsafe_code)]
mod cost;
mod precision;
mod rank;
mod sync;
mod traffic;

pub use cost::CostModel;
pub use precision::{WirePrecision, ENV_QUANT};
pub use rank::{create_world, run_ranks, AllReduceOp, RankComm, WakeFn};
pub use traffic::{TrafficClass, TrafficStats};
