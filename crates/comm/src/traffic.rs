//! Byte-accurate traffic accounting.

/// What a message is for; lets experiments split epoch time into the
/// paper's three components (Figure 5 / Table 6: computation, boundary
/// communication, gradient all-reduce).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Boundary-node feature/gradient exchange (the traffic BNS shrinks).
    Boundary,
    /// Model-gradient AllReduce.
    AllReduce,
    /// Sampling-index broadcast and other small control messages.
    Control,
}

impl TrafficClass {
    /// All classes, in display order.
    pub const ALL: [TrafficClass; 3] = [
        TrafficClass::Boundary,
        TrafficClass::AllReduce,
        TrafficClass::Control,
    ];

    fn index(self) -> usize {
        match self {
            TrafficClass::Boundary => 0,
            TrafficClass::AllReduce => 1,
            TrafficClass::Control => 2,
        }
    }

    /// Telemetry counter fed with bytes sent in this class.
    pub fn counter_name(self) -> &'static str {
        match self {
            TrafficClass::Boundary => "comm.bytes_sent.boundary",
            TrafficClass::AllReduce => "comm.bytes_sent.allreduce",
            TrafficClass::Control => "comm.bytes_sent.control",
        }
    }
}

/// Per-rank counters of sent traffic.
///
/// Only the *send* side counts (every byte sent is received exactly once,
/// so send totals equal receive totals globally).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    bytes: [u64; 3],
    messages: [u64; 3],
}

impl TrafficStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sent message.
    pub fn record(&mut self, class: TrafficClass, bytes: usize) {
        self.bytes[class.index()] += bytes as u64;
        self.messages[class.index()] += 1;
    }

    /// Bytes sent in `class`.
    pub fn bytes(&self, class: TrafficClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Messages sent in `class`.
    pub fn messages(&self, class: TrafficClass) -> u64 {
        self.messages[class.index()]
    }

    /// Total bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total messages across all classes.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Adds another rank's counters into this one (for global totals).
    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..3 {
            self.bytes[i] += other.bytes[i];
            self.messages[i] += other.messages[i];
        }
    }

    /// Difference since an earlier snapshot (`self - earlier`).
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has larger counters (it must be a prefix of
    /// this rank's history).
    pub fn since(&self, earlier: &TrafficStats) -> TrafficStats {
        let mut out = TrafficStats::new();
        for i in 0..3 {
            assert!(
                self.bytes[i] >= earlier.bytes[i] && self.messages[i] >= earlier.messages[i],
                "snapshot is not a prefix"
            );
            out.bytes[i] = self.bytes[i] - earlier.bytes[i];
            out.messages[i] = self.messages[i] - earlier.messages[i];
        }
        out
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = TrafficStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut t = TrafficStats::new();
        t.record(TrafficClass::Boundary, 100);
        t.record(TrafficClass::Boundary, 50);
        t.record(TrafficClass::AllReduce, 8);
        assert_eq!(t.bytes(TrafficClass::Boundary), 150);
        assert_eq!(t.messages(TrafficClass::Boundary), 2);
        assert_eq!(t.total_bytes(), 158);
        assert_eq!(t.total_messages(), 3);
    }

    #[test]
    fn merge_and_since() {
        let mut a = TrafficStats::new();
        a.record(TrafficClass::Control, 4);
        let snap = a.clone();
        a.record(TrafficClass::Control, 6);
        let d = a.since(&snap);
        assert_eq!(d.bytes(TrafficClass::Control), 6);
        let mut g = TrafficStats::new();
        g.merge(&a);
        g.merge(&d);
        assert_eq!(g.total_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "prefix")]
    fn since_rejects_non_prefix() {
        let a = TrafficStats::new();
        let mut b = TrafficStats::new();
        b.record(TrafficClass::Control, 1);
        let _ = a.since(&b);
    }
}
