//! Wire precision for the boundary exchange.
//!
//! Boundary-feature rows dominate communication volume (the paper's
//! Eq. 3), so the exchange layer can optionally quantize payloads on the
//! wire: IEEE half (f16), bfloat16, or int8 with a per-row affine
//! scale+zero-point. The codec itself lives in `bns_tensor::simd::codec`
//! and the plumbing in `bns_gcn::exchange`; this module only defines the
//! *selection* — which format is active — and the byte accounting the
//! α–β cost model needs to price a quantized exchange (DESIGN.md §13).
//!
//! The default is [`WirePrecision::Exact`]: raw f32, byte-for-byte the
//! historical path. Quantized modes are opt-in via
//! `TrainConfig::wire_precision` or the `BNS_QUANT` environment variable.

use std::fmt;

/// Environment variable naming the wire precision (`BNS_QUANT`).
///
/// Recognized values (case-insensitive): `exact`, `f16`, `bf16`, `int8`.
/// Absent, empty, or unrecognized values fall back to `exact` — the same
/// forgiving resolution `BNS_SIMD`/`BNS_THREADS` use.
pub const ENV_QUANT: &str = "BNS_QUANT";

/// On-wire encoding of boundary-feature and boundary-gradient rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WirePrecision {
    /// Raw little-endian f32 — 4 bytes per element, bitwise identical to
    /// the pre-codec exchange. The default.
    Exact,
    /// IEEE 754 binary16 — 2 bytes per element, round-to-nearest-even on
    /// pack (stochastic rounding on the gradient return path).
    F16,
    /// bfloat16 (truncated f32 exponent range) — 2 bytes per element.
    Bf16,
    /// Per-row affine uint8: an 8-byte `[scale: f32 LE, zero_point:
    /// f32 LE]` header followed by one byte per element, so a row of
    /// `d` elements costs `d + 8` bytes instead of `4d`.
    Int8,
}

impl WirePrecision {
    /// Every supported precision, `Exact` first.
    pub const ALL: [WirePrecision; 4] = [
        WirePrecision::Exact,
        WirePrecision::F16,
        WirePrecision::Bf16,
        WirePrecision::Int8,
    ];

    /// Canonical lowercase name, matching what `BNS_QUANT` accepts.
    pub fn name(self) -> &'static str {
        match self {
            WirePrecision::Exact => "exact",
            WirePrecision::F16 => "f16",
            WirePrecision::Bf16 => "bf16",
            WirePrecision::Int8 => "int8",
        }
    }

    /// Parses a precision name (case-insensitive). `None` for anything
    /// unrecognized.
    pub fn parse(s: &str) -> Option<WirePrecision> {
        match s.trim().to_ascii_lowercase().as_str() {
            "exact" | "f32" => Some(WirePrecision::Exact),
            "f16" | "fp16" | "half" => Some(WirePrecision::F16),
            "bf16" | "bfloat16" => Some(WirePrecision::Bf16),
            "int8" | "i8" | "u8" => Some(WirePrecision::Int8),
            _ => None,
        }
    }

    /// Resolution used by both the engine and experiments: an explicit
    /// setting wins; otherwise the value is read from the string (usually
    /// `BNS_QUANT`); absent/empty/unrecognized means [`Exact`].
    ///
    /// [`Exact`]: WirePrecision::Exact
    pub fn resolve(env: Option<&str>) -> WirePrecision {
        env.and_then(WirePrecision::parse)
            .unwrap_or(WirePrecision::Exact)
    }

    /// Reads [`ENV_QUANT`] from the process environment.
    pub fn from_env() -> WirePrecision {
        WirePrecision::resolve(std::env::var(ENV_QUANT).ok().as_deref())
    }

    /// Wire bytes for one row of `d` f32 elements under this precision.
    pub fn row_bytes(self, d: usize) -> usize {
        match self {
            WirePrecision::Exact => 4 * d,
            WirePrecision::F16 | WirePrecision::Bf16 => 2 * d,
            WirePrecision::Int8 => d + 8,
        }
    }

    /// Wire bytes for a block of `rows` rows of `d` elements each.
    pub fn payload_bytes(self, rows: usize, d: usize) -> usize {
        rows * self.row_bytes(d)
    }

    /// Compression ratio vs. raw f32 for rows of width `d` (>= 1.0 for
    /// every non-exact precision once `d > 2`).
    pub fn compression_ratio(self, d: usize) -> f64 {
        if d == 0 {
            return 1.0;
        }
        (4 * d) as f64 / self.row_bytes(d) as f64
    }
}

impl fmt::Display for WirePrecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_aliases_and_rejects_junk() {
        assert_eq!(WirePrecision::parse("exact"), Some(WirePrecision::Exact));
        assert_eq!(WirePrecision::parse("F16"), Some(WirePrecision::F16));
        assert_eq!(WirePrecision::parse(" bf16 "), Some(WirePrecision::Bf16));
        assert_eq!(WirePrecision::parse("INT8"), Some(WirePrecision::Int8));
        assert_eq!(WirePrecision::parse("fp16"), Some(WirePrecision::F16));
        assert_eq!(WirePrecision::parse(""), None);
        assert_eq!(WirePrecision::parse("int4"), None);
    }

    #[test]
    fn resolve_defaults_to_exact() {
        assert_eq!(WirePrecision::resolve(None), WirePrecision::Exact);
        assert_eq!(WirePrecision::resolve(Some("")), WirePrecision::Exact);
        assert_eq!(WirePrecision::resolve(Some("nope")), WirePrecision::Exact);
        assert_eq!(WirePrecision::resolve(Some("int8")), WirePrecision::Int8);
    }

    #[test]
    fn row_bytes_match_the_wire_format() {
        assert_eq!(WirePrecision::Exact.row_bytes(64), 256);
        assert_eq!(WirePrecision::F16.row_bytes(64), 128);
        assert_eq!(WirePrecision::Bf16.row_bytes(64), 128);
        assert_eq!(WirePrecision::Int8.row_bytes(64), 72);
        assert_eq!(WirePrecision::Int8.payload_bytes(10, 64), 720);
    }

    #[test]
    fn compression_ratios_hit_the_targets() {
        // f16/bf16 are exactly 2x; int8 crosses 3.5x once d >= 107.
        assert!((WirePrecision::F16.compression_ratio(64) - 2.0).abs() < 1e-12);
        assert!((WirePrecision::Bf16.compression_ratio(128) - 2.0).abs() < 1e-12);
        assert!(WirePrecision::Int8.compression_ratio(128) > 3.5);
        assert!((WirePrecision::Exact.compression_ratio(64) - 1.0).abs() < 1e-12);
    }
}
