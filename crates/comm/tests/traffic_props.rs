//! Property-based tests for `TrafficStats` snapshot arithmetic.

use bns_comm::{TrafficClass, TrafficStats};
use proptest::prelude::*;

/// A strategy producing arbitrary traffic histories as `(class_index,
/// bytes)` message lists, replayed through `record`.
fn arb_stats() -> impl Strategy<Value = TrafficStats> {
    proptest::collection::vec((0usize..3, 0usize..10_000), 0..40).prop_map(|msgs| {
        let mut stats = TrafficStats::new();
        for (class, bytes) in msgs {
            stats.record(TrafficClass::ALL[class], bytes);
        }
        stats
    })
}

proptest! {
    /// `since` inverts `merge`: extending a snapshot `a` by `b` and
    /// diffing against `a` recovers `b` exactly, per class, for both
    /// byte and message counters.
    #[test]
    fn merge_then_since_roundtrips(a in arb_stats(), b in arb_stats()) {
        let mut merged = a.clone();
        merged.merge(&b);
        let diff = merged.since(&a);
        for class in TrafficClass::ALL {
            prop_assert_eq!(diff.bytes(class), b.bytes(class));
            prop_assert_eq!(diff.messages(class), b.messages(class));
        }
        prop_assert_eq!(diff, b);
    }

    /// Diffing a history against itself is all zeros.
    #[test]
    fn since_self_is_zero(a in arb_stats()) {
        let diff = a.since(&a);
        prop_assert_eq!(diff.total_bytes(), 0);
        prop_assert_eq!(diff.total_messages(), 0);
    }

    /// Merge accumulates totals: |a ∪ b| == |a| + |b|.
    #[test]
    fn merge_adds_totals(a in arb_stats(), b in arb_stats()) {
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.total_bytes(), a.total_bytes() + b.total_bytes());
        prop_assert_eq!(merged.total_messages(), a.total_messages() + b.total_messages());
    }
}
