//! Stress and failure-mode tests for the communicator.

use bns_comm::{create_world, run_ranks, CostModel, TrafficClass};
use bns_tensor::SeededRng;

/// Many interleaved tags and peers: tag matching must never cross wires.
#[test]
fn interleaved_tags_across_many_ranks() {
    let k = 6;
    let out = run_ranks(k, move |mut c| {
        let me = c.rank();
        // Send a distinct payload per (peer, tag) pair...
        for peer in 0..k {
            if peer == me {
                continue;
            }
            for tag in 0..5u64 {
                let val = (me * 100 + peer * 10) as u32 + tag as u32;
                c.send(peer, tag, vec![val], TrafficClass::Control);
            }
        }
        // ...and receive them in a rank-dependent scrambled order.
        let mut sum = 0u64;
        let mut rng = SeededRng::new(me as u64);
        let mut pairs: Vec<(usize, u64)> = (0..k)
            .filter(|&p| p != me)
            .flat_map(|p| (0..5u64).map(move |t| (p, t)))
            .collect();
        rng.shuffle(&mut pairs);
        for (peer, tag) in pairs {
            let v: Vec<u32> = c.recv(peer, tag);
            assert_eq!(v[0] as u64, (peer * 100 + me * 10) as u64 + tag);
            sum += v[0] as u64;
        }
        sum
    });
    assert_eq!(out.len(), k);
}

/// Repeated collectives keep working and stay consistent (sequence
/// numbers must not collide).
#[test]
fn thousand_collectives() {
    let out = run_ranks(3, |mut c| {
        let mut acc = 0.0f32;
        for i in 0..1000 {
            let mut buf = vec![(c.rank() + i) as f32];
            c.all_reduce_sum(&mut buf);
            acc += buf[0];
        }
        acc
    });
    // Σ_i (0+i)+(1+i)+(2+i) = Σ_i (3+3i) = 3*1000 + 3*999*1000/2
    let expect = 3.0 * 1000.0 + 3.0 * 499_500.0;
    for v in out {
        assert!((v - expect).abs() < 1.0, "{v} != {expect}");
    }
}

/// Large payloads round-trip intact.
#[test]
fn megabyte_payload() {
    let out = run_ranks(2, |mut c| {
        let peer = 1 - c.rank();
        let data: Vec<f32> = (0..262_144).map(|i| i as f32).collect();
        c.send(peer, 0, data, TrafficClass::Boundary);
        let got: Vec<f32> = c.recv(peer, 0);
        (got.len(), got[1000])
    });
    for (len, v) in out {
        assert_eq!(len, 262_144);
        assert_eq!(v, 1000.0);
    }
}

/// Mixed payload types on different tags coexist.
#[test]
fn mixed_payload_types() {
    let out = run_ranks(2, |mut c| {
        let peer = 1 - c.rank();
        c.send(peer, 1, vec![1u8, 2, 3], TrafficClass::Control);
        c.send(peer, 2, vec![7u64], TrafficClass::Control);
        c.send(peer, 3, vec![0.5f32], TrafficClass::Boundary);
        let a: Vec<u8> = c.recv(peer, 1);
        let b: Vec<u64> = c.recv(peer, 2);
        let f: Vec<f32> = c.recv(peer, 3);
        (a.len(), b[0], f[0])
    });
    assert_eq!(out[0], (3, 7, 0.5));
    // Wire accounting: 3 + 8 + 4 bytes per rank.
}

/// Wire sizes are element-size accurate per type.
#[test]
fn wire_size_accounting() {
    let out = run_ranks(2, |mut c| {
        let peer = 1 - c.rank();
        c.send(peer, 1, vec![1u8, 2, 3], TrafficClass::Control);
        c.send(peer, 2, vec![7u64, 8], TrafficClass::Control);
        let _: Vec<u8> = c.recv(peer, 1);
        let _: Vec<u64> = c.recv(peer, 2);
        c.stats().bytes(TrafficClass::Control)
    });
    assert_eq!(out, vec![19, 19]); // 3*1 + 2*8
}

/// Self-send must panic.
#[test]
#[should_panic(expected = "self-send")]
fn self_send_panics() {
    let mut world = create_world(2);
    let c = &mut world[0];
    c.send(0, 1, vec![0u8], TrafficClass::Control);
}

/// Type confusion inside a rank panics; `run_ranks` propagates it.
#[test]
#[should_panic(expected = "rank thread panicked")]
fn type_mismatch_panics() {
    run_ranks(2, |mut c| {
        let peer = 1 - c.rank();
        c.send(peer, 1, vec![1.0f32], TrafficClass::Control);
        let _: Vec<u64> = c.recv(peer, 1); // wrong type
    });
}

/// The cost model is monotone in every input.
#[test]
fn cost_model_monotonicity() {
    let m = CostModel::pcie3();
    assert!(m.comm_time(2_000, 1) > m.comm_time(1_000, 1));
    assert!(m.comm_time(1_000, 2) > m.comm_time(1_000, 1));
    assert!(m.compute_time(2e9) > m.compute_time(1e9));
}
