//! Loom model checking of the `RankComm` mailbox protocol
//! (`src/rank.rs`).
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p bns-comm --test loom_mailbox --release
//! ```
//!
//! Under `--cfg loom` the mailbox transport (the shared per-rank mpsc
//! inbox and the rank threads themselves) resolves to the vendored loom
//! shims, so every test below explores **every** interleaving of the
//! rank threads instead of the one the OS happens to produce.
//!
//! What the models verify, in every schedule:
//! * per-`(source, tag)` FIFO: two same-tag messages are delivered in
//!   send order even when an interleaved other-tag receive forces the
//!   first one through the pending queue,
//! * `recv_any` wakeup: with several candidate senders racing, each
//!   message is delivered exactly once with the right source, whether
//!   it was already buffered (`recv_any_ready`) or had to be awaited
//!   (`recv_any_waited`),
//! * `recv_any` never drops non-candidate or other-tag traffic — it
//!   lands in the pending queues and is still receivable afterwards.

#![cfg(loom)]

use bns_comm::{run_ranks, TrafficClass};

#[test]
fn fifo_per_source_tag_with_out_of_tag_buffering() {
    loom::model(|| {
        let out = run_ranks(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, 7, vec![1u32], TrafficClass::Control);
                c.send(1, 9, vec![2u32], TrafficClass::Control);
                c.send(1, 7, vec![3u32], TrafficClass::Control);
                vec![]
            } else {
                // Pull the middle tag first: whenever it has already
                // arrived, the first tag-7 message must pass through
                // the pending queue, and FIFO on (0, 7) must survive
                // the detour in every schedule.
                let mid: Vec<u32> = c.recv(0, 9);
                let a: Vec<u32> = c.recv(0, 7);
                let b: Vec<u32> = c.recv(0, 7);
                vec![mid[0], a[0], b[0]]
            }
        });
        assert_eq!(out[1], vec![2, 1, 3]);
    });
    eprintln!(
        "fifo model: {} schedules explored",
        loom::last_iteration_count()
    );
}

#[test]
fn recv_any_delivers_each_racing_sender_exactly_once() {
    loom::model(|| {
        let out = run_ranks(3, |mut c| match c.rank() {
            0 => {
                let (s1, v1): (usize, Vec<u32>) = c.recv_any(7, &[1, 2]);
                let (s2, v2): (usize, Vec<u32>) = c.recv_any(7, &[1, 2]);
                // Both senders race; every schedule must deliver both
                // messages, once each, with payload matching source.
                assert_ne!(s1, s2, "a sender was delivered twice");
                assert_eq!(v1[0] as usize, s1 * 100);
                assert_eq!(v2[0] as usize, s2 * 100);
                s1
            }
            r => {
                c.send(0, 7, vec![(r * 100) as u32], TrafficClass::Control);
                r
            }
        });
        assert!(out[0] == 1 || out[0] == 2);
    });
    eprintln!(
        "recv_any race model: {} schedules explored",
        loom::last_iteration_count()
    );
}

#[test]
fn recv_any_buffers_non_candidate_and_other_tag_traffic() {
    loom::model(|| {
        let out = run_ranks(3, |mut c| match c.rank() {
            0 => {
                // Only rank 2 is a candidate; rank 1's message and rank
                // 2's other-tag message must be parked, not dropped, in
                // every arrival order.
                let (src, v): (usize, Vec<u32>) = c.recv_any(7, &[2]);
                assert_eq!((src, v[0]), (2, 5));
                let other: Vec<u32> = c.recv(2, 8);
                let non_candidate: Vec<u32> = c.recv(1, 7);
                other[0] * 10 + non_candidate[0]
            }
            1 => {
                c.send(0, 7, vec![3u32], TrafficClass::Control);
                0
            }
            _ => {
                c.send(0, 8, vec![4u32], TrafficClass::Control);
                c.send(0, 7, vec![5u32], TrafficClass::Control);
                0
            }
        });
        assert_eq!(out[0], 43);
    });
    eprintln!(
        "recv_any buffering model: {} schedules explored",
        loom::last_iteration_count()
    );
}
