//! Cooperative rank scheduler: k rank tasks on a fixed OS worker set.
//!
//! The paper's headline experiments run at up to k=192 partitions
//! (Fig. 3/8, Table 6). A thread-per-rank engine oversubscribes the
//! host as soon as k exceeds the core count and starves every rank's
//! kernel-pool share down to one thread. This crate decouples the two:
//! each rank becomes a [`Task`] — a resumable state machine that runs
//! until its next blocking point and then returns [`Step::Park`] — and
//! a fixed set of workers (default `available_parallelism`, override
//! [`ENV_WORKERS`]) polls whichever tasks are runnable. A parked task
//! costs a queue slot, not a core; its [`Waker`] (wired into the
//! `bns-comm` mailbox by the engine) marks it runnable again when a
//! message arrives.
//!
//! # Determinism
//!
//! The scheduler never touches task-owned data: each task is stepped by
//! at most one worker at a time (enforced by the per-task state machine
//! below), and each task's steps execute in program order regardless of
//! which worker runs them or how runs interleave across tasks. A task
//! whose per-step computation is deterministic therefore produces
//! bitwise-identical results at any worker count — the property the
//! engine's loss-curve pinning tests assert (DESIGN.md §12).
//!
//! # Wakeup protocol
//!
//! Each task carries an atomic state: `Parked`, `Ready` (queued),
//! `Running`, `Notified` (wake arrived mid-step), or `Done`. A wake on
//! a `Parked` task enqueues it; a wake on a `Running` task flips it to
//! `Notified` so that when its step returns [`Step::Park`] the worker
//! re-enqueues it immediately instead of parking — the classic
//! lost-wakeup race (message arrives between a failed `try_recv` and
//! the park) cannot drop a task.

// The scheduler itself holds no unsafe; the audited unsafe stays in
// bns-tensor/bns-nn (see UNSAFE_LEDGER.md).
#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Environment variable overriding the scheduler worker count.
pub const ENV_WORKERS: &str = "BNS_WORKERS";

/// Resolved scheduler worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerConfig {
    /// OS threads the scheduler may occupy, caller included (>= 1).
    pub workers: usize,
}

impl WorkerConfig {
    /// Exactly `workers` workers (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// The process-wide worker count: `BNS_WORKERS` when set to a
    /// positive integer, otherwise the machine's available parallelism.
    pub fn from_env() -> Self {
        let env = std::env::var(ENV_WORKERS).ok();
        Self::resolve(env.as_deref())
    }

    /// Pure resolution helper backing [`WorkerConfig::from_env`]
    /// (separated so the parse rules are testable without mutating
    /// process environment).
    pub fn resolve(env: Option<&str>) -> Self {
        if let Some(s) = env {
            if let Ok(n) = s.trim().parse::<usize>() {
                if n >= 1 {
                    return Self::new(n);
                }
            }
        }
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

/// What a task's step ended with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// More work is immediately available; re-enqueue behind the other
    /// ready tasks (cooperative fairness point).
    Yield,
    /// Blocked on an external event; sleep until [`Waker::wake`].
    Park,
    /// The task has finished and will never be stepped again.
    Done,
}

/// A resumable unit of work multiplexed by [`run_tasks`].
///
/// `step` runs the task up to its next blocking point. The scheduler
/// guarantees steps of one task never overlap, so `&mut self` state
/// carries across steps exactly like local variables across a blocking
/// call in thread-per-rank code.
pub trait Task: Send {
    /// Called once before the first step with this task's waker.
    fn bind(&mut self, waker: Waker) {
        let _ = waker;
    }

    /// Runs until the next blocking point (or completion).
    fn step(&mut self) -> Step;
}

// Per-task scheduling states (stored in an AtomicU8).
const PARKED: u8 = 0;
const READY: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

struct Shared {
    states: Vec<AtomicU8>,
    /// FIFO of READY task indices.
    queue: Mutex<VecDeque<usize>>,
    /// Signals "queue non-empty or run over" to sleeping workers.
    available: Condvar,
    /// Tasks not yet DONE; the run ends when it reaches zero.
    live: AtomicUsize,
    /// Set when a task panicked; all workers drain out.
    poisoned: AtomicBool,
    /// First captured panic payload, re-raised on the caller.
    panic: Mutex<Option<PanicPayload>>,
    /// Which worker last stepped each task (steal accounting).
    last_worker: Vec<AtomicUsize>,
    parks: AtomicU64,
    steals: AtomicU64,
    wakes: AtomicU64,
    max_ready_depth: AtomicU64,
}

impl Shared {
    fn enqueue(&self, idx: usize) {
        let mut q = self.queue.lock().unwrap();
        q.push_back(idx);
        // The edge to WeightedSampler::len (which locks `state`) is a
        // name collision, not a real call.
        // bns-allow(BNS-A003): VecDeque::len, not WeightedSampler::len
        let depth = q.len() as u64;
        drop(q);
        self.max_ready_depth.fetch_max(depth, Ordering::Relaxed);
        self.available.notify_one();
    }

    fn wake(&self, idx: usize) {
        loop {
            match self.states[idx].load(Ordering::SeqCst) {
                PARKED => {
                    if self.states[idx]
                        .compare_exchange(PARKED, READY, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        self.wakes.fetch_add(1, Ordering::Relaxed);
                        self.enqueue(idx);
                        return;
                    }
                }
                RUNNING => {
                    if self.states[idx]
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        self.wakes.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                // Already queued, already notified, or finished: the
                // pending wake is subsumed.
                _ => return,
            }
        }
    }
}

/// Handle that marks one task runnable; clonable, callable from any
/// thread (the engine stores one inside each rank's mailbox hook).
#[derive(Clone)]
pub struct Waker {
    shared: Arc<Shared>,
    idx: usize,
}

impl Waker {
    /// Marks the task runnable (no-op if it is already queued or done).
    pub fn wake(&self) {
        self.shared.wake(self.idx);
    }
}

/// Counters from one [`run_tasks`] call, for `rt.*` telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Times a task parked (returned [`Step::Park`] with no pending
    /// notify).
    pub parks: u64,
    /// Times a task resumed on a different worker than its last step.
    pub steals: u64,
    /// Wakes that transitioned a task to runnable.
    pub wakes: u64,
    /// High-water mark of the ready queue.
    pub max_ready_depth: u64,
}

/// Runs `tasks` to completion on `workers` OS threads (the calling
/// thread serves as worker 0; `workers - 1` are spawned). `setup(w)`
/// runs once on each worker before it starts stepping tasks and the
/// guard it returns is dropped when the worker drains out — the engine
/// uses it to install each worker's kernel thread pool.
///
/// The worker count is clamped to `tasks.len()` — extra workers would
/// never have a task to run.
///
/// # Panics
///
/// A panic inside any task aborts the run and resurfaces on the caller
/// (mirroring `run_ranks`'s thread-per-rank behavior).
pub fn run_tasks<S, G>(mut tasks: Vec<Box<dyn Task + '_>>, workers: usize, setup: S) -> RunStats
where
    S: Fn(usize) -> G + Sync,
{
    let n = tasks.len();
    if n == 0 {
        return RunStats::default();
    }
    let workers = workers.clamp(1, n);
    let shared = Arc::new(Shared {
        states: (0..n).map(|_| AtomicU8::new(READY)).collect(),
        queue: Mutex::new((0..n).collect()),
        available: Condvar::new(),
        live: AtomicUsize::new(n),
        poisoned: AtomicBool::new(false),
        panic: Mutex::new(None),
        last_worker: (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect(),
        parks: AtomicU64::new(0),
        steals: AtomicU64::new(0),
        wakes: AtomicU64::new(0),
        max_ready_depth: AtomicU64::new(n as u64),
    });
    for (idx, task) in tasks.iter_mut().enumerate() {
        task.bind(Waker {
            shared: Arc::clone(&shared),
            idx,
        });
    }
    // Tasks are stepped by at most one worker at a time (state machine),
    // but *which* worker migrates, so each slot is a Mutex. Steps hold
    // the lock for their full duration; wakers never touch it.
    let slots: Vec<Mutex<Box<dyn Task + '_>>> = tasks.into_iter().map(Mutex::new).collect();
    std::thread::scope(|scope| {
        for w in 1..workers {
            let shared = Arc::clone(&shared);
            let slots = &slots;
            let setup = &setup;
            scope.spawn(move || {
                let _guard = setup(w);
                worker_loop(&shared, slots, w);
            });
        }
        let _guard = setup(0);
        worker_loop(&shared, &slots, 0);
    });
    // Re-raise the first captured panic on the caller, as run_ranks'
    // join would.
    let payload = shared
        .panic
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        // The edge to Reader::take (whose .len() reaches the sampler
        // `state` lock) is a name collision.
        // bns-allow(BNS-A003): Option::take, not Reader::take
        .take();
    if let Some(p) = payload {
        panic::resume_unwind(p);
    }
    let stats = RunStats {
        parks: shared.parks.load(Ordering::Relaxed),
        steals: shared.steals.load(Ordering::Relaxed),
        wakes: shared.wakes.load(Ordering::Relaxed),
        max_ready_depth: shared.max_ready_depth.load(Ordering::Relaxed),
    };
    bns_telemetry::counter_add("rt.parks", stats.parks);
    bns_telemetry::counter_add("rt.steals", stats.steals);
    bns_telemetry::counter_add("rt.wakes", stats.wakes);
    bns_telemetry::gauge_set("rt.ready_depth", stats.max_ready_depth as f64);
    stats
}

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

fn worker_loop(shared: &Shared, slots: &[Mutex<Box<dyn Task + '_>>], w: usize) {
    loop {
        let idx = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if shared.live.load(Ordering::SeqCst) == 0 || shared.poisoned.load(Ordering::SeqCst)
                {
                    return;
                }
                if let Some(idx) = q.pop_front() {
                    break idx;
                }
                // The edge to JobBatch::wait (which locks
                // `completed`) is a name collision.
                // bns-allow(BNS-A003): Condvar::wait, not JobBatch::wait
                q = shared.available.wait(q).unwrap();
            }
        };
        shared.states[idx].store(RUNNING, Ordering::SeqCst);
        let prev = shared.last_worker[idx].swap(w, Ordering::Relaxed);
        if prev != usize::MAX && prev != w {
            shared.steals.fetch_add(1, Ordering::Relaxed);
        }
        let step = {
            let mut task = slots[idx].lock().unwrap_or_else(|e| e.into_inner());
            // AssertUnwindSafe: on Err the payload is re-raised and the
            // run aborts, so no one observes the task's broken state.
            panic::catch_unwind(AssertUnwindSafe(|| task.step()))
        };
        match step {
            Err(payload) => {
                shared
                    .panic
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .get_or_insert(payload);
                shared.poisoned.store(true, Ordering::SeqCst);
                shared.available.notify_all();
                return;
            }
            Ok(Step::Done) => {
                shared.states[idx].store(DONE, Ordering::SeqCst);
                if shared.live.fetch_sub(1, Ordering::SeqCst) == 1 {
                    shared.available.notify_all();
                }
            }
            Ok(Step::Yield) => {
                shared.states[idx].store(READY, Ordering::SeqCst);
                shared.enqueue(idx);
            }
            Ok(Step::Park) => {
                match shared.states[idx].compare_exchange(
                    RUNNING,
                    PARKED,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => {
                        shared.parks.fetch_add(1, Ordering::Relaxed);
                    }
                    // A wake landed mid-step (state is NOTIFIED):
                    // runnable again immediately.
                    Err(_) => {
                        shared.states[idx].store(READY, Ordering::SeqCst);
                        shared.enqueue(idx);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Countdown {
        left: usize,
        hits: Arc<AtomicUsize>,
    }

    impl Task for Countdown {
        fn step(&mut self) -> Step {
            if self.left == 0 {
                return Step::Done;
            }
            self.left -= 1;
            self.hits.fetch_add(1, Ordering::SeqCst);
            Step::Yield
        }
    }

    #[test]
    fn all_tasks_run_to_completion_at_any_worker_count() {
        for workers in [1usize, 2, 8, 64] {
            let hits = Arc::new(AtomicUsize::new(0));
            let tasks: Vec<Box<dyn Task>> = (0..12)
                .map(|i| {
                    Box::new(Countdown {
                        left: i + 1,
                        hits: Arc::clone(&hits),
                    }) as Box<dyn Task>
                })
                .collect();
            let stats = run_tasks(tasks, workers, |_| ());
            assert_eq!(hits.load(Ordering::SeqCst), (1..=12).sum::<usize>());
            assert_eq!(stats.parks, 0, "yield-only tasks never park");
        }
    }

    /// A waits parked until B flips the flag and wakes it — on one
    /// worker this deadlocks unless parking actually releases the
    /// worker and the wake re-enqueues A.
    struct Waiter {
        flag: Arc<AtomicBool>,
        waker_slot: Arc<Mutex<Option<Waker>>>,
    }

    impl Task for Waiter {
        fn bind(&mut self, waker: Waker) {
            *self.waker_slot.lock().unwrap() = Some(waker);
        }

        fn step(&mut self) -> Step {
            if self.flag.load(Ordering::SeqCst) {
                Step::Done
            } else {
                Step::Park
            }
        }
    }

    struct Setter {
        flag: Arc<AtomicBool>,
        peer_waker: Arc<Mutex<Option<Waker>>>,
    }

    impl Task for Setter {
        fn step(&mut self) -> Step {
            self.flag.store(true, Ordering::SeqCst);
            if let Some(w) = self.peer_waker.lock().unwrap().as_ref() {
                w.wake();
            }
            Step::Done
        }
    }

    #[test]
    fn park_then_wake_crosses_tasks_on_one_worker() {
        for workers in [1usize, 2] {
            let flag = Arc::new(AtomicBool::new(false));
            let slot = Arc::new(Mutex::new(None));
            let tasks: Vec<Box<dyn Task>> = vec![
                Box::new(Waiter {
                    flag: Arc::clone(&flag),
                    waker_slot: Arc::clone(&slot),
                }),
                Box::new(Setter {
                    flag: Arc::clone(&flag),
                    peer_waker: Arc::clone(&slot),
                }),
            ];
            let stats = run_tasks(tasks, workers, |_| ());
            assert!(flag.load(Ordering::SeqCst));
            assert!(stats.wakes >= 1);
        }
    }

    #[test]
    fn setup_guard_runs_per_worker_and_drops() {
        let setups = Arc::new(AtomicUsize::new(0));
        let drops = Arc::new(AtomicUsize::new(0));
        struct Guard(Arc<AtomicUsize>);
        impl Drop for Guard {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let hits = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Box<dyn Task>> = (0..4)
            .map(|_| {
                Box::new(Countdown {
                    left: 3,
                    hits: Arc::clone(&hits),
                }) as Box<dyn Task>
            })
            .collect();
        run_tasks(tasks, 3, |_w| {
            setups.fetch_add(1, Ordering::SeqCst);
            Guard(Arc::clone(&drops))
        });
        assert_eq!(setups.load(Ordering::SeqCst), 3);
        assert_eq!(drops.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn worker_count_is_clamped_to_task_count() {
        let hits = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Box<dyn Task>> = vec![Box::new(Countdown {
            left: 1,
            hits: Arc::clone(&hits),
        })];
        let setups = Arc::new(AtomicUsize::new(0));
        run_tasks(tasks, 16, |_| {
            setups.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(setups.load(Ordering::SeqCst), 1);
    }

    struct Bomb;
    impl Task for Bomb {
        fn step(&mut self) -> Step {
            panic!("task exploded");
        }
    }

    #[test]
    #[should_panic(expected = "task exploded")]
    fn task_panic_propagates_to_caller() {
        let hits = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Box<dyn Task>> = vec![
            Box::new(Countdown {
                left: 1000,
                hits: Arc::clone(&hits),
            }),
            Box::new(Bomb),
        ];
        run_tasks(tasks, 2, |_| ());
    }

    #[test]
    fn worker_config_resolution() {
        assert_eq!(WorkerConfig::resolve(Some("3")).workers, 3);
        assert_eq!(WorkerConfig::resolve(Some(" 2 ")).workers, 2);
        let fallback = WorkerConfig::resolve(None).workers;
        assert!(fallback >= 1);
        assert_eq!(WorkerConfig::resolve(Some("0")).workers, fallback);
        assert_eq!(WorkerConfig::resolve(Some("nope")).workers, fallback);
        assert_eq!(WorkerConfig::new(0).workers, 1);
    }

    #[test]
    fn empty_task_list_returns_immediately() {
        let stats = run_tasks(Vec::new(), 4, |_| ());
        assert_eq!(stats.parks + stats.steals + stats.wakes, 0);
    }
}
