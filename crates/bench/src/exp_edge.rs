//! Table 9: BNS-GCN vs the edge-sampling ablations (DropEdge and
//! Boundary Edge Sampling) at a matched number of dropped edges.

use crate::{f3, print_table, Scale};
use bns_comm::CostModel;
use bns_gcn::engine::{train_with_plan, ModelArch, TrainConfig};
use bns_gcn::plan::PartitionPlan;
use bns_gcn::sampling::BoundarySampling;
use bns_partition::{MetisLikePartitioner, Partitioner};
use std::sync::Arc;

/// Expected cut-edge endpoints (directed) under a plan — used to match
/// DropEdge's global keep rate to BNS's dropped-edge budget, as the
/// paper does ("all methods drop the same number of edges").
fn cut_edges(plan: &PartitionPlan) -> usize {
    plan.parts
        .iter()
        .map(|p| {
            (0..p.n_inner())
                .map(|v| {
                    p.local_graph
                        .neighbors(v)
                        .iter()
                        .filter(|&&u| (u as usize) >= p.n_inner())
                        .count()
                })
                .sum::<usize>()
        })
        .sum()
}

/// Paper Table 9: per-epoch communication volume, epoch time and test
/// score for DropEdge, BES and BNS-GCN at an equal dropped-edge budget.
pub fn table9(scale: Scale) {
    let p = 0.1; // BNS rate the paper matches against
                 // (name, dataset, partitions, lr, epochs): yelp's multi-label BCE
                 // needs the long schedule before micro-F1 lifts off.
    let sets = [
        (
            "reddit-sim",
            crate::reddit(scale),
            2usize,
            0.01f32,
            scale.epochs(30, 80),
        ),
        (
            "products-sim",
            crate::products(scale),
            5,
            0.01,
            scale.epochs(30, 80),
        ),
        (
            "yelp-sim",
            crate::yelp(scale),
            3,
            0.02,
            scale.epochs(200, 400),
        ),
    ];
    let mut rows = Vec::new();
    for (name, ds, k, lr, epochs) in sets {
        let part = MetisLikePartitioner::default().partition(&ds.graph, k, 0);
        let plan = Arc::new(PartitionPlan::build(&ds, &part));
        // Matched budgets: BNS(p) drops (1-p)·cut directed cut-edges.
        let cut = cut_edges(&plan) as f64; // directed cut endpoints
        let total_dir = 2.0 * ds.graph.num_edges() as f64;
        let dropped = (1.0 - p) * cut;
        let dropedge_keep = (1.0 - dropped / total_dir).clamp(0.0, 1.0);
        let bes_keep = p;
        for (label, sampling) in [
            (
                "DropEdge",
                BoundarySampling::DropEdge {
                    keep: dropedge_keep,
                },
            ),
            ("BES", BoundarySampling::BoundaryEdge { keep: bes_keep }),
            ("BNS-GCN", BoundarySampling::Bns { p }),
        ] {
            let cfg = TrainConfig {
                arch: ModelArch::Sage,
                hidden: vec![64, 64],
                dropout: 0.2,
                lr,
                epochs,
                sampling,
                eval_every: 0,
                seed: 7,
                clip_norm: None,
                pipeline: false,
                workers: None,
                wire_precision: None,
            };
            let run = train_with_plan(&plan, &cfg);
            let sim = run.avg_sim_epoch_scaled(&CostModel::pcie3(), crate::wscale(&ds));
            rows.push(vec![
                format!("{name} ({k} parts)"),
                label.to_string(),
                format!("{:.2}MB", run.epoch_comm_mb()),
                format!("{:.1}ms", sim.total() * 1e3),
                f3(run.final_test * 100.0),
            ]);
        }
    }
    print_table(
        "Table 9: BNS-GCN vs edge sampling at matched dropped-edge budget",
        &[
            "dataset",
            "method",
            "epoch comm",
            "sim epoch time",
            "test score (%)",
        ],
        &rows,
    );
}
