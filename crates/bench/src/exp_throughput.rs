//! Throughput and time-breakdown experiments: Figure 4 (throughput vs
//! #partitions against ROC-sim / CAGNET-sim), Figure 5 (epoch time
//! breakdown), Table 6 (papers100M breakdown at 192 partitions),
//! Table 12 (sampling overhead) and the `ksweep` oversubscription
//! sweep (k far past the host core count).

use crate::{f2, pct, print_table, Scale};
use bns_comm::{CostModel, TrafficStats, WirePrecision};
use bns_data::Dataset;
use bns_gcn::costsim::{cagnet_epoch_time, roc_epoch_time, LayerWorkload};
use bns_gcn::engine::{train_with_plan, ModelArch, TrainConfig, TrainRun};
use bns_gcn::plan::PartitionPlan;
use bns_gcn::sampling::BoundarySampling;
use bns_partition::{MetisLikePartitioner, Partitioner};
use std::sync::Arc;

/// Hidden dims used by the timing experiments at each scale (full scale
/// uses the paper's model sizes).
fn hidden(scale: Scale, paper: &[usize]) -> Vec<usize> {
    match scale {
        Scale::Small => vec![64; paper.len()],
        Scale::Full => paper.to_vec(),
    }
}

fn timing_cfg(scale: Scale, paper_hidden: &[usize], sampling: BoundarySampling) -> TrainConfig {
    TrainConfig {
        arch: ModelArch::Sage,
        hidden: hidden(scale, paper_hidden),
        dropout: 0.0,
        lr: 0.01,
        epochs: scale.epochs(4, 8),
        sampling,
        eval_every: 0,
        seed: 1,
        clip_norm: None,
        pipeline: false,
        workers: None,
        wire_precision: None,
    }
}

/// Builds the per-layer workloads for the analytic ROC/CAGNET models
/// from a real partition plan, projected to paper-dataset size with the
/// same workload scale used for the BNS timings.
fn workloads(ds: &Dataset, plan: &PartitionPlan, dims: &[usize]) -> Vec<LayerWorkload> {
    let s = crate::wscale(ds);
    let max_boundary = plan.parts.iter().map(|p| p.n_boundary()).max().unwrap_or(0);
    dims[..dims.len() - 1]
        .iter()
        .map(|&d| LayerWorkload {
            n: (ds.num_nodes() as f64 * s) as usize,
            k: plan.k,
            d,
            max_boundary: (max_boundary as f64 * s) as usize,
            edges: (ds.graph.num_edges() as f64 * s) as usize,
        })
        .collect()
}

fn run_for(plan: &Arc<PartitionPlan>, cfg: &TrainConfig) -> TrainRun {
    train_with_plan(plan, cfg)
}

/// One experiment row: dataset label, dataset, partition counts to
/// sweep, and the paper model's hidden dims.
type DatasetSweep<'a> = (&'a str, Arc<Dataset>, Vec<usize>, &'a [usize]);

/// Paper Figure 4: training throughput (epochs/s under the PCIe cost
/// model) of BNS-GCN at p ∈ {1, 0.1, 0.01} vs ROC-sim and CAGNET-sim
/// (c=2), across partition counts.
pub fn fig4(scale: Scale) {
    let cost = CostModel::pcie3();
    let swap = CostModel::swap_link();
    let sets: Vec<DatasetSweep> = vec![
        (
            "reddit-sim",
            crate::reddit(scale),
            vec![2, 4, 8],
            &[256, 256, 256],
        ),
        (
            "products-sim",
            crate::products(scale),
            vec![5, 8, 10],
            &[128, 128],
        ),
        (
            "yelp-sim",
            crate::yelp(scale),
            vec![3, 6, 10],
            &[256, 256, 256],
        ),
    ];
    for (name, ds, ks, paper_hidden) in sets {
        let mut rows = Vec::new();
        for &k in &ks {
            let part = MetisLikePartitioner::default().partition(&ds.graph, k, 0);
            let plan = Arc::new(PartitionPlan::build(&ds, &part));
            let mut cells = vec![k.to_string()];
            let mut dims = vec![ds.feat_dim()];
            dims.extend_from_slice(&hidden(scale, paper_hidden));
            dims.push(ds.num_classes);
            for p in [1.0, 0.1, 0.01] {
                let cfg = timing_cfg(scale, paper_hidden, BoundarySampling::Bns { p });
                let run = run_for(&plan, &cfg);
                let t = run.avg_sim_epoch_scaled(&cost, crate::wscale(&ds)).total();
                cells.push(f2(1.0 / t));
            }
            let w = workloads(&ds, &plan, &dims);
            cells.push(f2(
                1.0 / roc_epoch_time(&w, &cost, &swap, WirePrecision::Exact)
            ));
            cells.push(f2(1.0 / cagnet_epoch_time(&w, 2, &cost)));
            rows.push(cells);
        }
        print_table(
            &format!("Figure 4: throughput (epochs/s, simulated) on {name}"),
            &[
                "#partitions",
                "BNS p=1",
                "BNS p=0.1",
                "BNS p=0.01",
                "ROC-sim",
                "CAGNET-sim(c=2)",
            ],
            &rows,
        );
    }
}

/// Paper Figure 5: per-epoch time breakdown (compute / boundary comm /
/// all-reduce, simulated) for reddit-sim and products-sim across
/// partition counts and sampling rates.
pub fn fig5(scale: Scale) {
    let cost = CostModel::pcie3();
    let sets: Vec<DatasetSweep> = vec![
        (
            "reddit-sim",
            crate::reddit(scale),
            vec![2, 4, 8],
            &[256, 256, 256],
        ),
        (
            "products-sim",
            crate::products(scale),
            vec![5, 10],
            &[128, 128],
        ),
    ];
    for (name, ds, ks, paper_hidden) in sets {
        let mut rows = Vec::new();
        for &k in &ks {
            let part = MetisLikePartitioner::default().partition(&ds.graph, k, 0);
            let plan = Arc::new(PartitionPlan::build(&ds, &part));
            for p in [1.0, 0.1, 0.01] {
                let cfg = timing_cfg(scale, paper_hidden, BoundarySampling::Bns { p });
                let run = run_for(&plan, &cfg);
                let sim = run.avg_sim_epoch_scaled(&cost, crate::wscale(&ds));
                rows.push(vec![
                    k.to_string(),
                    format!("{p}"),
                    format!("{:.2}ms", sim.comp * 1e3),
                    format!("{:.2}ms", sim.comm * 1e3),
                    format!("{:.2}ms", sim.reduce * 1e3),
                    format!("{:.2}ms", sim.total() * 1e3),
                    pct(sim.comm / sim.total().max(1e-12)),
                ]);
            }
        }
        print_table(
            &format!("Figure 5: simulated epoch-time breakdown on {name}"),
            &[
                "#partitions",
                "p",
                "compute",
                "boundary comm",
                "all-reduce",
                "total",
                "comm share",
            ],
            &rows,
        );
    }
}

/// Paper Table 6: epoch time breakdown for papers100m-sim at 192
/// partitions on the multi-machine (Ethernet-class) cost model.
pub fn table6(scale: Scale) {
    let cost = CostModel::cluster_ethernet();
    let ds = crate::papers(scale);
    let k = 192;
    let part = MetisLikePartitioner::default().partition(&ds.graph, k, 0);
    let plan = Arc::new(PartitionPlan::build(&ds, &part));
    let mut rows = Vec::new();
    for p in [1.0, 0.1, 0.01] {
        let cfg = TrainConfig {
            arch: ModelArch::Sage,
            hidden: hidden(scale, &[128, 128]),
            dropout: 0.0,
            lr: 0.01,
            epochs: 2,
            sampling: BoundarySampling::Bns { p },
            eval_every: 0,
            seed: 1,
            clip_norm: None,
            pipeline: false,
            workers: None,
            wire_precision: None,
        };
        let run = run_for(&plan, &cfg);
        let sim = run.avg_sim_epoch_scaled(&cost, crate::wscale(&ds));
        rows.push(vec![
            format!("BNS-GCN (p={p})"),
            format!("{:.3}s", sim.total()),
            format!("{:.3}s", sim.comp),
            format!("{:.3}s", sim.comm),
            format!("{:.3}s", sim.reduce),
        ]);
    }
    print_table(
        &format!("Table 6: simulated epoch breakdown, papers100m-sim, {k} partitions"),
        &["method", "total", "comp", "comm", "reduce"],
        &rows,
    );
}

/// Paper Table 12: boundary-node-sampling overhead (% of epoch time)
/// for BNS-GCN vs the GraphSAINT samplers' measured overhead.
pub fn table12(scale: Scale) {
    use bns_gcn::minibatch::{train_minibatch, MiniBatchConfig, MiniBatchMethod};
    let ds = crate::reddit(scale);
    let mut rows = Vec::new();
    for (method, label) in [
        (
            MiniBatchMethod::GraphSaintNode { nodes: 800 },
            "Node sampler (GraphSAINT)",
        ),
        (
            MiniBatchMethod::GraphSaintEdge { edges: 800 },
            "Edge sampler (GraphSAINT)",
        ),
        (
            MiniBatchMethod::GraphSaintWalk {
                roots: 150,
                length: 4,
            },
            "Random-walk sampler (GraphSAINT)",
        ),
    ] {
        let cfg = MiniBatchConfig {
            hidden: vec![64],
            dropout: 0.0,
            lr: 0.01,
            epochs: 2,
            batch_size: 256,
            seed: 1,
        };
        let run = train_minibatch(&ds, method, &cfg);
        rows.push(vec![label.to_string(), "-".into(), pct(run.sampling_frac)]);
    }
    for k in [2usize, 4, 8] {
        let part = MetisLikePartitioner::default().partition(&ds.graph, k, 0);
        let plan = Arc::new(PartitionPlan::build(&ds, &part));
        for p in [1.0, 0.1, 0.01, 0.0] {
            let cfg = timing_cfg(scale, &[256, 256, 256], BoundarySampling::Bns { p });
            let run = run_for(&plan, &cfg);
            let sample: f64 = run.epochs.iter().map(|e| e.sample_s).sum();
            let total: f64 = run.epochs.iter().map(|e| e.total_s()).sum();
            rows.push(vec![
                format!("BNS sampler p={p}"),
                k.to_string(),
                pct(sample / total.max(1e-12)),
            ]);
        }
    }
    print_table(
        "Table 12: sampling overhead (sampling time / epoch time), reddit-sim",
        &["sampler", "#partitions", "overhead"],
        &rows,
    );
}

/// Oversubscription sweep: partition counts far past the host core
/// count on reddit-sim. The cooperative scheduler multiplexes all `k`
/// rank tasks onto a fixed worker set (`BNS_WORKERS`, default the core
/// count), so wall-clock epoch time must degrade smoothly with the
/// extra partition bookkeeping rather than collapse under a
/// thread-per-rank pile-up — and the loss at each `k` is a pure
/// function of the seed, identical at any worker count.
pub fn ksweep(scale: Scale) {
    let ds = crate::reddit(scale);
    let workers = bns_runtime::WorkerConfig::from_env().workers;
    let mut ks = vec![2usize, 4, 8, 16, 32];
    if matches!(scale, Scale::Full) {
        ks.push(64);
    }
    let mut rows = Vec::new();
    for &k in &ks {
        let part = MetisLikePartitioner::default().partition(&ds.graph, k, 0);
        let plan = Arc::new(PartitionPlan::build(&ds, &part));
        let cfg = timing_cfg(scale, &[256, 256, 256], BoundarySampling::Bns { p: 0.1 });
        let run = run_for(&plan, &cfg);
        let last = run.epochs.last().expect("at least one epoch");
        let sent: u64 = last
            .traffic_per_rank
            .iter()
            .map(TrafficStats::total_bytes)
            .sum();
        rows.push(vec![
            k.to_string(),
            workers.min(k).to_string(),
            format!("{:.1}ms", run.avg_epoch_s() * 1e3),
            format!("{}MB", f2(sent as f64 / 1e6)),
            format!("{:.6}", last.loss),
        ]);
    }
    print_table(
        &format!("k-sweep: oversubscription on reddit-sim (p=0.1, {workers} worker(s) available)"),
        &[
            "#partitions",
            "workers used",
            "epoch wall",
            "boundary MB/epoch",
            "final loss",
        ],
        &rows,
    );
}
