//! Table 2: empirical feature-approximation variance of BNS-GCN vs the
//! sampling families, at an equal sampled-support budget.

use crate::{print_table, Scale};
use bns_gcn::plan::PartitionPlan;
use bns_gcn::variance::{measure_variance, VarianceMethod};
use bns_partition::{MetisLikePartitioner, Partitioner};
use bns_tensor::{Matrix, SeededRng};

/// Paper Table 2 (empirical form): mean squared error of the one-layer
/// aggregate under each method, same support budget, on a METIS-like
/// partition of reddit-sim.
pub fn table2(scale: Scale) {
    let ds = crate::reddit(scale);
    let k = 8;
    let part = MetisLikePartitioner::default().partition(&ds.graph, k, 0);
    let plan = PartitionPlan::build(&ds, &part);
    let lp = &plan.parts[0];
    let mut rng = SeededRng::new(3);
    let h = Matrix::random_normal(lp.n_inner() + lp.n_boundary(), 16, 0.0, 1.0, &mut rng);
    let trials = match scale {
        Scale::Small => 60,
        Scale::Full => 200,
    };
    let mut rows = Vec::new();
    for p in [0.1, 0.3] {
        for m in [
            VarianceMethod::Bns,
            VarianceMethod::LadiesStyle,
            VarianceMethod::FastGcnStyle,
            VarianceMethod::SageStyle,
        ] {
            let r = measure_variance(lp, ds.num_nodes(), &h, m, p, trials, &mut rng);
            rows.push(vec![
                format!("p={p}"),
                r.method.name().to_string(),
                format!("{:.4}", r.mean_sq_error),
                format!("{:.0}", r.support_size),
            ]);
        }
    }
    print_table(
        &format!(
            "Table 2: empirical approximation variance, reddit-sim partition 0 of {k} \
             (n_in={}, n_bd={})",
            lp.n_inner(),
            lp.n_boundary()
        ),
        &["budget", "method", "E||Z~-Z||^2 / n", "support"],
        &rows,
    );
    println!("(paper bound ordering: BNS < LADIES < FastGCN at equal budget)");
}
