//! Accuracy experiments: Table 4 (BNS-GCN vs sampling baselines across
//! p and #partitions), Table 5 (time+accuracy on products-sim), Table 7
//! (random partition), Table 13 (intermediate p) and the convergence
//! curves of Figures 7 and 9.

use crate::{f3, print_table, Scale};
use bns_data::Dataset;
use bns_gcn::engine::{train_with_plan, ModelArch, TrainConfig, TrainRun};
use bns_gcn::minibatch::{train_minibatch, MiniBatchConfig, MiniBatchMethod};
use bns_gcn::plan::PartitionPlan;
use bns_gcn::sampling::BoundarySampling;
use bns_partition::{MetisLikePartitioner, Partitioner, Partitioning, RandomPartitioner};
use std::sync::Arc;

/// Per-dataset accuracy-training hyperparameters (scaled from the
/// paper's Section 4 model list).
pub struct AccuracySetup {
    /// Dataset name.
    pub name: &'static str,
    /// The dataset.
    pub ds: Arc<Dataset>,
    /// Hidden dims.
    pub hidden: Vec<usize>,
    /// Learning rate.
    pub lr: f32,
    /// Dropout.
    pub dropout: f32,
    /// Epochs.
    pub epochs: usize,
    /// Partition counts used in Table 4.
    pub parts: Vec<usize>,
}

/// The three accuracy datasets with scaled hyperparameters.
pub fn setups(scale: Scale) -> Vec<AccuracySetup> {
    vec![
        AccuracySetup {
            name: "reddit-sim",
            ds: crate::reddit(scale),
            hidden: vec![64, 64, 64], // paper: 4 layers, 256 hidden
            lr: 0.01,
            dropout: 0.3,
            epochs: scale.epochs(40, 120),
            parts: vec![2, 4, 8],
        },
        AccuracySetup {
            name: "products-sim",
            ds: crate::products(scale),
            hidden: vec![64, 64], // paper: 3 layers, 128 hidden
            lr: 0.01,
            dropout: 0.3,
            epochs: scale.epochs(40, 120),
            parts: vec![5, 8, 10],
        },
        AccuracySetup {
            name: "yelp-sim",
            ds: crate::yelp(scale),
            hidden: vec![64, 64], // paper: 4 layers, 512 hidden
            lr: 0.02,
            dropout: 0.1,
            // Multi-label BCE needs many full-batch Adam steps before
            // micro-F1 lifts off (the paper trains Yelp for 3000 epochs).
            epochs: scale.epochs(200, 400),
            parts: vec![3, 6, 10],
        },
    ]
}

fn engine_cfg(s: &AccuracySetup, sampling: BoundarySampling) -> TrainConfig {
    TrainConfig {
        arch: ModelArch::Sage,
        hidden: s.hidden.clone(),
        dropout: s.dropout,
        lr: s.lr,
        epochs: s.epochs,
        sampling,
        eval_every: 0,
        seed: 7,
        clip_norm: Some(1.0),
        pipeline: false,
        workers: None,
        wire_precision: None,
    }
}

/// Trains BNS-GCN on an existing partitioning and returns the run.
pub fn bns_run(s: &AccuracySetup, part: &Partitioning, p: f64) -> TrainRun {
    let plan = Arc::new(PartitionPlan::build(&s.ds, part));
    train_with_plan(&plan, &engine_cfg(s, BoundarySampling::Bns { p }))
}

/// Paper Table 4: test score of the sampling baselines and of BNS-GCN
/// across sampling rates and partition counts.
pub fn table4(scale: Scale) {
    for s in setups(scale) {
        // Sampling baselines (single-machine mini-batch methods).
        let mb_cfg = MiniBatchConfig {
            hidden: s.hidden.clone(),
            dropout: 0.0,
            lr: s.lr,
            epochs: s.epochs / 2,
            batch_size: 256,
            seed: 7,
        };
        let methods = [
            MiniBatchMethod::FastGcn { support: 400 },
            MiniBatchMethod::NeighborSampling { fanout: 10 },
            MiniBatchMethod::Ladies { support: 400 },
            MiniBatchMethod::VrGcn { batch: 256 },
            MiniBatchMethod::ClusterGcn {
                clusters: 16,
                per_batch: 4,
            },
            MiniBatchMethod::GraphSaintWalk {
                roots: 200,
                length: 4,
            },
        ];
        let mut rows = Vec::new();
        for m in methods {
            let run = train_minibatch(&s.ds, m, &mb_cfg);
            rows.push(vec![run.method.to_string(), f3(run.final_test * 100.0)]);
        }
        print_table(
            &format!(
                "Table 4a: sampling-based baselines, {} (test score %)",
                s.name
            ),
            &["method", "score"],
            &rows,
        );

        let mut rows = Vec::new();
        for p in [1.0, 0.1, 0.01, 0.0] {
            let mut cells = vec![format!("BNS-GCN (p={p})")];
            for &k in &s.parts {
                let part = MetisLikePartitioner::default().partition(&s.ds.graph, k, 0);
                let run = bns_run(&s, &part, p);
                cells.push(f3(run.final_test * 100.0));
            }
            rows.push(cells);
        }
        let header: Vec<String> = std::iter::once("method".to_string())
            .chain(s.parts.iter().map(|k| format!("{k} parts")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        print_table(
            &format!("Table 4b: BNS-GCN, {} (test score %)", s.name),
            &header_refs,
            &rows,
        );
    }
}

/// Paper Table 5: total train time and test accuracy on products-sim,
/// sampling methods vs BNS-GCN at 10 partitions.
pub fn table5(scale: Scale) {
    let s = &setups(scale)[1];
    let mut rows = Vec::new();
    let mb_cfg = MiniBatchConfig {
        hidden: s.hidden.clone(),
        dropout: 0.0,
        lr: s.lr,
        epochs: s.epochs / 2,
        batch_size: 256,
        seed: 7,
    };
    for m in [
        MiniBatchMethod::ClusterGcn {
            clusters: 16,
            per_batch: 4,
        },
        MiniBatchMethod::NeighborSampling { fanout: 10 },
        MiniBatchMethod::GraphSaintWalk {
            roots: 200,
            length: 4,
        },
    ] {
        let run = train_minibatch(&s.ds, m, &mb_cfg);
        rows.push(vec![
            run.method.to_string(),
            format!("{:.1}s", run.total_s),
            f3(run.final_test * 100.0),
        ]);
    }
    let part = MetisLikePartitioner::default().partition(&s.ds.graph, 10, 0);
    for p in [1.0, 0.1, 0.01] {
        let t0 = std::time::Instant::now();
        let run = bns_run(s, &part, p);
        rows.push(vec![
            format!("BNS-GCN (p={p})"),
            format!("{:.1}s", t0.elapsed().as_secs_f64()),
            f3(run.final_test * 100.0),
        ]);
    }
    print_table(
        "Table 5: total train time and test accuracy, products-sim, 10 partitions",
        &["method", "total train time", "test acc (%)"],
        &rows,
    );
}

/// Paper Table 7: BNS-GCN accuracy on top of *random* partitioning,
/// with the difference from METIS-like partitioning.
pub fn table7(scale: Scale) {
    let mut rows = Vec::new();
    for s in setups(scale) {
        let k = *s.parts.last().unwrap();
        let metis = MetisLikePartitioner::default().partition(&s.ds.graph, k, 0);
        let random = RandomPartitioner.partition(&s.ds.graph, k, 0);
        for p in [1.0, 0.1, 0.0] {
            let rm = bns_run(&s, &metis, p);
            let rr = bns_run(&s, &random, p);
            rows.push(vec![
                format!("{} ({k} parts)", s.name),
                format!("Random+BNS (p={p})"),
                f3(rr.final_test * 100.0),
                format!("{:+.2}", (rr.final_test - rm.final_test) * 100.0),
            ]);
        }
    }
    print_table(
        "Table 7: BNS-GCN with random partition (diff vs METIS-like)",
        &["dataset", "method", "score (%)", "delta vs METIS"],
        &rows,
    );
}

/// Paper Table 13: test accuracy for intermediate sampling rates.
pub fn table13(scale: Scale) {
    let all = setups(scale);
    let cases = [(&all[0], 2usize), (&all[1], 5usize)];
    let ps = [0.1, 0.3, 0.5, 0.8, 1.0];
    let mut rows = Vec::new();
    for (s, k) in cases {
        let part = MetisLikePartitioner::default().partition(&s.ds.graph, k, 0);
        let mut cells = vec![format!("{} ({k} partitions)", s.name)];
        for &p in &ps {
            let run = bns_run(s, &part, p);
            cells.push(f3(run.final_test * 100.0));
        }
        rows.push(cells);
    }
    let header: Vec<String> = std::iter::once("dataset".to_string())
        .chain(ps.iter().map(|p| format!("p={p}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(
        "Table 13: test accuracy vs sampling rate p",
        &header_refs,
        &rows,
    );
}

/// Convergence curves (test accuracy vs epoch): Figure 7 on
/// products-sim, Figure 9 on reddit-sim and yelp-sim.
pub fn convergence(scale: Scale, which: &str) {
    let all = setups(scale);
    let cases: Vec<(&AccuracySetup, Vec<usize>)> = match which {
        "fig7" => vec![(&all[1], vec![5, 10])],
        _ => vec![(&all[0], vec![2, 8]), (&all[2], vec![3, 10])],
    };
    for (s, ks) in cases {
        for k in ks {
            let part = MetisLikePartitioner::default().partition(&s.ds.graph, k, 0);
            let plan = Arc::new(PartitionPlan::build(&s.ds, &part));
            let eval_every = (s.epochs / 10).max(1);
            let mut series: Vec<(String, Vec<(usize, f64)>)> = Vec::new();
            for p in [1.0, 0.1, 0.01, 0.0] {
                let mut cfg = engine_cfg(s, BoundarySampling::Bns { p });
                cfg.eval_every = eval_every;
                let run = train_with_plan(&plan, &cfg);
                let pts: Vec<(usize, f64)> = run
                    .epochs
                    .iter()
                    .enumerate()
                    .filter_map(|(e, st)| st.test_score.map(|sc| (e + 1, sc)))
                    .collect();
                series.push((format!("p={p}"), pts));
            }
            let epochs: Vec<usize> = series[0].1.iter().map(|&(e, _)| e).collect();
            let mut rows = Vec::new();
            for (label, pts) in &series {
                let mut cells = vec![label.clone()];
                cells.extend(pts.iter().map(|&(_, sc)| f3(sc * 100.0)));
                rows.push(cells);
            }
            let header: Vec<String> = std::iter::once("series".to_string())
                .chain(epochs.iter().map(|e| format!("ep{e}")))
                .collect();
            let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
            print_table(
                &format!(
                    "{}: test-score convergence, {} ({k} partitions)",
                    if which == "fig7" {
                        "Figure 7"
                    } else {
                        "Figure 9"
                    },
                    s.name
                ),
                &header_refs,
                &rows,
            );
        }
    }
}
