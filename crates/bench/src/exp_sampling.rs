//! Table 11: per-epoch training time of the sampling-based methods vs
//! BNS-GCN on reddit-sim, and the Table 8 efficiency rows (throughput /
//! memory gains of BNS on METIS-like vs random partitions).

use crate::{f2, print_table, Scale};
use bns_comm::CostModel;
use bns_gcn::engine::{train_with_plan, ModelArch, TrainConfig};
use bns_gcn::minibatch::{train_minibatch, MiniBatchConfig, MiniBatchMethod};
use bns_gcn::plan::PartitionPlan;
use bns_gcn::sampling::BoundarySampling;
use bns_partition::{MetisLikePartitioner, Partitioner, RandomPartitioner};
use std::sync::Arc;

/// Paper Table 11 (appendix C): measured per-epoch train time,
/// sampling methods vs BNS-GCN under 8 partitions on reddit-sim.
pub fn table11(scale: Scale) {
    let ds = crate::reddit(scale);
    let mb_cfg = MiniBatchConfig {
        hidden: vec![64, 64],
        dropout: 0.0,
        lr: 0.01,
        epochs: 3,
        batch_size: 256,
        seed: 7,
    };
    let mut rows = Vec::new();
    let mut baseline = 0.0f64;
    for m in [
        MiniBatchMethod::NeighborSampling { fanout: 10 },
        MiniBatchMethod::FastGcn { support: 400 },
        MiniBatchMethod::VrGcn { batch: 256 },
        MiniBatchMethod::ClusterGcn {
            clusters: 16,
            per_batch: 4,
        },
    ] {
        let run = train_minibatch(&ds, m, &mb_cfg);
        if baseline == 0.0 {
            baseline = run.avg_epoch_s;
        }
        rows.push(vec![
            run.method.to_string(),
            format!("{:.3}s", run.avg_epoch_s),
            format!("{}x", f2(baseline / run.avg_epoch_s)),
        ]);
    }
    let part = MetisLikePartitioner::default().partition(&ds.graph, 8, 0);
    let plan = Arc::new(PartitionPlan::build(&ds, &part));
    for p in [1.0, 0.1, 0.01] {
        let cfg = TrainConfig {
            arch: ModelArch::Sage,
            hidden: vec![64, 64],
            dropout: 0.0,
            lr: 0.01,
            epochs: 3,
            sampling: BoundarySampling::Bns { p },
            eval_every: 0,
            seed: 7,
            clip_norm: None,
            pipeline: false,
            workers: None,
            wire_precision: None,
        };
        let run = train_with_plan(&plan, &cfg);
        let t = run.avg_epoch_s();
        rows.push(vec![
            format!("BNS-GCN({p}) [8 parts]"),
            format!("{:.3}s", t),
            format!("{}x", f2(baseline / t)),
        ]);
    }
    print_table(
        "Table 11: measured per-epoch train time, reddit-sim",
        &["method", "epoch time", "speedup vs GraphSAGE"],
        &rows,
    );
    println!(
        "(BNS rows run k=8 threads on shared cores, so wall-clock \
         comparisons against single-process samplers understate the \
         paper's GPU-cluster speedups; see fig4 for the cost-model view)"
    );
}

/// Paper Table 8 (efficiency): BNS-GCN (p=0.1) throughput and memory
/// gains on METIS-like vs random partitions.
pub fn table8(scale: Scale) {
    let structure = crate::exp_partition::table8_partitions(scale);
    let cost = CostModel::pcie3();
    let datasets = [
        crate::reddit(scale),
        crate::products(scale),
        crate::yelp(scale),
    ];
    let ks = [8usize, 10, 10];
    let mut rows = Vec::new();
    for ((name, _, _), (ds, k)) in structure.iter().zip(datasets.iter().zip(ks)) {
        for (label, part) in [
            (
                "METIS",
                MetisLikePartitioner::default().partition(&ds.graph, k, 0),
            ),
            ("Random", RandomPartitioner.partition(&ds.graph, k, 0)),
        ] {
            let plan = Arc::new(PartitionPlan::build(ds, &part));
            let run_at = |p: f64| {
                let cfg = TrainConfig {
                    arch: ModelArch::Sage,
                    hidden: vec![64, 64],
                    dropout: 0.5,
                    lr: 0.01,
                    epochs: 3,
                    sampling: BoundarySampling::Bns { p },
                    eval_every: 0,
                    seed: 7,
                    clip_norm: None,
                    pipeline: false,
                    workers: None,
                    wire_precision: None,
                };
                train_with_plan(&plan, &cfg)
            };
            let full = run_at(1.0);
            let sampled = run_at(0.1);
            let s_w = crate::wscale(ds);
            let thr = full.avg_sim_epoch_scaled(&cost, s_w).total()
                / sampled.avg_sim_epoch_scaled(&cost, s_w).total();
            let mem = *sampled.peak_mem_per_rank.iter().max().unwrap() as f64
                / *full.peak_mem_per_rank.iter().max().unwrap() as f64;
            rows.push(vec![
                format!("{name}"),
                label.to_string(),
                format!("{}x", f2(thr)),
                format!("{}x", f2(mem)),
            ]);
        }
    }
    print_table(
        "Table 8 (efficiency): BNS-GCN(p=0.1) gains over p=1, by partitioner",
        &["dataset", "partitioner", "throughput gain", "memory ratio"],
        &rows,
    );
}
