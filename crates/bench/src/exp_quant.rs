//! Quantized-wire ablation: accuracy vs sampling rate vs wire
//! precision, with the boundary-traffic and epoch-time deltas each
//! format buys at k ∈ {2, 4, 8} partitions.
//!
//! This is the codec counterpart of the paper's Table 4/Figure 5 story:
//! BNS removes boundary *rows*, the wire codec shrinks the *bytes per
//! row*, and the two compose multiplicatively. The dataset uses
//! 128-wide features and a 128-wide hidden layer so every exchanged
//! block amortizes the int8 per-row header well past the 3.5x mark
//! (4·128 / (128+8) ≈ 3.76x; f16/bf16 are exactly 2x at any width).

use crate::{f2, f3, print_table, Scale, DATA_SEED};
use bns_comm::{CostModel, WirePrecision};
use bns_data::{Dataset, SyntheticSpec};
use bns_gcn::engine::{train_with_plan, ModelArch, TrainConfig};
use bns_gcn::plan::PartitionPlan;
use bns_gcn::sampling::BoundarySampling;
use bns_partition::{MetisLikePartitioner, Partitioner};
use std::sync::Arc;

/// Feature/hidden width: wide enough that the int8 row header (8
/// bytes) costs < 6% of the row.
const D: usize = 128;

fn dataset(scale: Scale) -> Arc<Dataset> {
    Arc::new(
        SyntheticSpec::reddit_sim()
            .with_nodes(scale.nodes(4_000, 16_000))
            .with_feat_dim(D)
            .generate(DATA_SEED + 4),
    )
}

fn cfg(scale: Scale, p: f64, precision: WirePrecision) -> TrainConfig {
    TrainConfig {
        arch: ModelArch::Sage,
        hidden: vec![D],
        dropout: 0.3,
        lr: 0.01,
        epochs: scale.epochs(12, 60),
        sampling: BoundarySampling::Bns { p },
        eval_every: 0,
        seed: 7,
        clip_norm: Some(1.0),
        pipeline: false,
        workers: None,
        wire_precision: Some(precision),
    }
}

/// The `repro quant` experiment: one table per partition count, each
/// sweeping precision × sampling rate against the exact wire at the
/// same `p`.
pub fn quant(scale: Scale) {
    let ds = dataset(scale);
    let cost = CostModel::pcie3();
    let wscale = crate::wscale(&ds);
    for k in [2usize, 4, 8] {
        let part = MetisLikePartitioner::default().partition(&ds.graph, k, 0);
        let plan = Arc::new(PartitionPlan::build(&ds, &part));
        let mut rows = Vec::new();
        for p in [1.0, 0.1] {
            let exact_mb = {
                let run = train_with_plan(&plan, &cfg(scale, p, WirePrecision::Exact));
                let mb = run.epoch_comm_mb();
                rows.push(row(p, WirePrecision::Exact, &run, 1.0, &cost, wscale));
                mb
            };
            for precision in [WirePrecision::F16, WirePrecision::Bf16, WirePrecision::Int8] {
                let run = train_with_plan(&plan, &cfg(scale, p, precision));
                let reduction = exact_mb / run.epoch_comm_mb().max(1e-12);
                rows.push(row(p, precision, &run, reduction, &cost, wscale));
            }
        }
        print_table(
            &format!("quant: accuracy vs p vs wire precision, reddit-sim(d={D}), {k} partitions"),
            &[
                "p",
                "wire",
                "test acc (%)",
                "comm MB/ep",
                "reduction",
                "epoch wall",
                "sim epoch",
            ],
            &rows,
        );
    }
    println!(
        "\n(reduction = boundary bytes vs the exact wire at the same p; \
         f16/bf16 are exactly 2x, int8 is 4d/(d+8) = {:.2}x at d = {D}; \
         sim epoch uses the PCIe cost model at paper scale, where the \
         byte reduction translates into epoch-time reduction)",
        4.0 * D as f64 / (D as f64 + 8.0)
    );
}

fn row(
    p: f64,
    precision: WirePrecision,
    run: &bns_gcn::engine::TrainRun,
    reduction: f64,
    cost: &CostModel,
    wscale: f64,
) -> Vec<String> {
    let sim = run.avg_sim_epoch_scaled(cost, wscale);
    vec![
        format!("{p}"),
        precision.to_string(),
        f3(run.final_test * 100.0),
        f2(run.epoch_comm_mb()),
        format!("{}x", f2(reduction)),
        format!("{:.1}ms", run.avg_epoch_s() * 1e3),
        format!("{:.2}ms", sim.total() * 1e3),
    ]
}
