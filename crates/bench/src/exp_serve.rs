//! `repro serve`: the inference-serving sweep — boundary-cache capacity
//! × batch-size bound under open-loop Poisson load, plus a bursty
//! (flash-crowd) leg, on a k=4 partition-sharded deployment.
//!
//! The offered rate is calibrated against this machine *per batch
//! size*: a probe times warmed, distinct batches of that size on every
//! shard, and each sweep point then offers ~50% of its own aggregate
//! capacity. A single fixed rate cannot serve the whole sweep — a rate
//! batch-32 sustains overloads batch-1 by an order of magnitude and
//! the open-loop queues blow up without bound (open-loop load is
//! honest that way; see [`bns_serve::replay_open_loop`]). Query mix is
//! degree-proportional, the skew a degree-pinned cache is built for.
//! Results land in the printed table and in `target/serve_sweep.csv`.

use crate::{f2, pct, print_table, Scale, DATA_SEED};
use bns_data::Dataset;
use bns_gcn::engine::{train, ModelArch, TrainConfig, TrainedModel};
use bns_gcn::sampling::BoundarySampling;
use bns_partition::{MetisLikePartitioner, Partitioner, Partitioning};
use bns_serve::{
    replay_open_loop, Arrivals, BatchPolicy, CacheConfig, NodeMix, ServeConfig, ServeEngine,
    ServePlan, ServeReport,
};
use bns_tensor::SeededRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shard count for the serving deployment (the acceptance floor).
const K: usize = 4;

/// Trains (or reloads a cached copy of) the 2-layer GraphSAGE model the
/// deployment serves. The binary model format exists precisely so the
/// sweep does not retrain on every invocation: the first run trains and
/// saves under `target/`, later runs deserialize bit-identically.
fn model_for(ds: &Arc<Dataset>, part: &Partitioning, scale: Scale) -> TrainedModel {
    let tag = match scale {
        Scale::Small => "small",
        Scale::Full => "full",
    };
    let path = std::path::PathBuf::from("target").join(format!("serve-model-{tag}-k{K}.bnsm"));
    if let Ok(m) = TrainedModel::load(&path) {
        if m.num_classes() == ds.num_classes && m.feat_dim() == ds.feat_dim() {
            println!("[serve] loaded cached model: {}", path.display());
            return m;
        }
    }
    let cfg = TrainConfig {
        arch: ModelArch::Sage,
        hidden: vec![64],
        dropout: 0.3,
        lr: 0.01,
        epochs: scale.epochs(10, 30),
        sampling: BoundarySampling::Bns { p: 0.1 },
        eval_every: 0,
        seed: DATA_SEED,
        clip_norm: Some(5.0),
        pipeline: false,
        workers: None,
        wire_precision: None,
    };
    let t0 = Instant::now();
    let m = train(ds, part, &cfg).model;
    println!(
        "[serve] trained {} epochs in {:.1}s",
        cfg.epochs,
        t0.elapsed().as_secs_f64()
    );
    let dir = std::path::Path::new("target");
    if (dir.exists() || std::fs::create_dir_all(dir).is_ok()) && m.save(&path).is_ok() {
        println!("[serve] model cached at {}", path.display());
    }
    m
}

/// Estimates aggregate deployment capacity (queries/sec) at one batch
/// size by timing warmed, *distinct* batches on every shard (repeating
/// one batch would let cache hits flatter the number). Per-shard rates
/// sum only as far as the machine has cores to run the shard workers
/// concurrently, so the serial-probe sum is scaled by
/// `min(k, available_parallelism) / k`.
fn calibrate_capacity(plan: &ServePlan, batch: usize, pool: &[u32]) -> f64 {
    let mut capacity = 0.0;
    for rank in 0..plan.k {
        // Probe with the sweep's most admission-heavy cache config so
        // the offered rate is sustainable for every row of the table.
        let mut server = plan.shard(
            rank,
            CacheConfig {
                capacity_ratio: 1.0,
                pin_fraction: 0.5,
            },
        );
        let mine: Vec<u32> = pool
            .iter()
            .copied()
            .filter(|&v| plan.owner_of(v) == rank)
            .take(batch * 8)
            .collect();
        if mine.is_empty() {
            continue;
        }
        for chunk in mine.chunks(batch) {
            server.serve_batch(chunk); // warm caches and scratch
        }
        let t0 = Instant::now();
        for chunk in mine.chunks(batch) {
            server.serve_batch(chunk);
        }
        capacity += mine.len() as f64 / t0.elapsed().as_secs_f64();
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    (capacity * cores.min(plan.k) as f64 / plan.k as f64).max(1.0)
}

fn run_point(
    plan: &ServePlan,
    cache: CacheConfig,
    batch: usize,
    schedule: &[f64],
    nodes: &[u32],
) -> (usize, ServeReport) {
    let cfg = ServeConfig {
        policy: BatchPolicy {
            max_batch: batch,
            linger: Duration::from_micros(200),
        },
        queue_capacity: 4096,
        cache,
        threads_per_shard: 1,
    };
    let engine = ServeEngine::start(plan, &cfg);
    let accepted = replay_open_loop(&engine, schedule, nodes);
    (accepted, engine.shutdown())
}

/// The serving sweep: cache ratio × max batch under Poisson load, then
/// one bursty-vs-Poisson comparison at the sweep's middle point.
pub fn serve(scale: Scale) {
    let ds = crate::reddit(scale);
    let part = MetisLikePartitioner::default().partition(&ds.graph, K, 0);
    let model = model_for(&ds, &part, scale);
    let plan = ServePlan::build(&ds, &part, model);
    let mut rng = SeededRng::new(DATA_SEED ^ 0x5e47e);

    let duration_s = match scale {
        Scale::Small => 1.5,
        Scale::Full => 4.0,
    };
    let probe_pool = NodeMix::DegreeProportional.sample(&ds.graph, 2048, &mut rng);
    let ratios = [0.0f64, 0.25, 1.0];
    let batches = [1usize, 8, 32];
    let rates: Vec<f64> = batches
        .iter()
        .map(|&b| {
            let cap = calibrate_capacity(&plan, b, &probe_pool);
            let rate = (cap * 0.4).clamp(50.0, 50_000.0);
            println!(
                "[serve] batch {b}: calibrated capacity ~{cap:.0} q/s, offering {rate:.0} q/s"
            );
            rate
        })
        .collect();

    let mut rows = Vec::new();
    let mut csv = String::from(
        "cache_ratio,max_batch,offered_qps,queries,p50_us,p99_us,p999_us,qps,hit_rate,avg_batch\n",
    );
    for &ratio in &ratios {
        for (&batch, &rate) in batches.iter().zip(&rates) {
            let cache = if ratio <= 0.0 {
                CacheConfig::disabled()
            } else {
                CacheConfig {
                    capacity_ratio: ratio,
                    pin_fraction: 0.5,
                }
            };
            let schedule = Arrivals::Poisson { rate }.schedule(duration_s, &mut rng);
            let nodes = NodeMix::DegreeProportional.sample(&ds.graph, schedule.len(), &mut rng);
            let (accepted, report) = run_point(&plan, cache, batch, &schedule, &nodes);
            let s = report.summary();
            let hit = report.cache.hit_rate();
            rows.push(vec![
                f2(ratio),
                batch.to_string(),
                format!("{rate:.0}"),
                accepted.to_string(),
                format!("{:.0}", s.p50_us),
                format!("{:.0}", s.p99_us),
                format!("{:.0}", s.p999_us),
                format!("{:.0}", s.qps),
                pct(hit),
                f2(report.avg_batch()),
            ]);
            csv.push_str(&format!(
                "{ratio},{batch},{rate:.1},{accepted},{:.1},{:.1},{:.1},{:.1},{:.4},{:.2}\n",
                s.p50_us,
                s.p99_us,
                s.p999_us,
                s.qps,
                hit,
                report.avg_batch()
            ));
        }
    }
    print_table(
        "repro serve: Poisson sweep, cache ratio x max batch (k=4, reddit-sim)",
        &[
            "cache", "batch", "offered", "queries", "p50 us", "p99 us", "p99.9 us", "qps", "hit",
            "avg b",
        ],
        &rows,
    );
    let csv_path = "target/serve_sweep.csv";
    match std::fs::write(csv_path, &csv) {
        Ok(()) => println!("[serve] sweep csv -> {csv_path}"),
        Err(e) => eprintln!("[serve] could not write {csv_path}: {e}"),
    }

    // Bursty leg: same mean rate as the batch-32 Poisson point,
    // flash-crowd shape — tail latency is where open-loop bursts bite.
    let rate = rates[batches.len() - 1];
    let cache = CacheConfig {
        capacity_ratio: 0.25,
        pin_fraction: 0.5,
    };
    let bursty = Arrivals::Bursty {
        base_rate: rate * 0.2,
        burst_rate: rate * 1.8,
        on_s: 0.25,
        off_s: 0.25,
    };
    let mut rows = Vec::new();
    for (name, arrivals) in [
        ("poisson", Arrivals::Poisson { rate }),
        ("bursty 9:1", bursty),
    ] {
        let sched = arrivals.schedule(duration_s, &mut rng);
        let targets = NodeMix::DegreeProportional.sample(&ds.graph, sched.len(), &mut rng);
        let (accepted, report) = run_point(&plan, cache, 32, &sched, &targets);
        let s = report.summary();
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", arrivals.mean_rate()),
            accepted.to_string(),
            format!("{:.0}", s.p50_us),
            format!("{:.0}", s.p99_us),
            format!("{:.0}", s.p999_us),
            format!("{:.0}", s.qps),
            pct(report.cache.hit_rate()),
        ]);
    }
    print_table(
        "repro serve: arrival-process shape at cache=0.25, batch=32",
        &[
            "arrivals", "mean q/s", "queries", "p50 us", "p99 us", "p99.9 us", "qps", "hit",
        ],
        &rows,
    );
}
