//! Extension ablations beyond the paper's own tables:
//!
//! * **A — the `1/p` rescale matters:** BNS with and without the
//!   unbiased feature rescale, across sampling rates.
//! * **B — partitioner objective:** edge-cut vs communication-volume
//!   refinement, and what each costs BNS-GCN per epoch.
//! * **C — plain-GCN generality:** BNS applied to the symmetric-
//!   normalized GCN architecture (the propagation of the paper's
//!   Appendix A), complementing the paper's GAT check.

use crate::{f2, f3, print_table, Scale};
use bns_gcn::engine::{train_with_plan, ModelArch, TrainConfig};
use bns_gcn::plan::PartitionPlan;
use bns_gcn::sampling::BoundarySampling;
use bns_partition::{metrics, MetisLikePartitioner, Objective, Partitioner};
use std::sync::Arc;

fn cfg(sampling: BoundarySampling, epochs: usize, arch: ModelArch) -> TrainConfig {
    TrainConfig {
        arch,
        hidden: vec![64, 64],
        dropout: 0.3,
        lr: 0.01,
        epochs,
        sampling,
        eval_every: 0,
        seed: 7,
        clip_norm: Some(1.0),
        pipeline: false,
        workers: None,
        wire_precision: None,
    }
}

/// Ablation A: accuracy of BNS vs BNS-without-rescale.
pub fn ablation_rescale(scale: Scale) {
    let ds = crate::products(scale);
    let part = MetisLikePartitioner::default().partition(&ds.graph, 8, 0);
    let plan = Arc::new(PartitionPlan::build(&ds, &part));
    let epochs = scale.epochs(40, 120);
    let mut rows = Vec::new();
    for p in [0.5, 0.2, 0.1] {
        let scaled = train_with_plan(
            &plan,
            &cfg(BoundarySampling::Bns { p }, epochs, ModelArch::Sage),
        );
        let unscaled = train_with_plan(
            &plan,
            &cfg(BoundarySampling::BnsUnscaled { p }, epochs, ModelArch::Sage),
        );
        rows.push(vec![
            format!("p={p}"),
            f3(scaled.final_test * 100.0),
            f3(unscaled.final_test * 100.0),
            format!("{:+.2}", (scaled.final_test - unscaled.final_test) * 100.0),
        ]);
    }
    print_table(
        "Ablation A: unbiased 1/p rescale vs none, products-sim, 8 partitions (test acc %)",
        &["rate", "BNS (unbiased)", "BNS unscaled (biased)", "delta"],
        &rows,
    );
}

/// Ablation B: partitioner refinement objective vs the costs BNS pays.
pub fn ablation_objective(scale: Scale) {
    let ds = crate::reddit(scale);
    let k = 8;
    let mut rows = Vec::new();
    for (label, obj) in [
        ("edge-cut", Objective::EdgeCut),
        ("comm-volume", Objective::CommVolume),
    ] {
        let part = MetisLikePartitioner {
            objective: obj,
            ..Default::default()
        }
        .partition(&ds.graph, k, 0);
        let vol = metrics::comm_volume(&ds.graph, &part);
        let cut = metrics::edge_cut(&ds.graph, &part);
        let plan = Arc::new(PartitionPlan::build(&ds, &part));
        let run = train_with_plan(
            &plan,
            &cfg(BoundarySampling::Bns { p: 0.1 }, 4, ModelArch::Sage),
        );
        rows.push(vec![
            label.to_string(),
            cut.to_string(),
            vol.to_string(),
            format!("{:.2}MB", run.epoch_comm_mb()),
        ]);
    }
    print_table(
        &format!("Ablation B: refinement objective, reddit-sim, {k} partitions"),
        &[
            "objective",
            "edge cut",
            "comm volume",
            "BNS(0.1) epoch comm",
        ],
        &rows,
    );
}

/// Ablation C: BNS on the plain-GCN architecture.
pub fn ablation_gcn(scale: Scale) {
    let ds = crate::reddit(scale);
    let part = MetisLikePartitioner::default().partition(&ds.graph, 4, 0);
    let plan = Arc::new(PartitionPlan::build(&ds, &part));
    let epochs = scale.epochs(40, 120);
    let mut rows = Vec::new();
    let base = train_with_plan(
        &plan,
        &cfg(BoundarySampling::Bns { p: 1.0 }, epochs, ModelArch::Gcn),
    );
    for p in [1.0, 0.1, 0.01] {
        let run = train_with_plan(
            &plan,
            &cfg(BoundarySampling::Bns { p }, epochs, ModelArch::Gcn),
        );
        rows.push(vec![
            format!("GCN + BNS(p={p})"),
            f3(run.final_test * 100.0),
            format!(
                "{}x",
                f2(base.epoch_comm_mb() / run.epoch_comm_mb().max(1e-9))
            ),
        ]);
    }
    print_table(
        "Ablation C: plain GCN under BNS, reddit-sim, 4 partitions",
        &["method", "test acc (%)", "comm reduction"],
        &rows,
    );
}

/// Ablation D: communication *reduction* (BNS) vs communication
/// *hiding* (PipeGCN-style 1-epoch-stale pipelining) — the two
/// approaches the paper's introduction contrasts, head to head on the
/// same engine.
pub fn ablation_pipeline(scale: Scale) {
    use bns_comm::CostModel;
    let ds = crate::reddit(scale);
    let part = MetisLikePartitioner::default().partition(&ds.graph, 8, 0);
    let plan = Arc::new(PartitionPlan::build(&ds, &part));
    let cost = CostModel::pcie3();
    let epochs = scale.epochs(40, 120);
    let w = crate::wscale(&ds);
    let mut rows = Vec::new();
    let mut run_case = |label: &str, sampling: BoundarySampling, pipeline: bool| {
        let mut c = cfg(sampling, epochs, ModelArch::Sage);
        c.pipeline = pipeline;
        let run = train_with_plan(&plan, &c);
        let sim = run.avg_sim_epoch_scaled(&cost, w);
        let t = if pipeline {
            sim.pipelined_total()
        } else {
            sim.total()
        };
        rows.push(vec![
            label.to_string(),
            f3(run.final_test * 100.0),
            format!("{:.2}ms", t * 1e3),
            format!("{:.2}MB", run.epoch_comm_mb()),
        ]);
    };
    run_case(
        "sync p=1 (vanilla)",
        BoundarySampling::Bns { p: 1.0 },
        false,
    );
    run_case(
        "pipelined p=1 (PipeGCN-style)",
        BoundarySampling::Bns { p: 1.0 },
        true,
    );
    run_case("BNS p=0.1", BoundarySampling::Bns { p: 0.1 }, false);
    run_case("BNS p=0.01", BoundarySampling::Bns { p: 0.01 }, false);
    print_table(
        "Ablation D: comm hiding (pipelining) vs comm reduction (BNS), reddit-sim, 8 partitions",
        &["method", "test acc (%)", "sim epoch time", "epoch comm"],
        &rows,
    );
    println!(
        "(pipelining hides full-boundary comm behind compute but still \
         pays its memory and bandwidth; BNS removes the traffic itself)"
    );
}

/// Runs all four ablations.
pub fn all(scale: Scale) {
    ablation_rescale(scale);
    ablation_objective(scale);
    ablation_gcn(scale);
    ablation_pipeline(scale);
}
