//! Partition-structure experiments: Table 1 (boundary vs inner nodes),
//! Figure 3 (boundary/inner ratio distribution at 192 partitions) and
//! the boundary-count column of Table 8.

use crate::{f2, print_table, Scale};
use bns_partition::{metrics, MetisLikePartitioner, Partitioner, Partitioning, RandomPartitioner};

/// Paper Table 1: inner / boundary node counts and their ratio for a
/// 10-way METIS-like partition of reddit-sim.
pub fn table1(scale: Scale) {
    let ds = crate::reddit(scale);
    let part = MetisLikePartitioner::default().partition(&ds.graph, 10, 0);
    let report = metrics::PartitionReport::of(&ds.graph, &part);
    let mut rows = Vec::new();
    rows.push(
        std::iter::once("# Inner Nodes".to_string())
            .chain(
                report
                    .inner
                    .iter()
                    .map(|x| format!("{:.1}k", *x as f64 / 1e3)),
            )
            .collect(),
    );
    rows.push(
        std::iter::once("# Boundary Nodes".to_string())
            .chain(
                report
                    .boundary
                    .iter()
                    .map(|x| format!("{:.1}k", *x as f64 / 1e3)),
            )
            .collect(),
    );
    rows.push(
        std::iter::once("Boundary/Inner".to_string())
            .chain(report.ratio.iter().map(|r| f2(*r)))
            .collect(),
    );
    let mut header = vec!["Partition".to_string()];
    header.extend((1..=10).map(|i| i.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(
        "Table 1: boundary vs inner nodes, reddit-sim, METIS-like, 10 partitions",
        &header_refs,
        &rows,
    );
    println!(
        "total comm volume (Eq. 3) = {} boundary nodes; edge cut = {}; imbalance = {:.3}",
        report.comm_volume, report.edge_cut, report.imbalance
    );
    // For comparison, the random-partition boundary explosion.
    let rnd = RandomPartitioner.partition(&ds.graph, 10, 0);
    let rnd_vol = metrics::comm_volume(&ds.graph, &rnd);
    println!(
        "random partition comm volume = {rnd_vol} ({}x the METIS-like volume)",
        f2(rnd_vol as f64 / report.comm_volume.max(1) as f64)
    );
}

/// Paper Figure 3: distribution of boundary/inner ratios across 192
/// partitions of papers100m-sim.
pub fn fig3(scale: Scale) {
    let ds = crate::papers(scale);
    let k = 192;
    let part = MetisLikePartitioner::default().partition(&ds.graph, k, 0);
    let report = metrics::PartitionReport::of(&ds.graph, &part);
    // Histogram of ratios, bucket width 1.
    let max_ratio = report.ratio.iter().cloned().fold(0.0f64, f64::max);
    let buckets = (max_ratio.ceil() as usize + 1).max(1);
    let mut hist = vec![0usize; buckets];
    for &r in &report.ratio {
        hist[(r.floor() as usize).min(buckets - 1)] += 1;
    }
    let rows: Vec<Vec<String>> = hist
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(b, &c)| {
            vec![
                format!("[{b}, {})", b + 1),
                c.to_string(),
                "#".repeat(c * 60 / k),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 3: boundary/inner ratio distribution, papers100m-sim, {k} partitions"),
        &["ratio bucket", "#partitions", ""],
        &rows,
    );
    let mean = report.ratio.iter().sum::<f64>() / k as f64;
    println!(
        "ratio mean = {:.2}, max (straggler) = {:.2} -> straggler/mean = {:.2}",
        mean,
        max_ratio,
        max_ratio / mean
    );
}

/// The partition-quality half of Table 8: boundary-node counts under
/// METIS-like vs random partitioning on all three datasets.
pub fn table8_partitions(scale: Scale) -> Vec<(String, Partitioning, Partitioning)> {
    let sets = [
        ("reddit-sim", crate::reddit(scale), 8usize),
        ("products-sim", crate::products(scale), 10),
        ("yelp-sim", crate::yelp(scale), 10),
    ];
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (name, ds, k) in sets {
        let metis = MetisLikePartitioner::default().partition(&ds.graph, k, 0);
        let random = RandomPartitioner.partition(&ds.graph, k, 0);
        let bm = bns_partition::metrics::comm_volume(&ds.graph, &metis);
        let br = bns_partition::metrics::comm_volume(&ds.graph, &random);
        rows.push(vec![
            format!("{name} ({k} partitions)"),
            format!("{:.0}k", bm as f64 / 1e3),
            format!("{:.0}k", br as f64 / 1e3),
        ]);
        out.push((name.to_string(), metis, random));
    }
    print_table(
        "Table 8 (structure): # boundary nodes, METIS-like vs random",
        &["dataset", "METIS", "Random"],
        &rows,
    );
    out
}
