//! Regenerates every table and figure of the BNS-GCN paper's evaluation
//! on the synthetic stand-in datasets.
//!
//! ```text
//! repro <experiment> [--scale small|full] [--trace <path>]
//!        [--flame <path>] [--metrics <path>]
//! repro all [--scale small|full]
//! ```
//!
//! Experiments: table1, table2, fig3, fig4, table4, table5, fig5,
//! table6, fig6, fig7, fig8, table7, table8, table9, table10, table11,
//! table12, table13, fig9, ksweep, quant, ablations, serve.
//!
//! `--trace` enables telemetry capture and writes a Chrome trace-event
//! JSON profile of the run (open in `chrome://tracing` or Perfetto);
//! `--flame` writes a per-rank plain-text span summary and `--metrics`
//! a CSV of counters/gauges/time series. Any of the three turns
//! capture on.

use bns_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut exps: Vec<String> = Vec::new();
    let mut trace_path: Option<String> = None;
    let mut flame_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let path_arg = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} expects a file path");
            std::process::exit(2);
        })
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| {
                        eprintln!("--scale expects 'small' or 'full'");
                        std::process::exit(2);
                    });
            }
            "--trace" => trace_path = Some(path_arg(&args, &mut i, "--trace")),
            "--flame" => flame_path = Some(path_arg(&args, &mut i, "--flame")),
            "--metrics" => metrics_path = Some(path_arg(&args, &mut i, "--metrics")),
            other => exps.push(other.to_string()),
        }
        i += 1;
    }
    if exps.is_empty() {
        eprintln!(
            "usage: repro <experiment|all> [--scale small|full] [--trace <path>] \
             [--flame <path>] [--metrics <path>]"
        );
        eprintln!("{}", EXPERIMENTS.join(", "));
        std::process::exit(2);
    }
    if exps.iter().any(|e| e == "all") {
        exps = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    let capture = trace_path.is_some() || flame_path.is_some() || metrics_path.is_some();
    if capture {
        bns_telemetry::enable();
    }

    for e in &exps {
        let t0 = std::time::Instant::now();
        println!("\n==== {e} (scale: {scale:?}) ====");
        run_experiment(e, scale);
        println!("[{e} finished in {:.1}s]", t0.elapsed().as_secs_f64());
    }

    if capture {
        bns_telemetry::disable();
        let spans = bns_telemetry::drain_spans();
        if let Some(path) = &trace_path {
            write_or_die(path, &bns_telemetry::export::chrome_trace(&spans));
            println!("[trace: {} spans -> {path}]", spans.len());
        }
        if let Some(path) = &flame_path {
            write_or_die(path, &bns_telemetry::export::flame_summary(&spans));
            println!("[flame summary -> {path}]");
        }
        if let Some(path) = &metrics_path {
            let snapshot = bns_telemetry::metrics_snapshot();
            write_or_die(path, &bns_telemetry::export::csv_time_series(&snapshot));
            println!("[metrics csv -> {path}]");
        }
    }
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
}

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "fig3",
    "fig4",
    "table4",
    "table5",
    "fig5",
    "table6",
    "fig6",
    "fig7",
    "fig8",
    "table7",
    "table8",
    "table9",
    "table10",
    "table11",
    "table12",
    "table13",
    "fig9",
    "ksweep",
    "quant",
    "ablations",
    "serve",
];

fn run_experiment(name: &str, scale: Scale) {
    match name {
        "table1" => exp_partition::table1(scale),
        "fig3" => exp_partition::fig3(scale),
        "table2" => exp_variance::table2(scale),
        "fig4" => exp_throughput::fig4(scale),
        "fig5" => exp_throughput::fig5(scale),
        "table6" => exp_throughput::table6(scale),
        "table12" => exp_throughput::table12(scale),
        "ksweep" => exp_throughput::ksweep(scale),
        "table4" => exp_accuracy::table4(scale),
        "table5" => exp_accuracy::table5(scale),
        "table7" => exp_accuracy::table7(scale),
        "table13" => exp_accuracy::table13(scale),
        "fig7" => exp_accuracy::convergence(scale, "fig7"),
        "fig9" => exp_accuracy::convergence(scale, "fig9"),
        "fig6" => exp_memory::fig6(scale),
        "fig8" => exp_memory::fig8(scale),
        "table9" => exp_edge::table9(scale),
        "table10" => exp_gat::table10(scale),
        "table11" => exp_sampling::table11(scale),
        "table8" => exp_sampling::table8(scale),
        "quant" => exp_quant::quant(scale),
        "ablations" => exp_ablation::all(scale),
        "serve" => exp_serve::serve(scale),
        other => {
            eprintln!("unknown experiment '{other}'");
            std::process::exit(2);
        }
    }
}
