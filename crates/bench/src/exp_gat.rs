//! Table 10: BNS-GCN speedup on a 2-layer GAT model — the paper's
//! check that the method generalizes beyond GraphSAGE.

use crate::{f2, print_table, Scale};
use bns_gcn::engine::{train_with_plan, ModelArch, TrainConfig};
use bns_gcn::plan::PartitionPlan;
use bns_gcn::sampling::BoundarySampling;
use bns_partition::{MetisLikePartitioner, Partitioner};
use std::sync::Arc;

/// Paper Table 10: epoch-time speedup of BNS-GCN on a 2-layer GAT with
/// 10 partitions, per dataset and sampling rate.
pub fn table10(scale: Scale) {
    let cost = bns_comm::CostModel::pcie3();
    let sets = [
        ("reddit-sim", crate::reddit(scale)),
        ("products-sim", crate::products(scale)),
        ("yelp-sim", crate::yelp(scale)),
    ];
    let mut rows = Vec::new();
    for (name, ds) in sets {
        let part = MetisLikePartitioner::default().partition(&ds.graph, 10, 0);
        let plan = Arc::new(PartitionPlan::build(&ds, &part));
        let time_at = |p: f64| -> f64 {
            let cfg = TrainConfig {
                arch: ModelArch::Gat,
                hidden: vec![64], // 2-layer GAT, as in the paper
                dropout: 0.0,
                lr: 0.01,
                epochs: scale.epochs(3, 6),
                sampling: BoundarySampling::Bns { p },
                eval_every: 0,
                seed: 7,
                clip_norm: None,
                pipeline: false,
                workers: None,
                wire_precision: None,
            };
            let run = train_with_plan(&plan, &cfg);
            run.avg_sim_epoch_scaled(&cost, crate::wscale(&ds)).total()
        };
        let base = time_at(1.0);
        let mut cells = vec![name.to_string(), format!("1.00x ({:.3}s)", base)];
        for p in [0.1, 0.01, 0.0] {
            cells.push(format!("{}x", f2(base / time_at(p))));
        }
        rows.push(cells);
    }
    print_table(
        "Table 10: simulated GAT epoch-time speedup, 10 partitions",
        &["dataset", "p=1", "p=0.1", "p=0.01", "p=0"],
        &rows,
    );
}
