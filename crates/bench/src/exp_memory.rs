//! Memory experiments: Figure 6 (memory reduction vs sampling rate) and
//! Figure 8 (per-partition memory balance at 192 partitions).

use crate::{pct, print_table, Scale};
use bns_gcn::engine::{train_with_plan, ModelArch, TrainConfig};
use bns_gcn::plan::PartitionPlan;
use bns_gcn::sampling::BoundarySampling;
use bns_partition::{MetisLikePartitioner, Partitioner};
use std::sync::Arc;

fn mem_cfg(p: f64) -> TrainConfig {
    TrainConfig {
        arch: ModelArch::Sage,
        hidden: vec![64, 64],
        dropout: 0.5,
        lr: 0.01,
        epochs: 3,
        sampling: BoundarySampling::Bns { p },
        eval_every: 0,
        seed: 1,
        clip_norm: None,
        pipeline: false,
        workers: None,
        wire_precision: None,
    }
}

/// Paper Figure 6: peak per-rank memory (Eq. 4-style activation model)
/// reduction relative to `p = 1`, across partition counts.
pub fn fig6(scale: Scale) {
    let sets = [
        ("reddit-sim", crate::reddit(scale), vec![2usize, 4, 8]),
        ("products-sim", crate::products(scale), vec![5, 8, 10]),
    ];
    for (name, ds, ks) in sets {
        let mut rows = Vec::new();
        for &k in &ks {
            let part = MetisLikePartitioner::default().partition(&ds.graph, k, 0);
            let plan = Arc::new(PartitionPlan::build(&ds, &part));
            let peak = |p: f64| -> u64 {
                let run = train_with_plan(&plan, &mem_cfg(p));
                *run.peak_mem_per_rank.iter().max().unwrap()
            };
            let m1 = peak(1.0);
            let m01 = peak(0.1);
            let m001 = peak(0.01);
            rows.push(vec![
                k.to_string(),
                format!("{:.1}MB", m1 as f64 / 1e6),
                pct(1.0 - m01 as f64 / m1 as f64),
                pct(1.0 - m001 as f64 / m1 as f64),
            ]);
        }
        print_table(
            &format!("Figure 6: peak-memory reduction vs p=1, {name}"),
            &[
                "#partitions",
                "mem @ p=1",
                "saving @ p=0.1",
                "saving @ p=0.01",
            ],
            &rows,
        );
    }
}

/// Paper Figure 8: distribution of normalized per-partition memory at
/// 192 partitions of papers100m-sim, per sampling rate. Normalization
/// is against the heaviest partition at the same `p`.
pub fn fig8(scale: Scale) {
    let ds = crate::papers(scale);
    let k = 192;
    let part = MetisLikePartitioner::default().partition(&ds.graph, k, 0);
    let plan = Arc::new(PartitionPlan::build(&ds, &part));
    let mut rows = Vec::new();
    for p in [1.0, 0.1, 0.01] {
        let run = train_with_plan(&plan, &mem_cfg(p));
        let max = *run.peak_mem_per_rank.iter().max().unwrap() as f64;
        let mut norm: Vec<f64> = run
            .peak_mem_per_rank
            .iter()
            .map(|&m| m as f64 / max)
            .collect();
        norm.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |f: f64| norm[((f * (k - 1) as f64) as usize).min(k - 1)];
        rows.push(vec![
            format!("p={p}"),
            pct(q(0.0)),
            pct(q(0.25)),
            pct(q(0.5)),
            pct(q(0.75)),
            pct(q(1.0)),
        ]);
    }
    print_table(
        &format!("Figure 8: normalized per-partition memory, papers100m-sim, {k} partitions"),
        &["sampling", "min", "q1", "median", "q3", "max"],
        &rows,
    );
    println!("(higher min/q1 at small p = better balanced memory, paper Fig. 8)");
}
