//! Experiment harness for the BNS-GCN reproduction: one module per
//! group of tables/figures, shared sizing and table-printing utilities.
//!
//! Run experiments with the `repro` binary:
//!
//! ```text
//! cargo run -p bns-bench --release --bin repro -- table1
//! cargo run -p bns-bench --release --bin repro -- all --scale small
//! ```
//!
//! Every experiment prints the same rows/series the paper reports.
//! Absolute numbers differ (synthetic scaled datasets, CPU threads
//! instead of GPUs) — the *shape* is the reproduced quantity; see
//! `EXPERIMENTS.md` for the paper-vs-measured comparison.

// No unsafe here, enforced at compile time (the audited unsafe lives in
// bns-tensor, bns-nn and the vendored loom shim; see UNSAFE_LEDGER.md).
#![forbid(unsafe_code)]
pub mod exp_ablation;
pub mod exp_accuracy;
pub mod exp_edge;
pub mod exp_gat;
pub mod exp_memory;
pub mod exp_partition;
pub mod exp_quant;
pub mod exp_sampling;
pub mod exp_serve;
pub mod exp_throughput;
pub mod exp_variance;

use bns_data::{Dataset, SyntheticSpec};
use std::sync::Arc;

/// Experiment sizing: `Small` finishes the full suite in minutes;
/// `Full` uses the DESIGN.md dataset sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced node counts and epochs (default).
    Small,
    /// DESIGN.md-scale datasets.
    Full,
}

impl Scale {
    /// Parses `"small"` / `"full"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Scales a node count.
    pub fn nodes(&self, small: usize, full: usize) -> usize {
        match self {
            Scale::Small => small,
            Scale::Full => full,
        }
    }

    /// Scales an epoch count.
    pub fn epochs(&self, small: usize, full: usize) -> usize {
        match self {
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

/// Dataset seeds fixed across experiments so every table sees the same
/// graphs.
pub const DATA_SEED: u64 = 2022;

/// The reddit-sim dataset at the given scale.
pub fn reddit(scale: Scale) -> Arc<Dataset> {
    Arc::new(
        SyntheticSpec::reddit_sim()
            .with_nodes(scale.nodes(6_000, 24_000))
            .generate(DATA_SEED),
    )
}

/// The products-sim dataset at the given scale.
pub fn products(scale: Scale) -> Arc<Dataset> {
    Arc::new(
        SyntheticSpec::products_sim()
            .with_nodes(scale.nodes(8_000, 36_000))
            .generate(DATA_SEED + 1),
    )
}

/// The yelp-sim dataset at the given scale.
pub fn yelp(scale: Scale) -> Arc<Dataset> {
    Arc::new(
        SyntheticSpec::yelp_sim()
            .with_nodes(scale.nodes(6_000, 24_000))
            .generate(DATA_SEED + 2),
    )
}

/// The papers100m-sim dataset (topology studies; labels barely used).
pub fn papers(scale: Scale) -> Arc<Dataset> {
    Arc::new(
        SyntheticSpec::papers100m_sim()
            .with_nodes(scale.nodes(30_000, 120_000))
            .generate(DATA_SEED + 3),
    )
}

/// The node count of the *real* dataset a synthetic stand-in represents
/// (paper Table 3). Timing experiments project measured bytes/FLOPs up
/// by `paper_nodes / sim_nodes` so transfers sit in the paper's
/// bandwidth-bound regime rather than the latency-bound regime of the
/// scaled-down graphs.
pub fn paper_nodes(name: &str) -> f64 {
    match name {
        "reddit-sim" => 233_000.0,
        "products-sim" => 2_400_000.0,
        "yelp-sim" => 716_000.0,
        "papers100m-sim" => 111_000_000.0,
        _ => 1.0,
    }
}

/// Workload scale factor for a dataset (see [`paper_nodes`]).
pub fn wscale(ds: &Dataset) -> f64 {
    paper_nodes(&ds.name) / ds.num_nodes() as f64
}

/// Prints a markdown-style table: header row then aligned data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        s
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    println!("{sep}");
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("medium"), None);
        assert_eq!(Scale::Small.nodes(5, 10), 5);
        assert_eq!(Scale::Full.nodes(5, 10), 10);
    }

    #[test]
    fn workload_scales_match_paper_sizes() {
        let ds = SyntheticSpec::reddit_sim().with_nodes(2_330).generate(0);
        assert!((wscale(&ds) - 100.0).abs() < 1e-9);
        assert_eq!(paper_nodes("unknown"), 1.0);
        assert!(paper_nodes("papers100m-sim") > paper_nodes("products-sim"));
    }

    #[test]
    fn datasets_are_cached_consistently() {
        // Same scale returns byte-identical datasets (fixed seeds).
        let a = reddit(Scale::Small);
        let b = reddit(Scale::Small);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.train, b.train);
    }

    #[test]
    fn formatting() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f3(1.2345), "1.234");
        assert_eq!(pct(0.123), "12.3%");
    }
}
