//! Criterion micro-benchmarks for the wire codecs: pack/unpack
//! throughput for f16/bf16/int8 (round-to-nearest and stochastic
//! rounding), forced-scalar vs the best backend this CPU supports, on
//! a boundary-block-sized input (2048 rows × 128 floats — 1 MB).
//!
//! The codecs are bitwise identical across backends by construction
//! (see `crates/tensor/tests/codec_roundtrip.rs`), so the scalar/simd
//! pairs measure pure throughput. The interesting number is MB/s
//! against the exchange's wire bandwidth: packing must be far cheaper
//! than the bytes it saves for the codec to be a win, and the
//! CHANGELOG records the measured margins.

use bns_tensor::simd::{self, codec, Backend};
use bns_tensor::SeededRng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const ROWS: usize = 2_048;
const D: usize = 128;

/// Benchmarks `f` forced to scalar and forced to the detected best
/// backend, under the given suffix labels.
fn bench_forced(c: &mut Criterion, name: &str, mut f: impl FnMut(Backend)) {
    c.bench_function(&format!("{name}_scalar"), |bch| {
        let _g = simd::force(Backend::Scalar);
        bch.iter(|| f(simd::begin_kernel()));
    });
    let best = simd::detect();
    c.bench_function(&format!("{name}_simd_{}", best.name()), |bch| {
        let _g = simd::force(best);
        bch.iter(|| f(simd::begin_kernel()));
    });
}

fn block() -> Vec<f32> {
    let mut rng = SeededRng::new(11);
    (0..ROWS * D)
        .map(|_| rng.uniform_range(-4.0, 4.0))
        .collect()
}

fn bench_pack(c: &mut Criterion) {
    let src = block();
    let mut half = vec![0u8; ROWS * D * 2];
    let mut i8w = vec![0u8; ROWS * (D + codec::INT8_HEADER_BYTES)];
    bench_forced(c, "quant_pack_f16_2k_d128", |bk| {
        codec::pack_f16(bk, &mut half, &src);
        black_box(half.first());
    });
    bench_forced(c, "quant_pack_bf16_2k_d128", |bk| {
        codec::pack_bf16(bk, &mut half, &src);
        black_box(half.first());
    });
    bench_forced(c, "quant_pack_int8_2k_d128", |bk| {
        codec::pack_int8(bk, &mut i8w, &src, D);
        black_box(i8w.first());
    });
}

fn bench_pack_sr(c: &mut Criterion) {
    let src = block();
    let mut half = vec![0u8; ROWS * D * 2];
    let mut i8w = vec![0u8; ROWS * (D + codec::INT8_HEADER_BYTES)];
    bench_forced(c, "quant_pack_f16_sr_2k_d128", |bk| {
        codec::pack_f16_sr(bk, &mut half, &src, D, 0x5eed);
        black_box(half.first());
    });
    bench_forced(c, "quant_pack_bf16_sr_2k_d128", |bk| {
        codec::pack_bf16_sr(bk, &mut half, &src, D, 0x5eed);
        black_box(half.first());
    });
    bench_forced(c, "quant_pack_int8_sr_2k_d128", |bk| {
        codec::pack_int8_sr(bk, &mut i8w, &src, D, 0x5eed);
        black_box(i8w.first());
    });
}

fn bench_unpack(c: &mut Criterion) {
    let src = block();
    let mut f16w = vec![0u8; ROWS * D * 2];
    codec::pack_f16(Backend::Scalar, &mut f16w, &src);
    let mut bf16w = vec![0u8; ROWS * D * 2];
    codec::pack_bf16(Backend::Scalar, &mut bf16w, &src);
    let mut i8w = vec![0u8; ROWS * (D + codec::INT8_HEADER_BYTES)];
    codec::pack_int8(Backend::Scalar, &mut i8w, &src, D);
    let mut out = vec![0.0f32; ROWS * D];
    // scale = 10.0 exercises the lanewise feature-scale multiply (the
    // 1/p rescale of the feature path; the gradient path's scale = 1.0
    // skips it).
    bench_forced(c, "quant_unpack_f16_2k_d128", |bk| {
        codec::unpack_f16(bk, &mut out, &f16w, 10.0);
        black_box(out.first());
    });
    bench_forced(c, "quant_unpack_bf16_2k_d128", |bk| {
        codec::unpack_bf16(bk, &mut out, &bf16w, 10.0);
        black_box(out.first());
    });
    bench_forced(c, "quant_unpack_int8_2k_d128", |bk| {
        codec::unpack_int8(bk, &mut out, &i8w, D, 10.0);
        black_box(out.first());
    });
}

criterion_group!(
    name = quant;
    config = Criterion::default().sample_size(10);
    targets = bench_pack, bench_pack_sr, bench_unpack
);
criterion_main!(quant);
