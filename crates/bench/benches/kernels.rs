//! Criterion micro-benchmarks for the hot kernels: dense matmul, sparse
//! aggregation, graph partitioning, boundary-sampling topology builds,
//! the ring all-reduce, SAGE layer forward/backward and one full
//! distributed training epoch.

use bns_comm::{run_ranks, TrafficClass};
use bns_data::SyntheticSpec;
use bns_gcn::engine::{train_with_plan, ModelArch, TrainConfig};
use bns_gcn::plan::PartitionPlan;
use bns_gcn::sampling::{build_epoch_topology, BoundarySampling};
use bns_nn::aggregate::scaled_sum_aggregate;
use bns_nn::{Activation, SageLayer};
use bns_partition::{MetisLikePartitioner, Partitioner, RandomPartitioner};
use bns_tensor::pool::{self, ThreadPool};
use bns_tensor::{Matrix, SeededRng};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = SeededRng::new(1);
    let a = Matrix::random_normal(256, 256, 0.0, 1.0, &mut rng);
    let b = Matrix::random_normal(256, 256, 0.0, 1.0, &mut rng);
    c.bench_function("matmul_256", |bch| {
        bch.iter(|| black_box(a.matmul(&b)));
    });
    c.bench_function("matmul_tn_256", |bch| {
        bch.iter(|| black_box(a.matmul_tn(&b)));
    });
}

/// Serial vs 4-thread pool on the largest matmul shape — the headline
/// comparison for the parallel backend (acceptance target: >= 2x at 4
/// threads on a machine with >= 4 cores).
fn bench_matmul_parallel(c: &mut Criterion) {
    let mut rng = SeededRng::new(6);
    let a = Matrix::random_normal(512, 512, 0.0, 1.0, &mut rng);
    let b = Matrix::random_normal(512, 512, 0.0, 1.0, &mut rng);
    c.bench_function("matmul_512_serial", |bch| {
        bch.iter(|| black_box(a.matmul(&b)));
    });
    c.bench_function("matmul_512_pool4", |bch| {
        let _guard = pool::install(ThreadPool::new(4));
        bch.iter(|| black_box(a.matmul(&b)));
    });
    c.bench_function("matmul_tn_512_pool4", |bch| {
        let _guard = pool::install(ThreadPool::new(4));
        bch.iter(|| black_box(a.matmul_tn(&b)));
    });
}

fn bench_aggregate(c: &mut Criterion) {
    let mut rng = SeededRng::new(2);
    let ds = SyntheticSpec::reddit_sim().with_nodes(4_000).generate(1);
    let n = ds.num_nodes();
    let h = Matrix::random_normal(n, 64, 0.0, 1.0, &mut rng);
    let scale = ds.mean_scale();
    c.bench_function("mean_aggregate_4k_d64", |bch| {
        bch.iter(|| black_box(scaled_sum_aggregate(&ds.graph, &h, n, &scale)));
    });
    c.bench_function("mean_aggregate_4k_d64_pool4", |bch| {
        let _guard = pool::install(ThreadPool::new(4));
        bch.iter(|| black_box(scaled_sum_aggregate(&ds.graph, &h, n, &scale)));
    });
}

fn bench_partitioners(c: &mut Criterion) {
    let ds = SyntheticSpec::reddit_sim().with_nodes(4_000).generate(1);
    c.bench_function("metis_like_partition_4k_k8", |bch| {
        bch.iter(|| black_box(MetisLikePartitioner::default().partition(&ds.graph, 8, 0)));
    });
    c.bench_function("random_partition_4k_k8", |bch| {
        bch.iter(|| black_box(RandomPartitioner.partition(&ds.graph, 8, 0)));
    });
}

fn bench_boundary_sampling(c: &mut Criterion) {
    let ds = Arc::new(SyntheticSpec::reddit_sim().with_nodes(4_000).generate(1));
    let part = MetisLikePartitioner::default().partition(&ds.graph, 8, 0);
    let plan = PartitionPlan::build(&ds, &part);
    let lp = Arc::clone(&plan.parts[0]);
    c.bench_function("bns_topology_build_p0.1", |bch| {
        bch.iter_batched(
            || SeededRng::new(3),
            |mut rng| {
                black_box(build_epoch_topology(
                    &lp,
                    &BoundarySampling::Bns { p: 0.1 },
                    0,
                    0,
                    &mut rng,
                ))
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_allreduce(c: &mut Criterion) {
    c.bench_function("ring_allreduce_4ranks_64k_floats", |bch| {
        bch.iter(|| {
            let out = run_ranks(4, |mut comm| {
                let mut buf = vec![1.0f32; 65_536];
                comm.all_reduce_sum(&mut buf);
                comm.stats().bytes(TrafficClass::AllReduce)
            });
            black_box(out)
        });
    });
}

fn bench_sage_layer(c: &mut Criterion) {
    let mut rng = SeededRng::new(4);
    let ds = SyntheticSpec::reddit_sim().with_nodes(4_000).generate(1);
    let n = ds.num_nodes();
    let layer = SageLayer::new(64, 64, Activation::Relu, 0.0, &mut rng);
    let h = Matrix::random_normal(n, 64, 0.0, 1.0, &mut rng);
    let scale = ds.mean_scale();
    c.bench_function("sage_forward_4k_d64", |bch| {
        bch.iter_batched(
            || SeededRng::new(5),
            |mut r| black_box(layer.forward(&ds.graph, &h, n, &scale, false, &mut r)),
            BatchSize::SmallInput,
        );
    });
    let mut r = SeededRng::new(5);
    let (out, cache) = layer.forward(&ds.graph, &h, n, &scale, false, &mut r);
    let d = Matrix::filled(out.rows(), out.cols(), 1.0);
    c.bench_function("sage_backward_4k_d64", |bch| {
        bch.iter(|| black_box(layer.backward(&ds.graph, &cache, &d)));
    });
}

fn bench_distributed_epoch(c: &mut Criterion) {
    let ds = Arc::new(SyntheticSpec::reddit_sim().with_nodes(2_000).generate(1));
    let part = MetisLikePartitioner::default().partition(&ds.graph, 4, 0);
    let plan = Arc::new(PartitionPlan::build(&ds, &part));
    for p in [1.0, 0.1] {
        let cfg = TrainConfig {
            arch: ModelArch::Sage,
            hidden: vec![64],
            dropout: 0.0,
            lr: 0.01,
            epochs: 1,
            sampling: BoundarySampling::Bns { p },
            eval_every: 0,
            seed: 0,
            clip_norm: None,
            pipeline: false,
            workers: None,
            wire_precision: None,
        };
        c.bench_function(&format!("distributed_epoch_2k_k4_p{p}"), |bch| {
            bch.iter(|| black_box(train_with_plan(&plan, &cfg)));
        });
    }
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul,
        bench_matmul_parallel,
        bench_aggregate,
        bench_partitioners,
        bench_boundary_sampling,
        bench_allreduce,
        bench_sage_layer,
        bench_distributed_epoch
);
criterion_main!(kernels);
