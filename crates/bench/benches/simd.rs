//! Criterion micro-benchmarks for the runtime-dispatched SIMD backend:
//! every dispatched kernel family, forced-scalar vs. the best backend
//! this CPU supports (`bns_tensor::simd::detect`), serial and through
//! a 4-thread pool (threads × lanes).
//!
//! The pairs share inputs, so the ratio between `*_scalar` and
//! `*_simd` is the lane-level speedup — the acceptance target for the
//! backend is >= 1.5x on matmul and aggregate on an AVX2 host. The
//! results are bitwise identical by construction (see the proptests in
//! `crates/tensor/tests/simd_kernels.rs`), so this measures pure
//! throughput, not a precision trade.

use bns_data::SyntheticSpec;
use bns_nn::aggregate::{scaled_sum_aggregate, scaled_sum_aggregate_backward};
use bns_nn::Adam;
use bns_tensor::pool::{self, ThreadPool};
use bns_tensor::simd::{self, Backend};
use bns_tensor::{Matrix, SeededRng};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Benchmarks `f` forced to scalar and forced to the detected best
/// backend, under the given suffix labels.
fn bench_forced(c: &mut Criterion, name: &str, mut f: impl FnMut()) {
    let best = simd::detect();
    c.bench_function(&format!("{name}_scalar"), |bch| {
        let _g = simd::force(Backend::Scalar);
        bch.iter(&mut f);
    });
    c.bench_function(&format!("{name}_simd_{}", best.name()), |bch| {
        let _g = simd::force(best);
        bch.iter(&mut f);
    });
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = SeededRng::new(1);
    let a = Matrix::random_normal(256, 256, 0.0, 1.0, &mut rng);
    let b = Matrix::random_normal(256, 256, 0.0, 1.0, &mut rng);
    bench_forced(c, "simd_matmul_256", || {
        black_box(a.matmul(&b));
    });
    bench_forced(c, "simd_matmul_tn_256", || {
        black_box(a.matmul_tn(&b));
    });
    bench_forced(c, "simd_matmul_nt_256", || {
        black_box(a.matmul_nt(&b));
    });
}

/// Threads × lanes on the largest shape: the pool splits rows, the
/// lanes split each row, and the speedups multiply.
fn bench_matmul_pooled(c: &mut Criterion) {
    let mut rng = SeededRng::new(2);
    let a = Matrix::random_normal(512, 512, 0.0, 1.0, &mut rng);
    let b = Matrix::random_normal(512, 512, 0.0, 1.0, &mut rng);
    bench_forced(c, "simd_matmul_512_pool4", || {
        let _p = pool::install(ThreadPool::new(4));
        black_box(a.matmul(&b));
    });
}

fn bench_aggregate(c: &mut Criterion) {
    let mut rng = SeededRng::new(3);
    let ds = SyntheticSpec::reddit_sim().with_nodes(4_000).generate(1);
    let n = ds.num_nodes();
    let h = Matrix::random_normal(n, 64, 0.0, 1.0, &mut rng);
    let scale = ds.mean_scale();
    bench_forced(c, "simd_aggregate_4k_d64", || {
        black_box(scaled_sum_aggregate(&ds.graph, &h, n, &scale));
    });
    let dz = scaled_sum_aggregate(&ds.graph, &h, n, &scale);
    bench_forced(c, "simd_aggregate_bwd_4k_d64", || {
        black_box(scaled_sum_aggregate_backward(&ds.graph, &dz, n, &scale));
    });
}

fn bench_elementwise(c: &mut Criterion) {
    let mut rng = SeededRng::new(4);
    let x = Matrix::random_normal(512, 512, 0.0, 1.0, &mut rng);
    bench_forced(c, "simd_relu_backward_512", || {
        let mut up = x.clone();
        simd::relu_backward(simd::begin_kernel(), up.as_mut_slice(), x.as_slice());
        black_box(up);
    });
}

fn bench_adam(c: &mut Criterion) {
    let mut rng = SeededRng::new(5);
    let w0 = Matrix::random_normal(512, 512, 0.0, 0.1, &mut rng);
    let g = Matrix::random_normal(512, 512, 0.0, 0.1, &mut rng);
    bench_forced(c, "simd_adam_step_512", || {
        let mut w = w0.clone();
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut w], &[&g]);
        black_box(w);
    });
}

criterion_group!(
    name = simd_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul,
        bench_matmul_pooled,
        bench_aggregate,
        bench_elementwise,
        bench_adam
);
criterion_main!(simd_benches);
