//! Measures the cost of a `bns-telemetry` span guard in its three
//! states:
//!
//! * **enabled** — capture feature compiled in, runtime flag on: the
//!   guard clones its args, reads two `Instant`s and pushes one event
//!   into a sharded collector.
//! * **disabled** — feature compiled in, runtime flag off: the guard
//!   is one relaxed atomic load and holds nothing.
//! * **baseline** — no guard at all. With the `capture` feature
//!   compiled out, `is_enabled()` is a compile-time `false` and the
//!   guard code folds away, so the compiled-out cost equals this
//!   baseline (build the workspace with
//!   `--no-default-features -p bns-telemetry` to verify).
//!
//! The instrumented trainer opens a handful of spans per layer per
//! epoch — microseconds of work each — so any per-guard cost in the
//! tens of nanoseconds keeps total overhead far below the 2% budget.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// The work a span typically wraps in the engine, kept tiny so the
/// guard cost is visible rather than drowned out.
#[inline]
fn payload(x: u64) -> u64 {
    black_box(x.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17))
}

fn bench_span_guard(c: &mut Criterion) {
    c.bench_function("span_baseline_no_guard", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = payload(x);
            x
        });
    });

    bns_telemetry::disable();
    c.bench_function("span_guard_disabled", |b| {
        let mut x = 1u64;
        b.iter(|| {
            let _g = bns_telemetry::span!("bench", iter = x);
            x = payload(x);
            x
        });
    });

    bns_telemetry::enable();
    c.bench_function("span_guard_enabled", |b| {
        let mut x = 1u64;
        b.iter(|| {
            let _g = bns_telemetry::span!("bench", iter = x);
            x = payload(x);
            x
        });
    });

    c.bench_function("timed_enabled", |b| {
        let mut x = 1u64;
        b.iter(|| {
            let t = bns_telemetry::Timed::start("bench_timed");
            x = payload(x);
            black_box(t.stop());
            x
        });
    });

    // Throw away whatever the enabled benches accumulated so a stray
    // `cargo bench` never holds gigabytes of span events.
    bns_telemetry::disable();
    let drained = bns_telemetry::drain_spans();
    black_box(drained.len());
}

criterion_group!(
    name = telemetry;
    config = Criterion::default().sample_size(30);
    targets = bench_span_guard
);
criterion_main!(telemetry);
