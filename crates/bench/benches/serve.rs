//! Serving hot-path benchmarks: shard `serve_batch` latency with the
//! boundary cache disabled vs warmed, across batch sizes, plus the
//! queue/batcher round-trip cost that bounds the tail at low batch
//! occupancy.

use bns_data::SyntheticSpec;
use bns_gcn::engine::TrainedModel;
use bns_nn::SageModel;
use bns_partition::{MetisLikePartitioner, Partitioner};
use bns_serve::{BatchPolicy, CacheConfig, Query, RankQueue, ServePlan};
use bns_tensor::SeededRng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn build_plan() -> ServePlan {
    let ds = SyntheticSpec::reddit_sim().with_nodes(2_000).generate(1);
    let part = MetisLikePartitioner::default().partition(&ds.graph, 4, 0);
    let mut rng = SeededRng::new(9);
    let model = TrainedModel::Sage(SageModel::new(
        &[ds.feat_dim(), 64, ds.num_classes],
        0.0,
        &mut rng,
    ));
    ServePlan::build(&ds, &part, model)
}

fn bench_serve_batch(c: &mut Criterion) {
    let plan = build_plan();
    let mut rng = SeededRng::new(77);
    let mine: Vec<u32> = (0..plan.owner.len() as u32)
        .filter(|&v| plan.owner_of(v) == 0)
        .filter(|_| rng.next_u64().is_multiple_of(3))
        .take(64)
        .collect();
    for batch in [1usize, 8, 64] {
        let targets = &mine[..batch.min(mine.len())];
        let mut cold = plan.shard(0, CacheConfig::disabled());
        c.bench_function(&format!("serve_batch_b{batch}_nocache"), |b| {
            b.iter(|| black_box(cold.serve_batch(black_box(targets))))
        });
        let mut warm = plan.shard(0, CacheConfig::default());
        warm.serve_batch(targets); // fill the cold region before timing
        c.bench_function(&format!("serve_batch_b{batch}_cached"), |b| {
            b.iter(|| black_box(warm.serve_batch(black_box(targets))))
        });
    }
}

fn bench_queue(c: &mut Criterion) {
    let queue = RankQueue::bounded(4096);
    let policy = BatchPolicy::immediate(32);
    let mut batch = Vec::new();
    c.bench_function("rank_queue_push_pop32", |b| {
        b.iter(|| {
            let t0 = Instant::now();
            for i in 0..32u32 {
                queue.push(Query::new(i, t0));
            }
            queue.pop_batch(&policy, &mut batch);
            black_box(batch.len())
        })
    });
}

criterion_group!(benches, bench_serve_batch, bench_queue);
criterion_main!(benches);
