//! Serial vs overlapped boundary-exchange benchmarks at 2/4/8 ranks.
//!
//! Each iteration runs a full simulated world (`run_ranks`) in which
//! every rank performs one feature exchange per "layer" plus the
//! aggregation compute that the overlapped path hides behind the
//! transfer: the serial variant exchanges first and aggregates after
//! (the pre-overlap engine structure), the overlapped variant issues
//! sends, runs the inner-edge partial while blocks are in flight, then
//! folds boundary contributions as they arrive.

use bns_comm::{run_ranks, WirePrecision};
use bns_data::SyntheticSpec;
use bns_gcn::exchange::{
    exchange_features_serial, exchange_selection, recv_boundary_blocks, send_boundary_rows,
    EpochExchange, ExchangeArena,
};
use bns_gcn::plan::PartitionPlan;
use bns_gcn::sampling::{build_epoch_topology, BoundarySampling, EpochTopology};
use bns_nn::aggregate::{
    scaled_sum_aggregate, scaled_sum_aggregate_inner, scaled_sum_fold_boundary,
};
use bns_tensor::{Matrix, SeededRng};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

const DIM: usize = 64;
const LAYERS: usize = 3;

fn rank_state(
    plan: &PartitionPlan,
    me: usize,
    comm: &mut bns_comm::RankComm,
) -> (EpochTopology, EpochExchange, Matrix) {
    let lp = &plan.parts[me];
    let mut rng = SeededRng::new(17).fork(me as u64 + 1);
    let topo = build_epoch_topology(lp, &BoundarySampling::Bns { p: 1.0 }, 0, 0, &mut rng);
    let ex = exchange_selection(comm, lp, &topo.selected, 0);
    let h = Matrix::random_normal(lp.n_inner(), DIM, 0.0, 1.0, &mut rng);
    (topo, ex, h)
}

fn bench_exchange(c: &mut Criterion) {
    let ds = Arc::new(SyntheticSpec::reddit_sim().with_nodes(2_000).generate(1));
    for k in [2usize, 4, 8] {
        let part = {
            use bns_partition::Partitioner;
            bns_partition::MetisLikePartitioner::default().partition(&ds.graph, k, 0)
        };
        let plan = Arc::new(PartitionPlan::build(&ds, &part));

        let plan_s = Arc::clone(&plan);
        c.bench_function(&format!("exchange_serial_k{k}"), |bch| {
            bch.iter(|| {
                let plan = Arc::clone(&plan_s);
                let out = run_ranks(k, move |mut comm| {
                    let me = comm.rank();
                    let (topo, ex, h) = rank_state(&plan, me, &mut comm);
                    let n_in = plan.parts[me].n_inner();
                    let mut acc = 0.0f32;
                    for l in 0..LAYERS {
                        let h_full = exchange_features_serial(
                            &mut comm,
                            &ex,
                            &h,
                            topo.selected.len(),
                            topo.feature_scale,
                            1 + l as u64,
                        );
                        let z = scaled_sum_aggregate(&topo.graph, &h_full, n_in, &topo.row_scale);
                        acc += z.as_slice().first().copied().unwrap_or(0.0);
                    }
                    acc
                });
                black_box(out)
            });
        });

        let plan_o = Arc::clone(&plan);
        c.bench_function(&format!("exchange_overlapped_k{k}"), |bch| {
            bch.iter(|| {
                let plan = Arc::clone(&plan_o);
                let out = run_ranks(k, move |mut comm| {
                    let me = comm.rank();
                    let (topo, ex, h) = rank_state(&plan, me, &mut comm);
                    let n_in = plan.parts[me].n_inner();
                    let mut arena = ExchangeArena::new();
                    let mut acc = 0.0f32;
                    for l in 0..LAYERS {
                        send_boundary_rows(
                            &mut comm,
                            &ex,
                            &h,
                            1 + l as u64,
                            &mut arena,
                            WirePrecision::Exact,
                        );
                        let mut z = scaled_sum_aggregate_inner(&topo.graph, &h, n_in);
                        recv_boundary_blocks(
                            &mut comm,
                            &ex,
                            topo.selected.len(),
                            DIM,
                            topo.feature_scale,
                            1 + l as u64,
                            &mut arena,
                            None,
                            WirePrecision::Exact,
                        );
                        scaled_sum_fold_boundary(
                            &topo.graph,
                            &mut z,
                            arena.boundary(),
                            n_in,
                            &topo.row_scale,
                        );
                        acc += z.as_slice().first().copied().unwrap_or(0.0);
                    }
                    acc
                });
                black_box(out)
            });
        });
    }
}

criterion_group!(
    name = exchange;
    config = Criterion::default().sample_size(10);
    targets = bench_exchange
);
criterion_main!(exchange);
