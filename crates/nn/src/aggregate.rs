//! Sparse neighbor-aggregation kernels.
//!
//! These are the "aggregate" half of a GCN layer (paper Eq. 1). They are
//! written against a *local* graph whose first `n_out` rows are the
//! partition's inner nodes and whose remaining rows (if any) are
//! boundary nodes, so the same kernel serves single-rank full-graph
//! training (`n_out == n`) and partition-parallel training.
//!
//! The per-target `row_scale` lets callers implement the paper's
//! unbiased mean: `row_scale[v] = 1 / deg_full(v)` makes the sum a
//! full-graph mean even when only sampled boundary neighbors are present
//! locally (the engine pre-scales received boundary rows by `1/p`).

use bns_graph::CsrGraph;
use bns_tensor::{pool, simd, Matrix};

/// A `*mut f32` the pool closures may carry across threads. Sound
/// because every user writes only to a disjoint row range of the
/// pointee (see the SAFETY comments at each use).
#[derive(Clone, Copy)]
struct SendMutPtr(*mut f32);
// SAFETY: the wrapper is only handed to pool jobs that write disjoint
// row ranges of the pointee, and `ThreadPool::run` joins every job
// before the borrow it was derived from ends.
unsafe impl Send for SendMutPtr {}
// SAFETY: as above — shared references only ever read the pointer
// value itself; all writes through it are range-disjoint per job.
unsafe impl Sync for SendMutPtr {}

impl SendMutPtr {
    /// Accessed via a method so closures capture the whole `Send`
    /// wrapper — a 2021-edition closure naming the field directly would
    /// capture only the raw (non-`Send`) pointer.
    fn get(self) -> *mut f32 {
        self.0
    }
}

/// Same idea for `*mut Matrix` (per-block partial buffers).
#[derive(Clone, Copy)]
struct SendMatPtr(*mut Matrix);
// SAFETY: each pool job dereferences a distinct element of the partial
// buffer slice (indexed by its own job id), and the jobs are joined
// before the buffer is read or dropped.
unsafe impl Send for SendMatPtr {}
// SAFETY: as above — per-job exclusive element access, joined before
// the owning scope continues.
unsafe impl Sync for SendMatPtr {}

impl SendMatPtr {
    fn get(self) -> *mut Matrix {
        self.0
    }
}

/// Minimum target rows per parallel block for the forward kernels
/// (below this the per-dispatch overhead dominates).
#[cfg(not(miri))]
const AGG_MIN_ROWS: usize = 64;
/// Under Miri the interpreter is ~1000x slower, so the thresholds
/// shrink: tiny test inputs still take the parallel raw-pointer path
/// that Miri is there to check (tests/miri_kernels.rs).
#[cfg(miri)]
const AGG_MIN_ROWS: usize = 4;

/// Source rows per backward scatter block. The block structure is a
/// function of the problem size only — never of the thread count — so
/// the partial-buffer reduction below is bitwise reproducible under
/// any pool size.
#[cfg(not(miri))]
const SCATTER_BLOCK_ROWS: usize = 256;
/// Miri-sized (see [`AGG_MIN_ROWS`]).
#[cfg(miri)]
const SCATTER_BLOCK_ROWS: usize = 4;

/// Upper bound on backward scatter blocks, bounding partial-buffer
/// memory at `SCATTER_MAX_BLOCKS x n_rows_h x d` floats.
const SCATTER_MAX_BLOCKS: usize = 8;

/// Number of scatter blocks for `n_out` source rows (thread-count
/// independent; see [`SCATTER_BLOCK_ROWS`]).
fn scatter_blocks(n_out: usize) -> usize {
    (n_out.div_ceil(SCATTER_BLOCK_ROWS)).clamp(1, SCATTER_MAX_BLOCKS)
}

/// Shared scatter skeleton for the backward kernels: splits the source
/// rows `0..n_out` into [`scatter_blocks`] contiguous blocks, runs
/// `emit(v_range, partial)` per block (each into its own zeroed
/// `n_rows_h x d` partial), then reduces the partials into the result
/// **in ascending block order**. Because both the block boundaries and
/// the reduction order depend only on `n_out`, the f32 summation tree
/// per output element is fixed: results are bitwise identical whether
/// the blocks ran on one thread or many.
fn blocked_scatter(
    n_out: usize,
    n_rows_h: usize,
    d: usize,
    emit: &(dyn Fn(std::ops::Range<usize>, &mut Matrix) + Sync),
) -> Matrix {
    let nblocks = scatter_blocks(n_out);
    let mut dh = Matrix::zeros(n_rows_h, d);
    if nblocks <= 1 {
        emit(0..n_out, &mut dh);
        return dh;
    }
    let chunk = n_out.div_ceil(nblocks);
    let mut partials: Vec<Matrix> = (0..nblocks).map(|_| Matrix::zeros(n_rows_h, d)).collect();
    {
        let pptr = SendMatPtr(partials.as_mut_ptr());
        pool::parallel_row_blocks(nblocks, 1, &|b0, b1| {
            for b in b0..b1 {
                // SAFETY: block `b` exclusively owns partials[b]; the
                // Vec outlives the dispatch, which blocks until every
                // job has finished.
                let part = unsafe { &mut *pptr.get().add(b) };
                emit(b * chunk..((b + 1) * chunk).min(n_out), part);
            }
        });
    }
    // Reduce in fixed ascending block order: the per-element f32
    // summation tree never depends on how many threads ran the blocks.
    for p in &partials {
        dh.add_assign(p);
    }
    dh
}

/// `z_v = row_scale[v] · Σ_{u ∈ N_g(v)} h_u` for `v < n_out`.
///
/// Parallel over blocks of target rows `v` (each row is written by
/// exactly one thread in a fixed neighbor order, so the result is
/// bitwise deterministic at any pool size).
///
/// # Panics
///
/// Panics if `h` has fewer rows than `g` has nodes, `n_out >
/// g.num_nodes()`, or `row_scale.len() != n_out`.
pub fn scaled_sum_aggregate(g: &CsrGraph, h: &Matrix, n_out: usize, row_scale: &[f32]) -> Matrix {
    assert!(h.rows() >= g.num_nodes(), "feature matrix too small");
    assert!(n_out <= g.num_nodes(), "n_out exceeds graph size");
    assert_eq!(row_scale.len(), n_out, "row_scale length mismatch");
    let d = h.cols();
    let hd = h.as_slice();
    let bk = simd::begin_kernel();
    let mut z = Matrix::zeros(n_out, d);
    let zptr = SendMutPtr(z.as_mut_slice().as_mut_ptr());
    pool::parallel_row_blocks(n_out, AGG_MIN_ROWS, &|v0, v1| {
        // SAFETY: this block owns the disjoint target rows [v0, v1).
        let zblock =
            unsafe { std::slice::from_raw_parts_mut(zptr.get().add(v0 * d), (v1 - v0) * d) };
        for (zr, v) in zblock.chunks_exact_mut(d).zip(v0..v1) {
            simd::sum_rows(bk, zr, hd, d, g.neighbors(v), 0);
            simd::scale(bk, zr, row_scale[v]);
        }
    });
    z
}

/// Adjoint of [`scaled_sum_aggregate`]: given `dz` (`n_out x d`), returns
/// `dh` (`n_rows_h x d`) with `dh_u = Σ_{v ∈ N_g(u), v < n_out}
/// row_scale[v] · dz_v`.
///
/// Parallel via per-block partial `dh` buffers reduced in fixed order
/// (see [`blocked_scatter`]); bitwise deterministic at any pool size.
///
/// # Panics
///
/// Panics on the same shape mismatches as the forward kernel.
pub fn scaled_sum_aggregate_backward(
    g: &CsrGraph,
    dz: &Matrix,
    n_rows_h: usize,
    row_scale: &[f32],
) -> Matrix {
    let n_out = dz.rows();
    assert!(n_out <= g.num_nodes(), "dz has more rows than graph nodes");
    assert!(n_rows_h >= g.num_nodes(), "output too small");
    assert_eq!(row_scale.len(), n_out, "row_scale length mismatch");
    let d = dz.cols();
    let bk = simd::begin_kernel();
    blocked_scatter(n_out, n_rows_h, d, &|vs, dh| {
        // One scaled-row scratch per block, not one allocation per `v`.
        let mut dzv = vec![0.0f32; d];
        for v in vs {
            simd::scaled_copy(bk, &mut dzv, row_scale[v], dz.row(v));
            simd::scatter_rows(bk, dh.as_mut_slice(), d, g.neighbors(v), &dzv);
        }
    })
}

/// Inner-edge partial of [`scaled_sum_aggregate`] on a segmented
/// `(h_inner, h_bd)` view: `z_v = Σ_{u ∈ N_g(v), u < n_inner} h_u` for
/// `v < n_out`, **unscaled** (the scale is applied by
/// [`scaled_sum_fold_boundary`] after the boundary fold). `n_inner =
/// h_inner.rows()`.
///
/// Because CSR neighbor lists are sorted ascending (an invariant
/// `CsrGraph` construction enforces), inner neighbors form a prefix of
/// every row, and "inner partial then boundary fold" visits neighbors
/// in exactly the order the fused kernel does — the f32 sum per output
/// element is bitwise identical. This is what lets the engine run this
/// kernel while boundary rows are still in flight.
///
/// # Panics
///
/// Panics if `n_out > g.num_nodes()` or `n_out > h_inner.rows()`.
pub fn scaled_sum_aggregate_inner(g: &CsrGraph, h_inner: &Matrix, n_out: usize) -> Matrix {
    assert!(n_out <= g.num_nodes(), "n_out exceeds graph size");
    assert!(n_out <= h_inner.rows(), "n_out exceeds inner rows");
    let n_inner = h_inner.rows();
    let d = h_inner.cols();
    let hd = h_inner.as_slice();
    let bk = simd::begin_kernel();
    let mut z = Matrix::zeros(n_out, d);
    let zptr = SendMutPtr(z.as_mut_slice().as_mut_ptr());
    pool::parallel_row_blocks(n_out, AGG_MIN_ROWS, &|v0, v1| {
        // SAFETY: this block owns the disjoint target rows [v0, v1).
        let zblock =
            unsafe { std::slice::from_raw_parts_mut(zptr.get().add(v0 * d), (v1 - v0) * d) };
        for (zr, v) in zblock.chunks_exact_mut(d).zip(v0..v1) {
            let nb = g.neighbors(v);
            let end = nb.partition_point(|&u| (u as usize) < n_inner);
            simd::sum_rows(bk, zr, hd, d, &nb[..end], 0);
        }
    });
    z
}

/// Completes [`scaled_sum_aggregate_inner`]: folds the boundary-edge
/// contributions (`h_bd` row `u - n_inner` for neighbors `u >=
/// n_inner`) into `z`, then applies `row_scale`. After this call `z`
/// equals `scaled_sum_aggregate(g, vstack(h_inner, h_bd), n_out,
/// row_scale)` bit for bit — without ever materializing the stacked
/// matrix.
///
/// # Panics
///
/// Panics on shape mismatches or if the graph references boundary rows
/// beyond `n_inner + h_bd.rows()`.
pub fn scaled_sum_fold_boundary(
    g: &CsrGraph,
    z: &mut Matrix,
    h_bd: &Matrix,
    n_inner: usize,
    row_scale: &[f32],
) {
    let n_out = z.rows();
    assert!(n_out <= g.num_nodes(), "z has more rows than graph nodes");
    assert_eq!(row_scale.len(), n_out, "row_scale length mismatch");
    assert_eq!(z.cols(), h_bd.cols(), "column mismatch");
    assert!(
        n_inner + h_bd.rows() >= g.num_nodes(),
        "boundary block too small"
    );
    let d = z.cols();
    let hbd = h_bd.as_slice();
    let bk = simd::begin_kernel();
    let zptr = SendMutPtr(z.as_mut_slice().as_mut_ptr());
    pool::parallel_row_blocks(n_out, AGG_MIN_ROWS, &|v0, v1| {
        // SAFETY: this block owns the disjoint target rows [v0, v1).
        let zblock =
            unsafe { std::slice::from_raw_parts_mut(zptr.get().add(v0 * d), (v1 - v0) * d) };
        for (zr, v) in zblock.chunks_exact_mut(d).zip(v0..v1) {
            let nb = g.neighbors(v);
            let start = nb.partition_point(|&u| (u as usize) < n_inner);
            simd::sum_rows(bk, zr, hbd, d, &nb[start..], n_inner);
            simd::scale(bk, zr, row_scale[v]);
        }
    });
}

/// Inner-edge partial of [`gcn_aggregate`] on a segmented view:
/// `z_v = Σ_{u ∈ N_g(v), u < n_inner} s_u · h_u` for `v < n_out`,
/// without the self-loop term (applied by [`gcn_fold_boundary`]). Same
/// sorted-CSR bitwise-identity argument as
/// [`scaled_sum_aggregate_inner`].
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn gcn_aggregate_inner(g: &CsrGraph, h_inner: &Matrix, n_out: usize, s: &[f32]) -> Matrix {
    assert!(n_out <= g.num_nodes(), "n_out exceeds graph size");
    assert!(n_out <= h_inner.rows(), "n_out exceeds inner rows");
    let n_inner = h_inner.rows();
    let d = h_inner.cols();
    let hd = h_inner.as_slice();
    let bk = simd::begin_kernel();
    let mut z = Matrix::zeros(n_out, d);
    let zptr = SendMutPtr(z.as_mut_slice().as_mut_ptr());
    pool::parallel_row_blocks(n_out, AGG_MIN_ROWS, &|v0, v1| {
        // SAFETY: this block owns the disjoint target rows [v0, v1).
        let zblock =
            unsafe { std::slice::from_raw_parts_mut(zptr.get().add(v0 * d), (v1 - v0) * d) };
        for (zr, v) in zblock.chunks_exact_mut(d).zip(v0..v1) {
            let nb = g.neighbors(v);
            let end = nb.partition_point(|&u| (u as usize) < n_inner);
            simd::sum_rows_scaled(bk, zr, hd, d, &nb[..end], 0, s);
        }
    });
    z
}

/// Completes [`gcn_aggregate_inner`]: folds boundary neighbors, then
/// the self-loop finalization `z_v = s_v · z_v + s_v² · h_v` (with
/// `h_v` taken from `h_inner` — targets are always inner rows). After
/// this call `z` equals `gcn_aggregate(g, vstack(h_inner, h_bd), n_out,
/// s)` bit for bit.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn gcn_fold_boundary(
    g: &CsrGraph,
    z: &mut Matrix,
    h_inner: &Matrix,
    h_bd: &Matrix,
    n_inner: usize,
    s: &[f32],
) {
    let n_out = z.rows();
    assert!(n_out <= g.num_nodes(), "z has more rows than graph nodes");
    assert!(n_out <= h_inner.rows(), "n_out exceeds inner rows");
    assert!(s.len() >= g.num_nodes(), "scale vector too small");
    assert_eq!(z.cols(), h_bd.cols(), "column mismatch");
    assert!(
        n_inner + h_bd.rows() >= g.num_nodes(),
        "boundary block too small"
    );
    let d = z.cols();
    let hbd = h_bd.as_slice();
    let bk = simd::begin_kernel();
    let zptr = SendMutPtr(z.as_mut_slice().as_mut_ptr());
    pool::parallel_row_blocks(n_out, AGG_MIN_ROWS, &|v0, v1| {
        // SAFETY: this block owns the disjoint target rows [v0, v1).
        let zblock =
            unsafe { std::slice::from_raw_parts_mut(zptr.get().add(v0 * d), (v1 - v0) * d) };
        for (zr, v) in zblock.chunks_exact_mut(d).zip(v0..v1) {
            let nb = g.neighbors(v);
            let start = nb.partition_point(|&u| (u as usize) < n_inner);
            simd::sum_rows_scaled(bk, zr, hbd, d, &nb[start..], n_inner, s);
            let sv = s[v];
            simd::scale_axpy(bk, zr, sv, sv * sv, h_inner.row(v));
        }
    });
}

/// Symmetric-normalized GCN aggregation with self-loops (Kipf & Welling):
/// `z_v = s_v² · h_v + s_v · Σ_{u ∈ N(v)} s_u · h_u` where callers pass
/// `s_v = 1/sqrt(deg_full(v) + 1)`. `s` must cover every local row.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn gcn_aggregate(g: &CsrGraph, h: &Matrix, n_out: usize, s: &[f32]) -> Matrix {
    assert!(h.rows() >= g.num_nodes(), "feature matrix too small");
    assert!(n_out <= g.num_nodes(), "n_out exceeds graph size");
    assert!(s.len() >= g.num_nodes(), "scale vector too small");
    let d = h.cols();
    let hd = h.as_slice();
    let bk = simd::begin_kernel();
    let mut z = Matrix::zeros(n_out, d);
    let zptr = SendMutPtr(z.as_mut_slice().as_mut_ptr());
    pool::parallel_row_blocks(n_out, AGG_MIN_ROWS, &|v0, v1| {
        // SAFETY: this block owns the disjoint target rows [v0, v1).
        let zblock =
            unsafe { std::slice::from_raw_parts_mut(zptr.get().add(v0 * d), (v1 - v0) * d) };
        for (zr, v) in zblock.chunks_exact_mut(d).zip(v0..v1) {
            simd::sum_rows_scaled(bk, zr, hd, d, g.neighbors(v), 0, s);
            let sv = s[v];
            simd::scale_axpy(bk, zr, sv, sv * sv, h.row(v));
        }
    });
    z
}

/// Adjoint of [`gcn_aggregate`]. Parallel with the same fixed-order
/// partial-buffer reduction as [`scaled_sum_aggregate_backward`].
pub fn gcn_aggregate_backward(g: &CsrGraph, dz: &Matrix, n_rows_h: usize, s: &[f32]) -> Matrix {
    let n_out = dz.rows();
    assert!(n_rows_h >= g.num_nodes(), "output too small");
    assert!(s.len() >= g.num_nodes(), "scale vector too small");
    let d = dz.cols();
    let bk = simd::begin_kernel();
    blocked_scatter(n_out, n_rows_h, d, &|vs, dh| {
        // One scaled-row scratch per block, not one allocation per `v`.
        let mut dzv = vec![0.0f32; d];
        for v in vs {
            let sv = s[v];
            // Self-loop term.
            simd::axpy(bk, dh.row_mut(v), sv * sv, dz.row(v));
            simd::scaled_copy(bk, &mut dzv, sv, dz.row(v));
            simd::scatter_rows_scaled(bk, dh.as_mut_slice(), d, g.neighbors(v), &dzv, s);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_graph::generators::ring;
    use bns_tensor::SeededRng;

    #[test]
    fn mean_aggregate_on_ring() {
        let g = ring(4);
        let h = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let scale = vec![0.5; 4]; // every node has degree 2
        let z = scaled_sum_aggregate(&g, &h, 4, &scale);
        // node 0's neighbors are 1 and 3 -> (2+4)/2 = 3
        assert_eq!(z.row(0), &[3.0]);
        assert_eq!(z.row(1), &[2.0]);
    }

    #[test]
    fn aggregate_restricted_rows() {
        let g = ring(4);
        let h = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let z = scaled_sum_aggregate(&g, &h, 2, &[1.0, 1.0]);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.row(0), &[6.0]); // 2 + 4
    }

    #[test]
    fn backward_is_adjoint_of_forward() {
        // <A x, y> == <x, A^T y> for random x, y.
        let mut rng = SeededRng::new(1);
        let g = bns_graph::generators::erdos_renyi_m(30, 80, &mut rng);
        let scale: Vec<f32> = (0..30).map(|_| rng.uniform_range(0.1, 2.0)).collect();
        let x = Matrix::random_normal(30, 3, 0.0, 1.0, &mut rng);
        let y = Matrix::random_normal(30, 3, 0.0, 1.0, &mut rng);
        let ax = scaled_sum_aggregate(&g, &x, 30, &scale);
        let aty = scaled_sum_aggregate_backward(&g, &y, 30, &scale);
        let lhs: f32 = ax.hadamard(&y).sum();
        let rhs: f32 = x.hadamard(&aty).sum();
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn gcn_backward_is_adjoint() {
        let mut rng = SeededRng::new(2);
        let g = bns_graph::generators::erdos_renyi_m(25, 60, &mut rng);
        let s: Vec<f32> = (0..25)
            .map(|v| 1.0 / ((g.degree(v) + 1) as f32).sqrt())
            .collect();
        let x = Matrix::random_normal(25, 4, 0.0, 1.0, &mut rng);
        let y = Matrix::random_normal(25, 4, 0.0, 1.0, &mut rng);
        let ax = gcn_aggregate(&g, &x, 25, &s);
        let aty = gcn_aggregate_backward(&g, &y, 25, &s);
        let lhs: f32 = ax.hadamard(&y).sum();
        let rhs: f32 = x.hadamard(&aty).sum();
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    /// Builds a local-style graph where nodes `>= n_inner` act as
    /// boundary rows (only inner-incident edges, as the engine's epoch
    /// topology guarantees).
    fn segmented_fixture(seed: u64) -> (bns_graph::CsrGraph, usize, Matrix, Matrix) {
        let mut rng = SeededRng::new(seed);
        let n_inner = 40;
        let n_bd = 12;
        let mut b = bns_graph::GraphBuilder::new(n_inner + n_bd);
        for _ in 0..180 {
            let u = rng.uniform_range(0.0, n_inner as f32) as usize;
            let v = rng.uniform_range(0.0, (n_inner + n_bd) as f32) as usize;
            if u != v && v < n_inner + n_bd {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let h_inner = Matrix::random_normal(n_inner, 5, 0.0, 1.0, &mut rng);
        let h_bd = Matrix::random_normal(n_bd, 5, 0.0, 1.0, &mut rng);
        (g, n_inner, h_inner, h_bd)
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn segmented_mean_matches_fused_bitwise() {
        for seed in [1u64, 5, 9] {
            let (g, n_inner, h_inner, h_bd) = segmented_fixture(seed);
            let mut rng = SeededRng::new(seed + 100);
            let scale: Vec<f32> = (0..n_inner).map(|_| rng.uniform_range(0.1, 2.0)).collect();
            let fused = scaled_sum_aggregate(&g, &h_inner.vstack(&h_bd), n_inner, &scale);
            let mut z = scaled_sum_aggregate_inner(&g, &h_inner, n_inner);
            scaled_sum_fold_boundary(&g, &mut z, &h_bd, n_inner, &scale);
            assert_eq!(bits(&fused), bits(&z), "seed {seed}");
        }
    }

    #[test]
    fn segmented_gcn_matches_fused_bitwise() {
        for seed in [2u64, 6, 10] {
            let (g, n_inner, h_inner, h_bd) = segmented_fixture(seed);
            let s: Vec<f32> = (0..g.num_nodes())
                .map(|v| 1.0 / ((g.degree(v) + 1) as f32).sqrt())
                .collect();
            let fused = gcn_aggregate(&g, &h_inner.vstack(&h_bd), n_inner, &s);
            let mut z = gcn_aggregate_inner(&g, &h_inner, n_inner, &s);
            gcn_fold_boundary(&g, &mut z, &h_inner, &h_bd, n_inner, &s);
            assert_eq!(bits(&fused), bits(&z), "seed {seed}");
        }
    }

    #[test]
    fn segmented_with_empty_boundary() {
        let g = ring(6);
        let h = Matrix::from_fn(6, 2, |r, c| (r + c) as f32);
        let empty = Matrix::zeros(0, 2);
        let scale = vec![0.5; 6];
        let fused = scaled_sum_aggregate(&g, &h, 6, &scale);
        let mut z = scaled_sum_aggregate_inner(&g, &h, 6);
        scaled_sum_fold_boundary(&g, &mut z, &empty, 6, &scale);
        assert_eq!(bits(&fused), bits(&z));
    }

    #[test]
    fn gcn_self_loop_only_for_isolated_node() {
        let g = bns_graph::CsrGraph::empty(2);
        let h = Matrix::from_rows(&[&[4.0], &[8.0]]);
        let s = vec![1.0, 0.5];
        let z = gcn_aggregate(&g, &h, 2, &s);
        assert_eq!(z.row(0), &[4.0]); // 1^2 * 4
        assert_eq!(z.row(1), &[2.0]); // 0.5^2 * 8
    }
}
