//! Neural-network building blocks for graph convolutional networks, with
//! hand-derived gradients (no autograd framework exists in this stack).
//!
//! The BNS-GCN paper trains GraphSAGE models (mean aggregator) and, for
//! one ablation, GAT. This crate provides exactly those layers plus the
//! losses, optimizer, metrics and models the experiments need:
//!
//! * [`SageLayer`] / [`GatLayer`] / [`GcnLayer`] — forward/backward pairs
//!   designed for *layer-at-a-time* execution, so the partition-parallel
//!   engine in `bns-gcn` can interleave communication between layers
//!   (Algorithm 1 of the paper),
//! * [`aggregate`] — sparse neighbor aggregation kernels shared by the
//!   layers, parameterized by per-row scales so the engine can implement
//!   the paper's unbiased `H/p` boundary rescaling,
//! * [`loss`] — masked softmax cross-entropy (Reddit/ogbn-products-style
//!   single-label) and sigmoid BCE (Yelp-style multi-label),
//! * [`Adam`] — the optimizer the paper uses throughout,
//! * [`metrics`] — accuracy and micro-F1, the paper's two test scores.
//!
//! Every backward pass is validated against finite differences in the
//! test suite (see [`gradcheck`]).

pub mod activation;
pub mod aggregate;
pub mod gradcheck;
mod layers;
pub mod loss;
pub mod metrics;
mod models;
mod optim;

pub use activation::Activation;
pub use layers::{
    GatCache, GatGrads, GatLayer, GcnCache, GcnGrads, GcnInnerPartial, GcnLayer, GcnSegCache,
    LinearCache, LinearGrads, LinearLayer, SageCache, SageGrads, SageInnerPartial, SageLayer,
    SageSegCache,
};
pub use models::{flatten, unflatten_into, GatModel, SageModel};
pub use optim::Adam;
