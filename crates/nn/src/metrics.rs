//! Evaluation metrics: accuracy (Reddit / ogbn-products) and micro-F1
//! (Yelp) — the two test scores the paper reports.

use bns_tensor::Matrix;

/// Argmax accuracy over the given rows. Returns `(correct, total)` so
/// partition-parallel callers can sum counts before dividing.
pub fn accuracy_counts(logits: &Matrix, labels: &[usize], rows: &[usize]) -> (usize, usize) {
    let mut correct = 0usize;
    for &r in rows {
        let row = logits.row(r);
        // First maximum wins ties (deterministic argmax).
        let mut argmax = 0usize;
        for (i, &x) in row.iter().enumerate() {
            if x > row[argmax] {
                argmax = i;
            }
        }
        if argmax == labels[r] {
            correct += 1;
        }
    }
    (correct, rows.len())
}

/// Argmax accuracy in `[0, 1]`; 0 for an empty row set.
pub fn accuracy(logits: &Matrix, labels: &[usize], rows: &[usize]) -> f64 {
    let (c, t) = accuracy_counts(logits, labels, rows);
    if t == 0 {
        0.0
    } else {
        c as f64 / t as f64
    }
}

/// True-positive / false-positive / false-negative counts for
/// multi-label prediction with the standard `logit > 0` threshold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct F1Counts {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// False negatives.
    pub fn_: u64,
}

impl F1Counts {
    /// Adds another partition's counts.
    pub fn merge(&mut self, other: F1Counts) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// Micro-averaged F1 = `2·tp / (2·tp + fp + fn)`; 0 when undefined.
    pub fn micro_f1(&self) -> f64 {
        let denom = 2 * self.tp + self.fp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            2.0 * self.tp as f64 / denom as f64
        }
    }
}

/// Multi-label prediction counts over the given rows (`targets` is 0/1).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn multilabel_counts(logits: &Matrix, targets: &Matrix, rows: &[usize]) -> F1Counts {
    assert_eq!(logits.shape(), targets.shape(), "shape mismatch");
    let mut c = F1Counts::default();
    for &r in rows {
        let x = logits.row(r);
        let y = targets.row(r);
        for j in 0..x.len() {
            let pred = x[j] > 0.0;
            let actual = y[j] > 0.5;
            match (pred, actual) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, true) => c.fn_ += 1,
                (false, false) => {}
            }
        }
    }
    c
}

/// Micro-F1 over the given rows.
pub fn micro_f1(logits: &Matrix, targets: &Matrix, rows: &[usize]) -> f64 {
    multilabel_counts(logits, targets, rows).micro_f1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        let logits = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 0.0]]);
        let labels = vec![0, 1, 1];
        assert!((accuracy(&logits, &labels, &[0, 1, 2]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy_counts(&logits, &labels, &[0, 1]), (2, 2));
        assert_eq!(accuracy(&logits, &labels, &[]), 0.0);
    }

    #[test]
    fn perfect_micro_f1() {
        let logits = Matrix::from_rows(&[&[5.0, -5.0], &[-5.0, 5.0]]);
        let targets = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!((micro_f1(&logits, &targets, &[0, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn micro_f1_counts_and_merge() {
        let logits = Matrix::from_rows(&[&[1.0, 1.0, -1.0]]);
        let targets = Matrix::from_rows(&[&[1.0, 0.0, 1.0]]);
        let c = multilabel_counts(&logits, &targets, &[0]);
        assert_eq!((c.tp, c.fp, c.fn_), (1, 1, 1));
        let mut m = c;
        m.merge(c);
        assert_eq!((m.tp, m.fp, m.fn_), (2, 2, 2));
        assert!((m.micro_f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_f1_is_zero() {
        assert_eq!(F1Counts::default().micro_f1(), 0.0);
    }
}
