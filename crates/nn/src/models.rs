//! Model containers: stacks of layers plus parameter plumbing for
//! optimizers and gradient all-reduce.

use crate::activation::Activation;
use crate::layers::{GatGrads, GatLayer, SageCache, SageGrads, SageLayer};
use bns_graph::CsrGraph;
use bns_tensor::{Matrix, SeededRng};

/// A GraphSAGE model: `dims.len() - 1` layers with ReLU between hidden
/// layers and identity on the output layer, matching the paper's models
/// (e.g. Reddit: 4 layers, 256 hidden units).
#[derive(Debug, Clone, PartialEq)]
pub struct SageModel {
    /// The layer stack.
    pub layers: Vec<SageLayer>,
}

impl SageModel {
    /// Builds a model with the given layer dimensions, e.g.
    /// `&[602, 256, 256, 256, 41]` for the paper's Reddit model.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given.
    pub fn new(dims: &[usize], dropout: f32, rng: &mut SeededRng) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let last = dims.len() - 2;
        let layers = (0..dims.len() - 1)
            .map(|l| {
                let act = if l == last {
                    Activation::Identity
                } else {
                    Activation::Relu
                };
                SageLayer::new(dims[l], dims[l + 1], act, dropout, rng)
            })
            .collect();
        Self { layers }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// All parameters, layer by layer (for the optimizer).
    pub fn params_mut(&mut self) -> Vec<&mut Matrix> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Flattens per-layer gradients into optimizer order.
    pub fn grads_refs(grads: &[SageGrads]) -> Vec<&Matrix> {
        grads.iter().flat_map(SageLayer::grads_vec).collect()
    }

    /// Full-graph forward pass (single rank, no partitioning): runs every
    /// layer over the same graph. `row_scale[v]` must be the mean-
    /// aggregator normalizer `1/deg(v)` (use 1 for isolated nodes).
    pub fn forward_full(
        &self,
        g: &CsrGraph,
        x: &Matrix,
        row_scale: &[f32],
        train: bool,
        rng: &mut SeededRng,
    ) -> (Matrix, Vec<SageCache>) {
        let n = g.num_nodes();
        let mut h = x.clone();
        let mut caches = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (next, cache) = layer.forward(g, &h, n, row_scale, train, rng);
            caches.push(cache);
            h = next;
        }
        (h, caches)
    }

    /// Full-graph backward pass matching [`SageModel::forward_full`].
    /// Returns per-layer gradients (same order as `layers`).
    pub fn backward_full(
        &self,
        g: &CsrGraph,
        caches: &[SageCache],
        d_out: &Matrix,
    ) -> Vec<SageGrads> {
        assert_eq!(caches.len(), self.layers.len(), "cache count mismatch");
        let mut grads: Vec<Option<SageGrads>> = (0..self.layers.len()).map(|_| None).collect();
        let mut d = d_out.clone();
        for l in (0..self.layers.len()).rev() {
            let (dh, g_l) = self.layers[l].backward(g, &caches[l], &d);
            grads[l] = Some(g_l);
            d = dh;
        }
        grads.into_iter().map(Option::unwrap).collect()
    }
}

/// A GAT model (paper Table 10 uses 2 layers): ELU between hidden
/// layers, identity output.
#[derive(Debug, Clone, PartialEq)]
pub struct GatModel {
    /// The layer stack.
    pub layers: Vec<GatLayer>,
}

impl GatModel {
    /// Builds a model with the given layer dimensions.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given.
    pub fn new(dims: &[usize], dropout: f32, rng: &mut SeededRng) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let last = dims.len() - 2;
        let layers = (0..dims.len() - 1)
            .map(|l| {
                let act = if l == last {
                    Activation::Identity
                } else {
                    Activation::Elu
                };
                GatLayer::new(dims[l], dims[l + 1], act, dropout, rng)
            })
            .collect();
        Self { layers }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// All parameters, layer by layer.
    pub fn params_mut(&mut self) -> Vec<&mut Matrix> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Flattens per-layer gradients into optimizer order.
    pub fn grads_refs(grads: &[GatGrads]) -> Vec<&Matrix> {
        grads.iter().flat_map(GatLayer::grads_vec).collect()
    }
}

/// Concatenates matrices into one flat `f32` buffer (for gradient
/// all-reduce across ranks).
pub fn flatten(mats: &[&Matrix]) -> Vec<f32> {
    let total: usize = mats.iter().map(|m| m.len()).sum();
    let mut out = Vec::with_capacity(total);
    for m in mats {
        out.extend_from_slice(m.as_slice());
    }
    out
}

/// Writes a flat buffer produced by [`flatten`] back into matrices of the
/// same shapes.
///
/// # Panics
///
/// Panics if the total element count differs.
pub fn unflatten_into(flat: &[f32], mats: &mut [&mut Matrix]) {
    let total: usize = mats.iter().map(|m| m.len()).sum();
    assert_eq!(flat.len(), total, "flat buffer size mismatch");
    let mut off = 0usize;
    for m in mats {
        let n = m.len();
        m.as_mut_slice().copy_from_slice(&flat[off..off + n]);
        off += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use crate::Adam;
    use bns_graph::generators::ring;

    #[test]
    fn model_shapes() {
        let mut rng = SeededRng::new(1);
        let m = SageModel::new(&[10, 8, 4], 0.5, &mut rng);
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.layers[0].d_in(), 10);
        assert_eq!(m.layers[1].d_out(), 4);
        assert_eq!(m.layers[0].act, Activation::Relu);
        assert_eq!(m.layers[1].act, Activation::Identity);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut rng = SeededRng::new(2);
        let a = Matrix::random_normal(2, 3, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(1, 4, 0.0, 1.0, &mut rng);
        let flat = flatten(&[&a, &b]);
        assert_eq!(flat.len(), 10);
        let mut a2 = Matrix::zeros(2, 3);
        let mut b2 = Matrix::zeros(1, 4);
        unflatten_into(&flat, &mut [&mut a2, &mut b2]);
        assert_eq!(a2, a);
        assert_eq!(b2, b);
    }

    /// End-to-end sanity: a 2-layer SAGE model learns to classify nodes
    /// of a ring by a linearly-separable feature.
    #[test]
    fn sage_model_learns_simple_task() {
        let mut rng = SeededRng::new(3);
        let n = 60;
        let g = ring(n);
        let labels: Vec<usize> = (0..n).map(|v| usize::from(v < n / 2)).collect();
        // Features: noisy label indicator.
        let x = Matrix::from_fn(n, 4, |r, c| {
            let base = if labels[r] == 1 { 1.0 } else { -1.0 };
            base + 0.3 * ((r * 7 + c * 13) % 5) as f32 / 5.0
        });
        let scale: Vec<f32> = (0..n).map(|v| 1.0 / g.degree(v) as f32).collect();
        let rows: Vec<usize> = (0..n).collect();
        let mut model = SageModel::new(&[4, 8, 2], 0.0, &mut rng);
        let mut opt = Adam::new(0.01);
        let mut last_acc = 0.0;
        for _ in 0..60 {
            let (out, caches) = model.forward_full(&g, &x, &scale, true, &mut rng);
            let (_, mut dlogits, correct) = softmax_cross_entropy(&out, &labels, &rows);
            dlogits.scale(1.0 / n as f32);
            let grads = model.backward_full(&g, &caches, &dlogits);
            let grefs = SageModel::grads_refs(&grads);
            let gowned: Vec<Matrix> = grefs.into_iter().cloned().collect();
            let grefs2: Vec<&Matrix> = gowned.iter().collect();
            let mut params = model.params_mut();
            opt.step(&mut params, &grefs2);
            last_acc = correct as f64 / n as f64;
        }
        assert!(last_acc > 0.95, "accuracy {last_acc}");
    }
}
