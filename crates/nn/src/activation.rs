//! Elementwise activation functions and their derivatives.

use bns_tensor::Matrix;

/// An elementwise activation applied after a layer's linear part.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// `x` (used on the final layer before the loss).
    Identity,
    /// `x` if `x > 0` else `slope * x`.
    LeakyRelu(f32),
    /// `x` if `x > 0` else `exp(x) - 1`.
    Elu,
}

impl Activation {
    /// Applies the activation elementwise.
    pub fn apply(&self, x: &Matrix) -> Matrix {
        match *self {
            Activation::Relu => x.map(|v| v.max(0.0)),
            Activation::Identity => x.clone(),
            Activation::LeakyRelu(s) => x.map(|v| if v > 0.0 { v } else { s * v }),
            Activation::Elu => x.map(|v| if v > 0.0 { v } else { v.exp() - 1.0 }),
        }
    }

    /// The derivative evaluated at pre-activation `x`, multiplied
    /// elementwise into `upstream` (i.e. the backward step).
    pub fn backward(&self, pre: &Matrix, upstream: &Matrix) -> Matrix {
        assert_eq!(pre.shape(), upstream.shape(), "activation backward shape");
        match *self {
            Activation::Identity => upstream.clone(),
            Activation::Relu => {
                let mask = pre.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                upstream.hadamard(&mask)
            }
            Activation::LeakyRelu(s) => {
                let mask = pre.map(|v| if v > 0.0 { 1.0 } else { s });
                upstream.hadamard(&mask)
            }
            Activation::Elu => {
                let mask = pre.map(|v| if v > 0.0 { 1.0 } else { v.exp() });
                upstream.hadamard(&mask)
            }
        }
    }

    /// Scalar derivative at `x` (for the per-edge GAT path).
    pub fn derivative(&self, x: f32) -> f32 {
        match *self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu(s) => {
                if x > 0.0 {
                    1.0
                } else {
                    s
                }
            }
            Activation::Elu => {
                if x > 0.0 {
                    1.0
                } else {
                    x.exp()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let x = Matrix::from_rows(&[&[-1.0, 0.5]]);
        let y = Activation::Relu.apply(&x);
        assert_eq!(y.row(0), &[0.0, 0.5]);
        let up = Matrix::from_rows(&[&[2.0, 2.0]]);
        let d = Activation::Relu.backward(&x, &up);
        assert_eq!(d.row(0), &[0.0, 2.0]);
    }

    #[test]
    fn leaky_relu_slope() {
        let x = Matrix::from_rows(&[&[-2.0, 3.0]]);
        let y = Activation::LeakyRelu(0.1).apply(&x);
        assert!((y[(0, 0)] + 0.2).abs() < 1e-6);
        assert_eq!(y[(0, 1)], 3.0);
    }

    #[test]
    fn elu_is_smooth_at_negative() {
        let x = Matrix::from_rows(&[&[-1.0]]);
        let y = Activation::Elu.apply(&x);
        assert!((y[(0, 0)] - ((-1.0f32).exp() - 1.0)).abs() < 1e-6);
        assert!((Activation::Elu.derivative(-1.0) - (-1.0f32).exp()).abs() < 1e-6);
    }

    #[test]
    fn identity_passthrough() {
        let x = Matrix::from_rows(&[&[-5.0, 5.0]]);
        assert_eq!(Activation::Identity.apply(&x), x);
    }
}
