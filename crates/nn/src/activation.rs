//! Elementwise activation functions and their derivatives.
//!
//! Relu/LeakyRelu run through the [`bns_tensor::simd`] backend; the
//! backward passes are fused single sweeps (multiply the upstream by
//! the mask in place) instead of the former mask-matrix + hadamard
//! two-pass, which allocated and swept twice per layer per step. Elu's
//! `exp` has no vector form here, so it keeps scalar loops — but its
//! backward is fused the same way.

use bns_tensor::{simd, Matrix};

/// An elementwise activation applied after a layer's linear part.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// `x` (used on the final layer before the loss).
    Identity,
    /// `x` if `x > 0` else `slope * x`.
    LeakyRelu(f32),
    /// `x` if `x > 0` else `exp(x) - 1`.
    Elu,
}

impl Activation {
    /// Applies the activation elementwise.
    ///
    /// Relu is an explicit `if v > 0 { v } else { 0.0 }` select on
    /// every backend (NaN maps to `0.0`, like the former `max`, and
    /// `-0.0` deterministically maps to `+0.0` — `f32::max` left that
    /// sign unspecified).
    pub fn apply(&self, x: &Matrix) -> Matrix {
        match *self {
            Activation::Relu => {
                let mut out = x.clone();
                simd::relu(simd::begin_kernel(), out.as_mut_slice());
                out
            }
            Activation::Identity => x.clone(),
            Activation::LeakyRelu(s) => {
                let mut out = x.clone();
                simd::leaky_relu(simd::begin_kernel(), out.as_mut_slice(), s);
                out
            }
            Activation::Elu => x.map(|v| if v > 0.0 { v } else { v.exp() - 1.0 }),
        }
    }

    /// The derivative evaluated at pre-activation `x`, multiplied
    /// elementwise into `upstream` (i.e. the backward step).
    ///
    /// Single fused sweep: `upstream * mask(pre)` with the mask formed
    /// in registers — the exact arithmetic of the old two-pass
    /// mask-matrix + hadamard (so NaN upstream through a dead unit
    /// still yields `NaN * 0.0 = NaN`), minus one allocation and one
    /// full traversal.
    pub fn backward(&self, pre: &Matrix, upstream: &Matrix) -> Matrix {
        assert_eq!(pre.shape(), upstream.shape(), "activation backward shape");
        match *self {
            Activation::Identity => upstream.clone(),
            Activation::Relu => {
                let mut out = upstream.clone();
                simd::relu_backward(simd::begin_kernel(), out.as_mut_slice(), pre.as_slice());
                out
            }
            Activation::LeakyRelu(s) => {
                let mut out = upstream.clone();
                simd::leaky_relu_backward(
                    simd::begin_kernel(),
                    out.as_mut_slice(),
                    pre.as_slice(),
                    s,
                );
                out
            }
            Activation::Elu => {
                let mut out = upstream.clone();
                for (o, &p) in out.as_mut_slice().iter_mut().zip(pre.as_slice()) {
                    *o *= if p > 0.0 { 1.0 } else { p.exp() };
                }
                out
            }
        }
    }

    /// Scalar derivative at `x` (for the per-edge GAT path).
    pub fn derivative(&self, x: f32) -> f32 {
        match *self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu(s) => {
                if x > 0.0 {
                    1.0
                } else {
                    s
                }
            }
            Activation::Elu => {
                if x > 0.0 {
                    1.0
                } else {
                    x.exp()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let x = Matrix::from_rows(&[&[-1.0, 0.5]]);
        let y = Activation::Relu.apply(&x);
        assert_eq!(y.row(0), &[0.0, 0.5]);
        let up = Matrix::from_rows(&[&[2.0, 2.0]]);
        let d = Activation::Relu.backward(&x, &up);
        assert_eq!(d.row(0), &[0.0, 2.0]);
    }

    #[test]
    fn leaky_relu_slope() {
        let x = Matrix::from_rows(&[&[-2.0, 3.0]]);
        let y = Activation::LeakyRelu(0.1).apply(&x);
        assert!((y[(0, 0)] + 0.2).abs() < 1e-6);
        assert_eq!(y[(0, 1)], 3.0);
    }

    #[test]
    fn elu_is_smooth_at_negative() {
        let x = Matrix::from_rows(&[&[-1.0]]);
        let y = Activation::Elu.apply(&x);
        assert!((y[(0, 0)] - ((-1.0f32).exp() - 1.0)).abs() < 1e-6);
        assert!((Activation::Elu.derivative(-1.0) - (-1.0f32).exp()).abs() < 1e-6);
    }

    #[test]
    fn identity_passthrough() {
        let x = Matrix::from_rows(&[&[-5.0, 5.0]]);
        assert_eq!(Activation::Identity.apply(&x), x);
    }
}
