//! Finite-difference gradient checking, used throughout the test suite
//! to validate the hand-derived backward passes.

use bns_tensor::Matrix;

/// Central finite-difference gradient of a scalar function `f` with
/// respect to `x`: `(f(x + εeᵢ) − f(x − εeᵢ)) / 2ε` per entry.
///
/// # Example
///
/// ```
/// use bns_nn::gradcheck::finite_diff;
/// use bns_tensor::Matrix;
///
/// let x = Matrix::from_rows(&[&[3.0f32]]);
/// // f(x) = x², so f'(3) = 6.
/// let g = finite_diff(&x, 1e-3, |m| (m[(0, 0)] as f64).powi(2));
/// assert!((g[(0, 0)] - 6.0).abs() < 1e-2);
/// ```
pub fn finite_diff(x: &Matrix, eps: f32, mut f: impl FnMut(&Matrix) -> f64) -> Matrix {
    let mut grad = Matrix::zeros(x.rows(), x.cols());
    let mut xp = x.clone();
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            let orig = xp[(r, c)];
            xp[(r, c)] = orig + eps;
            let plus = f(&xp);
            xp[(r, c)] = orig - eps;
            let minus = f(&xp);
            xp[(r, c)] = orig;
            grad[(r, c)] = ((plus - minus) / (2.0 * eps as f64)) as f32;
        }
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient() {
        let x = Matrix::from_rows(&[&[1.0, -2.0]]);
        let g = finite_diff(&x, 1e-3, |m| {
            m.as_slice().iter().map(|&v| (v as f64).powi(2)).sum()
        });
        assert!((g[(0, 0)] - 2.0).abs() < 1e-2);
        assert!((g[(0, 1)] + 4.0).abs() < 1e-2);
    }
}
