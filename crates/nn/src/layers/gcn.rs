//! The vanilla GCN layer (Kipf & Welling) with symmetric normalization —
//! used by the variance-analysis experiments (paper Appendix A analyzes
//! exactly this propagation `Z = P H W`).

use crate::activation::Activation;
use crate::aggregate::{
    gcn_aggregate, gcn_aggregate_backward, gcn_aggregate_inner, gcn_fold_boundary,
};
use crate::layers::dropout;
use bns_graph::CsrGraph;
use bns_tensor::{xavier_uniform, Matrix, SeededRng};

/// GCN layer parameters: `h' = act( P h · W + b )` with
/// `P = D̃^{-1/2} Ã D̃^{-1/2}`.
#[derive(Debug, Clone, PartialEq)]
pub struct GcnLayer {
    /// Weights, `d_in x d_out`.
    pub w: Matrix,
    /// Bias, `1 x d_out`.
    pub b: Matrix,
    /// Post-linear activation.
    pub act: Activation,
    /// Input dropout rate.
    pub dropout: f32,
}

/// Saved forward state for [`GcnLayer::backward`].
#[derive(Debug, Clone)]
pub struct GcnCache {
    h_dropped: Matrix,
    mask: Option<Matrix>,
    z: Matrix,
    pre: Matrix,
    n_out: usize,
    s: Vec<f32>,
}

/// Result of [`GcnLayer::forward_inner`] — everything computable before
/// boundary features have arrived.
#[derive(Debug, Clone)]
pub struct GcnInnerPartial {
    h_in_dropped: Matrix,
    mask_in: Option<Matrix>,
    z: Matrix,
}

/// Saved forward state for [`GcnLayer::backward_seg`]; never stores the
/// boundary feature rows.
#[derive(Debug, Clone)]
pub struct GcnSegCache {
    h_in_dropped: Matrix,
    mask_in: Option<Matrix>,
    mask_bd: Option<Matrix>,
    z: Matrix,
    pre: Matrix,
    n_bd: usize,
    s: Vec<f32>,
}

/// Parameter gradients from [`GcnLayer::backward`].
#[derive(Debug, Clone, PartialEq)]
pub struct GcnGrads {
    /// Gradient of `w`.
    pub w: Matrix,
    /// Gradient of `b`.
    pub b: Matrix,
}

impl GcnLayer {
    /// Xavier-initialized layer.
    pub fn new(
        d_in: usize,
        d_out: usize,
        act: Activation,
        dropout: f32,
        rng: &mut SeededRng,
    ) -> Self {
        Self {
            w: xavier_uniform(d_in, d_out, rng),
            b: Matrix::zeros(1, d_out),
            act,
            dropout,
        }
    }

    /// Forward pass; `s[v] = 1/sqrt(deg_full(v) + 1)` for every local
    /// row.
    pub fn forward(
        &self,
        g: &CsrGraph,
        h_full: &Matrix,
        n_out: usize,
        s: &[f32],
        train: bool,
        rng: &mut SeededRng,
    ) -> (Matrix, GcnCache) {
        assert_eq!(h_full.cols(), self.w.rows(), "input dim mismatch");
        let (h_dropped, mask) = if train && self.dropout > 0.0 {
            let (h, m) = dropout(h_full, self.dropout, rng);
            (h, Some(m))
        } else {
            (h_full.clone(), None)
        };
        let z = gcn_aggregate(g, &h_dropped, n_out, s);
        let mut pre = z.matmul(&self.w);
        pre.add_row_broadcast(self.b.row(0));
        let out = self.act.apply(&pre);
        (
            out,
            GcnCache {
                h_dropped,
                mask,
                z,
                pre,
                n_out,
                s: s.to_vec(),
            },
        )
    }

    /// Phase 1 of the segmented forward pass: inner-row dropout and the
    /// inner-edge partial aggregation (no self-loop term yet); runs
    /// before boundary features arrive. See
    /// [`crate::aggregate::gcn_aggregate_inner`] for the bitwise-identity
    /// argument.
    pub fn forward_inner(
        &self,
        g: &CsrGraph,
        h_inner: &Matrix,
        s: &[f32],
        train: bool,
        rng: &mut SeededRng,
    ) -> GcnInnerPartial {
        assert_eq!(h_inner.cols(), self.w.rows(), "input dim mismatch");
        let (h_in_dropped, mask_in) = if train && self.dropout > 0.0 {
            let (h, m) = dropout(h_inner, self.dropout, rng);
            (h, Some(m))
        } else {
            (h_inner.clone(), None)
        };
        let z = gcn_aggregate_inner(g, &h_in_dropped, h_in_dropped.rows(), s);
        GcnInnerPartial {
            h_in_dropped,
            mask_in,
            z,
        }
    }

    /// Phase 2 of the segmented forward pass: boundary dropout, boundary
    /// fold + self-loop finalization, then the dense linear path. `h_bd`
    /// is borrowed and not cached.
    pub fn forward_boundary(
        &self,
        g: &CsrGraph,
        partial: GcnInnerPartial,
        h_bd: &Matrix,
        s: &[f32],
        train: bool,
        rng: &mut SeededRng,
    ) -> (Matrix, GcnSegCache) {
        let GcnInnerPartial {
            h_in_dropped,
            mask_in,
            mut z,
        } = partial;
        let n_inner = h_in_dropped.rows();
        let dropped_store;
        let mask_bd;
        let h_bd_used: &Matrix = if train && self.dropout > 0.0 && h_bd.rows() > 0 {
            let (h, m) = dropout(h_bd, self.dropout, rng);
            dropped_store = h;
            mask_bd = Some(m);
            &dropped_store
        } else {
            mask_bd = None;
            h_bd
        };
        gcn_fold_boundary(g, &mut z, &h_in_dropped, h_bd_used, n_inner, s);
        let mut pre = z.matmul(&self.w);
        pre.add_row_broadcast(self.b.row(0));
        let out = self.act.apply(&pre);
        (
            out,
            GcnSegCache {
                h_in_dropped,
                mask_in,
                mask_bd,
                z,
                pre,
                n_bd: h_bd.rows(),
                s: s.to_vec(),
            },
        )
    }

    /// Segmented backward pass: returns `(dh_inner, dh_bd, grads)` —
    /// bitwise equal to slicing [`GcnLayer::backward`]'s output at the
    /// inner/boundary split.
    pub fn backward_seg(
        &self,
        g: &CsrGraph,
        cache: &GcnSegCache,
        d_out: &Matrix,
    ) -> (Matrix, Matrix, GcnGrads) {
        let n_inner = cache.h_in_dropped.rows();
        assert_eq!(d_out.rows(), n_inner, "d_out row mismatch");
        let dpre = self.act.backward(&cache.pre, d_out);
        let grads = GcnGrads {
            w: cache.z.matmul_tn(&dpre),
            b: Matrix::from_vec(1, self.w.cols(), dpre.col_sums()),
        };
        let dz = dpre.matmul_nt(&self.w);
        let dh = gcn_aggregate_backward(g, &dz, n_inner + cache.n_bd, &cache.s);
        let (mut dh_inner, dh_bd) = dh.split_rows(n_inner);
        if let Some(m) = &cache.mask_in {
            dh_inner = dh_inner.hadamard(m);
        }
        let dh_bd = match &cache.mask_bd {
            Some(m) => dh_bd.hadamard(m),
            None => dh_bd,
        };
        (dh_inner, dh_bd, grads)
    }

    /// Backward pass: returns gradient for all input rows plus parameter
    /// gradients.
    pub fn backward(&self, g: &CsrGraph, cache: &GcnCache, d_out: &Matrix) -> (Matrix, GcnGrads) {
        assert_eq!(d_out.rows(), cache.n_out, "d_out row mismatch");
        let dpre = self.act.backward(&cache.pre, d_out);
        let grads = GcnGrads {
            w: cache.z.matmul_tn(&dpre),
            b: Matrix::from_vec(1, self.w.cols(), dpre.col_sums()),
        };
        let dz = dpre.matmul_nt(&self.w);
        let mut dh = gcn_aggregate_backward(g, &dz, cache.h_dropped.rows(), &cache.s);
        if let Some(m) = &cache.mask {
            dh = dh.hadamard(m);
        }
        (dh, grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::finite_diff;
    use bns_graph::generators::erdos_renyi_m;

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = SeededRng::new(20);
        let g = erdos_renyi_m(10, 20, &mut rng);
        // ELU is C¹-smooth, keeping the finite-difference check tight
        // (ReLU kinks inflate central-difference error).
        let layer = GcnLayer::new(4, 3, Activation::Elu, 0.0, &mut rng);
        let h = Matrix::random_normal(10, 4, 0.0, 1.0, &mut rng);
        let s: Vec<f32> = (0..10)
            .map(|v| 1.0 / ((g.degree(v) + 1) as f32).sqrt())
            .collect();
        let loss = |l: &GcnLayer, hp: &Matrix| -> f64 {
            let mut r = SeededRng::new(0);
            let (out, _) = l.forward(&g, hp, 10, &s, false, &mut r);
            out.sum() as f64
        };
        let mut r = SeededRng::new(0);
        let (out, cache) = layer.forward(&g, &h, 10, &s, false, &mut r);
        let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
        let (dh, grads) = layer.backward(&g, &cache, &ones);
        let fd_h = finite_diff(&h, 1e-2, |hp| loss(&layer, hp));
        assert!(
            dh.approx_eq(&fd_h, 0.08),
            "dh diff {}",
            dh.max_abs_diff(&fd_h)
        );
        let fd_w = finite_diff(&layer.w, 1e-2, |w| {
            let mut l2 = layer.clone();
            l2.w = w.clone();
            loss(&l2, &h)
        });
        assert!(
            grads.w.approx_eq(&fd_w, 0.05),
            "dw diff {}",
            grads.w.max_abs_diff(&fd_w)
        );
    }

    #[test]
    fn segmented_forward_backward_matches_fused_bitwise() {
        let mut rng = SeededRng::new(41);
        let n_in = 7;
        let n_bd = 4;
        let mut b = bns_graph::GraphBuilder::new(n_in + n_bd);
        for _ in 0..26 {
            let u = rng.uniform_range(0.0, n_in as f32) as usize;
            let v = rng.uniform_range(0.0, (n_in + n_bd) as f32) as usize;
            if u != v {
                b.add_edge(u, v.min(n_in + n_bd - 1));
            }
        }
        let g = b.build();
        let mut layer = GcnLayer::new(3, 5, Activation::Elu, 0.0, &mut rng);
        layer.dropout = 0.3;
        let h_inner = Matrix::random_normal(n_in, 3, 0.0, 1.0, &mut rng);
        let h_bd = Matrix::random_normal(n_bd, 3, 0.0, 1.0, &mut rng);
        let s: Vec<f32> = (0..g.num_nodes())
            .map(|v| 1.0 / ((g.degree(v) + 1) as f32).sqrt())
            .collect();
        let d_out = Matrix::random_normal(n_in, 5, 0.0, 1.0, &mut rng);

        let mut rng_fused = SeededRng::new(88);
        let (out_f, cache_f) =
            layer.forward(&g, &h_inner.vstack(&h_bd), n_in, &s, true, &mut rng_fused);
        let (dh_f, grads_f) = layer.backward(&g, &cache_f, &d_out);

        let mut rng_seg = SeededRng::new(88);
        let partial = layer.forward_inner(&g, &h_inner, &s, true, &mut rng_seg);
        let (out_s, cache_s) = layer.forward_boundary(&g, partial, &h_bd, &s, true, &mut rng_seg);
        let (dh_in, dh_bd, grads_s) = layer.backward_seg(&g, &cache_s, &d_out);

        let bits = |m: &Matrix| -> Vec<u32> { m.as_slice().iter().map(|x| x.to_bits()).collect() };
        assert_eq!(bits(&out_f), bits(&out_s));
        assert_eq!(bits(&dh_f.slice_rows(0, n_in)), bits(&dh_in));
        assert_eq!(bits(&dh_f.slice_rows(n_in, n_in + n_bd)), bits(&dh_bd));
        assert_eq!(bits(&grads_f.w), bits(&grads_s.w));
        assert_eq!(bits(&grads_f.b), bits(&grads_s.b));
    }

    #[test]
    fn output_shape_respects_n_out() {
        let mut rng = SeededRng::new(21);
        let g = erdos_renyi_m(8, 12, &mut rng);
        let layer = GcnLayer::new(3, 5, Activation::Identity, 0.0, &mut rng);
        let h = Matrix::random_normal(8, 3, 0.0, 1.0, &mut rng);
        let s = vec![0.5; 8];
        let (out, _) = layer.forward(&g, &h, 4, &s, false, &mut rng);
        assert_eq!(out.shape(), (4, 5));
    }
}
