//! A plain fully-connected layer — the building block of the
//! structure-unaware MLP baseline (the paper's introduction motivates
//! GCNs by their advantage over exactly this alternative).

use crate::activation::Activation;
use crate::layers::dropout;
use bns_tensor::{xavier_uniform, Matrix, SeededRng};

/// Fully-connected layer: `y = act(x W + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearLayer {
    /// Weights, `d_in x d_out`.
    pub w: Matrix,
    /// Bias, `1 x d_out`.
    pub b: Matrix,
    /// Post-linear activation.
    pub act: Activation,
    /// Input dropout rate.
    pub dropout: f32,
}

/// Saved forward state for [`LinearLayer::backward`].
#[derive(Debug, Clone)]
pub struct LinearCache {
    x_dropped: Matrix,
    mask: Option<Matrix>,
    pre: Matrix,
}

/// Parameter gradients from [`LinearLayer::backward`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinearGrads {
    /// Gradient of `w`.
    pub w: Matrix,
    /// Gradient of `b`.
    pub b: Matrix,
}

impl LinearLayer {
    /// Xavier-initialized layer.
    pub fn new(
        d_in: usize,
        d_out: usize,
        act: Activation,
        dropout: f32,
        rng: &mut SeededRng,
    ) -> Self {
        Self {
            w: xavier_uniform(d_in, d_out, rng),
            b: Matrix::zeros(1, d_out),
            act,
            dropout,
        }
    }

    /// Forward pass.
    pub fn forward(&self, x: &Matrix, train: bool, rng: &mut SeededRng) -> (Matrix, LinearCache) {
        assert_eq!(x.cols(), self.w.rows(), "input dim mismatch");
        let (x_dropped, mask) = if train && self.dropout > 0.0 {
            let (xd, m) = dropout(x, self.dropout, rng);
            (xd, Some(m))
        } else {
            (x.clone(), None)
        };
        let mut pre = x_dropped.matmul(&self.w);
        pre.add_row_broadcast(self.b.row(0));
        let out = self.act.apply(&pre);
        (
            out,
            LinearCache {
                x_dropped,
                mask,
                pre,
            },
        )
    }

    /// Backward pass: returns input gradient and parameter gradients.
    pub fn backward(&self, cache: &LinearCache, d_out: &Matrix) -> (Matrix, LinearGrads) {
        let dpre = self.act.backward(&cache.pre, d_out);
        let grads = LinearGrads {
            w: cache.x_dropped.matmul_tn(&dpre),
            b: Matrix::from_vec(1, self.w.cols(), dpre.col_sums()),
        };
        let mut dx = dpre.matmul_nt(&self.w);
        if let Some(m) = &cache.mask {
            dx = dx.hadamard(m);
        }
        (dx, grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::finite_diff;

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = SeededRng::new(60);
        let layer = LinearLayer::new(4, 3, Activation::Elu, 0.0, &mut rng);
        let x = Matrix::random_normal(5, 4, 0.0, 1.0, &mut rng);
        let loss = |l: &LinearLayer, xp: &Matrix| -> f64 {
            let mut r = SeededRng::new(0);
            let (out, _) = l.forward(xp, false, &mut r);
            out.sum() as f64
        };
        let mut r = SeededRng::new(0);
        let (out, cache) = layer.forward(&x, false, &mut r);
        let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
        let (dx, grads) = layer.backward(&cache, &ones);
        let fd_x = finite_diff(&x, 1e-2, |xp| loss(&layer, xp));
        assert!(
            dx.approx_eq(&fd_x, 0.05),
            "dx diff {}",
            dx.max_abs_diff(&fd_x)
        );
        let fd_w = finite_diff(&layer.w, 1e-2, |w| {
            let mut l2 = layer.clone();
            l2.w = w.clone();
            loss(&l2, &x)
        });
        assert!(grads.w.approx_eq(&fd_w, 0.05));
        let fd_b = finite_diff(&layer.b, 1e-2, |b| {
            let mut l2 = layer.clone();
            l2.b = b.clone();
            loss(&l2, &x)
        });
        assert!(grads.b.approx_eq(&fd_b, 0.05));
    }

    #[test]
    fn identity_activation_is_affine() {
        let mut rng = SeededRng::new(61);
        let layer = LinearLayer::new(2, 2, Activation::Identity, 0.0, &mut rng);
        let x = Matrix::eye(2);
        let mut r = SeededRng::new(0);
        let (out, _) = layer.forward(&x, false, &mut r);
        // Rows of the identity recover W's rows plus bias.
        for i in 0..2 {
            for j in 0..2 {
                assert!((out[(i, j)] - (layer.w[(i, j)] + layer.b[(0, j)])).abs() < 1e-6);
            }
        }
    }
}
