//! Graph neural network layers with explicit forward/backward passes.
//!
//! All layers follow the same calling convention, designed for the
//! partition-parallel engine:
//!
//! * `forward(graph, h_full, n_out, ..)` consumes a feature matrix whose
//!   first `n_out` rows are the nodes to update (a partition's inner
//!   nodes) and whose remaining rows are externally supplied context
//!   (boundary nodes); it returns the updated `n_out` rows plus a cache.
//! * `backward(graph, cache, d_out)` consumes the gradient of the loss
//!   with respect to the layer's output and returns the gradient with
//!   respect to **every** input row (inner and boundary — the boundary
//!   rows are what the engine ships back to their owner partitions) plus
//!   parameter gradients.

mod gat;
mod gcn;
mod linear;
mod sage;

pub use gat::{GatCache, GatGrads, GatLayer};
pub use gcn::{GcnCache, GcnGrads, GcnInnerPartial, GcnLayer, GcnSegCache};
pub use linear::{LinearCache, LinearGrads, LinearLayer};
pub use sage::{SageCache, SageGrads, SageInnerPartial, SageLayer, SageSegCache};

use bns_tensor::{Matrix, SeededRng};

/// Inverted dropout: zeroes entries with probability `rate` and scales
/// survivors by `1/(1-rate)`, returning the dropped matrix and the scale
/// mask for the backward pass.
pub(crate) fn dropout(x: &Matrix, rate: f32, rng: &mut SeededRng) -> (Matrix, Matrix) {
    debug_assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0,1)");
    let keep = 1.0 - rate;
    let mask = Matrix::from_fn(x.rows(), x.cols(), |_, _| {
        if rng.bernoulli(keep as f64) {
            1.0 / keep
        } else {
            0.0
        }
    });
    (x.hadamard(&mask), mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropout_preserves_expectation() {
        let mut rng = SeededRng::new(1);
        let x = Matrix::filled(200, 50, 1.0);
        let (y, mask) = dropout(&x, 0.4, &mut rng);
        let mean = y.sum() / y.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Mask entries are either 0 or 1/keep.
        assert!(mask
            .as_slice()
            .iter()
            .all(|&m| m == 0.0 || (m - 1.0 / 0.6).abs() < 1e-5));
    }

    #[test]
    fn dropout_zero_rate_is_identity() {
        let mut rng = SeededRng::new(2);
        let x = Matrix::filled(3, 3, 2.0);
        let (y, _) = dropout(&x, 0.0, &mut rng);
        assert_eq!(y, x);
    }
}
