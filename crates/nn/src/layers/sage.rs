//! The GraphSAGE layer with mean aggregator — the model used for every
//! main experiment in the paper.
//!
//! `h'_v = act( h_v · W_self + z_v · W_neigh + b )` with
//! `z_v = row_scale[v] · Σ_{u ∈ N(v)} h_u`. With `row_scale[v] =
//! 1/deg_full(v)` this is the paper's `σ(W · CONCAT(z_v, h_v))`
//! formulation (a concatenation followed by one weight matrix is exactly
//! two weight matrices added).

use crate::activation::Activation;
use crate::aggregate::{
    scaled_sum_aggregate, scaled_sum_aggregate_backward, scaled_sum_aggregate_inner,
    scaled_sum_fold_boundary,
};
use crate::layers::dropout;
use bns_graph::CsrGraph;
use bns_tensor::{xavier_uniform, Matrix, SeededRng};

/// GraphSAGE layer parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SageLayer {
    /// Self-path weights, `d_in x d_out`.
    pub w_self: Matrix,
    /// Neighbor-path weights, `d_in x d_out`.
    pub w_neigh: Matrix,
    /// Bias, `1 x d_out`.
    pub b: Matrix,
    /// Post-linear activation.
    pub act: Activation,
    /// Input dropout rate (active only when `train` is passed).
    pub dropout: f32,
}

/// Saved forward state needed by [`SageLayer::backward`].
#[derive(Debug, Clone)]
pub struct SageCache {
    h_dropped: Matrix,
    mask: Option<Matrix>,
    z: Matrix,
    pre: Matrix,
    n_out: usize,
    row_scale: Vec<f32>,
}

/// Result of [`SageLayer::forward_inner`] — everything computable
/// before boundary features have arrived.
#[derive(Debug, Clone)]
pub struct SageInnerPartial {
    h_in_dropped: Matrix,
    mask_in: Option<Matrix>,
    z: Matrix,
}

/// Saved forward state for [`SageLayer::backward_seg`] — the segmented
/// twin of [`SageCache`]. Unlike the fused cache it never stores the
/// boundary feature rows (the backward pass does not need them), so the
/// per-layer activation memory drops by the halo size.
#[derive(Debug, Clone)]
pub struct SageSegCache {
    h_in_dropped: Matrix,
    mask_in: Option<Matrix>,
    mask_bd: Option<Matrix>,
    z: Matrix,
    pre: Matrix,
    n_bd: usize,
    row_scale: Vec<f32>,
}

/// Parameter gradients produced by [`SageLayer::backward`].
#[derive(Debug, Clone, PartialEq)]
pub struct SageGrads {
    /// Gradient of `w_self`.
    pub w_self: Matrix,
    /// Gradient of `w_neigh`.
    pub w_neigh: Matrix,
    /// Gradient of `b`.
    pub b: Matrix,
}

impl SageLayer {
    /// Xavier-initialized layer.
    pub fn new(
        d_in: usize,
        d_out: usize,
        act: Activation,
        dropout: f32,
        rng: &mut SeededRng,
    ) -> Self {
        Self {
            w_self: xavier_uniform(d_in, d_out, rng),
            w_neigh: xavier_uniform(d_in, d_out, rng),
            b: Matrix::zeros(1, d_out),
            act,
            dropout,
        }
    }

    /// Input feature dimension.
    pub fn d_in(&self) -> usize {
        self.w_self.rows()
    }

    /// Output feature dimension.
    pub fn d_out(&self) -> usize {
        self.w_self.cols()
    }

    /// Forward pass. `h_full` holds features for every local row (inner
    /// then boundary); `n_out` rows are updated. `row_scale[v]` is the
    /// aggregation normalizer (use `1/deg_full(v)` for the paper's mean
    /// aggregator). Dropout is applied to the input iff `train`.
    ///
    /// Returns the updated `n_out x d_out` features and the backward
    /// cache.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches between `h_full`, the graph and
    /// `row_scale`.
    pub fn forward(
        &self,
        g: &CsrGraph,
        h_full: &Matrix,
        n_out: usize,
        row_scale: &[f32],
        train: bool,
        rng: &mut SeededRng,
    ) -> (Matrix, SageCache) {
        assert_eq!(h_full.cols(), self.d_in(), "input dim mismatch");
        let (h_dropped, mask) = if train && self.dropout > 0.0 {
            let (h, m) = dropout(h_full, self.dropout, rng);
            (h, Some(m))
        } else {
            (h_full.clone(), None)
        };
        let z = scaled_sum_aggregate(g, &h_dropped, n_out, row_scale);
        let h_self = h_dropped.slice_rows(0, n_out);
        let mut pre = h_self.matmul(&self.w_self);
        pre.add_assign(&z.matmul(&self.w_neigh));
        pre.add_row_broadcast(self.b.row(0));
        let out = self.act.apply(&pre);
        (
            out,
            SageCache {
                h_dropped,
                mask,
                z,
                pre,
                n_out,
                row_scale: row_scale.to_vec(),
            },
        )
    }

    /// Phase 1 of the segmented forward pass: input dropout on the inner
    /// rows plus the inner-edge partial aggregation — everything that
    /// does not touch boundary features, so the engine can run it while
    /// boundary blocks are in flight. All `h_inner.rows()` rows are
    /// treated as update targets.
    ///
    /// Combined with [`SageLayer::forward_boundary`] this is bitwise
    /// identical to [`SageLayer::forward`] on `vstack(h_inner, h_bd)`:
    /// dropout draws its RNG stream row-major (inner rows first), and
    /// sorted CSR rows put inner neighbors before boundary neighbors.
    pub fn forward_inner(
        &self,
        g: &CsrGraph,
        h_inner: &Matrix,
        train: bool,
        rng: &mut SeededRng,
    ) -> SageInnerPartial {
        assert_eq!(h_inner.cols(), self.d_in(), "input dim mismatch");
        let (h_in_dropped, mask_in) = if train && self.dropout > 0.0 {
            let (h, m) = dropout(h_inner, self.dropout, rng);
            (h, Some(m))
        } else {
            (h_inner.clone(), None)
        };
        let z = scaled_sum_aggregate_inner(g, &h_in_dropped, h_in_dropped.rows());
        SageInnerPartial {
            h_in_dropped,
            mask_in,
            z,
        }
    }

    /// Phase 2 of the segmented forward pass: boundary dropout, boundary
    /// fold + scaling, and the dense linear path. `h_bd` is borrowed
    /// (it can live in a reusable exchange arena) and is **not** kept in
    /// the cache.
    pub fn forward_boundary(
        &self,
        g: &CsrGraph,
        partial: SageInnerPartial,
        h_bd: &Matrix,
        row_scale: &[f32],
        train: bool,
        rng: &mut SeededRng,
    ) -> (Matrix, SageSegCache) {
        let SageInnerPartial {
            h_in_dropped,
            mask_in,
            mut z,
        } = partial;
        let n_inner = h_in_dropped.rows();
        let dropped_store;
        let mask_bd;
        let h_bd_used: &Matrix = if train && self.dropout > 0.0 && h_bd.rows() > 0 {
            let (h, m) = dropout(h_bd, self.dropout, rng);
            dropped_store = h;
            mask_bd = Some(m);
            &dropped_store
        } else {
            mask_bd = None;
            h_bd
        };
        scaled_sum_fold_boundary(g, &mut z, h_bd_used, n_inner, row_scale);
        let mut pre = h_in_dropped.matmul(&self.w_self);
        pre.add_assign(&z.matmul(&self.w_neigh));
        pre.add_row_broadcast(self.b.row(0));
        let out = self.act.apply(&pre);
        (
            out,
            SageSegCache {
                h_in_dropped,
                mask_in,
                mask_bd,
                z,
                pre,
                n_bd: h_bd.rows(),
                row_scale: row_scale.to_vec(),
            },
        )
    }

    /// Segmented backward pass: returns `(dh_inner, dh_bd, grads)`
    /// directly instead of one stacked gradient matrix — bitwise equal
    /// to slicing [`SageLayer::backward`]'s output at the inner/boundary
    /// split.
    pub fn backward_seg(
        &self,
        g: &CsrGraph,
        cache: &SageSegCache,
        d_out: &Matrix,
    ) -> (Matrix, Matrix, SageGrads) {
        let n_inner = cache.h_in_dropped.rows();
        assert_eq!(d_out.rows(), n_inner, "d_out row mismatch");
        let dpre = self.act.backward(&cache.pre, d_out);
        let grads = SageGrads {
            w_self: cache.h_in_dropped.matmul_tn(&dpre),
            w_neigh: cache.z.matmul_tn(&dpre),
            b: Matrix::from_vec(1, self.d_out(), dpre.col_sums()),
        };
        let dz = dpre.matmul_nt(&self.w_neigh);
        let dh = scaled_sum_aggregate_backward(g, &dz, n_inner + cache.n_bd, &cache.row_scale);
        let (mut dh_inner, dh_bd) = dh.split_rows(n_inner);
        let dh_self = dpre.matmul_nt(&self.w_self);
        let idx: Vec<usize> = (0..n_inner).collect();
        dh_inner.scatter_add_rows(&idx, &dh_self);
        if let Some(m) = &cache.mask_in {
            dh_inner = dh_inner.hadamard(m);
        }
        let dh_bd = match &cache.mask_bd {
            Some(m) => dh_bd.hadamard(m),
            None => dh_bd,
        };
        (dh_inner, dh_bd, grads)
    }

    /// Backward pass: given `d_out` (`n_out x d_out`), returns the
    /// gradient with respect to every input row (`h_full`'s shape) and
    /// the parameter gradients.
    pub fn backward(&self, g: &CsrGraph, cache: &SageCache, d_out: &Matrix) -> (Matrix, SageGrads) {
        assert_eq!(d_out.rows(), cache.n_out, "d_out row mismatch");
        let dpre = self.act.backward(&cache.pre, d_out);
        let h_self = cache.h_dropped.slice_rows(0, cache.n_out);
        let grads = SageGrads {
            w_self: h_self.matmul_tn(&dpre),
            w_neigh: cache.z.matmul_tn(&dpre),
            b: Matrix::from_vec(1, self.d_out(), dpre.col_sums()),
        };
        let dz = dpre.matmul_nt(&self.w_neigh);
        let mut dh =
            scaled_sum_aggregate_backward(g, &dz, cache.h_dropped.rows(), &cache.row_scale);
        let dh_self = dpre.matmul_nt(&self.w_self);
        let idx: Vec<usize> = (0..cache.n_out).collect();
        dh.scatter_add_rows(&idx, &dh_self);
        let dh = match &cache.mask {
            Some(m) => dh.hadamard(m),
            None => dh,
        };
        (dh, grads)
    }

    /// The layer's parameters, for the optimizer (order: `w_self`,
    /// `w_neigh`, `b`).
    pub fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.w_self, &mut self.w_neigh, &mut self.b]
    }

    /// Parameter gradients in [`SageLayer::params_mut`] order.
    pub fn grads_vec(grads: &SageGrads) -> Vec<&Matrix> {
        vec![&grads.w_self, &grads.w_neigh, &grads.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::finite_diff;
    use bns_graph::generators::erdos_renyi_m;

    fn setup() -> (CsrGraph, SageLayer, Matrix, Vec<f32>) {
        let mut rng = SeededRng::new(10);
        let g = erdos_renyi_m(12, 30, &mut rng);
        let layer = SageLayer::new(5, 4, Activation::Relu, 0.0, &mut rng);
        let h = Matrix::random_normal(12, 5, 0.0, 1.0, &mut rng);
        let scale: Vec<f32> = (0..12).map(|v| 1.0 / g.degree(v).max(1) as f32).collect();
        (g, layer, h, scale)
    }

    /// Loss = sum of outputs; its gradient w.r.t. the output is all-ones.
    fn loss_of(layer: &SageLayer, g: &CsrGraph, h: &Matrix, scale: &[f32]) -> f64 {
        let mut rng = SeededRng::new(0);
        let (out, _) = layer.forward(g, h, scale.len(), scale, false, &mut rng);
        out.sum() as f64
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let (g, layer, h, scale) = setup();
        let mut rng = SeededRng::new(0);
        let (out, cache) = layer.forward(&g, &h, 12, &scale, false, &mut rng);
        let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
        let (dh, _) = layer.backward(&g, &cache, &ones);
        let fd = finite_diff(&h, 1e-2, |hp| loss_of(&layer, &g, hp, &scale));
        assert!(dh.approx_eq(&fd, 0.05), "max diff {}", dh.max_abs_diff(&fd));
    }

    #[test]
    fn weight_gradients_match_finite_difference() {
        let (g, layer, h, scale) = setup();
        let mut rng = SeededRng::new(0);
        let (out, cache) = layer.forward(&g, &h, 12, &scale, false, &mut rng);
        let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
        let (_, grads) = layer.backward(&g, &cache, &ones);

        let fd_ws = finite_diff(&layer.w_self, 1e-2, |w| {
            let mut l2 = layer.clone();
            l2.w_self = w.clone();
            loss_of(&l2, &g, &h, &scale)
        });
        assert!(
            grads.w_self.approx_eq(&fd_ws, 0.05),
            "w_self max diff {}",
            grads.w_self.max_abs_diff(&fd_ws)
        );

        let fd_wn = finite_diff(&layer.w_neigh, 1e-2, |w| {
            let mut l2 = layer.clone();
            l2.w_neigh = w.clone();
            loss_of(&l2, &g, &h, &scale)
        });
        assert!(
            grads.w_neigh.approx_eq(&fd_wn, 0.05),
            "w_neigh max diff {}",
            grads.w_neigh.max_abs_diff(&fd_wn)
        );

        let fd_b = finite_diff(&layer.b, 1e-2, |b| {
            let mut l2 = layer.clone();
            l2.b = b.clone();
            loss_of(&l2, &g, &h, &scale)
        });
        assert!(
            grads.b.approx_eq(&fd_b, 0.05),
            "b max diff {}",
            grads.b.max_abs_diff(&fd_b)
        );
    }

    #[test]
    fn boundary_rows_receive_gradient() {
        // Local graph: 2 inner nodes (0, 1) + 1 boundary node (2); edge
        // from inner 0 to boundary 2 and inner 0 to inner 1.
        let g = CsrGraph::from_edges(3, [(0, 1), (0, 2)]);
        let mut rng = SeededRng::new(3);
        let layer = SageLayer::new(2, 2, Activation::Identity, 0.0, &mut rng);
        let h = Matrix::random_normal(3, 2, 0.0, 1.0, &mut rng);
        let scale = vec![0.5, 1.0]; // node 0 has full-degree 2, node 1 degree 1
        let (out, cache) = layer.forward(&g, &h, 2, &scale, false, &mut rng);
        let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
        let (dh, _) = layer.backward(&g, &cache, &ones);
        assert_eq!(dh.rows(), 3);
        // Boundary node 2 is a neighbor of updated node 0, so it must
        // carry gradient from the neighbor path.
        assert!(dh.row(2).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn segmented_forward_backward_matches_fused_bitwise() {
        // Local-style graph: 8 inner rows + 3 boundary rows, boundary
        // nodes only adjacent to inner nodes (as epoch topologies are).
        let mut rng = SeededRng::new(31);
        let n_in = 8;
        let n_bd = 3;
        let mut b = bns_graph::GraphBuilder::new(n_in + n_bd);
        for _ in 0..30 {
            let u = rng.uniform_range(0.0, n_in as f32) as usize;
            let v = rng.uniform_range(0.0, (n_in + n_bd) as f32) as usize;
            if u != v {
                b.add_edge(u, v.min(n_in + n_bd - 1));
            }
        }
        let g = b.build();
        let mut layer = SageLayer::new(4, 3, Activation::Relu, 0.0, &mut rng);
        layer.dropout = 0.4;
        let h_inner = Matrix::random_normal(n_in, 4, 0.0, 1.0, &mut rng);
        let h_bd = Matrix::random_normal(n_bd, 4, 0.0, 1.0, &mut rng);
        let scale: Vec<f32> = (0..n_in).map(|v| 1.0 / g.degree(v).max(1) as f32).collect();
        let d_out = Matrix::random_normal(n_in, 3, 0.0, 1.0, &mut rng);

        let mut rng_fused = SeededRng::new(77);
        let (out_f, cache_f) = layer.forward(
            &g,
            &h_inner.vstack(&h_bd),
            n_in,
            &scale,
            true,
            &mut rng_fused,
        );
        let (dh_f, grads_f) = layer.backward(&g, &cache_f, &d_out);

        let mut rng_seg = SeededRng::new(77);
        let partial = layer.forward_inner(&g, &h_inner, true, &mut rng_seg);
        let (out_s, cache_s) =
            layer.forward_boundary(&g, partial, &h_bd, &scale, true, &mut rng_seg);
        let (dh_in, dh_bd, grads_s) = layer.backward_seg(&g, &cache_s, &d_out);

        let bits = |m: &Matrix| -> Vec<u32> { m.as_slice().iter().map(|x| x.to_bits()).collect() };
        assert_eq!(bits(&out_f), bits(&out_s));
        assert_eq!(bits(&dh_f.slice_rows(0, n_in)), bits(&dh_in));
        assert_eq!(bits(&dh_f.slice_rows(n_in, n_in + n_bd)), bits(&dh_bd));
        assert_eq!(bits(&grads_f.w_self), bits(&grads_s.w_self));
        assert_eq!(bits(&grads_f.w_neigh), bits(&grads_s.w_neigh));
        assert_eq!(bits(&grads_f.b), bits(&grads_s.b));
    }

    #[test]
    fn dropout_train_vs_eval() {
        let (g, mut layer, h, scale) = setup();
        layer.dropout = 0.5;
        let mut rng1 = SeededRng::new(7);
        let (out_train, _) = layer.forward(&g, &h, 12, &scale, true, &mut rng1);
        let mut rng2 = SeededRng::new(7);
        let (out_eval, _) = layer.forward(&g, &h, 12, &scale, false, &mut rng2);
        assert_ne!(out_train, out_eval);
    }
}
