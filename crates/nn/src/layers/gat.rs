//! Single-head graph attention (GAT) layer — used by the paper's Table 10
//! ablation showing BNS-GCN generalizes beyond GraphSAGE.
//!
//! For every updated node `v` (self-loop included):
//! `s_{uv} = LeakyReLU(a_l · g_u + a_r · g_v)` with `g = h W`,
//! `α_{uv} = softmax_u(s_{uv})`, `z_v = Σ_u α_{uv} g_u`,
//! `h'_v = act(z_v)`.
//!
//! Under boundary-node sampling the attention softmax renormalizes over
//! whatever neighbors are locally present, so no `1/p` feature rescaling
//! is applied (matching the paper's usage, which plugs GAT into the same
//! engine unchanged).

use crate::activation::Activation;
use crate::layers::dropout;
use bns_graph::CsrGraph;
use bns_tensor::{simd, xavier_uniform, Matrix, SeededRng};

/// Single-head GAT layer parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GatLayer {
    /// Shared projection, `d_in x d_out`.
    pub w: Matrix,
    /// Left (source) attention vector, `1 x d_out`.
    pub a_l: Matrix,
    /// Right (target) attention vector, `1 x d_out`.
    pub a_r: Matrix,
    /// LeakyReLU slope for attention scores.
    pub neg_slope: f32,
    /// Output activation.
    pub act: Activation,
    /// Input dropout rate.
    pub dropout: f32,
}

/// Saved forward state for [`GatLayer::backward`].
#[derive(Debug, Clone)]
pub struct GatCache {
    h_dropped: Matrix,
    mask: Option<Matrix>,
    g_mat: Matrix,
    /// Per target node: offsets into the flattened edge arrays.
    offsets: Vec<usize>,
    /// Flattened neighbor ids (self-loop last per target).
    nbr: Vec<u32>,
    /// Flattened pre-LeakyReLU attention scores.
    pre_att: Vec<f32>,
    /// Flattened attention coefficients.
    alpha: Vec<f32>,
    z: Matrix,
    n_out: usize,
}

/// Parameter gradients from [`GatLayer::backward`].
#[derive(Debug, Clone, PartialEq)]
pub struct GatGrads {
    /// Gradient of `w`.
    pub w: Matrix,
    /// Gradient of `a_l`.
    pub a_l: Matrix,
    /// Gradient of `a_r`.
    pub a_r: Matrix,
}

impl GatLayer {
    /// Xavier-initialized layer with the conventional 0.2 LeakyReLU
    /// attention slope.
    pub fn new(
        d_in: usize,
        d_out: usize,
        act: Activation,
        dropout: f32,
        rng: &mut SeededRng,
    ) -> Self {
        Self {
            w: xavier_uniform(d_in, d_out, rng),
            a_l: xavier_uniform(1, d_out, rng),
            a_r: xavier_uniform(1, d_out, rng),
            neg_slope: 0.2,
            act,
            dropout,
        }
    }

    fn leaky(&self, x: f32) -> f32 {
        if x > 0.0 {
            x
        } else {
            self.neg_slope * x
        }
    }

    /// Forward pass over the local graph; the first `n_out` rows of
    /// `h_full` are updated, attending over their local neighbors plus a
    /// self-loop.
    pub fn forward(
        &self,
        g: &CsrGraph,
        h_full: &Matrix,
        n_out: usize,
        train: bool,
        rng: &mut SeededRng,
    ) -> (Matrix, GatCache) {
        assert_eq!(h_full.cols(), self.w.rows(), "input dim mismatch");
        assert!(n_out <= g.num_nodes(), "n_out exceeds graph size");
        let (h_dropped, mask) = if train && self.dropout > 0.0 {
            let (h, m) = dropout(h_full, self.dropout, rng);
            (h, Some(m))
        } else {
            (h_full.clone(), None)
        };
        let g_mat = h_dropped.matmul(&self.w);
        let d_out = self.w.cols();
        // Per-row attention half-scores.
        let el: Vec<f32> = (0..g_mat.rows())
            .map(|r| dot(g_mat.row(r), self.a_l.row(0)))
            .collect();
        let er: Vec<f32> = (0..g_mat.rows())
            .map(|r| dot(g_mat.row(r), self.a_r.row(0)))
            .collect();
        let bk = simd::begin_kernel();
        let mut offsets = Vec::with_capacity(n_out + 1);
        offsets.push(0usize);
        let mut nbr: Vec<u32> = Vec::new();
        let mut pre_att: Vec<f32> = Vec::new();
        let mut alpha: Vec<f32> = Vec::new();
        // Softmax scratch reused across targets (one allocation per
        // forward, not one per node).
        let mut exps: Vec<f32> = Vec::new();
        let mut z = Matrix::zeros(n_out, d_out);
        for v in 0..n_out {
            let start = nbr.len();
            for &u in g.neighbors(v) {
                nbr.push(u);
                pre_att.push(self.leaky(el[u as usize] + er[v]));
            }
            // Self-loop.
            nbr.push(v as u32);
            pre_att.push(self.leaky(el[v] + er[v]));
            // Softmax over this target's edges.
            let scores = &pre_att[start..];
            let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            exps.clear();
            exps.extend(scores.iter().map(|&s| (s - max).exp()));
            for &e in &exps {
                denom += e;
            }
            let zr = z.row_mut(v);
            for (i, &e) in exps.iter().enumerate() {
                let a = e / denom;
                alpha.push(a);
                simd::axpy(bk, zr, a, g_mat.row(nbr[start + i] as usize));
            }
            offsets.push(nbr.len());
        }
        let out = self.act.apply(&z);
        (
            out,
            GatCache {
                h_dropped,
                mask,
                g_mat,
                offsets,
                nbr,
                pre_att,
                alpha,
                z,
                n_out,
            },
        )
    }

    /// Backward pass: returns the gradient for every input row of
    /// `h_full` plus parameter gradients.
    pub fn backward(&self, cache: &GatCache, d_out: &Matrix) -> (Matrix, GatGrads) {
        assert_eq!(d_out.rows(), cache.n_out, "d_out row mismatch");
        let dz = self.act.backward(&cache.z, d_out);
        let bk = simd::begin_kernel();
        let d_feat = self.w.cols();
        let n_rows = cache.g_mat.rows();
        let mut dg = Matrix::zeros(n_rows, d_feat);
        let mut da_l = vec![0.0f32; d_feat];
        let mut da_r = vec![0.0f32; d_feat];
        // dα scratch reused across targets.
        let mut dalpha: Vec<f32> = Vec::new();
        for v in 0..cache.n_out {
            let (s, e) = (cache.offsets[v], cache.offsets[v + 1]);
            let dzv = dz.row(v);
            // dα for each edge and the softmax correction term.
            dalpha.clear();
            dalpha.resize(e - s, 0.0);
            let mut corr = 0.0f32;
            for (i, idx) in (s..e).enumerate() {
                let u = cache.nbr[idx] as usize;
                let da = dot(dzv, cache.g_mat.row(u));
                dalpha[i] = da;
                corr += cache.alpha[idx] * da;
                // z-path gradient into g_u.
                simd::axpy(bk, dg.row_mut(u), cache.alpha[idx], dzv);
            }
            for (i, idx) in (s..e).enumerate() {
                let u = cache.nbr[idx] as usize;
                let ds = cache.alpha[idx] * (dalpha[i] - corr);
                let dpre = ds * self.leaky_d_from_value(cache.pre_att[idx]);
                // pre = a_l · g_u + a_r · g_v (then leaky).
                simd::axpy(bk, &mut da_l, dpre, cache.g_mat.row(u));
                simd::axpy(bk, &mut da_r, dpre, cache.g_mat.row(v));
                simd::axpy(bk, dg.row_mut(u), dpre, self.a_l.row(0));
                simd::axpy(bk, dg.row_mut(v), dpre, self.a_r.row(0));
            }
        }
        let grads = GatGrads {
            w: cache.h_dropped.matmul_tn(&dg),
            a_l: Matrix::from_vec(1, d_feat, da_l),
            a_r: Matrix::from_vec(1, d_feat, da_r),
        };
        let mut dh = dg.matmul_nt(&self.w);
        if let Some(m) = &cache.mask {
            dh = dh.hadamard(m);
        }
        (dh, grads)
    }

    /// LeakyReLU derivative recovered from the *post*-activation value
    /// (valid because LeakyReLU preserves sign for positive slope).
    fn leaky_d_from_value(&self, y: f32) -> f32 {
        if y > 0.0 {
            1.0
        } else {
            self.neg_slope
        }
    }

    /// The layer's parameters (order: `w`, `a_l`, `a_r`).
    pub fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.w, &mut self.a_l, &mut self.a_r]
    }

    /// Parameter gradients in [`GatLayer::params_mut`] order.
    pub fn grads_vec(grads: &GatGrads) -> Vec<&Matrix> {
        vec![&grads.w, &grads.a_l, &grads.a_r]
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::finite_diff;
    use bns_graph::generators::erdos_renyi_m;

    fn setup() -> (CsrGraph, GatLayer, Matrix) {
        let mut rng = SeededRng::new(30);
        let g = erdos_renyi_m(9, 18, &mut rng);
        let layer = GatLayer::new(4, 3, Activation::Elu, 0.0, &mut rng);
        let h = Matrix::random_normal(9, 4, 0.0, 1.0, &mut rng);
        (g, layer, h)
    }

    fn loss(layer: &GatLayer, g: &CsrGraph, h: &Matrix, n_out: usize) -> f64 {
        let mut rng = SeededRng::new(0);
        let (out, _) = layer.forward(g, h, n_out, false, &mut rng);
        // A non-uniform functional so attention gradients are exercised.
        let mut acc = 0.0f64;
        for r in 0..out.rows() {
            for (c, &x) in out.row(r).iter().enumerate() {
                acc += (x * (1.0 + 0.3 * c as f32)) as f64;
            }
        }
        acc
    }

    fn upstream(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |_, c| 1.0 + 0.3 * c as f32)
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let (g, layer, h) = setup();
        let mut rng = SeededRng::new(0);
        let (out, cache) = layer.forward(&g, &h, 9, false, &mut rng);
        let (dh, _) = layer.backward(&cache, &upstream(out.rows(), out.cols()));
        let fd = finite_diff(&h, 1e-2, |hp| loss(&layer, &g, hp, 9));
        assert!(dh.approx_eq(&fd, 0.08), "max diff {}", dh.max_abs_diff(&fd));
    }

    #[test]
    fn parameter_gradients_match_finite_difference() {
        let (g, layer, h) = setup();
        let mut rng = SeededRng::new(0);
        let (out, cache) = layer.forward(&g, &h, 9, false, &mut rng);
        let (_, grads) = layer.backward(&cache, &upstream(out.rows(), out.cols()));

        let fd_w = finite_diff(&layer.w, 1e-2, |w| {
            let mut l2 = layer.clone();
            l2.w = w.clone();
            loss(&l2, &g, &h, 9)
        });
        assert!(
            grads.w.approx_eq(&fd_w, 0.08),
            "w diff {}",
            grads.w.max_abs_diff(&fd_w)
        );
        let fd_al = finite_diff(&layer.a_l, 1e-2, |a| {
            let mut l2 = layer.clone();
            l2.a_l = a.clone();
            loss(&l2, &g, &h, 9)
        });
        assert!(
            grads.a_l.approx_eq(&fd_al, 0.08),
            "a_l diff {}",
            grads.a_l.max_abs_diff(&fd_al)
        );
        let fd_ar = finite_diff(&layer.a_r, 1e-2, |a| {
            let mut l2 = layer.clone();
            l2.a_r = a.clone();
            loss(&l2, &g, &h, 9)
        });
        assert!(
            grads.a_r.approx_eq(&fd_ar, 0.08),
            "a_r diff {}",
            grads.a_r.max_abs_diff(&fd_ar)
        );
    }

    #[test]
    fn attention_sums_to_one_per_target() {
        let (g, layer, h) = setup();
        let mut rng = SeededRng::new(0);
        let (_, cache) = layer.forward(&g, &h, 9, false, &mut rng);
        for v in 0..9 {
            let (s, e) = (cache.offsets[v], cache.offsets[v + 1]);
            let total: f32 = cache.alpha[s..e].iter().sum();
            assert!((total - 1.0).abs() < 1e-5, "node {v}: {total}");
        }
    }

    #[test]
    fn boundary_rows_receive_gradient() {
        // 2 inner + 1 boundary; inner 0 attends to boundary 2.
        let g = CsrGraph::from_edges(3, [(0, 2), (0, 1)]);
        let mut rng = SeededRng::new(5);
        let layer = GatLayer::new(2, 2, Activation::Identity, 0.0, &mut rng);
        let h = Matrix::random_normal(3, 2, 0.0, 1.0, &mut rng);
        let (out, cache) = layer.forward(&g, &h, 2, false, &mut rng);
        let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
        let (dh, _) = layer.backward(&cache, &ones);
        assert!(dh.row(2).iter().any(|&x| x != 0.0));
    }
}
