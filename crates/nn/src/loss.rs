//! Loss functions with analytic gradients.
//!
//! Both losses operate on a *row subset* (the training nodes owned by a
//! partition) and return an **unnormalized sum**; the caller divides by
//! the global training-node count so that partition-parallel gradients
//! sum to exactly the full-graph gradient.

use bns_tensor::Matrix;

/// Masked softmax cross-entropy for single-label classification
/// (Reddit / ogbn-products style).
///
/// Returns `(loss_sum, dlogits, correct)` where `dlogits` has non-zero
/// rows only at `rows` and equals `softmax(logits) − onehot(label)`
/// there (the gradient of the *sum* of per-row losses), and `correct`
/// counts argmax hits.
///
/// # Panics
///
/// Panics if a row index or label is out of bounds.
pub fn softmax_cross_entropy(
    logits: &Matrix,
    labels: &[usize],
    rows: &[usize],
) -> (f64, Matrix, usize) {
    assert_eq!(logits.rows(), labels.len(), "labels length mismatch");
    let c = logits.cols();
    let mut dlogits = Matrix::zeros(logits.rows(), c);
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    for &r in rows {
        let row = logits.row(r);
        let label = labels[r];
        assert!(label < c, "label {label} out of range for {c} classes");
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f64;
        for &x in row {
            denom += ((x - max) as f64).exp();
        }
        let log_denom = denom.ln();
        loss += log_denom - (row[label] - max) as f64;
        // First maximum wins ties (deterministic argmax).
        let mut argmax = 0usize;
        for (i, &x) in row.iter().enumerate() {
            if x > row[argmax] {
                argmax = i;
            }
        }
        if argmax == label {
            correct += 1;
        }
        let drow = dlogits.row_mut(r);
        for (j, &x) in row.iter().enumerate() {
            let p = (((x - max) as f64) - log_denom).exp() as f32;
            drow[j] = p - if j == label { 1.0 } else { 0.0 };
        }
    }
    (loss, dlogits, correct)
}

/// Sigmoid binary cross-entropy with logits for multi-label
/// classification (Yelp style). `targets` is an `n x c` 0/1 matrix.
///
/// Returns `(loss_sum, dlogits)`; `dlogits = σ(logits) − targets` on the
/// selected rows, zero elsewhere. The loss is summed over rows *and*
/// label columns.
///
/// # Panics
///
/// Panics on shape mismatch or out-of-bounds rows.
pub fn bce_with_logits(logits: &Matrix, targets: &Matrix, rows: &[usize]) -> (f64, Matrix) {
    assert_eq!(logits.shape(), targets.shape(), "target shape mismatch");
    let mut dlogits = Matrix::zeros(logits.rows(), logits.cols());
    let mut loss = 0.0f64;
    for &r in rows {
        let x = logits.row(r);
        let y = targets.row(r);
        let d = dlogits.row_mut(r);
        for j in 0..x.len() {
            let xv = x[j] as f64;
            let yv = y[j] as f64;
            // Numerically stable: max(x,0) − x·y + ln(1 + e^{−|x|}).
            loss += xv.max(0.0) - xv * yv + (1.0 + (-xv.abs()).exp()).ln();
            let sig = 1.0 / (1.0 + (-xv).exp());
            d[j] = (sig - yv) as f32;
        }
    }
    (loss, dlogits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::finite_diff;
    use bns_tensor::SeededRng;

    #[test]
    fn ce_matches_manual_two_class() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0]]);
        let (loss, d, correct) = softmax_cross_entropy(&logits, &[1], &[0]);
        assert!((loss - (2.0f64).ln()).abs() < 1e-6);
        assert!((d[(0, 0)] - 0.5).abs() < 1e-5);
        assert!((d[(0, 1)] + 0.5).abs() < 1e-5);
        // argmax of [0,0] is index 0, label is 1 -> incorrect
        assert_eq!(correct, 0);
    }

    #[test]
    fn ce_gradient_matches_finite_difference() {
        let mut rng = SeededRng::new(1);
        let logits = Matrix::random_normal(5, 4, 0.0, 1.0, &mut rng);
        let labels = vec![0, 3, 2, 1, 0];
        let rows = vec![0, 2, 4];
        let (_, d, _) = softmax_cross_entropy(&logits, &labels, &rows);
        let fd = finite_diff(&logits, 1e-2, |l| {
            softmax_cross_entropy(l, &labels, &rows).0
        });
        assert!(d.approx_eq(&fd, 0.02), "diff {}", d.max_abs_diff(&fd));
    }

    #[test]
    fn ce_masked_rows_have_zero_gradient() {
        let mut rng = SeededRng::new(2);
        let logits = Matrix::random_normal(3, 2, 0.0, 1.0, &mut rng);
        let (_, d, _) = softmax_cross_entropy(&logits, &[0, 1, 0], &[1]);
        assert!(d.row(0).iter().all(|&x| x == 0.0));
        assert!(d.row(2).iter().all(|&x| x == 0.0));
        assert!(d.row(1).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let mut rng = SeededRng::new(3);
        let logits = Matrix::random_normal(4, 6, 0.0, 2.0, &mut rng);
        let targets = Matrix::from_fn(4, 6, |r, c| ((r + c) % 2) as f32);
        let rows = vec![0, 1, 3];
        let (_, d) = bce_with_logits(&logits, &targets, &rows);
        let fd = finite_diff(&logits, 1e-2, |l| bce_with_logits(l, &targets, &rows).0);
        assert!(d.approx_eq(&fd, 0.02), "diff {}", d.max_abs_diff(&fd));
    }

    #[test]
    fn bce_is_stable_for_large_logits() {
        let logits = Matrix::from_rows(&[&[60.0, -60.0]]);
        let targets = Matrix::from_rows(&[&[1.0, 0.0]]);
        let (loss, d) = bce_with_logits(&logits, &targets, &[0]);
        assert!(loss.is_finite() && loss < 1e-6);
        assert!(!d.has_non_finite());
    }

    #[test]
    fn ce_perfect_prediction_counts_correct() {
        let logits = Matrix::from_rows(&[&[10.0, -10.0], &[-10.0, 10.0]]);
        let (_, _, correct) = softmax_cross_entropy(&logits, &[0, 1], &[0, 1]);
        assert_eq!(correct, 2);
    }
}
