//! Optimizers. The paper uses Adam everywhere.

use bns_tensor::simd::{self, AdamHyper};
use bns_tensor::Matrix;

/// The Adam optimizer (Kingma & Ba) with optional weight decay.
///
/// State is lazily initialized on the first [`Adam::step`]; subsequent
/// calls must pass the same number and shapes of parameters.
///
/// # Example
///
/// ```
/// use bns_nn::Adam;
/// use bns_tensor::Matrix;
///
/// // Minimize f(x) = x² from x = 3.
/// let mut x = Matrix::from_rows(&[&[3.0f32]]);
/// let mut opt = Adam::new(0.1);
/// for _ in 0..200 {
///     let g = Matrix::from_rows(&[&[2.0 * x[(0, 0)]]]);
///     opt.step(&mut [&mut x], &[&g]);
/// }
/// assert!(x[(0, 0)].abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled weight decay coefficient (0 disables).
    pub weight_decay: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with the standard `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update. `params[i]` is updated using `grads[i]`.
    ///
    /// # Panics
    ///
    /// Panics if counts or shapes differ from the first call.
    pub fn step(&mut self, params: &mut [&mut Matrix], grads: &[&Matrix]) {
        assert_eq!(params.len(), grads.len(), "params/grads count mismatch");
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
            self.v = self.m.clone();
        }
        assert_eq!(self.m.len(), params.len(), "parameter count changed");
        self.t += 1;
        let hyper = AdamHyper {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            weight_decay: self.weight_decay,
            b1t: 1.0 - self.beta1.powi(self.t as i32),
            b2t: 1.0 - self.beta2.powi(self.t as i32),
        };
        let bk = simd::begin_kernel();
        for ((p, g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            assert_eq!(p.shape(), g.shape(), "parameter shape changed");
            assert_eq!(
                p.shape(),
                m.shape(),
                "parameter shape differs from first-call shape"
            );
            // `div`/`sqrt` are correctly rounded on every backend, so
            // the vectorized update is bitwise identical to the scalar
            // expression sequence.
            simd::adam_update(
                bk,
                p.as_mut_slice(),
                g.as_slice(),
                m.as_mut_slice(),
                v.as_mut_slice(),
                &hyper,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic_bowl() {
        let mut x = Matrix::from_rows(&[&[5.0, -3.0]]);
        let mut opt = Adam::new(0.2);
        for _ in 0..300 {
            let g = Matrix::from_rows(&[&[2.0 * x[(0, 0)], 2.0 * x[(0, 1)]]]);
            opt.step(&mut [&mut x], &[&g]);
        }
        assert!(x[(0, 0)].abs() < 0.05 && x[(0, 1)].abs() < 0.05, "{x:?}");
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn multiple_params_updated_independently() {
        let mut a = Matrix::from_rows(&[&[1.0]]);
        let mut b = Matrix::from_rows(&[&[10.0]]);
        let mut opt = Adam::new(0.5);
        for _ in 0..100 {
            let ga = Matrix::from_rows(&[&[2.0 * a[(0, 0)]]]);
            let gb = Matrix::from_rows(&[&[2.0 * (b[(0, 0)] - 4.0)]]);
            opt.step(&mut [&mut a, &mut b], &[&ga, &gb]);
        }
        assert!(a[(0, 0)].abs() < 0.1);
        assert!((b[(0, 0)] - 4.0).abs() < 0.1);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut x = Matrix::from_rows(&[&[2.0]]);
        let mut opt = Adam::new(0.05);
        opt.weight_decay = 0.5;
        for _ in 0..500 {
            let g = Matrix::from_rows(&[&[0.0]]); // no loss gradient
            opt.step(&mut [&mut x], &[&g]);
        }
        assert!(x[(0, 0)].abs() < 0.2, "{}", x[(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn mismatched_counts_panic() {
        let mut x = Matrix::zeros(1, 1);
        Adam::new(0.1).step(&mut [&mut x], &[]);
    }

    #[test]
    #[should_panic(expected = "differs from first-call shape")]
    fn reshaped_parameter_panics() {
        // Same param count but a different shape on the second call must
        // not silently apply the stale moments.
        let mut opt = Adam::new(0.1);
        let mut small = Matrix::zeros(2, 2);
        let g_small = Matrix::zeros(2, 2);
        opt.step(&mut [&mut small], &[&g_small]);
        let mut big = Matrix::zeros(3, 4);
        let g_big = Matrix::zeros(3, 4);
        opt.step(&mut [&mut big], &[&g_big]);
    }
}
