//! Bitwise scalar/SIMD equivalence of the nn-layer hot paths, plus a
//! gradient check *through* the SIMD backend.
//!
//! The tensor crate proves each dispatched slice kernel matches its
//! scalar reference bit for bit; these tests prove the same for the
//! composed consumers — aggregates (fused, segmented, backward),
//! activations, the Adam step and the GAT layer — under
//! [`simd::force`], so the whole forward/backward pipeline is lane-
//! width invariant. The final test runs finite-difference gradient
//! checks with the best vector backend forced, pinning numerical
//! correctness (not just self-consistency) of the vectorized path.

use bns_graph::generators::{erdos_renyi_m, ring};
use bns_nn::aggregate::{
    gcn_aggregate, gcn_aggregate_backward, gcn_aggregate_inner, gcn_fold_boundary,
    scaled_sum_aggregate, scaled_sum_aggregate_backward, scaled_sum_aggregate_inner,
    scaled_sum_fold_boundary,
};
use bns_nn::gradcheck::finite_diff;
use bns_nn::{Activation, Adam, GatLayer, SageLayer};
use bns_tensor::simd::{self, Backend};
use bns_tensor::{Matrix, SeededRng};

const N: usize = 40;
const D: usize = 7;

/// Non-scalar backends this CPU can run.
fn vector_backends() -> Vec<Backend> {
    Backend::ALL
        .into_iter()
        .filter(|bk| *bk != Backend::Scalar && bk.is_available())
        .collect()
}

/// NaN-safe, signed-zero-strict equality.
fn bits_eq(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Runs `f` forced-scalar and forced to each vector backend, asserting
/// every returned matrix is bitwise identical to the scalar one.
fn assert_forced_invariant(name: &str, f: impl Fn() -> Vec<Matrix>) {
    let scalar = {
        let _g = simd::force(Backend::Scalar);
        f()
    };
    for bk in vector_backends() {
        let _g = simd::force(bk);
        let got = f();
        assert_eq!(scalar.len(), got.len(), "{name}: output count");
        for (i, (s, v)) in scalar.iter().zip(&got).enumerate() {
            assert!(
                bits_eq(s, v),
                "{name}[{i}]: {} diverged from scalar",
                bk.name()
            );
        }
    }
}

fn take_rows(m: &Matrix, lo: usize, hi: usize) -> Matrix {
    let rows: Vec<&[f32]> = (lo..hi).map(|r| m.row(r)).collect();
    Matrix::from_rows(&rows)
}

#[test]
fn aggregates_bitwise_across_backends() {
    let mut rng = SeededRng::new(21);
    let g = erdos_renyi_m(N, 3 * N, &mut rng);
    let h = Matrix::random_normal(N, D, 0.0, 1.0, &mut rng);
    let scale: Vec<f32> = (0..N).map(|_| rng.uniform_range(0.1, 2.0)).collect();

    assert_forced_invariant("scaled_sum fwd+bwd", || {
        let fwd = scaled_sum_aggregate(&g, &h, N, &scale);
        let bwd = scaled_sum_aggregate_backward(&g, &fwd, N, &scale);
        vec![fwd, bwd]
    });
    assert_forced_invariant("gcn fwd+bwd", || {
        let fwd = gcn_aggregate(&g, &h, N, &scale);
        let bwd = gcn_aggregate_backward(&g, &fwd, N, &scale);
        vec![fwd, bwd]
    });
}

#[test]
fn segmented_aggregates_bitwise_across_backends() {
    let mut rng = SeededRng::new(22);
    let g = ring(N);
    let h = Matrix::random_normal(N, D, 0.0, 1.0, &mut rng);
    let n_inner = N - 4;
    let h_inner = take_rows(&h, 0, n_inner);
    let h_bd = take_rows(&h, n_inner, N);
    let scale: Vec<f32> = (0..N).map(|_| rng.uniform_range(0.1, 2.0)).collect();

    assert_forced_invariant("segmented scaled_sum", || {
        let mut z = scaled_sum_aggregate_inner(&g, &h_inner, n_inner);
        scaled_sum_fold_boundary(&g, &mut z, &h_bd, n_inner, &scale[..n_inner]);
        vec![z]
    });
    assert_forced_invariant("segmented gcn", || {
        let mut z = gcn_aggregate_inner(&g, &h_inner, n_inner, &scale);
        gcn_fold_boundary(&g, &mut z, &h_inner, &h_bd, n_inner, &scale);
        vec![z]
    });
}

#[test]
fn activations_bitwise_across_backends_with_specials() {
    // Plant the IEEE specials the kernels' select semantics care about.
    let mut pre = Matrix::random_normal(9, D, 0.0, 1.0, &mut SeededRng::new(23));
    pre[(0, 0)] = f32::NAN;
    pre[(1, 1)] = -0.0;
    pre[(2, 2)] = 0.0;
    pre[(3, 3)] = f32::INFINITY;
    pre[(4, 4)] = f32::NEG_INFINITY;
    pre[(5, 5)] = 1.0e-40;
    let mut up = Matrix::random_normal(9, D, 0.0, 1.0, &mut SeededRng::new(24));
    up[(0, 1)] = f32::NAN;
    up[(6, 2)] = -0.0;

    for act in [
        Activation::Relu,
        Activation::LeakyRelu(0.2),
        Activation::Elu,
    ] {
        assert_forced_invariant("activation fwd+bwd", || {
            vec![act.apply(&pre), act.backward(&pre, &up)]
        });
    }

    // The documented forward semantics, on every backend: NaN and both
    // zero signs map to +0.0; the backward mask multiplies, so NaN
    // upstream propagates wherever pre > 0.
    for bk in std::iter::once(Backend::Scalar).chain(vector_backends()) {
        let _g = simd::force(bk);
        let y = Activation::Relu.apply(&pre);
        assert_eq!(y[(0, 0)].to_bits(), 0.0f32.to_bits(), "NaN -> +0.0");
        assert_eq!(y[(1, 1)].to_bits(), 0.0f32.to_bits(), "-0.0 -> +0.0");
        let dy = Activation::Relu.backward(&pre, &up);
        assert!(dy[(0, 1)].is_nan(), "NaN upstream propagates where pre > 0");
    }
}

#[test]
fn adam_step_bitwise_across_backends() {
    let run = || {
        let mut rng = SeededRng::new(25);
        let mut w = Matrix::random_normal(13, D, 0.0, 1.0, &mut rng);
        let mut b = Matrix::random_normal(1, D, 0.0, 1.0, &mut rng);
        let mut opt = Adam::new(0.05);
        opt.weight_decay = 1e-3;
        for step in 0..5 {
            let gw = Matrix::from_fn(13, D, |r, c| {
                0.1 * (r as f32 - c as f32) + 0.01 * step as f32
            });
            let gb = Matrix::from_fn(1, D, |_, c| 0.2 - 0.05 * c as f32);
            opt.step(&mut [&mut w, &mut b], &[&gw, &gb]);
        }
        vec![w, b]
    };
    assert_forced_invariant("adam 5 steps", run);
}

#[test]
fn gat_layer_bitwise_across_backends() {
    let mut rng = SeededRng::new(26);
    let g = erdos_renyi_m(20, 50, &mut rng);
    let layer = GatLayer::new(5, 6, Activation::LeakyRelu(0.1), 0.0, &mut rng);
    let h = Matrix::random_normal(20, 5, 0.0, 1.0, &mut rng);
    let d_out = Matrix::random_normal(14, 6, 0.0, 1.0, &mut rng);

    assert_forced_invariant("gat fwd+bwd", || {
        let mut r = SeededRng::new(0);
        let (z, cache) = layer.forward(&g, &h, 14, false, &mut r);
        let (dh, grads) = layer.backward(&cache, &d_out);
        vec![z, dh, grads.w, grads.a_l, grads.a_r]
    });
}

/// Gradient check *through* the vectorized path: with the best backend
/// forced, a SAGE layer's analytic input gradient still matches finite
/// differences. This is the correctness (not just consistency) anchor
/// for the SIMD kernels — matmul, aggregate, activation and the
/// backward scatters all sit on this loss surface.
#[test]
fn sage_gradcheck_through_simd_path() {
    let best = simd::detect();
    let _g = simd::force(best);

    let mut rng = SeededRng::new(27);
    let g = erdos_renyi_m(10, 22, &mut rng);
    let layer = SageLayer::new(3, 4, Activation::Relu, 0.0, &mut rng);
    let x = Matrix::random_normal(10, 3, 0.0, 1.0, &mut rng);
    let scale: Vec<f32> = (0..10).map(|v| 1.0 / g.degree(v).max(1) as f32).collect();

    let loss_of = |xp: &Matrix| -> f64 {
        let mut r = SeededRng::new(0);
        let (out, _) = layer.forward(&g, xp, 10, &scale, false, &mut r);
        out.as_slice().iter().map(|&v| (v as f64).powi(2)).sum()
    };

    let mut r = SeededRng::new(0);
    let (out, cache) = layer.forward(&g, &x, 10, &scale, false, &mut r);
    let mut d = out.clone();
    d.scale(2.0);
    let (dx, _) = layer.backward(&g, &cache, &d);
    let fd = finite_diff(&x, 1e-2, loss_of);
    assert!(
        dx.approx_eq(&fd, 0.08),
        "SIMD-path gradient mismatch under {}: {}",
        best.name(),
        dx.max_abs_diff(&fd)
    );
}

/// Same check forced to scalar, and the two analytic gradients must be
/// bitwise identical — gradcheck plus lane invariance in one shot.
#[test]
fn sage_gradients_identical_scalar_vs_vector() {
    let mut rng = SeededRng::new(28);
    let g = erdos_renyi_m(12, 30, &mut rng);
    let layer = SageLayer::new(4, 5, Activation::Relu, 0.0, &mut rng);
    let x = Matrix::random_normal(12, 4, 0.0, 1.0, &mut rng);
    let scale: Vec<f32> = (0..12).map(|v| 1.0 / g.degree(v).max(1) as f32).collect();
    let d = Matrix::filled(12, 5, 1.0);

    assert_forced_invariant("sage fwd+bwd", || {
        let mut r = SeededRng::new(0);
        let (out, cache) = layer.forward(&g, &x, 12, &scale, false, &mut r);
        let (dx, grads) = layer.backward(&g, &cache, &d);
        vec![out, dx, grads.w_self, grads.w_neigh, grads.b]
    });
}
