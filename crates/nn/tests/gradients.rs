//! End-to-end gradient checks through multi-layer models and loss
//! functions — the strongest correctness evidence the hand-derived
//! backward passes have.

use bns_data::SyntheticSpec;
use bns_graph::generators::erdos_renyi_m;
use bns_nn::gradcheck::finite_diff;
use bns_nn::loss::{bce_with_logits, softmax_cross_entropy};
use bns_nn::{Activation, SageLayer, SageModel};
use bns_tensor::{Matrix, SeededRng};

/// Full pipeline gradient: 2-layer SAGE + softmax CE, checked against
/// finite differences on the *input features* (gradient flows through
/// both layers and two aggregations).
#[test]
fn two_layer_model_input_gradient() {
    let mut rng = SeededRng::new(50);
    let g = erdos_renyi_m(10, 22, &mut rng);
    let model = SageModel::new(&[3, 4, 2], 0.0, &mut rng);
    let x = Matrix::random_normal(10, 3, 0.0, 1.0, &mut rng);
    let labels = vec![0usize, 1, 0, 1, 0, 1, 0, 1, 0, 1];
    let rows: Vec<usize> = (0..10).collect();
    let scale: Vec<f32> = (0..10).map(|v| 1.0 / g.degree(v).max(1) as f32).collect();

    let loss_of = |xp: &Matrix| -> f64 {
        let mut r = SeededRng::new(0);
        let (out, _) = model.forward_full(&g, xp, &scale, false, &mut r);
        softmax_cross_entropy(&out, &labels, &rows).0
    };

    let mut r = SeededRng::new(0);
    let (out, caches) = model.forward_full(&g, &x, &scale, false, &mut r);
    let (_, dlogits, _) = softmax_cross_entropy(&out, &labels, &rows);
    // Backward through the model, capturing the input gradient.
    let mut d = dlogits;
    for l in (0..model.num_layers()).rev() {
        let (dh, _) = model.layers[l].backward(&g, &caches[l], &d);
        d = dh;
    }
    let fd = finite_diff(&x, 1e-2, |xp| loss_of(xp));
    assert!(
        d.approx_eq(&fd, 0.08),
        "input gradient mismatch: {}",
        d.max_abs_diff(&fd)
    );
}

/// Weight gradients of the *first* layer, through the full two-layer
/// stack (checks that upstream gradients are threaded correctly).
#[test]
fn first_layer_weight_gradient_through_stack() {
    let mut rng = SeededRng::new(51);
    let g = erdos_renyi_m(8, 16, &mut rng);
    let model = SageModel::new(&[3, 4, 2], 0.0, &mut rng);
    let x = Matrix::random_normal(8, 3, 0.0, 1.0, &mut rng);
    let labels = vec![0usize, 1, 0, 1, 0, 1, 0, 1];
    let rows: Vec<usize> = (0..8).collect();
    let scale: Vec<f32> = (0..8).map(|v| 1.0 / g.degree(v).max(1) as f32).collect();

    let mut r = SeededRng::new(0);
    let (out, caches) = model.forward_full(&g, &x, &scale, false, &mut r);
    let (_, dlogits, _) = softmax_cross_entropy(&out, &labels, &rows);
    let grads = model.backward_full(&g, &caches, &dlogits);

    let fd = finite_diff(&model.layers[0].w_neigh, 1e-2, |w| {
        let mut m2 = model.clone();
        m2.layers[0].w_neigh = w.clone();
        let mut r = SeededRng::new(0);
        let (out, _) = m2.forward_full(&g, &x, &scale, false, &mut r);
        softmax_cross_entropy(&out, &labels, &rows).0
    });
    assert!(
        grads[0].w_neigh.approx_eq(&fd, 0.08),
        "w_neigh gradient mismatch: {}",
        grads[0].w_neigh.max_abs_diff(&fd)
    );
}

/// BCE loss through a layer: multi-label path.
#[test]
fn bce_through_layer_gradient() {
    let mut rng = SeededRng::new(52);
    let g = erdos_renyi_m(7, 12, &mut rng);
    let layer = SageLayer::new(3, 4, Activation::Identity, 0.0, &mut rng);
    let x = Matrix::random_normal(7, 3, 0.0, 1.0, &mut rng);
    let y = Matrix::from_fn(7, 4, |r, c| ((r + c) % 2) as f32);
    let rows: Vec<usize> = (0..7).collect();
    let scale: Vec<f32> = (0..7).map(|v| 1.0 / g.degree(v).max(1) as f32).collect();

    let mut r = SeededRng::new(0);
    let (out, cache) = layer.forward(&g, &x, 7, &scale, false, &mut r);
    let (_, dlogits) = bce_with_logits(&out, &y, &rows);
    let (dx, _) = layer.backward(&g, &cache, &dlogits);
    let fd = finite_diff(&x, 1e-2, |xp| {
        let mut r = SeededRng::new(0);
        let (out, _) = layer.forward(&g, xp, 7, &scale, false, &mut r);
        bce_with_logits(&out, &y, &rows).0
    });
    assert!(dx.approx_eq(&fd, 0.05), "diff {}", dx.max_abs_diff(&fd));
}

/// Softmax CE gradient rows sum to zero (probability simplex tangent).
#[test]
fn ce_gradient_rows_sum_to_zero() {
    let mut rng = SeededRng::new(53);
    let logits = Matrix::random_normal(6, 5, 0.0, 2.0, &mut rng);
    let labels = vec![0, 1, 2, 3, 4, 0];
    let rows: Vec<usize> = (0..6).collect();
    let (_, d, _) = softmax_cross_entropy(&logits, &labels, &rows);
    for r in 0..6 {
        let s: f32 = d.row(r).iter().sum();
        assert!(s.abs() < 1e-5, "row {r} sums to {s}");
    }
}

/// Dropout backward scales gradients by exactly the forward mask.
#[test]
fn dropout_mask_consistency() {
    let mut rng = SeededRng::new(54);
    let g = erdos_renyi_m(6, 10, &mut rng);
    let mut layer = SageLayer::new(3, 3, Activation::Identity, 0.5, &mut rng);
    layer.dropout = 0.5;
    let x = Matrix::random_normal(6, 3, 0.0, 1.0, &mut rng);
    let scale = vec![1.0f32; 6];
    let mut r = SeededRng::new(9);
    let (out, cache) = layer.forward(&g, &x, 6, &scale, true, &mut r);
    let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
    let (dx, _) = layer.backward(&g, &cache, &ones);
    // Wherever the input was dropped, its gradient must be exactly zero.
    let mut r2 = SeededRng::new(9);
    let (out2, _) = layer.forward(&g, &x, 6, &scale, true, &mut r2);
    assert_eq!(out, out2, "same rng seed must reproduce the same mask");
    // A dropped feature contributes nothing, so columns of dropped
    // entries have zero gradient — verify at least one zero exists and
    // non-finite values never appear.
    assert!(!dx.has_non_finite());
    assert!(dx.as_slice().contains(&0.0));
}

/// A deeper (4-layer, paper-Reddit-shaped) model still has
/// finite, non-exploding gradients on a realistic graph.
#[test]
fn deep_model_gradients_are_finite() {
    let ds = SyntheticSpec::reddit_sim().with_nodes(300).generate(55);
    let mut rng = SeededRng::new(55);
    let model = SageModel::new(&[ds.feat_dim(), 32, 32, 32, ds.num_classes], 0.0, &mut rng);
    let scale = ds.mean_scale();
    let mut r = SeededRng::new(0);
    let (out, caches) = model.forward_full(&ds.graph, &ds.features, &scale, false, &mut r);
    let bns_data::Labels::Single(labels) = &ds.labels else {
        panic!()
    };
    let (_, dlogits, _) = softmax_cross_entropy(&out, labels, &ds.train);
    let grads = model.backward_full(&ds.graph, &caches, &dlogits);
    for (l, g) in grads.iter().enumerate() {
        assert!(!g.w_self.has_non_finite(), "layer {l} w_self");
        assert!(!g.w_neigh.has_non_finite(), "layer {l} w_neigh");
        assert!(
            g.w_self.frobenius_norm() > 0.0,
            "layer {l} got zero gradient"
        );
    }
}
