//! Miri-sized exercise of every raw-pointer kernel in bns-nn: the
//! forward aggregates (fused and segmented inner/fold pairs) and the
//! backward blocked-scatter reduction.
//!
//! Run under Miri with:
//!
//! ```text
//! cargo +nightly miri test -p bns-nn --test miri_kernels
//! ```
//!
//! Under `cfg(miri)` the aggregation thresholds shrink
//! (`AGG_MIN_ROWS`, `SCATTER_BLOCK_ROWS` in src/aggregate.rs), so the
//! small graphs here still fan the `from_raw_parts_mut` row blocks and
//! the partial-buffer scatter across a real multi-thread pool — the
//! aliasing claims get checked on the genuinely concurrent path. The
//! same tests run natively (larger sizes) as ordinary regression
//! tests; each asserts via `DispatchStats` that the parallel path
//! actually ran.

use bns_graph::generators::{erdos_renyi_m, ring};
use bns_nn::aggregate::{
    gcn_aggregate, gcn_aggregate_backward, gcn_aggregate_inner, gcn_fold_boundary,
    scaled_sum_aggregate, scaled_sum_aggregate_backward, scaled_sum_aggregate_inner,
    scaled_sum_fold_boundary,
};
use bns_tensor::pool::{self, ThreadPool};
use bns_tensor::simd::{self, Backend};
use bns_tensor::{Matrix, SeededRng};

/// Node count: enough rows to split into several parallel blocks at
/// the active `AGG_MIN_ROWS` / `SCATTER_BLOCK_ROWS` thresholds.
#[cfg(miri)]
const N: usize = 16;
#[cfg(not(miri))]
const N: usize = 520;

const D: usize = 3;

fn take_rows(m: &Matrix, lo: usize, hi: usize) -> Matrix {
    let rows: Vec<&[f32]> = (lo..hi).map(|r| m.row(r)).collect();
    Matrix::from_rows(&rows)
}

#[test]
fn forward_and_backward_aggregates_parallel_match_serial_bitwise() {
    let mut rng = SeededRng::new(11);
    let g = erdos_renyi_m(N, 3 * N, &mut rng);
    let h = Matrix::random_normal(N, D, 0.0, 1.0, &mut rng);
    let scale: Vec<f32> = (0..N).map(|_| rng.uniform_range(0.1, 2.0)).collect();

    // Serial pass (no pool installed => inline fallback).
    let fwd_serial = scaled_sum_aggregate(&g, &h, N, &scale);
    let bwd_serial = scaled_sum_aggregate_backward(&g, &fwd_serial, N, &scale);
    let gcn_serial = gcn_aggregate(&g, &h, N, &scale);
    let gcn_bwd_serial = gcn_aggregate_backward(&g, &gcn_serial, N, &scale);

    // Same kernels through a multi-thread pool.
    let p = ThreadPool::new(3);
    let guard = pool::install(p.clone());
    let fwd_par = scaled_sum_aggregate(&g, &h, N, &scale);
    let bwd_par = scaled_sum_aggregate_backward(&g, &fwd_par, N, &scale);
    let gcn_par = gcn_aggregate(&g, &h, N, &scale);
    let gcn_bwd_par = gcn_aggregate_backward(&g, &gcn_par, N, &scale);
    assert!(
        p.stats().parallel_dispatches >= 4,
        "aggregate sizes did not reach the parallel path: {:?}",
        p.stats()
    );
    drop(guard);

    // The determinism contract: identical bits, any thread count.
    assert_eq!(fwd_serial, fwd_par, "scaled_sum_aggregate");
    assert_eq!(bwd_serial, bwd_par, "scaled_sum_aggregate_backward");
    assert_eq!(gcn_serial, gcn_par, "gcn_aggregate");
    assert_eq!(gcn_bwd_serial, gcn_bwd_par, "gcn_aggregate_backward");
}

#[test]
fn segmented_inner_plus_fold_matches_fused_kernels() {
    // Ring: node v's neighbors are v±1, so with the last 4 nodes
    // designated "boundary" only a few rows near the seam fold.
    let mut rng = SeededRng::new(13);
    let g = ring(N);
    let h = Matrix::random_normal(N, D, 0.0, 1.0, &mut rng);
    let n_inner = N - 4;
    let n_out = n_inner;
    let h_inner = take_rows(&h, 0, n_inner);
    let h_bd = take_rows(&h, n_inner, N);
    let scale: Vec<f32> = (0..N).map(|_| rng.uniform_range(0.1, 2.0)).collect();

    let p = ThreadPool::new(3);
    let guard = pool::install(p.clone());

    // scaled-sum pair vs. the fused kernel.
    let fused = scaled_sum_aggregate(&g, &h, n_out, &scale[..n_out]);
    let mut z = scaled_sum_aggregate_inner(&g, &h_inner, n_out);
    scaled_sum_fold_boundary(&g, &mut z, &h_bd, n_inner, &scale[..n_out]);
    assert_eq!(fused, z, "scaled-sum inner+fold vs fused");

    // GCN pair vs. the fused kernel.
    let gcn_fused = gcn_aggregate(&g, &h, n_out, &scale);
    let mut zg = gcn_aggregate_inner(&g, &h_inner, n_out, &scale);
    gcn_fold_boundary(&g, &mut zg, &h_inner, &h_bd, n_inner, &scale);
    assert_eq!(gcn_fused, zg, "gcn inner+fold vs fused");

    assert!(p.stats().parallel_dispatches > 0);
    drop(guard);
}

/// The aggregate kernels through the SIMD dispatch layer under Miri:
/// every available vector backend must reproduce the forced-scalar
/// result bitwise (SSE2 is statically guaranteed on x86_64, so the
/// intrinsic gather/scatter paths run even under the interpreter), and
/// the forced dispatches must land on that backend's `DispatchStats`
/// counter.
#[test]
fn simd_aggregates_dispatch_and_match_scalar_bitwise() {
    let mut rng = SeededRng::new(17);
    let g = erdos_renyi_m(N, 3 * N, &mut rng);
    let h = Matrix::random_normal(N, D, 0.0, 1.0, &mut rng);
    let scale: Vec<f32> = (0..N).map(|_| rng.uniform_range(0.1, 2.0)).collect();

    let _ = simd::take_thread_stats();
    let (fwd_s, bwd_s) = {
        let _f = simd::force(Backend::Scalar);
        let fwd = scaled_sum_aggregate(&g, &h, N, &scale);
        let bwd = gcn_aggregate_backward(&g, &fwd, N, &scale);
        (fwd, bwd)
    };
    let scalar_dispatches = simd::thread_stats().get(Backend::Scalar);
    assert!(
        scalar_dispatches >= 2,
        "forward + backward must both dispatch, got {scalar_dispatches}"
    );

    for bk in Backend::ALL
        .into_iter()
        .filter(|bk| *bk != Backend::Scalar && bk.is_available())
    {
        let before = simd::thread_stats().get(bk);
        let _f = simd::force(bk);
        let _p = pool::install(ThreadPool::new(3));
        let fwd = scaled_sum_aggregate(&g, &h, N, &scale);
        let bwd = gcn_aggregate_backward(&g, &fwd, N, &scale);
        assert_eq!(fwd, fwd_s, "{} forward vs scalar", bk.name());
        assert_eq!(bwd, bwd_s, "{} backward vs scalar", bk.name());
        assert!(
            simd::thread_stats().get(bk) - before >= 2,
            "forced {} dispatches must count on its own slot",
            bk.name()
        );
    }
    let _ = simd::take_thread_stats();
    assert_eq!(simd::thread_stats().total(), 0, "drain resets the stats");
}
