//! Bitwise serial/parallel equivalence of the aggregation kernels, and
//! a gradient check run entirely through the parallel path.
//!
//! The backward kernels scatter through per-block partial buffers whose
//! block structure depends only on the problem size (never the thread
//! count), reduced in fixed ascending order — so like the matmul
//! kernels they promise *bitwise identical* results at any pool size.
//! Graph sizes here are chosen to clear the fan-out thresholds (64
//! target rows forward, 256 source rows backward), not just fall back
//! to the serial path.

use bns_graph::generators::erdos_renyi_m;
use bns_nn::aggregate::{
    gcn_aggregate, gcn_aggregate_backward, scaled_sum_aggregate, scaled_sum_aggregate_backward,
};
use bns_nn::gradcheck::finite_diff;
use bns_nn::loss::softmax_cross_entropy;
use bns_nn::SageModel;
use bns_tensor::pool::{self, ThreadPool};
use bns_tensor::{Matrix, SeededRng};
use proptest::prelude::*;

fn bitwise_eq(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn assert_thread_invariant(f: impl Fn() -> Matrix) -> Result<(), TestCaseError> {
    let serial = f();
    for threads in [1usize, 2, 4] {
        let _guard = pool::install(ThreadPool::new(threads));
        let parallel = f();
        prop_assert!(
            bitwise_eq(&serial, &parallel),
            "{} threads diverged from serial on shape {:?}",
            threads,
            serial.shape()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// scaled_sum_aggregate forward + backward, random graphs/features.
    #[test]
    fn scaled_sum_bitwise_any_thread_count(
        n in 80usize..600, d in 1usize..16, seed in 0u64..1_000_000
    ) {
        let mut rng = SeededRng::new(seed);
        let g = erdos_renyi_m(n, 3 * n, &mut rng);
        let h = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
        let dz = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
        let scale: Vec<f32> = (0..n).map(|_| rng.uniform_range(0.1, 2.0)).collect();
        assert_thread_invariant(|| scaled_sum_aggregate(&g, &h, n, &scale))?;
        assert_thread_invariant(|| scaled_sum_aggregate_backward(&g, &dz, n, &scale))?;
    }

    /// gcn_aggregate forward + backward (self-loop term included).
    #[test]
    fn gcn_bitwise_any_thread_count(
        n in 80usize..600, d in 1usize..16, seed in 0u64..1_000_000
    ) {
        let mut rng = SeededRng::new(seed);
        let g = erdos_renyi_m(n, 3 * n, &mut rng);
        let h = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
        let dz = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
        let s: Vec<f32> = (0..n)
            .map(|v| 1.0 / ((g.degree(v) + 1) as f32).sqrt())
            .collect();
        assert_thread_invariant(|| gcn_aggregate(&g, &h, n, &s))?;
        assert_thread_invariant(|| gcn_aggregate_backward(&g, &dz, n, &s))?;
    }
}

/// Full model forward/backward is bitwise reproducible under a pool —
/// aggregation and all three matmul flavours compose.
#[test]
fn model_forward_bitwise_under_pool() {
    let mut rng = SeededRng::new(77);
    let g = erdos_renyi_m(300, 900, &mut rng);
    let model = SageModel::new(&[24, 32, 5], 0.0, &mut rng);
    let x = Matrix::random_normal(300, 24, 0.0, 1.0, &mut rng);
    let scale: Vec<f32> = (0..300).map(|v| 1.0 / g.degree(v).max(1) as f32).collect();

    let serial = {
        let mut r = SeededRng::new(0);
        model.forward_full(&g, &x, &scale, false, &mut r).0
    };
    for threads in [2usize, 4] {
        let _guard = pool::install(ThreadPool::new(threads));
        let mut r = SeededRng::new(0);
        let (out, _) = model.forward_full(&g, &x, &scale, false, &mut r);
        assert!(
            bitwise_eq(&serial, &out),
            "model forward diverged at {threads} threads"
        );
    }
}

/// Finite-difference gradient check with a 4-thread pool installed:
/// both the analytic backward and every finite-difference forward run
/// through the parallel kernels.
#[test]
fn gradcheck_through_parallel_path() {
    let _guard = pool::install(ThreadPool::new(4));
    let mut rng = SeededRng::new(78);
    let g = erdos_renyi_m(10, 22, &mut rng);
    let model = SageModel::new(&[3, 4, 2], 0.0, &mut rng);
    let x = Matrix::random_normal(10, 3, 0.0, 1.0, &mut rng);
    let labels = vec![0usize, 1, 0, 1, 0, 1, 0, 1, 0, 1];
    let rows: Vec<usize> = (0..10).collect();
    let scale: Vec<f32> = (0..10).map(|v| 1.0 / g.degree(v).max(1) as f32).collect();

    let mut r = SeededRng::new(0);
    let (out, caches) = model.forward_full(&g, &x, &scale, false, &mut r);
    let (_, dlogits, _) = softmax_cross_entropy(&out, &labels, &rows);
    let mut d = dlogits;
    for l in (0..model.num_layers()).rev() {
        let (dh, _) = model.layers[l].backward(&g, &caches[l], &d);
        d = dh;
    }
    let fd = finite_diff(&x, 1e-2, |xp| {
        let mut r = SeededRng::new(0);
        let (out, _) = model.forward_full(&g, xp, &scale, false, &mut r);
        softmax_cross_entropy(&out, &labels, &rows).0
    });
    assert!(
        d.approx_eq(&fd, 0.08),
        "input gradient mismatch through parallel path: {}",
        d.max_abs_diff(&fd)
    );
}
