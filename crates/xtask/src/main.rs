//! `cargo xtask` entry point (aliased in `.cargo/config.toml`).

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::analyze::diag::{render_human, render_json, Finding};

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

/// Prints findings through the shared renderer and returns the exit
/// code: human findings to stderr, `--json` (machine output) to stdout.
fn report(findings: &[Finding], json: bool, clean_msg: String) -> ExitCode {
    if json {
        print!("{}", render_json(findings));
        return if findings.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if findings.is_empty() {
        println!("{clean_msg}");
        ExitCode::SUCCESS
    } else {
        eprint!("{}", render_human(findings));
        eprintln!("{} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn run_audit(args: &[String]) -> ExitCode {
    let cfg = xtask::AuditConfig::for_repo(&workspace_root());
    let json = args.iter().any(|a| a == "--json");
    if args.iter().any(|a| a == "--bless") {
        match xtask::bless(&cfg) {
            Ok(Ok(n)) => {
                println!(
                    "blessed {} unsafe site(s) into {}",
                    n,
                    cfg.ledger_path.display()
                );
                ExitCode::SUCCESS
            }
            Ok(Err(blocking)) => {
                eprintln!("cannot bless while audit violations remain:");
                let findings: Vec<Finding> = blocking.iter().map(|v| v.to_finding()).collect();
                eprint!("{}", render_human(&findings));
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("audit failed to run: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        match xtask::audit(&cfg) {
            Ok(report_) => {
                let findings: Vec<Finding> =
                    report_.violations.iter().map(|v| v.to_finding()).collect();
                report(
                    &findings,
                    json,
                    format!(
                        "audit clean: {} files scanned, {} unsafe site(s), all documented \
                         and ledgered",
                        report_.files_scanned,
                        report_.sites.iter().map(|s| s.count).sum::<usize>()
                    ),
                )
            }
            Err(e) => {
                eprintln!("audit failed to run: {e}");
                ExitCode::FAILURE
            }
        }
    }
}

fn run_analyze(args: &[String]) -> ExitCode {
    let cfg = xtask::analyze::AnalyzeConfig::for_repo(&workspace_root());
    let json = args.iter().any(|a| a == "--json");
    if args.iter().any(|a| a == "--bless") {
        match xtask::analyze::bless(&cfg) {
            Ok(Ok(n)) => {
                println!(
                    "blessed {} allow(s) into {} and regenerated {}",
                    n,
                    cfg.ledger_path.display(),
                    cfg.env_registry_path.display()
                );
                ExitCode::SUCCESS
            }
            Ok(Err(blocking)) => {
                eprintln!("cannot bless while rule violations remain:");
                eprint!("{}", render_human(&blocking));
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("analyze failed to run: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        match xtask::analyze::analyze(&cfg) {
            Ok(rep) => report(
                &rep.findings,
                json,
                format!(
                    "analyze clean: {} files, {} fns, {} allow(s) ledgered",
                    rep.files_scanned,
                    rep.fns_parsed,
                    rep.used_allows.len()
                ),
            ),
            Err(e) => {
                eprintln!("analyze failed to run: {e}");
                ExitCode::FAILURE
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => run_audit(&args),
        Some("analyze") => run_analyze(&args),
        _ => {
            eprintln!("usage: cargo xtask <audit|analyze> [--bless] [--json]");
            ExitCode::from(2)
        }
    }
}
