//! `cargo xtask` entry point (aliased in `.cargo/config.toml`).

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => {
            let cfg = xtask::AuditConfig::for_repo(&workspace_root());
            if args.iter().any(|a| a == "--bless") {
                match xtask::bless(&cfg) {
                    Ok(Ok(n)) => {
                        println!(
                            "blessed {} unsafe site(s) into {}",
                            n,
                            cfg.ledger_path.display()
                        );
                        ExitCode::SUCCESS
                    }
                    Ok(Err(blocking)) => {
                        eprintln!("cannot bless while audit violations remain:");
                        for v in &blocking {
                            eprintln!("  {v}");
                        }
                        ExitCode::FAILURE
                    }
                    Err(e) => {
                        eprintln!("audit failed to run: {e}");
                        ExitCode::FAILURE
                    }
                }
            } else {
                match xtask::audit(&cfg) {
                    Ok(report) => {
                        if report.violations.is_empty() {
                            println!(
                                "audit clean: {} files scanned, {} unsafe site(s), all \
                                 documented and ledgered",
                                report.files_scanned,
                                report.sites.iter().map(|s| s.count).sum::<usize>()
                            );
                            ExitCode::SUCCESS
                        } else {
                            for v in &report.violations {
                                eprintln!("{v}");
                            }
                            eprintln!("audit: {} violation(s)", report.violations.len());
                            ExitCode::FAILURE
                        }
                    }
                    Err(e) => {
                        eprintln!("audit failed to run: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
        }
        _ => {
            eprintln!("usage: cargo xtask audit [--bless]");
            ExitCode::from(2)
        }
    }
}
